//! Fault-injection properties of the gather–scatter library.
//!
//! Message-level faults (drops with retransmit, delays) perturb timing
//! and cost but must never perturb *results*: the delivered payloads are
//! intact and the `(source, tag)` FIFO matching order is preserved. These
//! tests check that property for all three exchange methods over
//! randomized fault plans, and that abandoning a split-phase operation
//! (dropping its `GsPending`) leaves the runtime clean for later
//! exchanges.

use cmt_gs::{GsHandle, GsMethod, GsOp};
use simmpi::rng::SmallRng;
use simmpi::{FaultPlan, World};

/// Property: any fault plan with drops (and/or delays) but no kills
/// yields results bitwise identical to a fault-free run, for every
/// exchange method, on randomized id maps.
#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn message_faults_never_change_gs_results() {
    let mut rng = SmallRng::seed_from_u64(0xFA17_0001);
    let mut injected_total = 0u64;
    for _trial in 0..4 {
        let p = rng.range_usize(2, 6);
        let universe = rng.range_u64(4, 20);
        let ids: Vec<Vec<u64>> = (0..p)
            .map(|_| {
                let len = rng.range_usize(1, 25);
                (0..len).map(|_| rng.range_u64(0, universe)).collect()
            })
            .collect();
        let vals: Vec<Vec<f64>> = ids
            .iter()
            .map(|v| v.iter().map(|_| rng.range_f64(-2.0, 2.0)).collect())
            .collect();
        // randomized drops-but-no-kills plan, sometimes with delays too
        let mut spec = format!(
            "drop:prob={:.2},us={},retries={};seed={}",
            rng.range_f64(0.2, 0.6),
            rng.range_u64(20, 60),
            rng.range_u64(1, 4),
            rng.next_u64() % 1000,
        );
        if rng.bool() {
            spec.push_str(&format!(
                ";delay:prob={:.2},us={}",
                rng.range_f64(0.1, 0.4),
                rng.range_u64(20, 80)
            ));
        }
        let plan = FaultPlan::parse(&spec).expect("generated spec parses");
        assert!(plan.kills.is_empty() && plan.has_message_faults());

        for method in GsMethod::ALL {
            let program = {
                let (ids, vals) = (ids.clone(), vals.clone());
                move |rank: &mut simmpi::Rank| {
                    let me = rank.rank();
                    let handle = GsHandle::setup(rank, &ids[me]);
                    let mut v = vals[me].clone();
                    // blocking, split-phase, and bundled forms all on the
                    // faulty transport
                    handle.gs_op(rank, &mut v, GsOp::Add, method);
                    let pending = handle.gs_op_start(rank, &[&v], GsOp::Max, method);
                    handle.gs_op_finish(rank, pending, &mut [&mut v]);
                    let mut w = vals[me].clone();
                    handle.gs_op_many(rank, &mut [&mut v, &mut w], GsOp::Add, method);
                    (v, w)
                }
            };
            let clean = World::new().run(p, program.clone());
            let faulty = World::new().with_fault_plan(plan.clone()).run(p, program);
            assert_eq!(
                clean.results, faulty.results,
                "{method:?} p={p} plan {spec:?}: faults changed results"
            );
            injected_total += faulty
                .stats
                .iter()
                .flat_map(|s| s.sites.iter())
                .filter(|(k, _)| k.op.is_fault())
                .map(|(_, s)| s.calls)
                .sum::<u64>();
        }
    }
    assert!(injected_total > 0, "no faults were ever injected");
}

/// Abandoning a split-phase exchange (dropping the `GsPending` without
/// finishing) must not corrupt later exchanges or leak its in-flight
/// messages into later matching, for every method.
#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn dropped_pending_leaves_runtime_clean() {
    let p = 4;
    let ids_of = |r: usize| vec![r as u64, ((r + 1) % p) as u64, 30 + r as u64];
    for method in GsMethod::ALL {
        let res = World::new().run(p, move |rank| {
            let me = rank.rank();
            let handle = GsHandle::setup(rank, &ids_of(me));
            let base: Vec<f64> = (0..3).map(|i| (me * 7 + i) as f64 + 0.25).collect();

            // reference result on an undisturbed runtime
            let mut expect = base.clone();
            handle.gs_op(rank, &mut expect, GsOp::Add, method);

            // start an exchange and abandon it (every rank does, SPMD)
            let doomed = base.clone();
            let pending = handle.gs_op_start(rank, &[&doomed], GsOp::Add, method);
            drop(pending);

            // later exchanges on the same handle must be unaffected
            let mut after = base.clone();
            handle.gs_op(rank, &mut after, GsOp::Add, method);
            let pending = handle.gs_op_start(rank, &[&after], GsOp::Max, method);
            let mut maxed = after.clone();
            handle.gs_op_finish(rank, pending, &mut [&mut maxed]);

            assert_eq!(
                after, expect,
                "rank {me} {method:?}: abandoned exchange leaked"
            );
            maxed
        });
        assert_eq!(res.results.len(), p);
    }
}
