//! The pooled zero-copy messaging path and the persistent exchange plans
//! are pure plumbing: every `gs_op` under a pooled world must be
//! *bitwise* identical to the fresh-allocation (`--no-pool`) path, for
//! every method and combine op, including repeated steady-state calls
//! (which hit the recycled buffers) and split-phase overlap.

use cmt_gs::{GsHandle, GsMethod, GsOp};
use cmt_mesh::{MeshConfig, RankMesh};
use simmpi::rng::SmallRng;
use simmpi::World;

const ALL_OPS: [GsOp; 4] = [GsOp::Add, GsOp::Mul, GsOp::Min, GsOp::Max];

/// Run `rounds` consecutive gs_ops per (method, op) on each rank and
/// return every round's result, under one world configuration.
fn run_rounds(
    pooling: bool,
    p: usize,
    ids: &[Vec<u64>],
    vals: &[Vec<f64>],
    method: GsMethod,
    op: GsOp,
    rounds: usize,
) -> Vec<Vec<Vec<f64>>> {
    let ids = ids.to_vec();
    let vals = vals.to_vec();
    let res = World::new().with_pooling(pooling).run(p, move |rank| {
        let me = rank.rank();
        let handle = GsHandle::setup(rank, &ids[me]);
        (0..rounds)
            .map(|round| {
                // vary the data per round so recycled buffers that leak
                // stale contents would show up
                let mut v: Vec<f64> = vals[me].iter().map(|x| x + round as f64).collect();
                handle.gs_op(rank, &mut v, op, method);
                v
            })
            .collect::<Vec<_>>()
    });
    res.results
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn pooled_gs_op_bitwise_matches_no_pool_all_methods_and_ops() {
    let p = 4;
    let mut rng = SmallRng::seed_from_u64(0x9001_0001);
    let universe = 23;
    let ids: Vec<Vec<u64>> = (0..p)
        .map(|_| {
            let len = rng.range_usize(2, 29);
            (0..len).map(|_| rng.range_u64(0, universe)).collect()
        })
        .collect();
    let vals: Vec<Vec<f64>> = ids
        .iter()
        .map(|v| v.iter().map(|_| rng.range_f64(0.25, 4.0)).collect())
        .collect();
    for method in GsMethod::ALL {
        for op in ALL_OPS {
            let fresh = run_rounds(false, p, &ids, &vals, method, op, 4);
            let pooled = run_rounds(true, p, &ids, &vals, method, op, 4);
            assert_eq!(
                fresh, pooled,
                "{method:?} {op:?}: pooled result diverged from fresh-alloc"
            );
        }
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn pooled_split_phase_bitwise_matches_no_pool_on_mesh_ids() {
    let p = 4;
    let cfg = MeshConfig::for_ranks(p, 8, 4, true);
    let run = |pooling: bool| {
        let cfg2 = cfg.clone();
        World::new()
            .with_pooling(pooling)
            .run(p, move |rank| {
                let mesh = RankMesh::new(cfg2.clone(), rank.rank());
                let ids = mesh.face_exchange_gids();
                let handle = GsHandle::setup(rank, &ids);
                let mk = |salt: usize| -> Vec<f64> {
                    ids.iter()
                        .enumerate()
                        .map(|(i, &g)| ((g as usize * 7 + i + salt) % 13) as f64 - 6.0)
                        .collect()
                };
                let mut out = Vec::new();
                for method in GsMethod::ALL {
                    // 3 steady-state repeats of a 2-field split-phase op
                    for round in 0..3 {
                        let mut a = mk(round);
                        let mut b = mk(round + 7);
                        let pending = handle.gs_op_start(rank, &[&a, &b], GsOp::Add, method);
                        let burn: f64 = a.iter().sum(); // overlap window
                        handle.gs_op_finish(rank, pending, &mut [&mut a, &mut b]);
                        assert!(burn.is_finite());
                        out.push(a);
                        out.push(b);
                    }
                }
                out
            })
            .results
    };
    assert_eq!(
        run(false),
        run(true),
        "pooled split-phase diverged from fresh-alloc"
    );
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn pool_recycles_on_the_steady_state_path() {
    // White-box check on the mechanism itself: after warm-up, repeated
    // pairwise exchanges take every payload buffer from the pool (hits
    // grow, misses freeze).
    let res = World::new().run(4, |rank| {
        let me = rank.rank() as u64;
        let ids = vec![me, (me + 1) % 4, 100 + me];
        let handle = GsHandle::setup(rank, &ids);
        let mut v = vec![1.0, 2.0, 3.0];
        for _ in 0..3 {
            handle.gs_op(rank, &mut v, GsOp::Add, GsMethod::PairwiseExchange);
        }
        let (_, misses_warm) = rank.pool().counters();
        for _ in 0..10 {
            handle.gs_op(rank, &mut v, GsOp::Add, GsMethod::PairwiseExchange);
        }
        let (hits, misses) = rank.pool().counters();
        (hits, misses, misses_warm)
    });
    for (r, &(hits, misses, misses_warm)) in res.results.iter().enumerate() {
        assert_eq!(
            misses, misses_warm,
            "rank {r}: steady-state exchanges still missed the pool"
        );
        assert!(hits > 0, "rank {r}: pool never hit");
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn disabled_pool_world_takes_fresh_buffers() {
    let res = World::new().with_pooling(false).run(2, |rank| {
        let ids = vec![7u64, rank.rank() as u64];
        let handle = GsHandle::setup(rank, &ids);
        let mut v = vec![1.0, 2.0];
        for _ in 0..5 {
            handle.gs_op(rank, &mut v, GsOp::Add, GsMethod::PairwiseExchange);
        }
        rank.pool().counters()
    });
    for (r, &(hits, misses)) in res.results.iter().enumerate() {
        assert_eq!(hits, 0, "rank {r}: disabled pool produced hits");
        assert!(misses > 0, "rank {r}: no takes recorded");
    }
}
