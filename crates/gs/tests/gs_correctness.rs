//! Correctness of the gather–scatter library against a dense serial
//! reference, for all three exchange methods, on structured meshes and on
//! randomized id assignments.

use std::collections::HashMap;

use cmt_gs::{GsHandle, GsMethod, GsOp};
use cmt_mesh::{MeshConfig, RankMesh};
use simmpi::rng::SmallRng;
use simmpi::World;

/// Serial reference: combine every occurrence of each gid across all
/// ranks, write back to every slot.
fn dense_reference(all_ids: &[Vec<u64>], all_vals: &[Vec<f64>], op: GsOp) -> Vec<Vec<f64>> {
    let mut combined: HashMap<u64, f64> = HashMap::new();
    for (ids, vals) in all_ids.iter().zip(all_vals) {
        for (&gid, &v) in ids.iter().zip(vals) {
            combined
                .entry(gid)
                .and_modify(|acc| *acc = op.combine(*acc, v))
                .or_insert(v);
        }
    }
    all_ids
        .iter()
        .map(|ids| ids.iter().map(|gid| combined[gid]).collect())
        .collect()
}

fn run_and_compare(p: usize, ids_of: impl Fn(usize) -> Vec<u64> + Send + Sync, op: GsOp) {
    let all_ids: Vec<Vec<u64>> = (0..p).map(&ids_of).collect();
    // deterministic values varying by rank and slot
    let all_vals: Vec<Vec<f64>> = all_ids
        .iter()
        .enumerate()
        .map(|(r, ids)| {
            ids.iter()
                .enumerate()
                .map(|(i, _)| 1.0 + ((r * 37 + i * 13) % 10) as f64 * 0.25)
                .collect()
        })
        .collect();
    let expect = dense_reference(&all_ids, &all_vals, op);

    for method in GsMethod::ALL {
        let all_vals = all_vals.clone();
        let all_ids = all_ids.clone();
        let res = World::new().run(p, move |rank| {
            let ids = all_ids[rank.rank()].clone();
            let mut vals = all_vals[rank.rank()].clone();
            let handle = GsHandle::setup(rank, &ids);
            handle.gs_op(rank, &mut vals, op, method);
            vals
        });
        for (r, got) in res.results.iter().enumerate() {
            for (i, (g, e)) in got.iter().zip(&expect[r]).enumerate() {
                assert!(
                    (g - e).abs() < 1e-9 * (1.0 + e.abs()),
                    "{method:?} {op:?} p={p} rank {r} slot {i}: {g} vs {e}"
                );
            }
        }
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn all_methods_match_dense_reference_simple_overlap() {
    // each rank holds ids [r, r+1] mod p: a ring of pairwise sharing
    for p in [2usize, 3, 4, 6] {
        run_and_compare(
            p,
            |r| vec![r as u64, ((r + 1) % p) as u64, 100 + r as u64],
            GsOp::Add,
        );
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn all_ops_supported() {
    for op in [GsOp::Add, GsOp::Mul, GsOp::Min, GsOp::Max] {
        run_and_compare(3, |r| vec![0, 1 + r as u64, 99], op);
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn duplicate_local_ids_are_combined() {
    // a gid that appears twice on the same rank and also remotely
    run_and_compare(2, |r| vec![5, 5, 10 + r as u64, 5], GsOp::Add);
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn single_rank_world_combines_locally() {
    run_and_compare(1, |_| vec![3, 3, 4, 3, 4, 5], GsOp::Add);
    run_and_compare(1, |_| vec![3, 3, 4, 3, 4, 5], GsOp::Max);
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn randomized_id_maps_match_reference() {
    let mut rng = SmallRng::seed_from_u64(20150914);
    for trial in 0..6 {
        let p = rng.range_usize(2, 7);
        let universe = rng.range_u64(4, 31);
        let ids: Vec<Vec<u64>> = (0..p)
            .map(|_| {
                let len = rng.range_usize(1, 41);
                (0..len).map(|_| rng.range_u64(0, universe)).collect()
            })
            .collect();
        let ids2 = ids.clone();
        run_and_compare(p, move |r| ids2[r].clone(), GsOp::Add);
        let ids3 = ids.clone();
        run_and_compare(p, move |r| ids3[r].clone(), GsOp::Min);
        let _ = trial;
    }
}

/// The split-phase pair must be *bitwise* identical to the blocking call:
/// `finish` folds neighbor contributions in the same fixed order, for
/// every method, on arbitrary id maps and world sizes.
#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn split_phase_is_bitwise_identical_to_blocking_on_random_maps() {
    let mut rng = SmallRng::seed_from_u64(0x5417_0001);
    for _trial in 0..5 {
        let p = rng.range_usize(2, 7);
        let universe = rng.range_u64(4, 25);
        let ids: Vec<Vec<u64>> = (0..p)
            .map(|_| {
                let len = rng.range_usize(1, 33);
                (0..len).map(|_| rng.range_u64(0, universe)).collect()
            })
            .collect();
        let vals: Vec<Vec<f64>> = ids
            .iter()
            .map(|v| v.iter().map(|_| rng.range_f64(-1.0, 1.0)).collect())
            .collect();
        for method in GsMethod::ALL {
            for op in [GsOp::Add, GsOp::Mul, GsOp::Min, GsOp::Max] {
                let (ids, vals) = (ids.clone(), vals.clone());
                let res = World::new().run(p, move |rank| {
                    let me = rank.rank();
                    let handle = GsHandle::setup(rank, &ids[me]);
                    let mut blocking = vals[me].clone();
                    handle.gs_op(rank, &mut blocking, op, method);
                    let mut split = vals[me].clone();
                    let pending = handle.gs_op_start(rank, &[&split], op, method);
                    // unrelated compute in the overlap window
                    let burn: f64 = split.iter().map(|v| v * v).sum();
                    handle.gs_op_finish(rank, pending, &mut [&mut split]);
                    assert!(burn.is_finite());
                    (blocking, split)
                });
                for (r, (blocking, split)) in res.results.iter().enumerate() {
                    assert_eq!(blocking, split, "{method:?} {op:?} p={p} rank {r}");
                }
            }
        }
    }
}

/// Two split-phase exchanges may be in flight at once; sequence-numbered
/// tags keep their messages from cross-matching even when they finish in
/// the reverse of start order.
#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn overlapping_split_phase_exchanges_do_not_cross_match() {
    let p = 4;
    let ids_of = |r: usize| vec![r as u64, ((r + 1) % p) as u64, 50 + r as u64];
    let res = World::new().run(p, move |rank| {
        let me = rank.rank();
        let handle = GsHandle::setup(rank, &ids_of(me));
        let base: Vec<f64> = (0..3).map(|i| (me * 3 + i) as f64 + 0.5).collect();

        let mut add_blocking = base.clone();
        handle.gs_op(
            rank,
            &mut add_blocking,
            GsOp::Add,
            GsMethod::PairwiseExchange,
        );
        let mut max_blocking = base.clone();
        handle.gs_op(
            rank,
            &mut max_blocking,
            GsOp::Max,
            GsMethod::PairwiseExchange,
        );

        // both exchanges outstanding at once, finished in reverse order
        let mut add_split = base.clone();
        let mut max_split = base.clone();
        let pending_add =
            handle.gs_op_start(rank, &[&add_split], GsOp::Add, GsMethod::PairwiseExchange);
        let pending_max =
            handle.gs_op_start(rank, &[&max_split], GsOp::Max, GsMethod::PairwiseExchange);
        handle.gs_op_finish(rank, pending_max, &mut [&mut max_split]);
        handle.gs_op_finish(rank, pending_add, &mut [&mut add_split]);

        assert_eq!(add_blocking, add_split, "rank {me}: Add cross-matched");
        assert_eq!(max_blocking, max_split, "rank {me}: Max cross-matched");
        add_split
    });
    assert_eq!(res.results.len(), p);
}

/// `shared_slot_flags` marks exactly the slots any `gs_op` can change:
/// a slot is flagged iff its global multiplicity exceeds one.
#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn shared_slot_flags_match_multiplicities_and_gs_invariance() {
    let mut rng = SmallRng::seed_from_u64(0x5417_0002);
    for _trial in 0..4 {
        let p = rng.range_usize(2, 6);
        let universe = rng.range_u64(3, 20);
        let ids: Vec<Vec<u64>> = (0..p)
            .map(|_| {
                let len = rng.range_usize(1, 25);
                (0..len).map(|_| rng.range_u64(0, universe)).collect()
            })
            .collect();
        let vals: Vec<Vec<f64>> = ids
            .iter()
            .map(|v| v.iter().map(|_| rng.range_f64(0.0, 9.0)).collect())
            .collect();
        let res = World::new().run(p, move |rank| {
            let me = rank.rank();
            let handle = GsHandle::setup(rank, &ids[me]);
            let flags = handle.shared_slot_flags();
            let mult = handle.multiplicities(rank, GsMethod::PairwiseExchange);
            let mut after = vals[me].clone();
            handle.gs_op(rank, &mut after, GsOp::Add, GsMethod::PairwiseExchange);
            for (i, &f) in flags.iter().enumerate() {
                assert_eq!(
                    f,
                    mult[i] > 1.0,
                    "rank {me} slot {i}: flag {f}, multiplicity {}",
                    mult[i]
                );
                if !f {
                    // interior slots are bitwise untouched by any combine
                    assert_eq!(after[i], vals[me][i], "rank {me} slot {i} changed");
                }
            }
            flags.len()
        });
        assert_eq!(res.results.len(), p);
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn mesh_face_exchange_multiplicities() {
    // On a periodic conforming mesh, gs_op(Add) of all-ones over the
    // face-point gids yields each point's sharer count: interior face
    // points 2, edge points 4, corner points 8 (the face array lists each
    // element's own copy once per incident face, so multiply accordingly).
    let cfg = MeshConfig {
        n: 3,
        proc_dims: [2, 1, 1],
        local_elems: [1, 2, 2],
        periodic: true,
    };
    let p = cfg.ranks();
    let cfg2 = cfg.clone();
    let res = World::new().run(p, move |rank| {
        let mesh = RankMesh::new(cfg2.clone(), rank.rank());
        let ids = mesh.face_point_gids();
        let handle = GsHandle::setup(rank, &ids);
        handle.multiplicities(rank, GsMethod::PairwiseExchange)
    });
    // Verify against a serial count of gid occurrences.
    let mut counts: HashMap<u64, f64> = HashMap::new();
    let meshes: Vec<RankMesh> = (0..p).map(|r| RankMesh::new(cfg.clone(), r)).collect();
    for mesh in &meshes {
        for gid in mesh.face_point_gids() {
            *counts.entry(gid).or_insert(0.0) += 1.0;
        }
    }
    for (r, mesh) in meshes.iter().enumerate() {
        let ids = mesh.face_point_gids();
        for (i, gid) in ids.iter().enumerate() {
            assert_eq!(res.results[r][i], counts[gid], "rank {r} slot {i}");
        }
    }
    // sanity on the expected multiplicity classes
    let n2 = cfg.n * cfg.n;
    let face_center_mult = res.results[0][n2 / 2]; // center of element 0 face 0
    assert_eq!(face_center_mult, 2.0);
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn methods_agree_on_mesh_volume_ids() {
    let cfg = MeshConfig {
        n: 4,
        proc_dims: [2, 2, 1],
        local_elems: [1, 1, 2],
        periodic: true,
    };
    let p = cfg.ranks();
    let mut baselines: Option<Vec<Vec<f64>>> = None;
    for method in GsMethod::ALL {
        let cfg2 = cfg.clone();
        let res = World::new().run(p, move |rank| {
            let mesh = RankMesh::new(cfg2.clone(), rank.rank());
            let ids = mesh.volume_point_gids();
            let mut vals: Vec<f64> = ids.iter().map(|&g| (g % 17) as f64 - 8.0).collect();
            let handle = GsHandle::setup(rank, &ids);
            handle.gs_op(rank, &mut vals, GsOp::Add, method);
            vals
        });
        match &baselines {
            None => baselines = Some(res.results),
            Some(base) => {
                for (r, got) in res.results.iter().enumerate() {
                    for (a, b) in got.iter().zip(&base[r]) {
                        assert!((a - b).abs() < 1e-9, "{method:?} disagrees: {a} vs {b}");
                    }
                }
            }
        }
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn gs_op_many_equals_repeated_gs_op() {
    let p = 4;
    let cfg = MeshConfig::for_ranks(p, 8, 4, true);
    for method in GsMethod::ALL {
        let cfg2 = cfg.clone();
        let res = World::new().run(p, move |rank| {
            let mesh = RankMesh::new(cfg2.clone(), rank.rank());
            let ids = mesh.face_exchange_gids();
            let handle = GsHandle::setup(rank, &ids);
            let mk = |salt: usize| -> Vec<f64> {
                ids.iter()
                    .enumerate()
                    .map(|(i, &g)| ((g as usize * 7 + i + salt) % 13) as f64 - 6.0)
                    .collect()
            };
            // reference: three separate gs_ops
            let mut ra = mk(1);
            let mut rb = mk(2);
            let mut rc = mk(3);
            handle.gs_op(rank, &mut ra, GsOp::Add, method);
            handle.gs_op(rank, &mut rb, GsOp::Add, method);
            handle.gs_op(rank, &mut rc, GsOp::Add, method);
            // bundled: one gs_op_many
            let mut ma = mk(1);
            let mut mb = mk(2);
            let mut mc = mk(3);
            handle.gs_op_many(rank, &mut [&mut ma, &mut mb, &mut mc], GsOp::Add, method);
            (ra == ma) && (rb == mb) && (rc == mc)
        });
        assert!(
            res.results.iter().all(|&ok| ok),
            "{method:?}: gs_op_many diverged from gs_op"
        );
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn gs_op_many_sends_fewer_messages_than_repeated_gs_op() {
    let p = 4;
    let cfg = MeshConfig::for_ranks(p, 8, 4, true);
    let count_isends = |bundled: bool| {
        let cfg2 = cfg.clone();
        let res = World::new().run(p, move |rank| {
            let mesh = RankMesh::new(cfg2.clone(), rank.rank());
            let ids = mesh.face_exchange_gids();
            let handle = GsHandle::setup(rank, &ids);
            let mut a = vec![1.0; ids.len()];
            let mut b = vec![2.0; ids.len()];
            if bundled {
                handle.gs_op_many(
                    rank,
                    &mut [&mut a, &mut b],
                    GsOp::Add,
                    GsMethod::PairwiseExchange,
                );
            } else {
                handle.gs_op(rank, &mut a, GsOp::Add, GsMethod::PairwiseExchange);
                handle.gs_op(rank, &mut b, GsOp::Add, GsMethod::PairwiseExchange);
            }
        });
        res.stats
            .iter()
            .map(|st| {
                st.sites
                    .iter()
                    .filter(|(k, _)| k.op == simmpi::MpiOp::Isend)
                    .map(|(_, s)| s.calls)
                    .sum::<u64>()
            })
            .sum::<u64>()
    };
    let separate = count_isends(false);
    let bundled = count_isends(true);
    assert_eq!(
        bundled * 2,
        separate,
        "bundled {bundled} vs separate {separate}"
    );
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn gs_op_many_empty_and_single_field() {
    let res = World::new().run(2, |rank| {
        let ids = vec![1u64, 2, 1];
        let handle = GsHandle::setup(rank, &ids);
        handle.gs_op_many(rank, &mut [], GsOp::Add, GsMethod::PairwiseExchange);
        let mut v = vec![1.0, 2.0, 3.0];
        let mut single = vec![1.0, 2.0, 3.0];
        handle.gs_op_many(rank, &mut [&mut v], GsOp::Add, GsMethod::PairwiseExchange);
        handle.gs_op(rank, &mut single, GsOp::Add, GsMethod::PairwiseExchange);
        v == single
    });
    assert!(res.results.iter().all(|&ok| ok));
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn handle_stats_report_topology() {
    let res = World::new().run(2, |rank| {
        let ids = if rank.rank() == 0 {
            vec![1, 2, 3, 3]
        } else {
            vec![3, 4]
        };
        let handle = GsHandle::setup(rank, &ids);
        handle.stats()
    });
    let s0 = res.results[0];
    assert_eq!(s0.nlocal, 4);
    assert_eq!(s0.distinct_local, 3);
    assert_eq!(s0.neighbors, 1);
    assert_eq!(s0.shared_slots, 1);
    assert_eq!(s0.total_global, 4); // ids 1,2,3,4
    let s1 = res.results[1];
    assert_eq!(s1.neighbors, 1);
    assert_eq!(s1.total_global, 4);
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn ranks_with_no_ids_still_participate() {
    // rank 1 holds nothing; setup and gs_op are collectives, so it must
    // take part without deadlocking or corrupting anyone's data
    for method in GsMethod::ALL {
        let res = World::new().run(3, move |rank| {
            let ids: Vec<u64> = match rank.rank() {
                0 => vec![5, 6],
                1 => Vec::new(),
                _ => vec![6, 7],
            };
            let handle = GsHandle::setup(rank, &ids);
            let mut vals: Vec<f64> = ids.iter().map(|&g| g as f64).collect();
            handle.gs_op(rank, &mut vals, GsOp::Add, method);
            vals
        });
        assert_eq!(res.results[0], vec![5.0, 12.0], "{method:?}");
        assert!(res.results[1].is_empty());
        assert_eq!(res.results[2], vec![12.0, 7.0], "{method:?}");
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn crystal_router_self_only_messages() {
    let res = World::new().run(4, |rank| {
        let me = rank.rank();
        rank.crystal_router(vec![(me, vec![me as u64 * 3])])
    });
    for (r, got) in res.results.iter().enumerate() {
        assert_eq!(got, &vec![(r, vec![r as u64 * 3])]);
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn crystal_router_models_more_network_time_than_pairwise() {
    // The router moves every payload through log2(P) hops (plus routing
    // headers); direct pairwise sends it once. Under a network model the
    // modelled time must reflect that, whatever the wall clock says.
    use simmpi::NetworkModel;
    let p = 8;
    let cfg = MeshConfig::for_ranks(p, 27, 6, true);
    let modeled = |method: GsMethod| {
        let cfg2 = cfg.clone();
        let res = World::with_network(NetworkModel::qdr_infiniband()).run(p, move |rank| {
            let mesh = RankMesh::new(cfg2.clone(), rank.rank());
            let ids = mesh.face_exchange_gids();
            let handle = GsHandle::setup(rank, &ids);
            let before = rank.modeled_time_s();
            let mut vals = vec![1.0; ids.len()];
            for _ in 0..5 {
                handle.gs_op(rank, &mut vals, GsOp::Add, method);
            }
            rank.modeled_time_s() - before
        });
        res.results.iter().sum::<f64>()
    };
    let pw = modeled(GsMethod::PairwiseExchange);
    let cr = modeled(GsMethod::CrystalRouter);
    assert!(cr > pw, "crystal modelled {cr} should exceed pairwise {pw}");
}

#[test]
#[cfg_attr(
    miri,
    ignore = "multi-rank World exchange; too slow under the interpreter"
)]
fn gs_setup_records_communication() {
    let res = World::new().run(4, |rank| {
        let ids = vec![rank.rank() as u64, 42];
        let _ = GsHandle::setup(rank, &ids);
    });
    for st in &res.stats {
        // discovery uses alltoallv under the gs_setup context
        let found = st
            .sites
            .iter()
            .any(|(k, _)| k.context == "gs_setup" && k.op == simmpi::MpiOp::Alltoallv);
        assert!(found, "rank {} missing gs_setup alltoallv record", st.rank);
    }
}
