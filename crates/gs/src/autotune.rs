//! Startup auto-tuning of the exchange method.
//!
//! "At the beginning of each CMT-nek and CMT-bone simulation, three
//! gather-scatter methods are evaluated to determine which one performs
//! the best for the given problem setup and machine" (paper §VI). This
//! module times each method over a few trial `gs_op(Add)` calls, reduces
//! the per-rank timings to world-wide average/min/max (the three columns
//! of the paper's Fig. 7), and picks the method with the smallest average.

use std::time::Instant;

use simmpi::{Rank, ReduceOp};

use crate::handle::GsHandle;
use crate::ops::{GsMethod, GsOp};

/// Options controlling the tuning pass.
#[derive(Debug, Clone, Copy)]
pub struct AutotuneOptions {
    /// Timed trials per method (after one untimed warmup call).
    pub trials: usize,
    /// Skip the all_reduce method when the dense vector would exceed this
    /// many entries. The paper's Fig. 7 only tabulates pairwise and
    /// crystal router because "all_reduce is too expensive for both
    /// mini-apps for this problem setup"; at scale it is also too
    /// expensive to *try* (the vector is the entire global id universe),
    /// so gslib-style implementations bound it.
    pub allreduce_limit: u64,
}

impl Default for AutotuneOptions {
    fn default() -> Self {
        AutotuneOptions {
            trials: 5,
            allreduce_limit: 1 << 21, // 2M entries = 16 MiB per rank
        }
    }
}

/// World-wide timing of one method (one row of the paper's Fig. 7 table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodTiming {
    /// The method measured.
    pub method: GsMethod,
    /// Average per-call seconds over ranks.
    pub avg_s: f64,
    /// Fastest rank's per-call seconds.
    pub min_s: f64,
    /// Slowest rank's per-call seconds.
    pub max_s: f64,
    /// True if the method was not run (all_reduce beyond the size limit).
    pub skipped: bool,
}

/// The full tuning outcome.
#[derive(Debug, Clone)]
pub struct AutotuneReport {
    /// The winning (smallest average time) method.
    pub chosen: GsMethod,
    /// Per-method timings, in [`GsMethod::ALL`] order.
    pub timings: Vec<MethodTiming>,
}

impl AutotuneReport {
    /// Timing row for one method.
    pub fn timing(&self, method: GsMethod) -> &MethodTiming {
        self.timings
            .iter()
            .find(|t| t.method == method)
            .expect("all methods present")
    }

    /// Render the Fig. 7-style table body (method, avg, min, max).
    pub fn table(&self, label: &str) -> String {
        let mut out = String::new();
        for t in &self.timings {
            if t.skipped {
                out.push_str(&format!(
                    "{label:10} | {:18} | {:>12} | {:>12} | {:>12}\n",
                    t.method.name(),
                    "skipped",
                    "-",
                    "-"
                ));
            } else {
                out.push_str(&format!(
                    "{label:10} | {:18} | {:>12.9} | {:>12.9} | {:>12.9}\n",
                    t.method.name(),
                    t.avg_s,
                    t.min_s,
                    t.max_s
                ));
            }
        }
        out
    }
}

/// Time all three methods on `handle` and pick the fastest.
///
/// Collective; every rank receives the identical report (timings are
/// allreduced, and the choice is a deterministic function of them).
pub fn autotune(rank: &mut Rank, handle: &GsHandle, opts: AutotuneOptions) -> AutotuneReport {
    let mut values = vec![1.0f64; handle.nlocal()];
    let mut timings = Vec::with_capacity(GsMethod::ALL.len());
    for method in GsMethod::ALL {
        if method == GsMethod::AllReduce && handle.total_global_ids() > opts.allreduce_limit {
            timings.push(MethodTiming {
                method,
                avg_s: f64::INFINITY,
                min_s: f64::INFINITY,
                max_s: f64::INFINITY,
                skipped: true,
            });
            continue;
        }
        // Warmup (first-touch allocation, lazy neighbor paths).
        handle.gs_op(rank, &mut values, GsOp::Add, method);
        // Rank-synchronized timed trials.
        rank.barrier();
        let start = Instant::now();
        for _ in 0..opts.trials.max(1) {
            handle.gs_op(rank, &mut values, GsOp::Add, method);
        }
        let per_call = start.elapsed().as_secs_f64() / opts.trials.max(1) as f64;
        // Reduce to the world-wide Fig. 7 columns.
        let avg = rank.allreduce_scalar(per_call, ReduceOp::Sum) / rank.size() as f64;
        let min = rank.allreduce_scalar(per_call, ReduceOp::Min);
        let max = rank.allreduce_scalar(per_call, ReduceOp::Max);
        timings.push(MethodTiming {
            method,
            avg_s: avg,
            min_s: min,
            max_s: max,
            skipped: false,
        });
        // values grew exponentially under repeated Add; reset to keep the
        // floats healthy for the next method.
        values.fill(1.0);
    }
    let chosen = timings
        .iter()
        .filter(|t| !t.skipped)
        .min_by(|a, b| a.avg_s.total_cmp(&b.avg_s))
        .expect("at least one method must run")
        .method;
    AutotuneReport { chosen, timings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::World;

    /// Tiny world: 2 ranks sharing one id.
    #[test]
    #[cfg_attr(
        miri,
        ignore = "timed kernel reps across a World; meaningless and slow under the interpreter"
    )]
    fn autotune_runs_and_agrees_across_ranks() {
        let res = World::new().run(4, |rank| {
            // ids: rank-private ids plus one id shared by all
            let ids = vec![1000 + rank.rank() as u64, 7, 2000 + rank.rank() as u64];
            let handle = GsHandle::setup(rank, &ids);
            let report = autotune(
                rank,
                &handle,
                AutotuneOptions {
                    trials: 2,
                    allreduce_limit: 1 << 20,
                },
            );
            (report.chosen, report.timings.len())
        });
        let first = res.results[0].0;
        assert!(res.results.iter().all(|r| r.0 == first));
        assert!(res.results.iter().all(|r| r.1 == 3));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "timed kernel reps across a World; meaningless and slow under the interpreter"
    )]
    fn allreduce_skipped_beyond_limit() {
        let res = World::new().run(2, |rank| {
            let ids: Vec<u64> = (0..100).map(|i| i + 100 * rank.rank() as u64).collect();
            let handle = GsHandle::setup(rank, &ids);
            let report = autotune(
                rank,
                &handle,
                AutotuneOptions {
                    trials: 1,
                    allreduce_limit: 10,
                },
            );
            report.timing(GsMethod::AllReduce).skipped
        });
        assert!(res.results.iter().all(|&s| s));
    }
}
