//! `gs_op`: the gather–scatter operation with the three exchange methods,
//! in both blocking and split-phase (start/finish) form.

use simmpi::{DiscardList, Rank, RecvRequest, Tag};

use crate::handle::{GsHandle, PlanBufs};

/// The combining operator of a gather–scatter (the ops gslib offers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GsOp {
    /// Sum over all occurrences (the `dssum` / flux-accumulation op).
    Add,
    /// Product over all occurrences.
    Mul,
    /// Minimum over all occurrences.
    Min,
    /// Maximum over all occurrences.
    Max,
}

impl GsOp {
    /// The operator's identity element.
    #[inline]
    pub fn identity(self) -> f64 {
        match self {
            GsOp::Add => 0.0,
            GsOp::Mul => 1.0,
            GsOp::Min => f64::INFINITY,
            GsOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Combine two values.
    #[inline]
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            GsOp::Add => a + b,
            GsOp::Mul => a * b,
            GsOp::Min => a.min(b),
            GsOp::Max => a.max(b),
        }
    }
}

/// The three exchange strategies evaluated at mini-app startup
/// (paper §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GsMethod {
    /// Direct isend/irecv/waitall with every touching neighbor.
    PairwiseExchange,
    /// Hypercube-staged crystal router (`log2 P` bundled stages).
    CrystalRouter,
    /// Allreduce of a dense vector over the global id universe.
    AllReduce,
}

impl GsMethod {
    /// All three methods in the paper's order.
    pub const ALL: [GsMethod; 3] = [
        GsMethod::PairwiseExchange,
        GsMethod::CrystalRouter,
        GsMethod::AllReduce,
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            GsMethod::PairwiseExchange => "pairwise exchange",
            GsMethod::CrystalRouter => "crystal router",
            GsMethod::AllReduce => "all_reduce",
        }
    }

    /// Context label under which the method's traffic is recorded.
    pub fn context(self) -> &'static str {
        match self {
            GsMethod::PairwiseExchange => "gs:pairwise",
            GsMethod::CrystalRouter => "gs:crystal",
            GsMethod::AllReduce => "gs:allreduce",
        }
    }

    /// Whether [`GsHandle::gs_op_start`] leaves real communication in
    /// flight for [`GsHandle::gs_op_finish`] to drain. Pairwise exchange
    /// posts non-blocking sends/receives and returns; the collective
    /// methods have no non-blocking form, so their `start` performs the
    /// full exchange and `finish` only scatters.
    pub fn split_phase_overlaps(self) -> bool {
        matches!(self, GsMethod::PairwiseExchange)
    }
}

/// Tag space for split-phase pairwise exchanges: a fixed prefix plus a
/// per-operation sequence number ([`Rank::next_user_seq`]), so several
/// in-flight exchanges — even over the same neighbor topology — can
/// never cross-match, whatever order they are finished in.
const SPLIT_TAG_BASE: Tag = 0x65 << 40; // 'gs' prefix, below the user-tag limit
const SPLIT_SEQ_MASK: Tag = (1 << 40) - 1;

/// An in-flight split-phase gather–scatter: the token returned by
/// [`GsHandle::gs_op_start`] and consumed by [`GsHandle::gs_op_finish`].
///
/// Owns the locally-combined per-group values and, for the pairwise
/// method, the posted receive requests. Dropping it without finishing
/// discards the operation's result, and — via the rank's
/// [`DiscardList`] — cancels its in-flight neighbor messages so they
/// cannot cross-match a later exchange; the `#[must_use]` lint flags
/// the started-but-never-finished call sites at compile time.
#[must_use = "a started gather–scatter must be finished with gs_op_finish \
              (dropping it discards the exchange)"]
#[derive(Debug)]
pub struct GsPending {
    /// Number of value arrays bundled in this exchange.
    k: usize,
    op: GsOp,
    method: GsMethod,
    /// Locally combined values, laid out `[group][field]`.
    combined: Vec<f64>,
    /// Posted receives, one per neighbor in neighbor order (pairwise
    /// method only; empty for the collective methods).
    reqs: Vec<RecvRequest>,
    /// The owning rank's discard list, for cancelling in-flight
    /// messages if the operation is dropped unfinished.
    discards: DiscardList,
    /// The verifier's exchange-epoch id, when the world carries one.
    /// Closed by `gs_op_finish`; an epoch still open at finalize is an
    /// abandoned exchange.
    verify_epoch: Option<u64>,
}

impl GsPending {
    /// Number of value arrays bundled in this exchange.
    pub fn num_fields(&self) -> usize {
        self.k
    }

    /// The combining operator of this exchange.
    pub fn op(&self) -> GsOp {
        self.op
    }

    /// The exchange method this operation was started with.
    pub fn method(&self) -> GsMethod {
        self.method
    }
}

impl Drop for GsPending {
    /// Abandoning an unfinished exchange must not poison later matching:
    /// register every still-posted receive's `(source, tag)` with the
    /// rank's [`DiscardList`] so the in-flight payloads are consumed
    /// silently instead of lingering as match candidates for a future
    /// exchange. `gs_op_finish` empties `reqs` before dropping, making
    /// the normal path a no-op.
    fn drop(&mut self) {
        for req in &self.reqs {
            self.discards.cancel(req.src, req.tag, 1);
        }
    }
}

impl GsHandle {
    /// Combine `values` over every occurrence of each global id (local and
    /// remote) and write the combined result back to every local slot.
    ///
    /// Collective over the world the handle was set up in; all ranks must
    /// pass the same `op` and `method`.
    ///
    /// Implemented as [`GsHandle::gs_op_start`] immediately followed by
    /// [`GsHandle::gs_op_finish`] — the blocking form is the degenerate
    /// split-phase call with an empty overlap window.
    ///
    /// # Panics
    /// Panics if `values.len() != self.nlocal()`.
    pub fn gs_op(&self, rank: &mut Rank, values: &mut [f64], op: GsOp, method: GsMethod) {
        let pending = self.gs_op_start(rank, &[&*values], op, method);
        self.gs_op_finish(rank, pending, &mut [values]);
    }

    /// Vector gather–scatter: apply the same combine to `k` value arrays
    /// with a *single* bundled exchange per neighbor (gslib's vector
    /// mode). Semantically identical to `k` successive [`GsHandle::gs_op`]
    /// calls, but the per-neighbor payload is `k` times larger and the
    /// message count `k` times smaller — the trade the mini-app's
    /// multi-variable exchanges (5 conserved fields) care about.
    ///
    /// # Panics
    /// Panics if any array's length differs from `self.nlocal()`.
    pub fn gs_op_many(
        &self,
        rank: &mut Rank,
        fields: &mut [&mut [f64]],
        op: GsOp,
        method: GsMethod,
    ) {
        if fields.is_empty() {
            return;
        }
        // `gs_op_start` borrows the fields read-only via `AsRef`, so the
        // `&mut` slices pass straight through — no per-call view vector.
        let pending = self.gs_op_start(rank, &*fields, op, method);
        self.gs_op_finish(rank, pending, fields);
    }

    /// Start a split-phase gather–scatter over `fields`: combine local
    /// occurrences per group and *post* the exchange, returning without
    /// waiting for any remote data. The caller may run unrelated compute
    /// while messages are in flight, then complete the operation with
    /// [`GsHandle::gs_op_finish`] — the isend/irecv/compute/wait pipeline
    /// the mini-app uses to hide face-exchange latency behind its volume
    /// kernels.
    ///
    /// With the pairwise method the receives are genuinely outstanding
    /// when this returns. The crystal-router and all_reduce methods have
    /// no non-blocking form, so their `start` runs the full exchange and
    /// the matching `finish` only scatters
    /// ([`GsMethod::split_phase_overlaps`]).
    ///
    /// The input arrays are *not* modified; the combined results are
    /// written back by `finish`. Several operations may be in flight at
    /// once (tags carry a sequence number), but every started operation
    /// must be finished, all ranks must start and finish the same
    /// operations in the same order, and the handle must outlive them.
    ///
    /// # Panics
    /// Panics if any array's length differs from `self.nlocal()`.
    pub fn gs_op_start<S: AsRef<[f64]>>(
        &self,
        rank: &mut Rank,
        fields: &[S],
        op: GsOp,
        method: GsMethod,
    ) -> GsPending {
        let k = fields.len();
        assert!(k > 0, "gs_op_start with no fields");
        for f in fields {
            assert_eq!(
                f.as_ref().len(),
                self.nlocal,
                "gs_op_start on values of length {}, handle expects {}",
                f.as_ref().len(),
                self.nlocal
            );
        }
        // Open a verifier exchange epoch over the shared slots before
        // any message moves, so every in-window hazard is attributable.
        let verify_epoch = if rank.verifying() {
            rank.verify_exchange_start(self.exchanged_gids(), method.context())
        } else {
            None
        };
        // Gather: combined values laid out [group][field] so one group's
        // k values are contiguous in the exchange payloads. The buffer
        // comes off the handle's persistent-plan stack and goes back on
        // it in `gs_op_finish`, so the steady state recycles capacity.
        let ng = self.groups.len();
        let mut combined = self.bufs.borrow_mut().combined.pop().unwrap_or_default();
        combined.clear();
        combined.resize(ng * k, 0.0);
        for (gi, g) in self.groups.iter().enumerate() {
            for (fi, f) in fields.iter().enumerate() {
                let f = f.as_ref();
                let mut acc = f[g.local_indices[0] as usize];
                for &li in &g.local_indices[1..] {
                    acc = op.combine(acc, f[li as usize]);
                }
                combined[gi * k + fi] = acc;
            }
        }

        let mut reqs = self.bufs.borrow_mut().reqs.pop().unwrap_or_default();
        reqs.clear();
        match method {
            GsMethod::PairwiseExchange => {
                let tag = SPLIT_TAG_BASE | (rank.next_user_seq() & SPLIT_SEQ_MASK);
                rank.with_subcontext(GsMethod::PairwiseExchange.context(), |rank| {
                    reqs.extend(self.neighbors.iter().map(|nl| rank.irecv(nl.rank, tag)));
                    for nl in &self.neighbors {
                        // Pack the neighbor's plan (its sorted group index
                        // list) into a pooled payload: the buffer moves
                        // into the envelope and recycles at the receiver.
                        let mut payload = rank.pooled_vec::<f64>();
                        for &gi in &nl.groups {
                            payload
                                .extend_from_slice(&combined[gi as usize * k..gi as usize * k + k]);
                        }
                        rank.isend_pooled(nl.rank, tag, payload);
                    }
                })
            }
            GsMethod::CrystalRouter => self.exchange_crystal(rank, &mut combined, k, op),
            GsMethod::AllReduce => self.exchange_allreduce(rank, &mut combined, k, op),
        };

        GsPending {
            k,
            op,
            method,
            combined,
            reqs,
            discards: rank.discard_list(),
            verify_epoch,
        }
    }

    /// Finish a split-phase gather–scatter started by
    /// [`GsHandle::gs_op_start`]: drain the posted receives (blocking time
    /// is attributed to `MPI_Wait`, as mpiP attributes it in the paper's
    /// Fig. 9), fold remote contributions in — always in neighbor order,
    /// so results are bitwise identical to the blocking path — and scatter
    /// the combined value to every local slot of every field.
    ///
    /// # Panics
    /// Panics if `fields` does not match the start call in count or
    /// length.
    pub fn gs_op_finish(&self, rank: &mut Rank, mut pending: GsPending, fields: &mut [&mut [f64]]) {
        let k = pending.k;
        let op = pending.op;
        let method = pending.method;
        // Take the buffers out so the subsequent drop of `pending` sees
        // an empty request list and cancels nothing.
        let mut combined = std::mem::take(&mut pending.combined);
        let mut reqs = std::mem::take(&mut pending.reqs);
        let verify_epoch = pending.verify_epoch;
        drop(pending);
        assert_eq!(
            fields.len(),
            k,
            "gs_op_finish with {} fields, started with {k}",
            fields.len()
        );
        for f in fields.iter() {
            assert_eq!(f.len(), self.nlocal, "gs_op_finish length mismatch");
        }

        if method == GsMethod::PairwiseExchange {
            rank.with_subcontext(GsMethod::PairwiseExchange.context(), |rank| {
                for (nl, &req) in self.neighbors.iter().zip(reqs.iter()) {
                    // The pooled receive adopts the sender's buffer; its
                    // guard parks it in this rank's pool when dropped.
                    let got = rank.wait_recv_pooled::<f64>(req);
                    debug_assert_eq!(got.len(), nl.groups.len() * k);
                    for (slot, &gi) in nl.groups.iter().enumerate() {
                        for fi in 0..k {
                            let c = &mut combined[gi as usize * k + fi];
                            *c = op.combine(*c, got[slot * k + fi]);
                        }
                    }
                }
            });
        }

        // Scatter: write the combined value to every local slot.
        for (gi, g) in self.groups.iter().enumerate() {
            for (fi, f) in fields.iter_mut().enumerate() {
                let v = combined[gi * k + fi];
                for &li in &g.local_indices {
                    f[li as usize] = v;
                }
            }
        }
        // The exchange's effects are fully landed: close the epoch.
        rank.verify_exchange_finish(verify_epoch);
        // Return the operation's staging buffers to the persistent plan.
        reqs.clear();
        let mut bufs = self.bufs.borrow_mut();
        bufs.combined.push(combined);
        bufs.reqs.push(reqs);
    }

    /// Crystal-router exchange: the per-neighbor payloads, bundled
    /// through the hypercube router. Fully synchronous — used by `start`
    /// with a no-op communication `finish`.
    fn exchange_crystal(&self, rank: &mut Rank, combined: &mut [f64], k: usize, op: GsOp) {
        rank.with_subcontext(GsMethod::CrystalRouter.context(), |rank| {
            let mut bufs = self.bufs.borrow_mut();
            let PlanBufs {
                outgoing, arrived, ..
            } = &mut *bufs;
            // Repack into the outgoing list, recycling the payload
            // vectors that arrived on the *previous* call (the neighbor
            // relation is symmetric, so counts and sizes balance and the
            // steady state allocates nothing).
            debug_assert!(outgoing.is_empty());
            for nl in &self.neighbors {
                let mut payload = arrived.pop().map(|(_, v)| v).unwrap_or_default();
                payload.clear();
                for &gi in &nl.groups {
                    payload.extend_from_slice(&combined[gi as usize * k..gi as usize * k + k]);
                }
                outgoing.push((nl.rank, payload));
            }
            arrived.clear();
            rank.crystal_router_into(outgoing, arrived);
            debug_assert_eq!(arrived.len(), self.neighbors.len());
            for (src, payload) in arrived.iter() {
                let nl = self
                    .neighbors
                    .iter()
                    .find(|nl| nl.rank == *src)
                    .expect("crystal router delivered from a non-neighbor");
                debug_assert_eq!(payload.len(), nl.groups.len() * k);
                for (slot, &gi) in nl.groups.iter().enumerate() {
                    for fi in 0..k {
                        let c = &mut combined[gi as usize * k + fi];
                        *c = op.combine(*c, payload[slot * k + fi]);
                    }
                }
            }
            // `arrived` keeps its payload vectors for the next repack.
        });
    }

    /// All_reduce onto a big vector: scatter combined values into a dense
    /// vector over the compact global id universe, allreduce it with the
    /// op, read back. "Too expensive for both mini-apps" at the paper's
    /// problem setup — but exact, and competitive only for tiny worlds.
    /// Fully synchronous — used by `start` with a no-op communication
    /// `finish`.
    fn exchange_allreduce(&self, rank: &mut Rank, combined: &mut [f64], k: usize, op: GsOp) {
        rank.with_subcontext(GsMethod::AllReduce.context(), |rank| {
            let total = self.total_compact as usize;
            // The dense vector is part of the persistent plan: cleared
            // and refilled in place, reduced in place, never reallocated.
            let mut bufs = self.bufs.borrow_mut();
            let dense = &mut bufs.dense;
            dense.clear();
            dense.resize(total * k, op.identity());
            for (gi, g) in self.groups.iter().enumerate() {
                let base = g.compact as usize * k;
                dense[base..base + k].copy_from_slice(&combined[gi * k..gi * k + k]);
            }
            rank.allreduce_in_place(dense, |a, b| *a = op.combine(*a, *b));
            for (gi, g) in self.groups.iter().enumerate() {
                let base = g.compact as usize * k;
                combined[gi * k..gi * k + k].copy_from_slice(&dense[base..base + k]);
            }
        });
    }
}
