//! `gs_op`: the gather–scatter operation with the three exchange methods.

use simmpi::Rank;

use crate::handle::GsHandle;

/// The combining operator of a gather–scatter (the ops gslib offers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GsOp {
    /// Sum over all occurrences (the `dssum` / flux-accumulation op).
    Add,
    /// Product over all occurrences.
    Mul,
    /// Minimum over all occurrences.
    Min,
    /// Maximum over all occurrences.
    Max,
}

impl GsOp {
    /// The operator's identity element.
    #[inline]
    pub fn identity(self) -> f64 {
        match self {
            GsOp::Add => 0.0,
            GsOp::Mul => 1.0,
            GsOp::Min => f64::INFINITY,
            GsOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Combine two values.
    #[inline]
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            GsOp::Add => a + b,
            GsOp::Mul => a * b,
            GsOp::Min => a.min(b),
            GsOp::Max => a.max(b),
        }
    }
}

/// The three exchange strategies evaluated at mini-app startup
/// (paper §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GsMethod {
    /// Direct isend/irecv/waitall with every touching neighbor.
    PairwiseExchange,
    /// Hypercube-staged crystal router (`log2 P` bundled stages).
    CrystalRouter,
    /// Allreduce of a dense vector over the global id universe.
    AllReduce,
}

impl GsMethod {
    /// All three methods in the paper's order.
    pub const ALL: [GsMethod; 3] = [
        GsMethod::PairwiseExchange,
        GsMethod::CrystalRouter,
        GsMethod::AllReduce,
    ];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            GsMethod::PairwiseExchange => "pairwise exchange",
            GsMethod::CrystalRouter => "crystal router",
            GsMethod::AllReduce => "all_reduce",
        }
    }

    /// Context label under which the method's traffic is recorded.
    pub fn context(self) -> &'static str {
        match self {
            GsMethod::PairwiseExchange => "gs:pairwise",
            GsMethod::CrystalRouter => "gs:crystal",
            GsMethod::AllReduce => "gs:allreduce",
        }
    }
}

impl GsHandle {
    /// Combine `values` over every occurrence of each global id (local and
    /// remote) and write the combined result back to every local slot.
    ///
    /// Collective over the world the handle was set up in; all ranks must
    /// pass the same `op` and `method`.
    ///
    /// # Panics
    /// Panics if `values.len() != self.nlocal()`.
    pub fn gs_op(&self, rank: &mut Rank, values: &mut [f64], op: GsOp, method: GsMethod) {
        assert_eq!(
            values.len(),
            self.nlocal,
            "gs_op on values of length {}, handle expects {}",
            values.len(),
            self.nlocal
        );
        // Gather: combine local occurrences per group.
        let mut combined: Vec<f64> = self
            .groups
            .iter()
            .map(|g| {
                let mut acc = values[g.local_indices[0] as usize];
                for &li in &g.local_indices[1..] {
                    acc = op.combine(acc, values[li as usize]);
                }
                acc
            })
            .collect();

        // Exchange: fold every remote sharer's locally-combined value in.
        match method {
            GsMethod::PairwiseExchange => self.exchange_pairwise(rank, &mut combined, op),
            GsMethod::CrystalRouter => self.exchange_crystal(rank, &mut combined, op),
            GsMethod::AllReduce => self.exchange_allreduce(rank, &mut combined, op),
        }

        // Scatter: write the combined value to every local slot.
        for (g, &v) in self.groups.iter().zip(&combined) {
            for &li in &g.local_indices {
                values[li as usize] = v;
            }
        }
    }

    /// Vector gather–scatter: apply the same combine to `k` value arrays
    /// with a *single* bundled exchange per neighbor (gslib's vector
    /// mode). Semantically identical to `k` successive [`GsHandle::gs_op`]
    /// calls, but the per-neighbor payload is `k` times larger and the
    /// message count `k` times smaller — the trade the mini-app's
    /// multi-variable exchanges (5 conserved fields) care about.
    ///
    /// # Panics
    /// Panics if any array's length differs from `self.nlocal()`.
    pub fn gs_op_many(
        &self,
        rank: &mut Rank,
        fields: &mut [&mut [f64]],
        op: GsOp,
        method: GsMethod,
    ) {
        let k = fields.len();
        if k == 0 {
            return;
        }
        for f in fields.iter() {
            assert_eq!(f.len(), self.nlocal, "gs_op_many length mismatch");
        }
        // Gather: combined values laid out [group][field] so one group's
        // k values are contiguous in the exchange payloads.
        let ng = self.groups.len();
        let mut combined = vec![0.0f64; ng * k];
        for (gi, g) in self.groups.iter().enumerate() {
            for (fi, f) in fields.iter().enumerate() {
                let mut acc = f[g.local_indices[0] as usize];
                for &li in &g.local_indices[1..] {
                    acc = op.combine(acc, f[li as usize]);
                }
                combined[gi * k + fi] = acc;
            }
        }

        match method {
            GsMethod::PairwiseExchange => {
                const TAG: u64 = 0x6501;
                rank.with_subcontext(GsMethod::PairwiseExchange.context(), |rank| {
                    let reqs: Vec<_> = self
                        .neighbors
                        .iter()
                        .map(|nl| rank.irecv(nl.rank, TAG))
                        .collect();
                    for nl in &self.neighbors {
                        let mut payload = Vec::with_capacity(nl.groups.len() * k);
                        for &gi in &nl.groups {
                            payload
                                .extend_from_slice(&combined[gi as usize * k..gi as usize * k + k]);
                        }
                        rank.isend_vec(nl.rank, TAG, payload);
                    }
                    for (nl, req) in self.neighbors.iter().zip(reqs) {
                        let got: Vec<f64> = rank.wait_recv(req);
                        debug_assert_eq!(got.len(), nl.groups.len() * k);
                        for (slot, &gi) in nl.groups.iter().enumerate() {
                            for fi in 0..k {
                                let c = &mut combined[gi as usize * k + fi];
                                *c = op.combine(*c, got[slot * k + fi]);
                            }
                        }
                    }
                });
            }
            GsMethod::CrystalRouter => {
                rank.with_subcontext(GsMethod::CrystalRouter.context(), |rank| {
                    let outgoing: Vec<(usize, Vec<f64>)> = self
                        .neighbors
                        .iter()
                        .map(|nl| {
                            let mut payload = Vec::with_capacity(nl.groups.len() * k);
                            for &gi in &nl.groups {
                                payload.extend_from_slice(
                                    &combined[gi as usize * k..gi as usize * k + k],
                                );
                            }
                            (nl.rank, payload)
                        })
                        .collect();
                    for (src, payload) in rank.crystal_router(outgoing) {
                        let nl = self
                            .neighbors
                            .iter()
                            .find(|nl| nl.rank == src)
                            .expect("crystal router delivered from a non-neighbor");
                        for (slot, &gi) in nl.groups.iter().enumerate() {
                            for fi in 0..k {
                                let c = &mut combined[gi as usize * k + fi];
                                *c = op.combine(*c, payload[slot * k + fi]);
                            }
                        }
                    }
                });
            }
            GsMethod::AllReduce => {
                rank.with_subcontext(GsMethod::AllReduce.context(), |rank| {
                    let total = self.total_compact as usize;
                    let mut dense = vec![op.identity(); total * k];
                    for (gi, g) in self.groups.iter().enumerate() {
                        let base = g.compact as usize * k;
                        dense[base..base + k].copy_from_slice(&combined[gi * k..gi * k + k]);
                    }
                    let reduced = rank.allreduce_with(&dense, |a, b| *a = op.combine(*a, *b));
                    for (gi, g) in self.groups.iter().enumerate() {
                        let base = g.compact as usize * k;
                        combined[gi * k..gi * k + k].copy_from_slice(&reduced[base..base + k]);
                    }
                });
            }
        }

        // Scatter back.
        for (gi, g) in self.groups.iter().enumerate() {
            for (fi, f) in fields.iter_mut().enumerate() {
                let v = combined[gi * k + fi];
                for &li in &g.local_indices {
                    f[li as usize] = v;
                }
            }
        }
    }

    /// Pairwise exchange: post all receives, send to every neighbor, wait
    /// — the `MPI_Isend`/`MPI_Irecv`/`MPI_Wait` pattern whose wait time
    /// dominates the paper's Fig. 9.
    fn exchange_pairwise(&self, rank: &mut Rank, combined: &mut [f64], op: GsOp) {
        const TAG: u64 = 0x6500; // 'gs'
        rank.with_subcontext(GsMethod::PairwiseExchange.context(), |rank| {
            let reqs: Vec<_> = self
                .neighbors
                .iter()
                .map(|nl| rank.irecv(nl.rank, TAG))
                .collect();
            for nl in &self.neighbors {
                let payload: Vec<f64> = nl.groups.iter().map(|&gi| combined[gi as usize]).collect();
                rank.isend_vec(nl.rank, TAG, payload);
            }
            for (nl, req) in self.neighbors.iter().zip(reqs) {
                let got: Vec<f64> = rank.wait_recv(req);
                debug_assert_eq!(got.len(), nl.groups.len());
                for (&gi, v) in nl.groups.iter().zip(got) {
                    combined[gi as usize] = op.combine(combined[gi as usize], v);
                }
            }
        });
    }

    /// Crystal-router exchange: the same per-neighbor payloads, bundled
    /// through the hypercube router.
    fn exchange_crystal(&self, rank: &mut Rank, combined: &mut [f64], op: GsOp) {
        rank.with_subcontext(GsMethod::CrystalRouter.context(), |rank| {
            let outgoing: Vec<(usize, Vec<f64>)> = self
                .neighbors
                .iter()
                .map(|nl| {
                    (
                        nl.rank,
                        nl.groups.iter().map(|&gi| combined[gi as usize]).collect(),
                    )
                })
                .collect();
            let arrived = rank.crystal_router(outgoing);
            debug_assert_eq!(arrived.len(), self.neighbors.len());
            for (src, payload) in arrived {
                let nl = self
                    .neighbors
                    .iter()
                    .find(|nl| nl.rank == src)
                    .expect("crystal router delivered from a non-neighbor");
                debug_assert_eq!(payload.len(), nl.groups.len());
                for (&gi, v) in nl.groups.iter().zip(payload) {
                    combined[gi as usize] = op.combine(combined[gi as usize], v);
                }
            }
        });
    }

    /// All_reduce onto a big vector: scatter combined values into a dense
    /// vector over the compact global id universe, allreduce it with the
    /// op, read back. "Too expensive for both mini-apps" at the paper's
    /// problem setup — but exact, and competitive only for tiny worlds.
    fn exchange_allreduce(&self, rank: &mut Rank, combined: &mut [f64], op: GsOp) {
        rank.with_subcontext(GsMethod::AllReduce.context(), |rank| {
            let mut dense = vec![op.identity(); self.total_compact as usize];
            for (g, &v) in self.groups.iter().zip(combined.iter()) {
                dense[g.compact as usize] = v;
            }
            let reduced = rank.allreduce_with(&dense, |a, b| *a = op.combine(*a, *b));
            for (g, c) in self.groups.iter().zip(combined.iter_mut()) {
                *c = reduced[g.compact as usize];
            }
        });
    }
}
