//! Wire-format codecs for the autotune report types, so socket-backend
//! mini-app runs can ship their Fig. 7 tables back to the launcher.

use simmpi::{WireCodec, WireError, WireReader};

use crate::autotune::{AutotuneReport, MethodTiming};
use crate::ops::GsMethod;

impl WireCodec for GsMethod {
    fn encode(&self, buf: &mut Vec<u8>) {
        let idx = GsMethod::ALL
            .iter()
            .position(|m| m == self)
            .expect("method in ALL") as u8;
        idx.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let idx = u8::decode(r)? as usize;
        GsMethod::ALL
            .get(idx)
            .copied()
            .ok_or(WireError::Malformed("unknown gs method"))
    }
}

impl WireCodec for MethodTiming {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.method.encode(buf);
        self.avg_s.encode(buf);
        self.min_s.encode(buf);
        self.max_s.encode(buf);
        self.skipped.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(MethodTiming {
            method: GsMethod::decode(r)?,
            avg_s: f64::decode(r)?,
            min_s: f64::decode(r)?,
            max_s: f64::decode(r)?,
            skipped: bool::decode(r)?,
        })
    }
}

impl WireCodec for AutotuneReport {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.chosen.encode(buf);
        self.timings.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AutotuneReport {
            chosen: GsMethod::decode(r)?,
            timings: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireCodec>(v: &T) -> T {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = WireReader::new(&buf);
        let out = T::decode(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "trailing bytes");
        out
    }

    #[test]
    fn gs_method_roundtrips() {
        for m in GsMethod::ALL {
            assert_eq!(roundtrip(&m), m);
        }
    }

    #[test]
    fn autotune_report_roundtrips() {
        let rep = AutotuneReport {
            chosen: GsMethod::CrystalRouter,
            timings: vec![
                MethodTiming {
                    method: GsMethod::PairwiseExchange,
                    avg_s: 1.5e-4,
                    min_s: 1.0e-4,
                    max_s: 2.0e-4,
                    skipped: false,
                },
                MethodTiming {
                    method: GsMethod::AllReduce,
                    avg_s: f64::INFINITY,
                    min_s: f64::INFINITY,
                    max_s: f64::INFINITY,
                    skipped: true,
                },
            ],
        };
        let back = roundtrip(&rep);
        assert_eq!(back.chosen, rep.chosen);
        assert_eq!(back.timings, rep.timings);
    }
}
