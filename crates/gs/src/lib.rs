//! # cmt-gs
//!
//! The gather–scatter library: a Rust analogue of Nek5000's `gslib`, the
//! machinery behind both CMT-bone's nearest-neighbor surface exchange and
//! Nekbone's `dssum`.
//!
//! From the paper (§VI): *"spectral element coefficients are stored
//! redundantly (and locally) on each processor instead of maintaining a
//! global matrix and each processor is given index sets containing the
//! global ids of the elements using `gs_setup`. This requires a discovery
//! phase using all-to-all communication to identify for every global index
//! `i` on process `p`, all the processes `q` that also have `i`."* and
//! *"At the beginning of each CMT-nek and CMT-bone simulation, three
//! gather-scatter methods are evaluated to determine which one performs
//! the best for the given problem setup and machine. These three exchange
//! strategies are: (1) pairwise exchange, (2) crystal-router, and (3)
//! all_reduce onto a big vector."*
//!
//! This crate implements all of it:
//!
//! * [`GsHandle::setup`] — the discovery phase: distinct local ids are
//!   routed to home ranks (`gid % P`) with an all-to-all, homes assign a
//!   globally consistent compact numbering and return each id's sharer
//!   list, and per-neighbor exchange lists (sorted by id, hence identical
//!   on both sides) are built.
//! * [`GsHandle::gs_op`] — the combine-over-all-occurrences operation
//!   (`Add`/`Mul`/`Min`/`Max`) with the three methods of [`GsMethod`]:
//!   pairwise exchange (isend/irecv/wait with each touching neighbor),
//!   crystal router (bundled hypercube routing, `log2 P` stages), and
//!   all_reduce onto a dense vector over the compact id universe.
//! * [`GsHandle::gs_op_start`] / [`GsHandle::gs_op_finish`] — the
//!   split-phase form: `start` combines locally and posts the exchange,
//!   the caller overlaps unrelated compute with the in-flight messages,
//!   and `finish` drains and scatters. The blocking `gs_op` and the
//!   multi-field `gs_op_many` are both built on this pair.
//! * [`autotune`] — times all three methods on the actual handle and
//!   picks the fastest, exactly the startup protocol the paper describes;
//!   its report is the paper's Fig. 7 table.

#![warn(missing_docs)]

mod autotune;
mod handle;
mod ops;
mod wire;

pub use autotune::{autotune, AutotuneOptions, AutotuneReport, MethodTiming};
pub use handle::{GsHandle, HandleStats};
pub use ops::{GsMethod, GsOp, GsPending};
