//! `gs_setup`: the discovery phase and the exchange-topology handle.

use std::cell::RefCell;
use std::collections::HashMap;

use simmpi::{Rank, RecvRequest, ReduceOp};

/// One gather group: all local indices that carry the same global id,
/// plus where else in the world that id lives.
#[derive(Debug, Clone)]
pub(crate) struct Group {
    /// The global id.
    pub gid: u64,
    /// Local indices (into the user's value array) holding this id.
    pub local_indices: Vec<u32>,
    /// Globally consistent compact index of this id (dense `0..total`),
    /// used by the all_reduce method.
    pub compact: u64,
}

/// Exchange topology with one touching neighbor rank.
#[derive(Debug, Clone)]
pub(crate) struct NeighborList {
    /// The neighbor's rank.
    pub rank: usize,
    /// Group indices shared with this neighbor, ordered by gid — both
    /// sides sort by gid, so position `i` on our side and theirs refer to
    /// the same global id.
    pub groups: Vec<u32>,
}

/// A configured gather–scatter handle (the result of `gs_setup`).
///
/// Reusable across any number of [`GsHandle::gs_op`] calls on value arrays
/// of the length it was set up with.
///
/// ```
/// use cmt_gs::{GsHandle, GsMethod, GsOp};
/// use simmpi::World;
///
/// // two ranks sharing global id 7: gs_op(Add) combines across ranks
/// let res = World::new().run(2, |rank| {
///     let ids = if rank.rank() == 0 { vec![7, 1] } else { vec![2, 7] };
///     let handle = GsHandle::setup(rank, &ids);
///     let mut vals = vec![10.0 * (rank.rank() + 1) as f64; 2];
///     handle.gs_op(rank, &mut vals, GsOp::Add, GsMethod::PairwiseExchange);
///     vals
/// });
/// assert_eq!(res.results[0], vec![30.0, 10.0]); // 10 + 20 at the shared id
/// assert_eq!(res.results[1], vec![20.0, 30.0]);
/// ```
#[derive(Debug, Clone)]
pub struct GsHandle {
    pub(crate) nlocal: usize,
    pub(crate) groups: Vec<Group>,
    pub(crate) neighbors: Vec<NeighborList>,
    /// Total distinct global ids across the world (the all_reduce vector
    /// length).
    pub(crate) total_compact: u64,
    /// Exchanged global ids (deduplicated, ascending), precomputed at
    /// setup so opening a verifier exchange epoch costs no allocation.
    pub(crate) exchanged: Vec<u64>,
    /// Persistent-plan staging buffers, reused across `gs_op` calls (the
    /// owned-staging half of gslib's persistent handles).
    pub(crate) bufs: RefCell<PlanBufs>,
}

/// Owned staging buffers of a handle's persistent exchange plan. Every
/// vector here is cleared and refilled in place each `gs_op`, so the
/// steady state recycles capacity instead of allocating:
///
/// * `combined`/`reqs` — stacks of per-operation buffers (stacks rather
///   than single slots so several split-phase operations may be in
///   flight on one handle at once);
/// * `outgoing`/`arrived` — the crystal-router message lists, whose
///   payload vectors cycle rank-to-rank through the router and back;
/// * `dense` — the all_reduce method's vector over the compact global id
///   universe.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlanBufs {
    pub combined: Vec<Vec<f64>>,
    pub reqs: Vec<Vec<RecvRequest>>,
    pub outgoing: Vec<(usize, Vec<f64>)>,
    pub arrived: Vec<(usize, Vec<f64>)>,
    pub dense: Vec<f64>,
}

/// Summary statistics of a handle's topology, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandleStats {
    /// Length of the local value array.
    pub nlocal: usize,
    /// Distinct global ids on this rank.
    pub distinct_local: usize,
    /// Number of touching neighbor ranks.
    pub neighbors: usize,
    /// Total shared (rank-boundary) id slots summed over neighbors — the
    /// per-`gs_op` send volume in values.
    pub shared_slots: usize,
    /// Total distinct global ids in the world.
    pub total_global: u64,
}

impl GsHandle {
    /// Run the discovery phase on `ids` (one global id per local value
    /// slot) and build the exchange topology.
    ///
    /// Collective: every rank of the world must call it with its own ids.
    pub fn setup(rank: &mut Rank, ids: &[u64]) -> GsHandle {
        rank.with_context("gs_setup", |rank| Self::setup_inner(rank, ids))
    }

    fn setup_inner(rank: &mut Rank, ids: &[u64]) -> GsHandle {
        let p = rank.size();
        let me = rank.rank();

        // ---- local grouping: distinct gid -> local indices --------------
        let mut first_seen: HashMap<u64, u32> = HashMap::new();
        let mut groups: Vec<Group> = Vec::new();
        for (li, &gid) in ids.iter().enumerate() {
            match first_seen.entry(gid) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    groups[*e.get() as usize].local_indices.push(li as u32);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(groups.len() as u32);
                    groups.push(Group {
                        gid,
                        local_indices: vec![li as u32],
                        compact: 0,
                    });
                }
            }
        }
        // deterministic order for the exchange protocol
        groups.sort_by_key(|g| g.gid);
        let group_of_gid: HashMap<u64, u32> = groups
            .iter()
            .enumerate()
            .map(|(gi, g)| (g.gid, gi as u32))
            .collect();

        // ---- round 1: report each distinct gid to its home rank ---------
        let mut to_home: Vec<Vec<u64>> = vec![Vec::new(); p];
        for g in &groups {
            to_home[(g.gid % p as u64) as usize].push(g.gid);
        }
        let reported = rank.alltoallv(to_home);

        // ---- home side: sharer lists + compact numbering ----------------
        // gid -> ranks that reported it (deduplicated by construction:
        // each rank reports each distinct gid once).
        let mut home: HashMap<u64, Vec<u64>> = HashMap::new();
        for (src, gids) in reported.iter().enumerate() {
            for &gid in gids {
                home.entry(gid).or_default().push(src as u64);
            }
        }
        // Deterministic compact numbering: sort this home's gids.
        let mut home_gids: Vec<u64> = home.keys().copied().collect();
        home_gids.sort_unstable();
        // Exclusive prefix over per-home distinct counts gives each home
        // its compact-id base; the sum is the universe size.
        let my_count = home_gids.len() as u64;
        let my_base = rank.exscan_u64(my_count);
        let total_compact = rank.allreduce_u64(&[my_count], ReduceOp::Sum)[0];
        let compact_of: HashMap<u64, u64> = home_gids
            .iter()
            .enumerate()
            .map(|(i, &gid)| (gid, my_base + i as u64))
            .collect();

        // ---- round 2: answer each reporter ------------------------------
        // Per reporter: flat u64 records [gid, compact, nsharers, sharers...]
        let mut replies: Vec<Vec<u64>> = vec![Vec::new(); p];
        for (src, gids) in reported.iter().enumerate() {
            for &gid in gids {
                let sharers = &home[&gid];
                let reply = &mut replies[src];
                reply.push(gid);
                reply.push(compact_of[&gid]);
                reply.push(sharers.len() as u64);
                reply.extend_from_slice(sharers);
            }
        }
        let answers = rank.alltoallv(replies);

        // ---- parse answers: per-gid compact id + remote sharers ---------
        let mut shared_with: HashMap<usize, Vec<u32>> = HashMap::new(); // rank -> group idxs
        for buf in &answers {
            let mut i = 0;
            while i < buf.len() {
                let gid = buf[i];
                let compact = buf[i + 1];
                let ns = buf[i + 2] as usize;
                let sharers = &buf[i + 3..i + 3 + ns];
                i += 3 + ns;
                let gi = group_of_gid[&gid];
                groups[gi as usize].compact = compact;
                for &q in sharers {
                    let q = q as usize;
                    if q != me {
                        shared_with.entry(q).or_default().push(gi);
                    }
                }
            }
        }

        // ---- neighbor lists, sorted by gid on both sides ----------------
        let mut neighbors: Vec<NeighborList> = shared_with
            .into_iter()
            .map(|(nrank, mut gis)| {
                gis.sort_by_key(|&gi| groups[gi as usize].gid);
                gis.dedup();
                NeighborList {
                    rank: nrank,
                    groups: gis,
                }
            })
            .collect();
        neighbors.sort_by_key(|nl| nl.rank);

        let mut exchanged: Vec<u64> = neighbors
            .iter()
            .flat_map(|nl| nl.groups.iter().map(|&gi| groups[gi as usize].gid))
            .collect();
        exchanged.sort_unstable();
        exchanged.dedup();

        GsHandle {
            nlocal: ids.len(),
            groups,
            neighbors,
            total_compact,
            exchanged,
            bufs: RefCell::new(PlanBufs::default()),
        }
    }

    /// Length of the value arrays this handle operates on.
    pub fn nlocal(&self) -> usize {
        self.nlocal
    }

    /// Topology summary.
    pub fn stats(&self) -> HandleStats {
        HandleStats {
            nlocal: self.nlocal,
            distinct_local: self.groups.len(),
            neighbors: self.neighbors.len(),
            shared_slots: self.neighbors.iter().map(|nl| nl.groups.len()).sum(),
            total_global: self.total_compact,
        }
    }

    /// Ranks this handle exchanges with, ascending.
    pub fn neighbor_ranks(&self) -> Vec<usize> {
        self.neighbors.iter().map(|nl| nl.rank).collect()
    }

    /// Total distinct global ids in the world (the all_reduce method's
    /// dense-vector length).
    pub fn total_global_ids(&self) -> u64 {
        self.total_compact
    }

    /// Per-slot flags: `true` iff the slot's value can change under any
    /// `gs_op` — its global id either appears more than once locally or
    /// is shared with a neighbor rank. Slots flagged `false` are
    /// *interior*: every combine leaves them bitwise untouched, so work
    /// on them may safely run inside a split-phase overlap window, before
    /// [`GsHandle::gs_op_finish`] lands the exchanged values.
    pub fn shared_slot_flags(&self) -> Vec<bool> {
        let mut group_shared = vec![false; self.groups.len()];
        for (gi, g) in self.groups.iter().enumerate() {
            if g.local_indices.len() > 1 {
                group_shared[gi] = true;
            }
        }
        for nl in &self.neighbors {
            for &gi in &nl.groups {
                group_shared[gi as usize] = true;
            }
        }
        let mut flags = vec![false; self.nlocal];
        for (gi, g) in self.groups.iter().enumerate() {
            if group_shared[gi] {
                for &li in &g.local_indices {
                    flags[li as usize] = true;
                }
            }
        }
        flags
    }

    /// The multiplicity (total occurrence count across the world) of each
    /// local slot's id — computed with a unit `gs_op(Add)`; commonly used
    /// to build the inverse-multiplicity weights of an averaging exchange.
    pub fn multiplicities(&self, rank: &mut Rank, method: crate::GsMethod) -> Vec<f64> {
        let mut ones = vec![1.0; self.nlocal];
        self.gs_op(rank, &mut ones, crate::GsOp::Add, method);
        ones
    }

    /// Global ids this handle exchanges with neighbor ranks (deduplicated,
    /// ascending) — the shared slots the `cmt-verify` race detector
    /// tracks. Interior ids never cross ranks and are not included.
    /// Precomputed at setup.
    pub(crate) fn exchanged_gids(&self) -> &[u64] {
        &self.exchanged
    }

    /// Report an application-level read (`write == false`) or write of
    /// local slot `local_index` to the world's verifier, feeding the
    /// happens-before race detector over this handle's shared slots.
    ///
    /// Only accesses to *exchanged* slots are material (interior slots
    /// never leave the rank), so the call is a no-op for interior slots
    /// and for worlds without a verifier. The verifier flags two kinds of
    /// hazard: accesses made while this rank's own split-phase exchange
    /// is in flight, and cross-rank write conflicts with no
    /// happens-before ordering (replica divergence).
    pub fn verify_note_access(&self, rank: &Rank, local_index: usize, write: bool, label: &str) {
        if !rank.verifying() {
            return;
        }
        assert!(local_index < self.nlocal, "slot index out of range");
        let li = local_index as u32;
        let Some(gi) = self
            .groups
            .iter()
            .position(|g| g.local_indices.contains(&li))
        else {
            return;
        };
        let shared = self
            .neighbors
            .iter()
            .any(|nl| nl.groups.contains(&(gi as u32)));
        if shared {
            rank.verify_slot_access(&[self.groups[gi].gid], write, label);
        }
    }
}
