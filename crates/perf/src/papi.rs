//! PAPI-substitute: an analytic instruction/cycle model for the
//! derivative kernels.
//!
//! Figures 5 and 6 of the paper report PAPI `TOT_INS` / `TOT_CYC` counts
//! for the three partial-derivative kernels on an AMD Opteron 6378
//! (1563 elements, 1000 timesteps), demonstrating that Nek's loop
//! fusion/unroll transformations cut the instruction count of `dudt` by
//! ~2.8x (runtime 2.31x), barely move `dudr` (1.03x), and cannot help
//! `duds` at all. Portable Rust cannot read a 2012 Opteron's MSRs, so
//! this module *models* the two counters from the exact operation counts
//! of [`cmt_core::cost`]:
//!
//! ```text
//! instructions = flops * arith_ipf  +  loads * load_ipl
//!              + stores * store_ips +  points * overhead_ipp
//! cycles       = instructions * cpi
//! ```
//!
//! with per-`(variant, direction)` parameters reflecting how each loop
//! nest compiles: the fused kernels stream unit-stride and vectorize
//! (4-wide f64 FMA: `arith_ipf = 1/8`), the basic `dudt` is scalar with a
//! stride-`n^2` gather (`arith_ipf = 1`), the basic `dudr` still
//! vectorizes its unit-stride dot product, and `duds`'s short columns pay
//! per-output reduction overhead in every variant. The parameter values
//! below are calibrated so the modelled totals land on the paper's
//! Fig. 5/6 measurements at `N = 5`, `Nel = 1563`, 1000 steps; what the
//! tests pin is the *structure* — the basic/optimized ratio ordering
//! dudt >> dudr ~ duds ~ 1.
//!
//! The CPI column is likewise calibrated to the paper's cycle/instruction
//! ratios (0.53-0.66 on the Opteron's 2-wide pipeline).

use cmt_core::cost::OpCounts;
use cmt_core::{DerivDir, KernelVariant};

/// Modelled counter values for one kernel invocation (or run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PapiEstimate {
    /// Modelled retired-instruction count (`PAPI_TOT_INS` analogue).
    pub instructions: u64,
    /// Modelled cycle count (`PAPI_TOT_CYC` analogue).
    pub cycles: u64,
}

/// The model parameters of one `(variant, direction)` kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelModel {
    /// Instructions per floating-point operation.
    pub arith_ipf: f64,
    /// Instructions per source-level load.
    pub load_ipl: f64,
    /// Instructions per source-level store.
    pub store_ips: f64,
    /// Loop/index/reduction overhead instructions per output point.
    pub overhead_ipp: f64,
    /// Cycles per instruction.
    pub cpi: f64,
}

/// Look up the calibrated model of a kernel.
pub fn kernel_model(variant: KernelVariant, dir: DerivDir) -> KernelModel {
    use DerivDir::*;
    use KernelVariant::*;
    match (variant, dir) {
        // Fused + vectorized production kernels (paper Fig. 5).
        (Optimized, T) => KernelModel {
            arith_ipf: 0.125,
            load_ipl: 0.25,
            store_ips: 0.25,
            overhead_ipp: 2.0,
            cpi: 0.66,
        },
        (Optimized, R) => KernelModel {
            arith_ipf: 0.125,
            load_ipl: 0.25,
            store_ips: 1.0,
            overhead_ipp: 7.5,
            cpi: 0.56,
        },
        (Optimized, S) => KernelModel {
            arith_ipf: 0.125,
            load_ipl: 0.3,
            store_ips: 1.0,
            overhead_ipp: 8.0,
            cpi: 0.57,
        },
        // Basic loop nests (paper Fig. 6).
        (Basic, T) => KernelModel {
            arith_ipf: 1.0,
            load_ipl: 0.5,
            store_ips: 0.25,
            overhead_ipp: 2.0,
            cpi: 0.53,
        },
        (Basic, R) => KernelModel {
            arith_ipf: 0.25,
            load_ipl: 0.5,
            store_ips: 1.0,
            overhead_ipp: 4.0,
            cpi: 0.57,
        },
        (Basic, S) => KernelModel {
            arith_ipf: 0.5,
            load_ipl: 0.5,
            store_ips: 1.0,
            overhead_ipp: 3.0,
            cpi: 0.57,
        },
        // Const-generic specialization: the optimized kernels with most of
        // the loop overhead unrolled away.
        (Specialized, d) => {
            let base = kernel_model(Optimized, d);
            KernelModel {
                overhead_ipp: base.overhead_ipp * 0.3,
                ..base
            }
        }
        // All-elements batched, cache-blocked loop orders: the same
        // vector bodies as the optimized kernels; hoisting each D row
        // over a tile trims a sliver of loop overhead. The real win is
        // cache residence, which appears as the `CacheModel` inflation,
        // not in the instruction count.
        (Batched, d) => {
            let base = kernel_model(Optimized, d);
            KernelModel {
                overhead_ipp: base.overhead_ipp * 0.9,
                ..base
            }
        }
        // Hand-vectorized lane-parallel kernels: no FMA contraction (the
        // scalar accumulation order is preserved bitwise, so mul and add
        // stay separate — twice the arithmetic instructions per flop of
        // the FMA model), but each broadcast D entry feeds a full vector
        // of outputs (half the loads) and the accumulators stay in
        // registers across the reduction (well under half the per-output
        // loop/reduction overhead).
        (Simd, d) => {
            let base = kernel_model(Optimized, d);
            KernelModel {
                arith_ipf: base.arith_ipf * 2.0,
                load_ipl: base.load_ipl * 0.5,
                overhead_ipp: base.overhead_ipp * 0.4,
                ..base
            }
        }
        // Unroll-and-jam: several output streams per pass over the input,
        // so each loaded value feeds multiple accumulators — fewer loads
        // per flop and less per-output loop overhead.
        (UnrollJam, d) => {
            let base = kernel_model(Optimized, d);
            KernelModel {
                load_ipl: base.load_ipl * 0.6,
                overhead_ipp: base.overhead_ipp * 0.7,
                ..base
            }
        }
    }
}

/// Model the counters of one derivative-kernel run from its operation
/// counts.
pub fn model_kernel(variant: KernelVariant, dir: DerivDir, counts: OpCounts) -> PapiEstimate {
    let m = kernel_model(variant, dir);
    let points = counts.stores as f64; // one store per output point
    let instr = counts.flops as f64 * m.arith_ipf
        + counts.loads as f64 * m.load_ipl
        + counts.stores as f64 * m.store_ips
        + points * m.overhead_ipp;
    PapiEstimate {
        instructions: instr.round() as u64,
        cycles: (instr * m.cpi).round() as u64,
    }
}

/// A simple two-level cache model for the derivative kernels' cycle
/// counts across the paper's element-order range.
///
/// The instruction count is working-set independent, but the *cycle*
/// count is not: once an element (`8 N^3` bytes) plus the operator
/// (`8 N^2`) no longer fit in L1 (48 KB on the paper's Opteron 6378,
/// which is why §V highlights "a large number of cache misses due to
/// poor data locality" for `duds` at larger N), strided accesses start
/// paying an L2 penalty. The model inflates CPI smoothly with the
/// fraction of the working set beyond each level:
///
/// ```text
/// cpi_eff = cpi * (1 + p_l1 * f_beyond_l1 + p_l2 * f_beyond_l2)
/// ```
///
/// where the penalty factors `p` are larger for the stride-`N`/`N^2`
/// kernels (`duds`, basic `dudt`) than for the streaming ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheModel {
    /// L1 data-cache capacity in bytes (Opteron 6378: 48 KB).
    pub l1_bytes: f64,
    /// L2 capacity in bytes (per-module 2 MB on the 6378).
    pub l2_bytes: f64,
}

impl Default for CacheModel {
    fn default() -> Self {
        CacheModel {
            l1_bytes: 48.0 * 1024.0,
            l2_bytes: 2.0 * 1024.0 * 1024.0,
        }
    }
}

impl CacheModel {
    /// Per-element working set of an order-`n` derivative kernel: input
    /// element + output element + operator, in bytes.
    pub fn working_set(n: u64) -> f64 {
        8.0 * (2 * n * n * n + n * n) as f64
    }

    /// Smooth "fraction of the working set beyond `cap`".
    fn beyond(ws: f64, cap: f64) -> f64 {
        ((ws - cap) / ws).max(0.0)
    }

    /// Cycle estimate including cache effects for an order-`n` kernel.
    pub fn model_kernel(
        &self,
        variant: KernelVariant,
        dir: DerivDir,
        n: u64,
        counts: OpCounts,
    ) -> PapiEstimate {
        let base = model_kernel(variant, dir, counts);
        let m = kernel_model(variant, dir);
        // stride sensitivity: streaming kernels tolerate spilling, the
        // strided ones pay for it
        let (p1, p2) = match (variant, dir) {
            (KernelVariant::Basic, DerivDir::T) => (2.0, 6.0),
            // cache-blocked tiles keep their working set L1-resident, so
            // the batched kernels tolerate large-N spilling best
            (KernelVariant::Batched, DerivDir::T) => (0.1, 0.5),
            (KernelVariant::Batched, DerivDir::S) => (0.8, 2.5),
            // lane-parallel kernels keep their accumulators in registers,
            // so the strided duds round-trips each output once instead of
            // n times — a milder spill penalty than the scalar kernels
            (KernelVariant::Simd, DerivDir::S) => (0.9, 3.0),
            (_, DerivDir::S) => (1.2, 4.0),
            (KernelVariant::Basic, _) => (0.6, 2.0),
            (_, DerivDir::T) => (0.2, 1.0),
            _ => (0.4, 1.5),
        };
        let ws = Self::working_set(n);
        let infl =
            1.0 + p1 * Self::beyond(ws, self.l1_bytes) + p2 * Self::beyond(ws, self.l2_bytes);
        PapiEstimate {
            instructions: base.instructions,
            cycles: (base.instructions as f64 * m.cpi * infl).round() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_core::cost::deriv_counts;

    /// The paper's Fig. 5/6 setup: Nel = 1563, 1000 steps, N = 5.
    fn paper_counts() -> OpCounts {
        deriv_counts(5, 1563).times(1000)
    }

    #[test]
    fn modeled_totals_near_paper_fig5() {
        let c = paper_counts();
        // Paper Fig. 5 (optimized): dudt 1.159e9, dudr 2.402e9, duds 2.595e9
        let t = model_kernel(KernelVariant::Optimized, DerivDir::T, c);
        let r = model_kernel(KernelVariant::Optimized, DerivDir::R, c);
        let s = model_kernel(KernelVariant::Optimized, DerivDir::S, c);
        assert!(
            (t.instructions as f64 / 1.159e9 - 1.0).abs() < 0.15,
            "{t:?}"
        );
        assert!(
            (r.instructions as f64 / 2.402e9 - 1.0).abs() < 0.15,
            "{r:?}"
        );
        assert!(
            (s.instructions as f64 / 2.595e9 - 1.0).abs() < 0.15,
            "{s:?}"
        );
    }

    #[test]
    fn modeled_totals_near_paper_fig6() {
        let c = paper_counts();
        // Paper Fig. 6 (basic): dudt 3.220e9, dudr 2.429e9
        let t = model_kernel(KernelVariant::Basic, DerivDir::T, c);
        let r = model_kernel(KernelVariant::Basic, DerivDir::R, c);
        assert!(
            (t.instructions as f64 / 3.220e9 - 1.0).abs() < 0.15,
            "{t:?}"
        );
        assert!(
            (r.instructions as f64 / 2.429e9 - 1.0).abs() < 0.15,
            "{r:?}"
        );
    }

    #[test]
    fn ratio_structure_matches_paper() {
        let c = paper_counts();
        let ratio = |d| {
            model_kernel(KernelVariant::Basic, d, c).instructions as f64
                / model_kernel(KernelVariant::Optimized, d, c).instructions as f64
        };
        let rt = ratio(DerivDir::T);
        let rr = ratio(DerivDir::R);
        let rs = ratio(DerivDir::S);
        // dudt benefits hugely; dudr and duds barely (paper: 2.78x instr
        // reduction for dudt, 1.01x for dudr, none for duds).
        assert!(rt > 2.0, "dudt instr ratio {rt}");
        assert!((0.8..1.3).contains(&rr), "dudr instr ratio {rr}");
        assert!((0.8..1.3).contains(&rs), "duds instr ratio {rs}");
        assert!(rt > rr && rt > rs);
    }

    #[test]
    fn cycles_track_cpi() {
        let c = paper_counts();
        for variant in KernelVariant::ALL {
            for dir in DerivDir::ALL {
                let est = model_kernel(variant, dir, c);
                let m = kernel_model(variant, dir);
                let cpi = est.cycles as f64 / est.instructions as f64;
                assert!((cpi - m.cpi).abs() < 0.01, "{variant:?} {dir:?}: cpi {cpi}");
            }
        }
    }

    #[test]
    fn specialized_beats_optimized() {
        let c = paper_counts();
        for dir in DerivDir::ALL {
            let o = model_kernel(KernelVariant::Optimized, dir, c);
            let s = model_kernel(KernelVariant::Specialized, dir, c);
            assert!(s.instructions < o.instructions, "{dir:?}");
        }
    }

    #[test]
    fn cache_model_is_neutral_for_small_n_and_penalizes_large_strided() {
        let cache = CacheModel::default();
        // N = 5: working set 2.1 KB << 48 KB L1 -> identical to base model
        let c5 = deriv_counts(5, 100);
        for variant in KernelVariant::ALL {
            for dir in DerivDir::ALL {
                let base = model_kernel(variant, dir, c5);
                let cm = cache.model_kernel(variant, dir, 5, c5);
                assert_eq!(base.cycles, cm.cycles, "{variant:?} {dir:?}");
            }
        }
        // N = 25: 253 KB working set exceeds L1; strided duds must pay a
        // larger penalty than streaming dudt (the §V locality argument)
        let c25 = deriv_counts(25, 100);
        let pen = |dir| {
            let base = model_kernel(KernelVariant::Optimized, dir, c25).cycles as f64;
            let cm = cache
                .model_kernel(KernelVariant::Optimized, dir, 25, c25)
                .cycles as f64;
            cm / base
        };
        assert!(pen(DerivDir::S) > pen(DerivDir::T), "duds must pay more");
        assert!(pen(DerivDir::S) > 1.05, "no L1 penalty applied at N=25");
    }

    #[test]
    fn cache_model_working_set_formula() {
        // 2 n^3 + n^2 doubles
        assert_eq!(CacheModel::working_set(5), 8.0 * (250.0 + 25.0));
    }

    #[test]
    fn model_scales_linearly_with_work() {
        let c1 = deriv_counts(10, 3);
        let c2 = c1.times(7);
        let e1 = model_kernel(KernelVariant::Optimized, DerivDir::T, c1);
        let e2 = model_kernel(KernelVariant::Optimized, DerivDir::T, c2);
        assert!((e2.instructions as f64 / e1.instructions as f64 - 7.0).abs() < 1e-6);
    }
}
