//! mpiP-style cross-rank aggregation of communication statistics.
//!
//! Consumes the per-rank [`simmpi::CommStats`] of a world run and produces
//! the three views of the paper's Figs. 8-10:
//!
//! * per-rank percentage of execution time spent in MPI (Fig. 8);
//! * the top-k most expensive call sites, aggregated across ranks, with
//!   their share of app time and of total MPI time (Fig. 9);
//! * total and average message sizes per call site (Fig. 10).
//!
//! All three views come with plain-text renderers (bar charts / tables)
//! styled after the paper's plots.

use std::collections::HashMap;

use simmpi::{CommStats, MpiOp, NetworkModel, SiteKey};

/// One call site aggregated across all ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteAggregate {
    /// The site (operation + application context).
    pub site: SiteKey,
    /// Total calls across ranks.
    pub calls: u64,
    /// Total time across ranks, seconds.
    pub time_s: f64,
    /// Total bytes across ranks.
    pub bytes: u64,
    /// Largest single-call byte count seen on any rank.
    pub max_bytes: u64,
}

impl SiteAggregate {
    /// Average message size per call, bytes (0 when no calls).
    pub fn avg_bytes(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.bytes as f64 / self.calls as f64
        }
    }

    /// `"MPI_Wait@gs:pairwise"`-style display name.
    pub fn name(&self) -> String {
        format!("{}@{}", self.site.op.mpi_name(), self.site.context)
    }
}

/// The aggregated cross-rank communication report.
#[derive(Debug, Clone)]
pub struct MpipReport {
    /// Per-rank total app time, seconds.
    pub app_time_per_rank: Vec<f64>,
    /// Per-rank total MPI time, seconds.
    pub mpi_time_per_rank: Vec<f64>,
    /// Aggregated call sites, sorted by total time descending.
    pub sites: Vec<SiteAggregate>,
    /// Measured per-message `(bytes, seconds)` network samples pooled
    /// over all ranks. Empty for in-process runs (delivery is a mailbox
    /// push); the socket transport records one sample per received data
    /// frame, so these are real wire latencies.
    pub net_samples: Vec<(u64, f64)>,
}

impl MpipReport {
    /// Aggregate a world run's per-rank statistics.
    pub fn from_stats(stats: &[CommStats]) -> MpipReport {
        let mut sites: HashMap<SiteKey, SiteAggregate> = HashMap::new();
        let mut app = Vec::with_capacity(stats.len());
        let mut mpi = Vec::with_capacity(stats.len());
        for st in stats {
            app.push(st.app_time_s);
            mpi.push(st.mpi_time_s());
            for (key, s) in &st.sites {
                let agg = sites.entry(key.clone()).or_insert_with(|| SiteAggregate {
                    site: key.clone(),
                    calls: 0,
                    time_s: 0.0,
                    bytes: 0,
                    max_bytes: 0,
                });
                agg.calls += s.calls;
                agg.time_s += s.time_s;
                agg.bytes += s.bytes;
                agg.max_bytes = agg.max_bytes.max(s.max_bytes);
            }
        }
        let mut sites: Vec<SiteAggregate> = sites.into_values().collect();
        sites.sort_by(|a, b| b.time_s.total_cmp(&a.time_s).then(a.site.cmp(&b.site)));
        let net_samples = stats
            .iter()
            .flat_map(|st| st.net_samples.iter().copied())
            .collect();
        MpipReport {
            app_time_per_rank: app,
            mpi_time_per_rank: mpi,
            sites,
            net_samples,
        }
    }

    /// Fig. 8 quantity: per-rank `% of execution time in MPI`.
    pub fn mpi_percent_per_rank(&self) -> Vec<f64> {
        self.app_time_per_rank
            .iter()
            .zip(&self.mpi_time_per_rank)
            .map(|(&a, &m)| if a > 0.0 { 100.0 * m / a } else { 0.0 })
            .collect()
    }

    /// Total app time summed over ranks.
    pub fn total_app_s(&self) -> f64 {
        self.app_time_per_rank.iter().sum()
    }

    /// Total MPI time summed over ranks.
    pub fn total_mpi_s(&self) -> f64 {
        self.mpi_time_per_rank.iter().sum()
    }

    /// Fig. 9 rows: the `k` most expensive call sites with their share of
    /// total app time and of total MPI time, in percent.
    pub fn top_sites(&self, k: usize) -> Vec<(SiteAggregate, f64, f64)> {
        let app = self.total_app_s().max(1e-300);
        let mpi = self.total_mpi_s().max(1e-300);
        self.sites
            .iter()
            .take(k)
            .map(|s| (s.clone(), 100.0 * s.time_s / app, 100.0 * s.time_s / mpi))
            .collect()
    }

    /// Total time attributed to one operation kind across all sites.
    pub fn time_of_op(&self, op: MpiOp) -> f64 {
        self.sites
            .iter()
            .filter(|s| s.site.op == op)
            .map(|s| s.time_s)
            .sum()
    }

    /// Fig. 8 rendering: one bar per rank of `% time in MPI`.
    pub fn render_rank_bars(&self) -> String {
        let pct = self.mpi_percent_per_rank();
        let mut out = String::from("% time spent in MPI calls per rank\n");
        for (r, p) in pct.iter().enumerate() {
            let bar = "#".repeat((p / 2.0).round().min(50.0) as usize);
            out.push_str(&format!("rank {r:4} |{bar:<50}| {p:6.2}%\n"));
        }
        out
    }

    /// Fig. 9 rendering: top-k call sites table.
    pub fn render_top_sites(&self, k: usize) -> String {
        let mut out = String::from(
            "call site                                   time(s)   %app   %mpi      calls\n",
        );
        for (s, pa, pm) in self.top_sites(k) {
            out.push_str(&format!(
                "{:42} {:9.4} {:6.2} {:6.2} {:10}\n",
                s.name(),
                s.time_s,
                pa,
                pm,
                s.calls
            ));
        }
        out
    }

    /// Fit the latency/bandwidth model of [`simmpi::NetworkModel`] to the
    /// pooled per-message samples. `None` when the run produced no usable
    /// samples (in-process transport, or all messages the same size).
    pub fn fit_network(&self) -> Option<NetworkModel> {
        NetworkModel::fit(&self.net_samples)
    }

    /// Render the measured-network section: the fitted latency/bandwidth
    /// parameters plus a measured-vs-predicted table over power-of-two
    /// message-size buckets. Empty string when nothing could be fitted.
    pub fn render_net_fit(&self) -> String {
        let Some(model) = self.fit_network() else {
            return String::new();
        };
        let mut out = format!(
            "fitted from {} samples: latency {:.1} us, bandwidth {:.1} MB/s \
             (half-power point {:.0} bytes)\n",
            self.net_samples.len(),
            model.latency_s * 1e6,
            model.bandwidth_bps / 1e6,
            model.half_power_bytes(),
        );
        // bucket by floor(log2(bytes)) and compare means against the fit
        let mut buckets: HashMap<u32, (u64, f64, u64)> = HashMap::new();
        for &(bytes, secs) in &self.net_samples {
            let b = 63 - bytes.max(1).leading_zeros();
            let e = buckets.entry(b).or_insert((0, 0.0, 0));
            e.0 += 1;
            e.1 += secs;
            e.2 += bytes;
        }
        let mut rows: Vec<(u32, (u64, f64, u64))> = buckets.into_iter().collect();
        rows.sort_by_key(|&(b, _)| b);
        out.push_str("  size bucket      samples   measured(us)  predicted(us)\n");
        for (b, (n, total_s, total_bytes)) in rows {
            let avg_bytes = total_bytes / n;
            out.push_str(&format!(
                "  [{:>9}, ..) {:8} {:14.2} {:14.2}\n",
                1u64 << b,
                n,
                1e6 * total_s / n as f64,
                1e6 * model.message_time(avg_bytes),
            ));
        }
        out
    }

    /// Fig. 10 rendering: per-call-site total and average message sizes,
    /// for the `k` sites with the most traffic.
    pub fn render_msg_sizes(&self, k: usize) -> String {
        let mut by_bytes: Vec<&SiteAggregate> = self.sites.iter().filter(|s| s.bytes > 0).collect();
        by_bytes.sort_by_key(|s| std::cmp::Reverse(s.bytes));
        let mut out = String::from(
            "call site                                total bytes   avg bytes/call   max bytes\n",
        );
        for s in by_bytes.into_iter().take(k) {
            out.push_str(&format!(
                "{:42} {:11} {:14.1} {:11}\n",
                s.name(),
                s.bytes,
                s.avg_bytes(),
                s.max_bytes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::World;

    fn sample_stats() -> Vec<CommStats> {
        // Drive a tiny world to get real CommStats.
        let res = World::new().run(4, |rank| {
            rank.set_context("halo");
            let next = (rank.rank() + 1) % rank.size();
            let prev = (rank.rank() + rank.size() - 1) % rank.size();
            let req = rank.irecv(prev, 1);
            rank.isend(next, 1, &[1.0f64; 64]);
            let _ = rank.wait_recv::<f64>(req);
            rank.set_context("dots");
            let _ = rank.allreduce_scalar(1.0, simmpi::ReduceOp::Sum);
        });
        res.stats
    }

    #[test]
    fn aggregation_sums_ranks() {
        let stats = sample_stats();
        let rep = MpipReport::from_stats(&stats);
        assert_eq!(rep.app_time_per_rank.len(), 4);
        let isend = rep
            .sites
            .iter()
            .find(|s| s.site.op == MpiOp::Isend && s.site.context == "halo")
            .expect("isend site");
        assert_eq!(isend.calls, 4);
        assert_eq!(isend.bytes, 4 * 64 * 8);
        assert_eq!(isend.max_bytes, 512);
        let ar = rep
            .sites
            .iter()
            .find(|s| s.site.op == MpiOp::Allreduce)
            .expect("allreduce site");
        assert_eq!(ar.calls, 4);
    }

    #[test]
    fn percentages_bounded() {
        let rep = MpipReport::from_stats(&sample_stats());
        for p in rep.mpi_percent_per_rank() {
            assert!((0.0..=100.0 + 1e-6).contains(&p), "pct {p}");
        }
        let top = rep.top_sites(3);
        assert!(top.len() <= 3);
        let total_mpi_share: f64 = rep.top_sites(100).iter().map(|(_, _, pm)| pm).sum();
        assert!((total_mpi_share - 100.0).abs() < 1e-6, "{total_mpi_share}");
    }

    #[test]
    fn sites_sorted_by_time() {
        let rep = MpipReport::from_stats(&sample_stats());
        for w in rep.sites.windows(2) {
            assert!(w[0].time_s >= w[1].time_s);
        }
    }

    #[test]
    fn renders_contain_expected_rows() {
        let rep = MpipReport::from_stats(&sample_stats());
        assert!(rep.render_rank_bars().contains("rank    0"));
        assert!(rep.render_top_sites(10).contains("MPI_"));
        assert!(rep.render_msg_sizes(10).contains("@halo"));
    }

    #[test]
    fn inproc_runs_have_no_net_fit() {
        let rep = MpipReport::from_stats(&sample_stats());
        assert!(rep.net_samples.is_empty());
        assert!(rep.fit_network().is_none());
        assert_eq!(rep.render_net_fit(), "");
    }

    #[test]
    fn net_fit_recovers_planted_model_and_renders_buckets() {
        // Plant samples from a known latency + bandwidth line: 20 us
        // latency, 100 MB/s.
        let model_time = |bytes: u64| 20e-6 + bytes as f64 / 100e6;
        let mut stats = sample_stats();
        for (i, st) in stats.iter_mut().enumerate() {
            for &bytes in &[64u64, 1024, 65536, 1 << 20] {
                st.net_samples.push((bytes + i as u64, model_time(bytes)));
            }
        }
        let rep = MpipReport::from_stats(&stats);
        assert_eq!(rep.net_samples.len(), 16);
        let fit = rep.fit_network().expect("enough samples to fit");
        assert!((fit.latency_s - 20e-6).abs() < 5e-6, "{}", fit.latency_s);
        assert!(
            (fit.bandwidth_bps - 100e6).abs() < 5e6,
            "{}",
            fit.bandwidth_bps
        );
        let text = rep.render_net_fit();
        assert!(text.contains("fitted from 16 samples"));
        assert!(text.contains("measured(us)"));
        // one bucket row per distinct power-of-two size
        assert!(text.contains("[       64, ..)"), "{text}");
        assert!(text.contains("[  1048576, ..)"), "{text}");
    }

    #[test]
    fn avg_bytes_handles_zero_calls() {
        let agg = SiteAggregate {
            site: SiteKey {
                op: MpiOp::Send,
                context: "x".into(),
            },
            calls: 0,
            time_s: 0.0,
            bytes: 0,
            max_bytes: 0,
        };
        assert_eq!(agg.avg_bytes(), 0.0);
    }
}
