//! Thread-local heap-allocation counters, feature-gated behind
//! `count-alloc`.
//!
//! The point of the pooled messaging layer in `simmpi` and the persistent
//! exchange plans in `cmt-gs` is a *zero-allocation steady state*: after
//! warm-up, a timestep's gather–scatter regions should touch the heap
//! exactly zero times. That claim is only worth something if it is
//! asserted, so this module provides the instrument:
//!
//! * [`thread_counts`] returns `(allocations, bytes)` performed by the
//!   *current thread* since it started. It is always present so callers
//!   need no `cfg` of their own, but it only ticks when the crate is
//!   built with the `count-alloc` feature, which installs a counting
//!   [`std::alloc::GlobalAlloc`] wrapper around the system allocator.
//!   Without the feature it returns `(0, 0)` forever.
//! * [`counting`] reports whether the counting allocator is installed, so
//!   tests can assert they were compiled with the feature instead of
//!   vacuously passing on frozen zeros.
//!
//! Only allocations are counted (`alloc`, `alloc_zeroed`, and the
//! grow/shrink side of `realloc`); frees are not. The profiler attributes
//! the deltas to regions the same way it attributes wall time, so a
//! region's "self allocs" excludes allocations made inside instrumented
//! children. Counters are per-thread, which matches the simulator's
//! thread-per-rank design: each rank's profiler sees its own heap
//! traffic and nothing from its neighbors.

use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// `(allocations, bytes)` made by this thread so far. Frozen at `(0, 0)`
/// unless the `count-alloc` feature is enabled.
pub fn thread_counts() -> (u64, u64) {
    (ALLOCS.with(Cell::get), BYTES.with(Cell::get))
}

/// Whether the counting global allocator is installed (i.e. the crate was
/// built with the `count-alloc` feature).
pub fn counting() -> bool {
    cfg!(feature = "count-alloc")
}

#[cfg(feature = "count-alloc")]
mod global {
    use super::{ALLOCS, BYTES};
    use std::alloc::{GlobalAlloc, Layout, System};

    /// The system allocator with per-thread bump counters in front.
    struct CountingAlloc;

    fn tick(bytes: usize) {
        // `Cell::set` on a thread-local cannot allocate or unwind, so the
        // counters are safe to touch from inside the allocator itself.
        ALLOCS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + bytes as u64));
    }

    // SAFETY: every method defers to the `System` allocator unchanged —
    // same layout, same pointer discipline — so `GlobalAlloc`'s contract
    // holds exactly as `System` upholds it; `tick` only touches
    // `Cell`-based thread-locals, which neither allocate nor unwind.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: caller's `GlobalAlloc::alloc` obligations forwarded
        // verbatim to `System.alloc`.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            tick(layout.size());
            System.alloc(layout)
        }

        // SAFETY: forwarded verbatim to `System.alloc_zeroed`.
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            tick(layout.size());
            System.alloc_zeroed(layout)
        }

        // SAFETY: forwarded verbatim to `System.dealloc`.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        // SAFETY: forwarded verbatim to `System.realloc`.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            tick(new_size);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_monotone() {
        let (a0, b0) = thread_counts();
        let v: Vec<u64> = (0..1024).collect();
        let (a1, b1) = thread_counts();
        assert!(a1 >= a0 && b1 >= b0);
        if counting() {
            assert!(a1 > a0, "an allocation must tick the counter");
            assert!(b1 - b0 >= 8 * 1024, "the vec's bytes must be counted");
        } else {
            assert_eq!((a1, b1), (0, 0), "counters frozen without the feature");
        }
        drop(v);
    }

    #[cfg(feature = "count-alloc")]
    #[test]
    fn counters_are_per_thread() {
        let bytes_before = thread_counts().1;
        let child_bytes = std::thread::spawn(|| {
            let b0 = thread_counts().1;
            let big: Vec<u8> = Vec::with_capacity(1 << 20);
            let b1 = thread_counts().1;
            drop(big);
            b1 - b0
        })
        .join()
        .unwrap();
        assert!(child_bytes >= 1 << 20, "child saw its own 1 MiB");
        // Spawning a thread allocates a little *here* (join handle,
        // packet), but the child's 1 MiB buffer must not leak into this
        // thread's counter.
        let delta = thread_counts().1 - bytes_before;
        assert!(delta < 1 << 20, "main-thread delta {delta} includes child");
    }
}
