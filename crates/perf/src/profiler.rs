//! A gprof-style hierarchical region profiler.
//!
//! The paper's Fig. 4 is a partial call graph + execution profile of
//! CMT-bone obtained with gprof, showing the derivative (`ax_`-like)
//! kernel dominating. This profiler produces the same two artifacts from
//! explicitly instrumented regions: a *flat profile* (per-region self
//! time, % of total, call counts) and a *partial call graph* (parent →
//! child edges with inclusive times).
//!
//! Regions nest: `enter("step")`, `enter("deriv")`, `exit()`, `exit()`.
//! Self time of a region excludes time spent in its instrumented
//! children; inclusive time includes it.
//!
//! When the crate is built with the `count-alloc` feature, every region
//! also accumulates heap-allocation counts and bytes (from
//! [`crate::alloc::thread_counts`]), attributed to regions exactly like
//! wall time: a region's *self* allocations exclude those made inside
//! instrumented children. Without the feature the counters stay zero.

use std::collections::HashMap;
use std::time::Instant;

use crate::alloc::thread_counts;

/// Accumulated statistics of one region name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionStats {
    /// Number of times the region was entered.
    pub calls: u64,
    /// Inclusive wall time, seconds.
    pub inclusive_s: f64,
    /// Time spent in instrumented child regions, seconds.
    pub child_s: f64,
    /// Inclusive heap allocations (needs the `count-alloc` feature).
    pub allocs: u64,
    /// Heap allocations made in instrumented child regions.
    pub child_allocs: u64,
    /// Inclusive heap bytes allocated (needs the `count-alloc` feature).
    pub alloc_bytes: u64,
    /// Heap bytes allocated in instrumented child regions.
    pub child_alloc_bytes: u64,
}

impl RegionStats {
    /// Self (exclusive) time, seconds.
    pub fn self_s(&self) -> f64 {
        (self.inclusive_s - self.child_s).max(0.0)
    }

    /// Self (exclusive) heap allocations.
    pub fn self_allocs(&self) -> u64 {
        self.allocs.saturating_sub(self.child_allocs)
    }

    /// Self (exclusive) heap bytes allocated.
    pub fn self_alloc_bytes(&self) -> u64 {
        self.alloc_bytes.saturating_sub(self.child_alloc_bytes)
    }
}

struct Frame {
    name: String,
    start: Instant,
    child_s: f64,
    alloc_start: u64,
    bytes_start: u64,
    child_allocs: u64,
    child_bytes: u64,
    /// Allocations charged in from *other* threads (worker pools). The
    /// thread-local counters only see this rank thread, so worker-side
    /// allocations would otherwise vanish; they are added on top of the
    /// counter delta at exit rather than folded into `alloc_start`
    /// (which would underflow when the `count-alloc` feature is off and
    /// the counters stay at zero).
    extra_allocs: u64,
    extra_bytes: u64,
}

/// The profiler. Not thread-safe by design: each rank owns one (gprof is
/// per-process too); cross-rank aggregation happens at reporting time.
///
/// The hot path is allocation-free at steady state, so the profiler's own
/// bookkeeping never pollutes the per-region allocation counters: frame
/// names recycle through a spare-string pool, and the region/edge maps
/// use borrowed-`&str` lookups, cloning keys only the first time a name
/// appears (the same idiom as `simmpi`'s `CommRecorder`).
#[derive(Default)]
pub struct Profiler {
    regions: HashMap<String, RegionStats>,
    /// parent -> child -> (calls, inclusive_s), two-level so the steady
    /// state needs no owned key to look an edge up.
    edges: HashMap<String, HashMap<String, (u64, f64)>>,
    stack: Vec<Frame>,
    /// Retired frame-name strings, reused by the next `enter`.
    spares: Vec<String>,
}

impl Profiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enter a region.
    pub fn enter(&mut self, name: &str) {
        // Build the owned name from a recycled spare and pre-reserve the
        // stack before snapshotting the counters: after a few calls every
        // piece has its capacity and the enter itself allocates nothing.
        let mut owned = self.spares.pop().unwrap_or_default();
        owned.clear();
        owned.push_str(name);
        self.stack.reserve(1);
        let (alloc_start, bytes_start) = thread_counts();
        self.stack.push(Frame {
            name: owned,
            start: Instant::now(),
            child_s: 0.0,
            alloc_start,
            bytes_start,
            child_allocs: 0,
            child_bytes: 0,
            extra_allocs: 0,
            extra_bytes: 0,
        });
    }

    /// Charge allocations made on *other* threads to the innermost open
    /// region. Drivers call this after a worker-pool job with the pool's
    /// drained worker-side counters; without it those allocations are
    /// lost (each thread has its own counters) and, worse, a worker
    /// entering regions through a shared profiler would double-count.
    /// The charge lands in the region that is open *now*, inclusive, and
    /// flows to parents exactly like same-thread allocations.
    ///
    /// No-op when no region is open (e.g. a pool used outside
    /// instrumented code).
    pub fn charge_allocs(&mut self, allocs: u64, bytes: u64) {
        if let Some(frame) = self.stack.last_mut() {
            frame.extra_allocs += allocs;
            frame.extra_bytes += bytes;
        }
    }

    /// Exit the innermost open region.
    ///
    /// # Panics
    /// Panics if no region is open.
    pub fn exit(&mut self) {
        // Snapshot first: anything the bookkeeping below might allocate
        // (first-appearance key clones) must not be charged to the region.
        let (alloc_now, bytes_now) = thread_counts();
        let frame = self.stack.pop().expect("Profiler::exit without enter");
        let elapsed = frame.start.elapsed().as_secs_f64();
        let allocs = alloc_now - frame.alloc_start + frame.extra_allocs;
        let bytes = bytes_now - frame.bytes_start + frame.extra_bytes;
        if !self.regions.contains_key(frame.name.as_str()) {
            self.regions
                .insert(frame.name.clone(), RegionStats::default());
        }
        let stats = self.regions.get_mut(frame.name.as_str()).expect("present");
        stats.calls += 1;
        stats.inclusive_s += elapsed;
        stats.child_s += frame.child_s;
        stats.allocs += allocs;
        stats.child_allocs += frame.child_allocs;
        stats.alloc_bytes += bytes;
        stats.child_alloc_bytes += frame.child_bytes;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_s += elapsed;
            parent.child_allocs += allocs;
            parent.child_bytes += bytes;
            // Cross-thread charges are invisible to the parent's own
            // counter delta, so propagate them up explicitly or the
            // parent's inclusive count would undercount its children.
            parent.extra_allocs += frame.extra_allocs;
            parent.extra_bytes += frame.extra_bytes;
            if !self.edges.contains_key(parent.name.as_str()) {
                self.edges.insert(parent.name.clone(), HashMap::new());
            }
            let by_child = self.edges.get_mut(parent.name.as_str()).expect("present");
            if !by_child.contains_key(frame.name.as_str()) {
                by_child.insert(frame.name.clone(), (0, 0.0));
            }
            let edge = by_child.get_mut(frame.name.as_str()).expect("present");
            edge.0 += 1;
            edge.1 += elapsed;
        }
        self.spares.push(frame.name);
    }

    /// Run `f` inside a region (convenience wrapper around enter/exit).
    pub fn scope<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        self.enter(name);
        let out = f();
        self.exit();
        out
    }

    /// Whether any region is currently open.
    pub fn in_region(&self) -> bool {
        !self.stack.is_empty()
    }

    /// Freeze into a report.
    ///
    /// # Panics
    /// Panics if regions are still open (unbalanced enter/exit).
    pub fn report(&self) -> ProfileReport {
        assert!(
            self.stack.is_empty(),
            "profiler report with {} regions still open",
            self.stack.len()
        );
        let mut flat: Vec<(String, RegionStats)> = self
            .regions
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        flat.sort_by(|a, b| b.1.self_s().total_cmp(&a.1.self_s()));
        let mut edges: Vec<(String, String, u64, f64)> = self
            .edges
            .iter()
            .flat_map(|(p, by_child)| {
                by_child
                    .iter()
                    .map(move |(c, &(n, t))| (p.clone(), c.clone(), n, t))
            })
            .collect();
        edges.sort_by(|a, b| b.3.total_cmp(&a.3));
        ProfileReport { flat, edges }
    }

    /// Merge another profiler's totals into this one (for cross-rank
    /// aggregation; both must be fully exited).
    pub fn merge(&mut self, other: &Profiler) {
        assert!(self.stack.is_empty() && other.stack.is_empty());
        for (name, st) in &other.regions {
            let mine = self.regions.entry(name.clone()).or_default();
            mine.calls += st.calls;
            mine.inclusive_s += st.inclusive_s;
            mine.child_s += st.child_s;
            mine.allocs += st.allocs;
            mine.child_allocs += st.child_allocs;
            mine.alloc_bytes += st.alloc_bytes;
            mine.child_alloc_bytes += st.child_alloc_bytes;
        }
        for (parent, by_child) in &other.edges {
            let mine = self.edges.entry(parent.clone()).or_default();
            for (child, &(n, t)) in by_child {
                let e = mine.entry(child.clone()).or_insert((0, 0.0));
                e.0 += n;
                e.1 += t;
            }
        }
    }
}

/// A frozen profile: flat rows (sorted by self time, descending) and call
/// edges (sorted by inclusive time).
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// `(region, stats)` sorted by self time descending.
    pub flat: Vec<(String, RegionStats)>,
    /// `(parent, child, calls, inclusive seconds)` sorted by time.
    pub edges: Vec<(String, String, u64, f64)>,
}

impl ProfileReport {
    /// Total self time over all regions (the flat profile denominator).
    pub fn total_self_s(&self) -> f64 {
        self.flat.iter().map(|(_, s)| s.self_s()).sum()
    }

    /// Self-time share of one region in `[0, 1]`; 0 for unknown regions.
    pub fn share(&self, name: &str) -> f64 {
        let total = self.total_self_s();
        if total <= 0.0 {
            return 0.0;
        }
        self.flat
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.self_s() / total)
            .unwrap_or(0.0)
    }

    /// Render a gprof-like flat profile. When any region saw heap
    /// allocations (the `count-alloc` build), two extra columns report
    /// self allocations and self bytes per region.
    pub fn render_flat(&self) -> String {
        let total = self.total_self_s().max(1e-300);
        let with_allocs = self.flat.iter().any(|(_, s)| s.allocs > 0);
        let mut out = if with_allocs {
            String::from("  %time     self(s)    calls      allocs       bytes  name\n")
        } else {
            String::from("  %time     self(s)    calls  name\n")
        };
        for (name, s) in &self.flat {
            if with_allocs {
                out.push_str(&format!(
                    "{:7.2} {:11.4} {:8} {:11} {:11}  {}\n",
                    100.0 * s.self_s() / total,
                    s.self_s(),
                    s.calls,
                    s.self_allocs(),
                    s.self_alloc_bytes(),
                    name
                ));
            } else {
                out.push_str(&format!(
                    "{:7.2} {:11.4} {:8}  {}\n",
                    100.0 * s.self_s() / total,
                    s.self_s(),
                    s.calls,
                    name
                ));
            }
        }
        out
    }

    /// Render the partial call graph (parent -> child edges).
    pub fn render_call_graph(&self) -> String {
        let mut out = String::from("  parent -> child                         calls   incl(s)\n");
        for (p, c, n, t) in &self.edges {
            out.push_str(&format!(
                "  {:38} {:7} {:9.4}\n",
                format!("{p} -> {c}"),
                n,
                t
            ));
        }
        out
    }
}

/// Wire-format codec so socket-backend mini-app ranks can ship their
/// profiles back to the launcher for the cross-rank merge. Only fully
/// exited profilers travel (the stack and the spare-string pool are
/// transient bookkeeping and are not encoded); entries are sorted by name
/// so the encoding is byte-stable across `HashMap` iteration orders.
impl simmpi::WireCodec for Profiler {
    fn encode(&self, buf: &mut Vec<u8>) {
        assert!(
            self.stack.is_empty(),
            "cannot serialize a profiler with open regions"
        );
        let mut regions: Vec<(&String, &RegionStats)> = self.regions.iter().collect();
        regions.sort_by_key(|(name, _)| name.as_str());
        (regions.len()).encode(buf);
        for (name, s) in regions {
            name.encode(buf);
            s.calls.encode(buf);
            s.inclusive_s.encode(buf);
            s.child_s.encode(buf);
            s.allocs.encode(buf);
            s.child_allocs.encode(buf);
            s.alloc_bytes.encode(buf);
            s.child_alloc_bytes.encode(buf);
        }
        let mut edges: Vec<(&String, &String, u64, f64)> = self
            .edges
            .iter()
            .flat_map(|(p, by_child)| by_child.iter().map(move |(c, &(n, t))| (p, c, n, t)))
            .collect();
        edges.sort_by_key(|(p, c, _, _)| (p.as_str(), c.as_str()));
        edges.len().encode(buf);
        for (p, c, n, t) in edges {
            p.encode(buf);
            c.encode(buf);
            n.encode(buf);
            t.encode(buf);
        }
    }

    fn decode(r: &mut simmpi::WireReader<'_>) -> Result<Self, simmpi::WireError> {
        let mut prof = Profiler::new();
        let nregions = r.count(9)?;
        for _ in 0..nregions {
            let name = String::decode(r)?;
            let stats = RegionStats {
                calls: r.u64()?,
                inclusive_s: r.f64()?,
                child_s: r.f64()?,
                allocs: r.u64()?,
                child_allocs: r.u64()?,
                alloc_bytes: r.u64()?,
                child_alloc_bytes: r.u64()?,
            };
            prof.regions.insert(name, stats);
        }
        let nedges = r.count(18)?;
        for _ in 0..nedges {
            let parent = String::decode(r)?;
            let child = String::decode(r)?;
            let calls = r.u64()?;
            let time = r.f64()?;
            prof.edges
                .entry(parent)
                .or_default()
                .insert(child, (calls, time));
        }
        Ok(prof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let t = Instant::now();
        while t.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn self_time_excludes_children() {
        let mut p = Profiler::new();
        p.enter("outer");
        spin(Duration::from_millis(20));
        p.enter("inner");
        spin(Duration::from_millis(30));
        p.exit();
        p.exit();
        let r = p.report();
        let outer = &r.flat.iter().find(|(n, _)| n == "outer").unwrap().1;
        let inner = &r.flat.iter().find(|(n, _)| n == "inner").unwrap().1;
        assert!(
            outer.inclusive_s >= 0.049,
            "outer incl {}",
            outer.inclusive_s
        );
        assert!(outer.self_s() < 0.03, "outer self {}", outer.self_s());
        assert!(inner.self_s() >= 0.029, "inner self {}", inner.self_s());
        // inner is the hotter self-time region, so it sorts first
        assert_eq!(r.flat[0].0, "inner");
    }

    #[test]
    fn calls_counted_and_edges_recorded() {
        let mut p = Profiler::new();
        for _ in 0..5 {
            p.enter("step");
            p.enter("deriv");
            p.exit();
            p.enter("deriv");
            p.exit();
            p.exit();
        }
        let r = p.report();
        let deriv = &r.flat.iter().find(|(n, _)| n == "deriv").unwrap().1;
        assert_eq!(deriv.calls, 10);
        let edge = r
            .edges
            .iter()
            .find(|(pa, ch, _, _)| pa == "step" && ch == "deriv")
            .unwrap();
        assert_eq!(edge.2, 10);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut p = Profiler::new();
        p.scope("a", || spin(Duration::from_millis(5)));
        p.scope("b", || spin(Duration::from_millis(10)));
        let r = p.report();
        let sum = r.share("a") + r.share("b");
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(r.share("b") > r.share("a"));
        assert_eq!(r.share("nonexistent"), 0.0);
    }

    #[test]
    fn merge_adds_totals() {
        let mut a = Profiler::new();
        a.scope("x", || spin(Duration::from_millis(2)));
        let mut b = Profiler::new();
        b.scope("x", || spin(Duration::from_millis(2)));
        b.scope("y", || {});
        a.merge(&b);
        let r = a.report();
        let x = &r.flat.iter().find(|(n, _)| n == "x").unwrap().1;
        assert_eq!(x.calls, 2);
        assert!(r.flat.iter().any(|(n, _)| n == "y"));
    }

    #[test]
    fn render_contains_rows() {
        let mut p = Profiler::new();
        p.scope("kernel", || spin(Duration::from_millis(1)));
        let r = p.report();
        assert!(r.render_flat().contains("kernel"));
    }

    #[test]
    fn wire_roundtrip_preserves_regions_and_edges() {
        use simmpi::WireCodec;
        let mut p = Profiler::new();
        for _ in 0..3 {
            p.enter("step");
            p.enter("deriv");
            p.exit();
            p.exit();
        }
        p.scope("quiet", || {});
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut r = simmpi::WireReader::new(&buf);
        let back = Profiler::decode(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "trailing bytes");
        let by_name = |rep: &ProfileReport| {
            let mut flat = rep.flat.clone();
            flat.sort_by(|a, b| a.0.cmp(&b.0));
            let mut edges = rep.edges.clone();
            edges.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
            (flat, edges)
        };
        let (af, ae) = by_name(&p.report());
        let (bf, be) = by_name(&back.report());
        assert_eq!(af, bf);
        assert_eq!(ae, be);
        // the restored profiler merges like a live one
        let mut merged = Profiler::new();
        merged.merge(&back);
        assert_eq!(by_name(&merged.report()).0, af);
    }

    #[test]
    #[should_panic]
    fn wire_encode_with_open_region_panics() {
        use simmpi::WireCodec;
        let mut p = Profiler::new();
        p.enter("open");
        p.encode(&mut Vec::new());
    }

    #[test]
    #[should_panic]
    fn report_with_open_region_panics() {
        let mut p = Profiler::new();
        p.enter("open");
        let _ = p.report();
    }

    #[test]
    #[should_panic]
    fn exit_without_enter_panics() {
        let mut p = Profiler::new();
        p.exit();
    }

    #[test]
    fn self_allocs_subtract_children() {
        let s = RegionStats {
            calls: 1,
            allocs: 10,
            child_allocs: 7,
            alloc_bytes: 4096,
            child_alloc_bytes: 1024,
            ..Default::default()
        };
        assert_eq!(s.self_allocs(), 3);
        assert_eq!(s.self_alloc_bytes(), 3072);
    }

    #[test]
    fn charged_worker_allocs_attributed_like_local_ones() {
        let mut p = Profiler::new();
        // Warm pass interns the names so the second pass is steady-state
        // (the profiler's own bookkeeping then allocates nothing even in
        // `count-alloc` builds) and the deltas below are exact.
        p.enter("outer");
        p.enter("inner");
        p.exit();
        p.exit();
        let before = p.report();
        p.enter("outer");
        p.enter("inner");
        // e.g. drained from a WorkerPool after a pooled element loop
        p.charge_allocs(5, 512);
        p.exit();
        p.charge_allocs(2, 64);
        p.exit();
        let after = p.report();
        let delta = |n: &str| {
            let find = |r: &ProfileReport| r.flat.iter().find(|(m, _)| m == n).unwrap().1.clone();
            let (a, b) = (find(&before), find(&after));
            (
                b.allocs - a.allocs,
                b.self_allocs() - a.self_allocs(),
                b.self_alloc_bytes() - a.self_alloc_bytes(),
            )
        };
        let (inner_incl, inner_self, inner_bytes) = delta("inner");
        assert_eq!(inner_incl, 5);
        assert_eq!(inner_self, 5);
        assert_eq!(inner_bytes, 512);
        // outer's inclusive count includes inner's charge, its self
        // count only its own: no double-count, no lost samples
        let (outer_incl, outer_self, outer_bytes) = delta("outer");
        assert_eq!(outer_incl, 7);
        assert_eq!(outer_self, 2);
        assert_eq!(outer_bytes, 64);
    }

    #[test]
    fn charge_with_no_open_region_is_a_noop() {
        let mut p = Profiler::new();
        p.charge_allocs(9, 9);
        p.scope("r", || {});
        p.charge_allocs(9, 9);
        let r = p.report();
        #[cfg(not(feature = "count-alloc"))]
        assert_eq!(r.flat[0].1.allocs, 0);
        let _ = r;
    }

    #[cfg(feature = "count-alloc")]
    #[test]
    fn allocations_attributed_to_regions() {
        let mut p = Profiler::new();
        p.enter("outer");
        let a: Vec<u8> = Vec::with_capacity(100);
        p.enter("inner");
        let b: Vec<u8> = Vec::with_capacity(5000);
        p.exit();
        p.exit();
        p.scope("quiet", || {});
        drop((a, b));
        let r = p.report();
        let find = |n: &str| r.flat.iter().find(|(m, _)| m == n).unwrap().1.clone();
        let outer = find("outer");
        let inner = find("inner");
        let quiet = find("quiet");
        assert!(inner.self_allocs() >= 1);
        assert!(inner.self_alloc_bytes() >= 5000);
        assert!(outer.self_allocs() >= 1);
        assert!(
            outer.self_alloc_bytes() < 5000,
            "inner's 5000-byte vec must not count as outer self ({})",
            outer.self_alloc_bytes()
        );
        assert!(outer.allocs >= inner.allocs, "inclusive includes children");
        assert_eq!(quiet.allocs, 0, "an allocation-free region reports 0");
        assert!(r.render_flat().contains("allocs"));
    }
}
