//! # cmt-perf
//!
//! Performance instrumentation for the CMT-bone reproduction — the
//! measurement machinery behind every figure of the paper's evaluation:
//!
//! * [`profiler`] — a gprof-style hierarchical region profiler (call
//!   counts, self/total time, flat profile and partial call graph): the
//!   instrument behind Fig. 4's execution profile.
//! * [`papi`] — a documented analytic model translating the exact
//!   per-kernel operation counts of [`cmt_core::cost`] into estimated
//!   total-instruction and total-cycle counts per kernel *variant* and
//!   *direction*, standing in for the PAPI hardware counters of
//!   Figs. 5-6. The model's parameters are calibrated so the basic-vs-
//!   optimized ratios match the paper's measurements on the AMD Opteron
//!   6378 (dudt ~2.3x, dudr ~1.0x, duds ~1x).
//! * [`alloc`] — thread-local heap-allocation counters (feature-gated
//!   counting global allocator) that the profiler attributes to regions,
//!   turning "zero allocations at steady state" into an asserted fact.
//! * [`mpip`] — mpiP-style aggregation of [`simmpi::CommStats`] across
//!   ranks: per-rank MPI time fractions (Fig. 8), the most expensive call
//!   sites (Fig. 9), and per-call-site message volumes (Fig. 10), with
//!   plain-text renderers shaped like the paper's plots.

#![warn(missing_docs)]

pub mod alloc;
pub mod mpip;
pub mod papi;
pub mod profiler;

/// Profiler region names shared across the solver drivers, so
/// cross-cutting machinery (checkpoint/restart, recovery) shows up under
/// one name in every mini-app's Fig. 4-style profile.
pub mod regions {
    /// Checkpoint capture: encode solver state, replicate to the partner
    /// rank, optionally mirror to disk.
    pub const CHECKPOINT: &str = "checkpoint (encode + replicate)";
    /// Rollback recovery: re-fetch a killed rank's checkpoint from its
    /// replica holder, restore solver state, re-enter the loop.
    pub const RECOVERY: &str = "recovery (restore + rollback)";
    /// `cmt-verify` finalize sweep: the end-of-run barrier plus the
    /// mailbox scan for leaked messages and abandoned exchanges. Also
    /// isolates the verifier's cost in overhead comparisons.
    pub const VERIFY: &str = "verify (finalize sweep)";
    /// Load-balancer monitor + decision: gather the per-element /
    /// per-rank cost vector and run the deterministic repartition
    /// policy.
    pub const LB_MONITOR: &str = "lb monitor (gather + decide)";
    /// Load-balancer migration: ship element state blocks and resident
    /// particles to their new owners, then rebuild gather–scatter plans
    /// and local buffers.
    pub const LB_MIGRATE: &str = "lb migrate (ship + rebuild)";
    /// Passive-particle advection (interpolate velocity at each particle,
    /// RK2 push).
    pub const PARTICLE_ADVECT: &str = "particle_advect";
    /// Passive-particle ownership migration over the crystal router.
    pub const PARTICLE_MIGRATE: &str = "particle_migrate (crystal router)";
}

pub use mpip::{MpipReport, SiteAggregate};
pub use papi::{model_kernel, PapiEstimate};
pub use profiler::{ProfileReport, Profiler};
