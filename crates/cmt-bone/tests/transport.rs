//! Cross-backend identity: the socket transport must reproduce the
//! in-process run bit for bit.
//!
//! These tests drive the installed `cmt-bone` binary (not the library)
//! because the socket launcher re-execs the current executable to spawn
//! rank children — the full process path only exists for real binaries.
//! Each scenario runs the paper's Fig. 4 configuration once per backend
//! and compares the `state` fingerprint printed by `--quiet`.

use std::process::Command;

const FIG4: &[&str] = &[
    "--ranks", "4", "--n", "5", "--elems", "8", "--steps", "8", "--fields", "2", "--method",
    "pairwise", "--quiet",
];

/// Run the cmt-bone binary with the Fig. 4 config plus `extra` args and
/// return the `state {hex}` fingerprint from its quiet output.
fn state_hash(extra: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_cmt-bone"))
        .args(FIG4)
        .args(extra)
        .output()
        .expect("spawn cmt-bone");
    assert!(
        out.status.success(),
        "cmt-bone {extra:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    let line = stdout
        .lines()
        .find(|l| l.contains("state "))
        .unwrap_or_else(|| panic!("no state line in output:\n{stdout}"));
    let hash = line
        .split("state ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("malformed state line: {line}"));
    assert_eq!(hash.len(), 16, "state hash should be 16 hex digits: {line}");
    hash.to_string()
}

#[test]
fn socket_matches_inproc() {
    let inproc = state_hash(&[]);
    let socket = state_hash(&["--transport", "socket"]);
    assert_eq!(inproc, socket, "socket backend diverged from inproc");
}

#[test]
fn socket_matches_inproc_under_verify() {
    let inproc = state_hash(&["--verify"]);
    let socket = state_hash(&["--transport", "socket", "--verify"]);
    assert_eq!(inproc, socket, "verified socket run diverged from inproc");
}

#[test]
fn socket_matches_inproc_and_static_run_under_load_balancing() {
    // clustered particle cloud + aggressive threshold: rebalances fire,
    // and the partition-independent state hash must not move — across
    // the balancer on/off axis AND the transport axis.
    let particles = &["--particles-per-elem", "6", "--particle-cluster", "0.25"];
    let lb = &["--lb-every", "2", "--lb-threshold", "1.05"];
    let static_inproc = state_hash(particles);
    let lb_inproc = {
        let mut args = particles.to_vec();
        args.extend_from_slice(lb);
        state_hash(&args)
    };
    let lb_socket = {
        let mut args = vec!["--transport", "socket"];
        args.extend_from_slice(particles);
        args.extend_from_slice(lb);
        state_hash(&args)
    };
    assert_eq!(
        static_inproc, lb_inproc,
        "load balancing changed the physics"
    );
    assert_eq!(lb_inproc, lb_socket, "socket LB run diverged from inproc");
}

#[test]
fn socket_matches_inproc_through_kill_and_rollback() {
    let fault = &[
        "--checkpoint-every",
        "2",
        "--fault-plan",
        "kill:rank=2,step=5",
    ];
    let inproc = state_hash(fault);
    let socket = {
        let mut args = vec!["--transport", "socket"];
        args.extend_from_slice(fault);
        state_hash(&args)
    };
    assert_eq!(
        inproc, socket,
        "socket kill+rollback recovery diverged from inproc"
    );
}
