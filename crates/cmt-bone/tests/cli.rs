//! CLI-level checks of the `--variant` surface: every kernel tier the
//! library exposes must be reachable (and spelled) from the binary, the
//! simd tier must reproduce the scalar run bit for bit, and a bad
//! spelling must fail fast with the full usage list instead of running.

use std::process::Command;

const SMALL: &[&str] = &[
    "--ranks", "2", "--n", "5", "--elems", "4", "--steps", "4", "--fields", "2", "--method",
    "pairwise", "--quiet",
];

fn run_bin(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cmt-bone"))
        .args(SMALL)
        .args(extra)
        .output()
        .expect("spawn cmt-bone")
}

fn state_hash(extra: &[&str]) -> String {
    let out = run_bin(extra);
    assert!(
        out.status.success(),
        "cmt-bone {extra:?} failed:\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    let line = stdout
        .lines()
        .find(|l| l.contains("state "))
        .unwrap_or_else(|| panic!("no state line in output:\n{stdout}"));
    line.split("state ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("state hash token")
        .to_string()
}

#[test]
fn every_variant_spelling_is_accepted_and_simd_matches_opt() {
    let opt = state_hash(&["--variant", "opt"]);
    for v in ["basic", "spec", "batched", "unroll", "simd", "auto"] {
        let h = state_hash(&["--variant", v]);
        if v == "simd" {
            assert_eq!(h, opt, "--variant simd diverged from opt");
        }
        assert_eq!(h.len(), 16, "--variant {v}: malformed state hash {h}");
    }
}

#[test]
fn unknown_variant_fails_with_usage_listing_all_tiers() {
    let out = run_bin(&["--variant", "avx512"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("basic|opt|spec|batched|unroll|simd|auto"),
        "usage does not list every variant:\n{err}"
    );
}

#[test]
fn help_lists_simd_and_auto() {
    let out = Command::new(env!("CARGO_BIN_EXE_cmt-bone"))
        .arg("--help")
        .output()
        .expect("spawn cmt-bone");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("simd"), "help misses simd:\n{err}");
    assert!(err.contains("auto"), "help misses auto:\n{err}");
}
