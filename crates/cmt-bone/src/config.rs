//! Mini-app configuration.

use std::path::PathBuf;

use cmt_core::KernelVariant;
use cmt_gs::{AutotuneOptions, GsMethod};
use simmpi::{FaultPlan, NetworkModel, TransportKind};

/// How the RK stage schedules its face exchanges relative to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pipeline {
    /// Legacy schedule: one blocking `gs_op` per field per stage, issued
    /// between surface extraction and flux lifting. Kept as the baseline
    /// the overlap measurements compare against.
    Blocking,
    /// Split-phase schedule: extract faces for *all* fields, start one
    /// batched exchange (`k` fields in one message per neighbor), run the
    /// flux-divergence and dealias volume kernels while messages are in
    /// flight, then finish the exchange and lift. Hides exchange latency
    /// behind compute and cuts per-stage message count by the field
    /// count.
    #[default]
    Overlapped,
}

impl Pipeline {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Pipeline::Blocking => "blocking",
            Pipeline::Overlapped => "overlapped",
        }
    }
}

/// CMT-bone run configuration. The defaults are a laptop-scale version of
/// the paper's canonical setup (its Fig. 7 block is 256 ranks x 100
/// elements x N = 10; thread-rank worlds reproduce that exactly when
/// asked, see the `figures` binary).
///
/// ```
/// use cmt_bone::{run, Config};
///
/// let report = run(&Config {
///     ranks: 2,
///     n: 4,
///     elems_per_rank: 4,
///     steps: 2,
///     fields: 1,
///     ..Default::default()
/// });
/// assert!(report.checksum.is_finite());
/// assert!(report.render().contains("Execution profile"));
/// ```
#[derive(Debug, Clone)]
pub struct Config {
    /// GLL points per direction per element (the paper's `N`, 5..=25).
    pub n: usize,
    /// Elements per rank (the paper's `Nel` per process).
    pub elems_per_rank: usize,
    /// Number of ranks (`P`).
    pub ranks: usize,
    /// Timesteps to run.
    pub steps: usize,
    /// Number of conserved-variable fields (5 = mass, 3 momentum, energy).
    pub fields: usize,
    /// Derivative-kernel implementation (ignored when `kernel_autotune`
    /// is set — the startup kernel autotune picks it instead).
    pub variant: KernelVariant,
    /// Autotune the derivative kernel at startup (`--variant auto`): time
    /// every variant × chunk-grain candidate on this run's `(N, elems)`
    /// shape, average across ranks, and run the winner — the gs-style
    /// Fig. 7 protocol applied to compute.
    pub kernel_autotune: bool,
    /// Worker threads per rank for the hybrid MPI+X element loops (1 =
    /// pure MPI; >1 shares the overlap-window element loops across a
    /// work-stealing pool while ranks stay the communication unit).
    pub workers: usize,
    /// Force a gather-scatter method; `None` runs the startup autotune,
    /// as CMT-nek/CMT-bone do.
    pub method: Option<GsMethod>,
    /// Autotune options (trials, all_reduce size cap).
    pub autotune: AutotuneOptions,
    /// Steps between timestep-control allreduces (the vector-reduction
    /// workload component).
    pub cfl_interval: usize,
    /// Dealiasing: map each field's RHS to an `m`-point fine mesh and
    /// back every stage (the paper's §V "dealiasing reference elements,
    /// where an element is first mapped to a finer mesh and later mapped
    /// back"). `None` disables; `Some(m)` requires `m >= n`. The mapping
    /// is numerically the identity on the polynomial data (validated in
    /// tests) but adds the paper's second small-matrix-multiply workload.
    pub dealias_m: Option<usize>,
    /// Viscosity `nu` of the proxy fields (`None` = inviscid advection).
    /// With viscosity on, every stage also runs the BR1 gradient and
    /// viscous-divergence passes — doubling the derivative-kernel load
    /// and quadrupling the surface exchanges, the workload step-up the
    /// full Navier–Stokes CMT-nek brings over the inviscid core.
    pub viscosity: Option<f64>,
    /// Constant advection velocity driving the proxy fields.
    pub velocity: [f64; 3],
    /// CFL number for the stable-timestep formula.
    pub cfl: f64,
    /// Optional network model for modelled-time accounting.
    pub net: Option<NetworkModel>,
    /// Exchange scheduling: blocking per-field `gs_op`s (the legacy
    /// baseline) or the batched split-phase overlap.
    pub pipeline: Pipeline,
    /// Checkpoint every this many steps (0 disables). Required non-zero
    /// when the fault plan schedules rank kills.
    pub checkpoint_every: usize,
    /// Mirror every checkpoint to this directory (enables cross-run
    /// `--restart`); `None` keeps checkpoints in memory only.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the per-rank checkpoints in this directory instead of
    /// starting at step 0.
    pub restart_from: Option<PathBuf>,
    /// Deterministic fault schedule injected into the world (message
    /// delays, drop/retransmit, scheduled rank kills).
    pub fault_plan: Option<FaultPlan>,
    /// Run under the `cmt-verify` dynamic checker: deadlock detection
    /// over blocked receives, collective-matching verification, finalize
    /// message-leak sweep, and the vector-clock race detector. Findings
    /// land in [`crate::RunReport::verify`].
    pub verify: bool,
    /// Seeded schedule perturbation (`--chaos-sched`): overlay random
    /// message delays on the world to explore alternative interleavings.
    /// Composes with `fault_plan` (kills and drops are kept).
    pub chaos_sched: Option<u64>,
    /// Recycle message payload buffers through the per-rank
    /// [`simmpi::BufferPool`] (the zero-allocation steady state). `false`
    /// (`--no-pool`) falls back to plain allocation per message — the
    /// escape hatch for A/B comparisons and for debugging buffer reuse.
    pub pool: bool,
    /// Communication backend: in-process mailboxes (the default, every
    /// rank a thread) or the multi-process socket transport (`--transport
    /// socket`, every rank a spawned child over Unix-domain or TCP
    /// sockets). Results are bitwise identical between backends.
    pub transport: TransportKind,
    /// Passive tracer particles per element seeded at startup (0
    /// disables the particle phase).
    pub particles_per_elem: usize,
    /// Cluster the seeded particles into the leading `frac` of the
    /// domain's x extent instead of spreading them uniformly — the
    /// imbalanced cloud the load balancer exists for. Requires
    /// `particles_per_elem > 0`; `frac` in `(0, 1]`.
    pub particle_cluster: Option<f64>,
    /// Evaluate the dynamic load balancer every this many steps (0
    /// disables). Requires the particle phase — particle drift is what
    /// creates the imbalance the balancer redistributes.
    pub lb_every: usize,
    /// Rebalance trigger: repartition when max-over-mean effective rank
    /// load exceeds this (1.0 = perfectly balanced; must be > 1.0 so
    /// the balanced state is a fixed point).
    pub lb_threshold: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 10,
            elems_per_rank: 27,
            ranks: 8,
            steps: 20,
            fields: 5,
            variant: KernelVariant::Optimized,
            kernel_autotune: false,
            workers: 1,
            method: None,
            autotune: AutotuneOptions::default(),
            cfl_interval: 5,
            dealias_m: None,
            viscosity: None,
            velocity: [0.8, 0.53, 0.31],
            cfl: 0.25,
            net: None,
            pipeline: Pipeline::default(),
            checkpoint_every: 0,
            checkpoint_dir: None,
            restart_from: None,
            fault_plan: None,
            verify: false,
            chaos_sched: None,
            pool: true,
            transport: TransportKind::default(),
            particles_per_elem: 0,
            particle_cluster: None,
            lb_every: 0,
            lb_threshold: 1.25,
        }
    }
}

impl Config {
    /// The paper's Fig. 7 setup: 256 ranks, 100 elements/rank, N = 10.
    pub fn paper_fig7() -> Self {
        Config {
            n: 10,
            elems_per_rank: 100,
            ranks: 256,
            steps: 1,
            ..Default::default()
        }
    }

    /// Total elements across all ranks.
    pub fn total_elems(&self) -> usize {
        self.ranks * self.elems_per_rank
    }

    /// Grid points per element (`N^3`).
    pub fn points_per_element(&self) -> usize {
        self.n * self.n * self.n
    }

    /// Validate parameter sanity; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 2 {
            return Err(format!("n must be >= 2, got {}", self.n));
        }
        if self.n > 25 {
            return Err(format!(
                "n must be <= 25 (the paper's range), got {}",
                self.n
            ));
        }
        if self.workers == 0 {
            return Err("workers must be positive (1 = pure MPI)".into());
        }
        if self.ranks == 0 {
            return Err("ranks must be positive".into());
        }
        if self.elems_per_rank == 0 {
            return Err("elems_per_rank must be positive".into());
        }
        if self.fields == 0 {
            return Err("fields must be positive".into());
        }
        if self.cfl_interval == 0 {
            return Err("cfl_interval must be positive".into());
        }
        if !(self.cfl > 0.0) {
            return Err("cfl must be positive".into());
        }
        if let Some(m) = self.dealias_m {
            if m < self.n {
                return Err(format!(
                    "dealias mesh must be at least as fine as n ({m} < {})",
                    self.n
                ));
            }
        }
        if let Some(nu) = self.viscosity {
            if !(nu > 0.0) {
                return Err(format!("viscosity must be positive, got {nu}"));
            }
        }
        if let Some(dir) = &self.restart_from {
            if !dir.is_dir() {
                return Err(format!(
                    "restart directory {} does not exist",
                    dir.display()
                ));
            }
        }
        if let Some(frac) = self.particle_cluster {
            if self.particles_per_elem == 0 {
                return Err("particle_cluster requires particles_per_elem > 0".into());
            }
            if !(frac > 0.0) || frac > 1.0 {
                return Err(format!("particle_cluster must be in (0, 1], got {frac}"));
            }
        }
        if self.lb_every > 0 {
            if self.particles_per_elem == 0 {
                return Err("load balancing (lb_every) requires particles_per_elem > 0 \
                     — particle drift is the imbalance source"
                    .into());
            }
            if !(self.lb_threshold > 1.0) {
                return Err(format!(
                    "lb_threshold must be > 1.0 (max/mean load trigger), got {}",
                    self.lb_threshold
                ));
            }
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate(self.ranks)?;
            if !plan.kills.is_empty() && self.checkpoint_every == 0 {
                return Err("fault plan schedules rank kills but checkpointing is off \
                     (set checkpoint_every)"
                    .into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(Config::default().validate().is_ok());
    }

    #[test]
    fn paper_fig7_matches_paper_block() {
        let c = Config::paper_fig7();
        assert_eq!(c.ranks, 256);
        assert_eq!(c.elems_per_rank, 100);
        assert_eq!(c.n, 10);
        assert_eq!(c.total_elems(), 25600);
        assert_eq!(c.points_per_element(), 1000);
    }

    #[test]
    fn validation_catches_bad_params() {
        for breaker in [
            &(|c: &mut Config| c.n = 1) as &dyn Fn(&mut Config),
            &|c| c.n = 26,
            &|c| c.workers = 0,
            &|c| c.ranks = 0,
            &|c| c.elems_per_rank = 0,
            &|c| c.fields = 0,
            &|c| c.cfl_interval = 0,
            &|c| c.cfl = 0.0,
            // LB without particles: nothing to balance
            &|c| c.lb_every = 4,
            // non-triggering threshold
            &|c| {
                c.particles_per_elem = 2;
                c.lb_every = 4;
                c.lb_threshold = 1.0;
            },
            &|c| {
                c.particles_per_elem = 2;
                c.lb_every = 4;
                c.lb_threshold = -2.0;
            },
            // clustering without particles, or with a bad fraction
            &|c| c.particle_cluster = Some(0.25),
            &|c| {
                c.particles_per_elem = 2;
                c.particle_cluster = Some(0.0);
            },
            &|c| {
                c.particles_per_elem = 2;
                c.particle_cluster = Some(1.5);
            },
        ] {
            let mut c = Config::default();
            breaker(&mut c);
            assert!(c.validate().is_err());
        }
    }
}
