//! The mini-app driver: setup, autotune, and the instrumented timestep
//! loop.

use std::f64::consts::PI;
use std::time::Instant;

use cmt_core::face::{self, Face};
use cmt_core::kernels::autotune::{time_candidates, KernelAutotuneOptions, KernelAutotuneReport};
use cmt_core::kernels::{self, DerivDir};
use cmt_core::ops::{
    advect_volume_rhs, advect_volume_rhs_slices, upwind_face_correction, ElementGeom,
};
use cmt_core::poly::Basis;
use cmt_core::{rk, Field};
use cmt_gs::{autotune, AutotuneReport, GsHandle, GsMethod, GsOp};
use cmt_lb::{decide, gather_costs, migrate_blocks, CostModel};
use cmt_mesh::{face_exchange_gids_for, ElemPartition, MeshConfig, RankMesh};
use cmt_particles::{Particle, ParticleSet};
use cmt_perf::{MpipReport, Profiler};
use cmt_resilience::{hash, load_checkpoint, Checkpoint, Resilience};
use cmt_verify::Verifier;
use simmpi::{
    chunk_count, chunk_range, Rank, ReduceOp, SharedSliceMut, WireCodec, WireError, WireReader,
    World,
};
use std::sync::Arc;

use crate::config::{Config, Pipeline};
use crate::report::{LbSummary, RunReport};

/// Profiler region names used by the driver, mirroring the routines of
/// the paper's Fig. 4 call graph.
pub(crate) mod regions {
    /// The derivative (flux-divergence) kernel — the paper's `ax_`.
    pub const DERIV: &str = "ax_cmt (flux divergence derivs)";
    /// Surface extraction — the paper's `full2face_cmt`.
    pub const FULL2FACE: &str = "full2face_cmt";
    /// The gather-scatter surface exchange — the paper's `gs_op_`.
    pub const GS_OP: &str = "gs_op_ (numerical flux exchange)";
    /// Split-phase exchange start (gather + post sends/recvs). Nested
    /// under [`GS_OP`] so the parent row keeps the total exchange time.
    pub const GS_START: &str = "gs_op_start (post exchange)";
    /// Split-phase exchange finish (wait + combine + scatter).
    pub const GS_FINISH: &str = "gs_op_finish (wait + combine)";
    /// Upwind lifting of the exchanged fluxes back into the volume.
    pub const FLUX_LIFT: &str = "add_face2full (flux lift)";
    /// Runge-Kutta stage update.
    pub const RK: &str = "rk_stage_update";
    /// Timestep-control reduction.
    pub const CFL: &str = "cfl_allreduce";
    /// Dealiasing fine-mesh map (paper §V's second matmul workload).
    pub const DEALIAS: &str = "dealias (fine-mesh map)";
    /// BR1 viscous passes (gradient + viscous divergence).
    pub const VISCOUS: &str = "viscous_br1 (grad + div)";
    /// Whole setup phase (mesh + gs_setup + autotune).
    pub const SETUP: &str = "setup (gs_setup + autotune)";
    /// The whole timestep loop.
    pub const LOOP: &str = "timestep_loop";
}

/// Final state of one rank's fields, for validation against the serial
/// reference solver.
#[derive(Debug, Clone)]
pub struct SolutionDump {
    /// Global element id of each local element, in local order.
    pub global_elem_ids: Vec<usize>,
    /// Final per-field data, each in `Field` layout.
    pub fields: Vec<Vec<f64>>,
    /// Simulated time reached.
    pub time: f64,
    /// Timestep used.
    pub dt: f64,
}

struct RankOutput {
    profiler: Profiler,
    autotune: Option<AutotuneReport>,
    kernel_autotune: Option<KernelAutotuneReport>,
    chosen: GsMethod,
    checksum: f64,
    /// Global ids of the elements this rank finished owning, with their
    /// per-element state hashes — merged host-side in ascending-gid
    /// order so the run fingerprint is independent of the partition.
    elem_gids: Vec<u64>,
    elem_hashes: Vec<u64>,
    lb: Option<LbSummary>,
    wall_s: f64,
    modeled_s: f64,
    solution: Option<SolutionDump>,
}

// ---- wire codecs -----------------------------------------------------
// The socket transport ships each rank's measurement set back to the
// launcher as bytes, so everything in `RankOutput` needs a wire form.
// `KernelVariant` and the kernel-autotune report live in `cmt-core`,
// which does not depend on `simmpi` — the orphan rule keeps us from
// implementing `WireCodec` for them there, so they are encoded
// field-by-field with local helpers instead.

fn encode_variant(v: cmt_core::KernelVariant, buf: &mut Vec<u8>) {
    let idx = cmt_core::KernelVariant::ALL
        .iter()
        .position(|&m| m == v)
        .expect("variant in ALL") as u8;
    idx.encode(buf);
}

fn decode_variant(r: &mut WireReader<'_>) -> Result<cmt_core::KernelVariant, WireError> {
    let idx = u8::decode(r)? as usize;
    cmt_core::KernelVariant::ALL
        .get(idx)
        .copied()
        .ok_or(WireError::Malformed("unknown kernel variant"))
}

fn encode_kernel_tune(t: &KernelAutotuneReport, buf: &mut Vec<u8>) {
    encode_variant(t.chosen.variant, buf);
    t.chosen.grain.encode(buf);
    encode_variant(t.effective, buf);
    t.timings.len().encode(buf);
    for timing in &t.timings {
        encode_variant(timing.candidate.variant, buf);
        timing.candidate.grain.encode(buf);
        timing.avg_s.encode(buf);
    }
}

fn decode_kernel_tune(r: &mut WireReader<'_>) -> Result<KernelAutotuneReport, WireError> {
    use cmt_core::kernels::autotune::{KernelCandidate, KernelTiming};
    let chosen = KernelCandidate {
        variant: decode_variant(r)?,
        grain: usize::decode(r)?,
    };
    let effective = decode_variant(r)?;
    let n = r.count(17)?;
    let mut timings = Vec::with_capacity(n);
    for _ in 0..n {
        timings.push(KernelTiming {
            candidate: KernelCandidate {
                variant: decode_variant(r)?,
                grain: usize::decode(r)?,
            },
            avg_s: f64::decode(r)?,
        });
    }
    Ok(KernelAutotuneReport {
        chosen,
        effective,
        timings,
    })
}

impl WireCodec for SolutionDump {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.global_elem_ids.encode(buf);
        self.fields.encode(buf);
        self.time.encode(buf);
        self.dt.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SolutionDump {
            global_elem_ids: Vec::decode(r)?,
            fields: Vec::decode(r)?,
            time: f64::decode(r)?,
            dt: f64::decode(r)?,
        })
    }
}

impl WireCodec for LbSummary {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.rebalances.encode(buf);
        self.elems_moved.encode(buf);
        self.particles_moved.encode(buf);
        self.peak_imbalance.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(LbSummary {
            rebalances: u64::decode(r)?,
            elems_moved: u64::decode(r)?,
            particles_moved: u64::decode(r)?,
            peak_imbalance: f64::decode(r)?,
        })
    }
}

impl WireCodec for RankOutput {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.profiler.encode(buf);
        self.autotune.encode(buf);
        match &self.kernel_autotune {
            None => false.encode(buf),
            Some(t) => {
                true.encode(buf);
                encode_kernel_tune(t, buf);
            }
        }
        self.chosen.encode(buf);
        self.checksum.encode(buf);
        self.elem_gids.encode(buf);
        self.elem_hashes.encode(buf);
        self.lb.encode(buf);
        self.wall_s.encode(buf);
        self.modeled_s.encode(buf);
        self.solution.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RankOutput {
            profiler: Profiler::decode(r)?,
            autotune: Option::decode(r)?,
            kernel_autotune: if bool::decode(r)? {
                Some(decode_kernel_tune(r)?)
            } else {
                None
            },
            chosen: GsMethod::decode(r)?,
            checksum: f64::decode(r)?,
            elem_gids: Vec::decode(r)?,
            elem_hashes: Vec::decode(r)?,
            lb: Option::decode(r)?,
            wall_s: f64::decode(r)?,
            modeled_s: f64::decode(r)?,
            solution: Option::decode(r)?,
        })
    }
}

/// Hash one rank's final state element by element: each owned element's
/// bytes across every field, then its resident particles (ascending by
/// id). Per-element hashes are merged host-side in ascending global-id
/// order, so the combined fingerprint does not depend on which rank
/// ended up owning which element — the property the load-balancer
/// identity tests rely on.
fn hash_elements(
    u: &[Field],
    n3: usize,
    owned: &[usize],
    mut pset: Option<&mut ParticleSet>,
) -> (Vec<u64>, Vec<u64>) {
    let mut gids = Vec::with_capacity(owned.len());
    let mut hashes = Vec::with_capacity(owned.len());
    for (slot, &gid) in owned.iter().enumerate() {
        let mut h = hash::FNV_OFFSET;
        for f in u {
            hash::fnv1a_f64s(&mut h, &f.as_slice()[slot * n3..(slot + 1) * n3]);
        }
        if let Some(ps) = pset.as_mut() {
            let mut residents: Vec<Particle> = ps.residents_of(slot).to_vec();
            residents.sort_by_key(|p| p.id);
            for p in &residents {
                hash::fnv1a(&mut h, &p.id.to_le_bytes());
                hash::fnv1a_f64s(&mut h, &p.pos);
            }
        }
        gids.push(gid as u64);
        hashes.push(h);
    }
    (gids, hashes)
}

/// Flatten particles to checkpoint records (`[id, x, y, z]` per
/// particle).
fn particle_records(ps: &ParticleSet) -> Vec<f64> {
    let mut rec = Vec::with_capacity(ps.len() * 4);
    for p in ps.particles() {
        rec.push(p.id as f64);
        rec.extend_from_slice(&p.pos);
    }
    rec
}

/// Inverse of [`particle_records`].
fn particles_from_records(rec: &[f64]) -> Vec<Particle> {
    assert_eq!(rec.len() % 4, 0, "corrupt particle checkpoint record");
    rec.chunks_exact(4)
        .map(|c| Particle {
            id: c[0] as u64,
            pos: [c[1], c[2], c[3]],
        })
        .collect()
}

/// Capture this rank's loop state at the top of `step` (stage 0). With
/// the load balancer on, the scalars record the full element-owner
/// vector active at capture time (identical on every rank), so a
/// rollback — or a cross-run restart — can rebuild the partition the
/// fields were captured under. With particles on, their records ride
/// along as one extra field entry.
fn capture_checkpoint(
    rank: &Rank,
    step: u64,
    time: f64,
    u: &[Field],
    part: Option<&ElemPartition>,
    pset: Option<&ParticleSet>,
) -> Checkpoint {
    let mut scalars = Vec::new();
    if let Some(p) = part {
        scalars.reserve(p.total_elems());
        scalars.extend(p.owner_vec().iter().map(|&r| r as f64));
    }
    let mut fields: Vec<Vec<f64>> = u.iter().map(|f| f.as_slice().to_vec()).collect();
    if let Some(ps) = pset {
        fields.push(particle_records(ps));
    }
    Checkpoint {
        rank: rank.rank() as u64,
        step,
        stage: 0,
        time,
        rng_state: rank.fault_rng_state().unwrap_or(0),
        scalars,
        fields,
    }
}

/// The element partition a checkpoint was captured under, when one was
/// recorded (load balancer on).
fn checkpoint_partition(ckpt: &Checkpoint, ranks: usize) -> Option<ElemPartition> {
    if ckpt.scalars.is_empty() {
        return None;
    }
    let owner: Vec<u32> = ckpt.scalars.iter().map(|&r| r as u32).collect();
    Some(ElemPartition::from_owner(ranks, owner))
}

/// Restore the field state captured by [`capture_checkpoint`] (the
/// checkpoint may carry one trailing particle record beyond the field
/// set).
fn restore_fields(ckpt: &Checkpoint, u: &mut [Field]) {
    assert!(
        ckpt.fields.len() == u.len() || ckpt.fields.len() == u.len() + 1,
        "checkpoint holds {} fields, run has {}",
        ckpt.fields.len(),
        u.len()
    );
    for (uf, cf) in u.iter_mut().zip(&ckpt.fields) {
        assert_eq!(
            uf.as_slice().len(),
            cf.len(),
            "checkpoint field size mismatch"
        );
        uf.as_mut_slice().copy_from_slice(cf);
    }
}

/// Restore the clock and fault-RNG state captured by
/// [`capture_checkpoint`].
fn restore_clock(rank: &mut Rank, ckpt: &Checkpoint, time: &mut f64, step: &mut u64) {
    *time = ckpt.time;
    *step = ckpt.step;
    rank.set_fault_rng_state(ckpt.rng_state);
}

/// The smooth initial profile of proxy field `f` (periodic in the global
/// box of extents `lengths`).
fn initial_profile(f: usize, x: f64, y: f64, z: f64, lengths: [f64; 3]) -> f64 {
    let fx = 2.0 * PI * x / lengths[0];
    let fy = 2.0 * PI * y / lengths[1];
    let fz = 2.0 * PI * z / lengths[2];
    (fx + 0.3 * f as f64).sin() * fy.cos() + 0.25 * (fz + 0.7 * f as f64).cos()
}

/// Stable timestep mirroring [`cmt_core::solver::AdvectionSolver::stable_dt`]
/// (plus the diffusive limit when viscosity is on, as
/// [`cmt_core::diffusion::AdvDiffSolver::stable_dt`] computes it).
fn stable_dt(cfg: &Config, geom: &ElementGeom) -> f64 {
    let n2 = (cfg.n * cfg.n) as f64;
    let mut dt = f64::INFINITY;
    for axis in 0..3 {
        let h = geom.extent(axis);
        let c = cfg.velocity[axis].abs();
        if c > 0.0 {
            dt = dt.min(cfg.cfl * h / (n2 * c));
        }
        if let Some(nu) = cfg.viscosity {
            dt = dt.min(cfg.cfl * h * h / (n2 * n2 * nu));
        }
    }
    if dt.is_finite() {
        dt
    } else {
        cfg.cfl
    }
}

/// Per-rank invariants shared by the stage passes.
struct StageEnv<'a> {
    cfg: &'a Config,
    basis: &'a Basis,
    geom: &'a ElementGeom,
    handle: &'a GsHandle,
    chosen: GsMethod,
    nel: usize,
}

/// BR1 viscous workspace: the gradient fields plus per-axis face-trace
/// buffers (own and neighbor) for the q exchanges.
struct ViscousWs {
    nu: f64,
    q: [Field; 3],
    qown: [Vec<f64>; 3],
    qnbr: [Vec<f64>; 3],
}

/// Central-flux surface correction of the viscous divergence along one
/// axis. On entry `qnbr` holds the exchanged trace *sum* (own + neighbor);
/// it is reduced to the absolute neighbor trace in place, then the
/// correction is lifted into `rhs`.
#[allow(clippy::too_many_arguments)]
fn viscous_axis_correction(
    n: usize,
    nel: usize,
    axis: usize,
    lift: f64,
    nu: f64,
    qnbr: &mut [f64],
    qown: &[f64],
    rhs: &mut Field,
) {
    let fpe = face::face_values_per_element(n);
    let n2 = n * n;
    let n3 = n2 * n;
    for (nb, ow) in qnbr.iter_mut().zip(qown.iter()) {
        *nb -= ow;
    }
    for e in 0..nel {
        for fc in Face::ALL {
            if fc.axis() != axis {
                continue;
            }
            let sign = fc.sign() as f64;
            let off = e * fpe + fc.index() * n2;
            for p in 0..n2 {
                // F* - F_in = sign nu ((q_own+q_nbr)/2 - q_own)
                //           = sign nu (q_nbr - q_own)/2
                let corr = lift * sign * nu * 0.5 * (qnbr[off + p] - qown[off + p]);
                let vi = face::face_point_volume_index(n, fc, p);
                rhs.as_mut_slice()[e * n3 + vi] += corr;
            }
        }
    }
}

/// The BR1 viscous passes for one field: gradient with central traces,
/// then the viscous divergence with its q-trace exchange. Under the
/// blocking pipeline each axis runs its own blocking `gs_op` (3 exchanges
/// per field per stage); under the overlapped pipeline all three axis
/// traces go out in one batched split-phase exchange whose in-flight time
/// the three volume divergence derivatives overlap.
#[allow(clippy::too_many_arguments)]
fn viscous_pass(
    env: &StageEnv,
    rank: &mut Rank,
    prof: &mut Profiler,
    ws: &mut ViscousWs,
    uf: &Field,
    faces: &[f64],
    faces_own: &[f64],
    rhs: &mut Field,
    scratch: &mut Field,
) {
    let cfg = env.cfg;
    let (n, nel) = (cfg.n, env.nel);
    let (basis, geom) = (env.basis, env.geom);
    let fpe = face::face_values_per_element(n);
    let n2 = n * n;
    let n3 = n2 * n;
    let w_end = basis.weights[0];
    let nu = ws.nu;
    const AXES: [(usize, DerivDir); 3] = [(0, DerivDir::R), (1, DerivDir::S), (2, DerivDir::T)];

    prof.enter(regions::VISCOUS);
    // gradient volume part
    for (axis, dir) in AXES {
        kernels::deriv(
            cfg.variant,
            dir,
            n,
            nel,
            &basis.d,
            uf.as_slice(),
            ws.q[axis].as_mut_slice(),
        );
        ws.q[axis].scale(geom.dscale(axis));
    }
    // gradient lifting: q_a += lift * sign * (u* - u_in),
    // u* - u_in = (nbr - own)/2; `faces` holds the absolute neighbor
    // trace after the flux lift.
    for e in 0..nel {
        for fc in Face::ALL {
            let axis = fc.axis();
            let sign = fc.sign() as f64;
            let lift = geom.dscale(axis) / w_end;
            let off = e * fpe + fc.index() * n2;
            for p in 0..n2 {
                let jump = 0.5 * (faces[off + p] - faces_own[off + p]);
                let vi = face::face_point_volume_index(n, fc, p);
                ws.q[axis].as_mut_slice()[e * n3 + vi] += lift * sign * jump;
            }
        }
    }
    // viscous divergence: volume + central surface flux
    match cfg.pipeline {
        Pipeline::Blocking => {
            for (axis, dir) in AXES {
                kernels::deriv(
                    cfg.variant,
                    dir,
                    n,
                    nel,
                    &basis.d,
                    ws.q[axis].as_slice(),
                    scratch.as_mut_slice(),
                );
                rhs.axpy(nu * geom.dscale(axis), scratch);
                face::full2face(n, nel, ws.q[axis].as_slice(), &mut ws.qown[axis]);
                ws.qnbr[axis].copy_from_slice(&ws.qown[axis]);
                rank.set_context("faces_visc");
                env.handle
                    .gs_op(rank, &mut ws.qnbr[axis], GsOp::Add, env.chosen);
                rank.set_context("main");
                viscous_axis_correction(
                    n,
                    nel,
                    axis,
                    geom.dscale(axis) / w_end,
                    nu,
                    &mut ws.qnbr[axis],
                    &ws.qown[axis],
                    rhs,
                );
            }
        }
        Pipeline::Overlapped => {
            // extract all three axis traces and start one bundled exchange
            for axis in 0..3 {
                face::full2face(n, nel, ws.q[axis].as_slice(), &mut ws.qown[axis]);
            }
            let views: Vec<&[f64]> = ws.qown.iter().map(|v| v.as_slice()).collect();
            prof.enter(regions::GS_START);
            rank.set_context("faces_visc");
            let pending = env.handle.gs_op_start(rank, &views, GsOp::Add, env.chosen);
            rank.set_context("main");
            prof.exit();
            // overlap window: the three volume divergence derivatives
            for (axis, dir) in AXES {
                kernels::deriv(
                    cfg.variant,
                    dir,
                    n,
                    nel,
                    &basis.d,
                    ws.q[axis].as_slice(),
                    scratch.as_mut_slice(),
                );
                rhs.axpy(nu * geom.dscale(axis), scratch);
            }
            let mut outs: Vec<&mut [f64]> = ws.qnbr.iter_mut().map(|v| v.as_mut_slice()).collect();
            prof.enter(regions::GS_FINISH);
            rank.set_context("faces_visc");
            env.handle.gs_op_finish(rank, pending, &mut outs);
            rank.set_context("main");
            prof.exit();
            for axis in 0..3 {
                viscous_axis_correction(
                    n,
                    nel,
                    axis,
                    geom.dscale(axis) / w_end,
                    nu,
                    &mut ws.qnbr[axis],
                    &ws.qown[axis],
                    rhs,
                );
            }
        }
    }
    prof.exit();
}

/// Everything on a rank that is sized by (and bound to) its current
/// element set: the solution fields, every scratch buffer, the
/// gather-scatter plan, and the hybrid-pool chunk geometry. A load
/// balancer migration replaces the whole block — the timestep loop only
/// ever sees a consistent one.
struct Block {
    /// Global ids of the owned elements, ascending — the local element
    /// order of every buffer below.
    owned: Vec<usize>,
    nel: usize,
    handle: GsHandle,
    u: Vec<Field>,
    u0: Vec<Field>,
    rhs_all: Vec<Field>,
    scratch: Field,
    faces_all: Vec<Vec<f64>>,
    faces_own_all: Vec<Vec<f64>>,
    /// Fine-mesh dealias buffer (empty when dealiasing is off); the
    /// interpolation matrices are partition-independent and live
    /// outside.
    dealias_fine: Vec<f64>,
    viscous: Option<ViscousWs>,
    pool_scratch: Vec<f64>,
    dealias_pool_scratch: Vec<f64>,
    grain: usize,
    n_chunks: usize,
}

/// Build the per-partition state block for an owned-element set. Fields
/// start zeroed — the caller fills them (initial condition, checkpoint
/// restore, or migration merge). The gather-scatter `handle` must have
/// been set up (collectively) for exactly this element set.
fn build_block(
    cfg: &Config,
    owned: Vec<usize>,
    handle: GsHandle,
    grain: usize,
    pool_on: bool,
) -> Block {
    let n = cfg.n;
    let nel = owned.len();
    let n3 = n * n * n;
    let fpe = face::face_values_per_element(n);
    let n_chunks = chunk_count(nel, grain);
    Block {
        owned,
        nel,
        handle,
        u: (0..cfg.fields).map(|_| Field::zeros(n, nel)).collect(),
        u0: (0..cfg.fields).map(|_| Field::zeros(n, nel)).collect(),
        rhs_all: (0..cfg.fields).map(|_| Field::zeros(n, nel)).collect(),
        scratch: Field::zeros(n, nel),
        faces_all: (0..cfg.fields).map(|_| vec![0.0; fpe * nel]).collect(),
        faces_own_all: (0..cfg.fields).map(|_| vec![0.0; fpe * nel]).collect(),
        dealias_fine: match cfg.dealias_m {
            Some(m) => vec![0.0; m * m * m * nel],
            None => Vec::new(),
        },
        viscous: cfg.viscosity.map(|nu| ViscousWs {
            nu,
            q: [
                Field::zeros(n, nel),
                Field::zeros(n, nel),
                Field::zeros(n, nel),
            ],
            qown: [
                vec![0.0; fpe * nel],
                vec![0.0; fpe * nel],
                vec![0.0; fpe * nel],
            ],
            qnbr: [
                vec![0.0; fpe * nel],
                vec![0.0; fpe * nel],
                vec![0.0; fpe * nel],
            ],
        }),
        pool_scratch: if pool_on {
            vec![0.0; n_chunks * grain * n3]
        } else {
            Vec::new()
        },
        dealias_pool_scratch: match (pool_on, cfg.dealias_m) {
            (true, Some(m)) => vec![0.0; n_chunks * 2 * m.max(n).pow(3)],
            _ => Vec::new(),
        },
        grain,
        n_chunks,
    }
}

fn rank_main(rank: &mut Rank, cfg: &Config, mesh_cfg: &MeshConfig, collect: bool) -> RankOutput {
    let start = Instant::now();
    let mut prof = Profiler::new();
    let n = cfg.n;
    let basis = Basis::new(n);
    let geom = ElementGeom::cube(1.0); // unit-cube elements
    let lengths = {
        let ge = mesh_cfg.global_elems();
        [ge[0] as f64, ge[1] as f64, ge[2] as f64]
    };

    // ---- restart checkpoint loads first ------------------------------
    // With the load balancer on, a checkpoint records the partition its
    // fields were captured under; the collective gather-scatter setup
    // below must run on that partition, so the load happens before any
    // plan is built.
    let restart_ckpt = cfg.restart_from.as_ref().map(|dir| {
        load_checkpoint(dir, rank.rank())
            .unwrap_or_else(|e| panic!("rank {}: restart: {e}", rank.rank()))
    });
    let mut part = restart_ckpt
        .as_ref()
        .and_then(|c| checkpoint_partition(c, rank.size()))
        .unwrap_or_else(|| ElemPartition::initial(mesh_cfg));

    // ---- setup: partition, gs discovery, autotune ---------------------
    prof.enter(regions::SETUP);
    let owned0 = part.owned_by(rank.rank());
    let gids = face_exchange_gids_for(mesh_cfg, owned0);
    let handle = GsHandle::setup(rank, &gids);
    let (chosen, tune_report) = match cfg.method {
        Some(m) => (m, None),
        None => {
            let rep = autotune(rank, &handle, cfg.autotune);
            (rep.chosen, Some(rep))
        }
    };
    // Kernel autotune (`--variant auto`): time every variant × chunk
    // grain on this rank's shape, average across ranks (the gs-autotune
    // protocol), and let every rank pick the same winner.
    let kernel_tune = cfg.kernel_autotune.then(|| {
        let (cands, local) =
            time_candidates(n, owned0.len(), &basis.d, KernelAutotuneOptions::default());
        rank.set_context("kernel_autotune");
        let avg: Vec<f64> = local
            .iter()
            .map(|&t| rank.allreduce_scalar(t, ReduceOp::Sum) / rank.size() as f64)
            .collect();
        rank.set_context("main");
        KernelAutotuneReport::from_avg_times(n, cands, avg)
    });
    prof.exit();

    // Effective config: the kernel autotune overrides the requested
    // variant; everything downstream reads the resolved choice.
    let mut cfg_eff = cfg.clone();
    if let Some(t) = &kernel_tune {
        cfg_eff.variant = t.effective;
    }
    let cfg = &cfg_eff;

    // ---- per-partition state block ------------------------------------
    // The pooled element loops call the same kernels on disjoint
    // contiguous element ranges, so results are bitwise identical for
    // every worker count; all scratch lives in the block, sized once per
    // partition, keeping the steady state allocation-free.
    let n3 = n * n * n;
    let pool = rank.worker_pool();
    let pool_on = pool.is_some();
    let workers = rank.workers();
    let fixed_grain = kernel_tune.as_ref().map(|t| t.chosen.grain);
    let grain_for = |nel: usize| fixed_grain.unwrap_or_else(|| nel.div_ceil(workers * 4).max(1));
    let grain0 = grain_for(owned0.len());
    let mut blk = build_block(cfg, owned0.to_vec(), handle, grain0, pool_on);
    for f in 0..cfg.fields {
        let owned = &blk.owned;
        let vals = Field::from_fn(n, blk.nel, |e, i, j, k| {
            let gc = mesh_cfg.elem_coords(owned[e]);
            let x = gc[0] as f64 + (basis.nodes[i] + 1.0) / 2.0;
            let y = gc[1] as f64 + (basis.nodes[j] + 1.0) / 2.0;
            let z = gc[2] as f64 + (basis.nodes[k] + 1.0) / 2.0;
            initial_profile(f, x, y, z, lengths)
        });
        blk.u[f] = vals;
    }
    let dt = stable_dt(cfg, &geom);

    // Dealiasing operators: interpolation to the m-point fine mesh and
    // back (paper §V: "an element is first mapped to a finer mesh and
    // later mapped back"). Partition-independent, so they outlive any
    // migration.
    let dealias_ops = cfg
        .dealias_m
        .map(|m| (m, basis.dealias_to(m), basis.dealias_from(m)));

    // ---- particles -----------------------------------------------------
    let mut pset = (cfg.particles_per_elem > 0).then(|| {
        let pmesh = RankMesh::new(mesh_cfg.clone(), rank.rank());
        let mut ps = ParticleSet::new(pmesh, &basis);
        ps.set_partition(part.clone());
        match cfg.particle_cluster {
            Some(frac) => ps.seed_clustered(cfg.particles_per_elem, frac),
            None => ps.seed_uniform(cfg.particles_per_elem),
        }
        ps
    });

    // ---- load balancer: cost model + activity counters -----------------
    let model = CostModel::for_shape(n, cfg.fields);
    let mut lb_rebalances: u64 = 0;
    let mut lb_elems_moved: u64 = 0;
    let mut lb_particles_moved: u64 = 0;
    let mut lb_peak_imbalance: f64 = 0.0;

    // ---- resilience: restart, then checkpoint/recover in the loop -----
    let mut rz = Resilience::new(cfg.checkpoint_every as u64, cfg.checkpoint_dir.clone());
    let mut time = 0.0;
    let mut step: u64 = 0;
    if let Some(ck) = &restart_ckpt {
        restore_fields(ck, &mut blk.u);
        if let Some(ps) = pset.as_mut() {
            assert_eq!(
                ck.fields.len(),
                cfg.fields + 1,
                "restart checkpoint has no particle record"
            );
            ps.set_particles(particles_from_records(&ck.fields[cfg.fields]));
        }
        restore_clock(rank, ck, &mut time, &mut step);
    }

    // ---- timestep loop --------------------------------------------------
    prof.enter(regions::LOOP);
    let steps = cfg.steps as u64;
    while step < steps {
        // Checkpoint at the top of the step, before any kill scheduled
        // here can fire, so a kill at step s rolls back to a capture
        // taken at (or before) s.
        if rz.checkpoint_due(step) {
            prof.enter(cmt_perf::regions::CHECKPOINT);
            rz.save(
                rank,
                &capture_checkpoint(
                    rank,
                    step,
                    time,
                    &blk.u,
                    (cfg.lb_every > 0).then_some(&part),
                    pset.as_ref(),
                ),
            );
            prof.exit();
        }
        // Scheduled rank kills: SPMD-known, so every rank detects them
        // without communication and runs the coordinated rollback.
        let killed = rz.killed_at(rank, step);
        if !killed.is_empty() {
            prof.enter(cmt_perf::regions::RECOVERY);
            let back = rz.recover(rank, &killed);
            if let Some(ck_part) = checkpoint_partition(&back, rank.size()) {
                if ck_part.owner_vec() != part.owner_vec() {
                    // The rollback target predates a rebalance: rebuild
                    // this rank's block on the checkpoint's partition.
                    // The owner vector is identical on every rank
                    // (captured from SPMD-uniform state), so the
                    // collective gather-scatter setup is safe here.
                    let owned = ck_part.owned_by(rank.rank());
                    let gids = face_exchange_gids_for(mesh_cfg, owned);
                    let new_handle = GsHandle::setup(rank, &gids);
                    let grain = grain_for(owned.len());
                    blk = build_block(cfg, owned.to_vec(), new_handle, grain, pool_on);
                    if let Some(ps) = pset.as_mut() {
                        ps.set_partition(ck_part.clone());
                    }
                    part = ck_part;
                }
            }
            restore_fields(&back, &mut blk.u);
            if let Some(ps) = pset.as_mut() {
                ps.set_particles(particles_from_records(&back.fields[cfg.fields]));
            }
            restore_clock(rank, &back, &mut time, &mut step);
            prof.exit();
            continue;
        }
        {
            let Block {
                nel,
                handle,
                u,
                u0,
                rhs_all,
                scratch,
                faces_all,
                faces_own_all,
                dealias_fine,
                viscous,
                pool_scratch,
                dealias_pool_scratch,
                grain,
                n_chunks,
                ..
            } = &mut blk;
            let (nel, grain, n_chunks) = (*nel, *grain, *n_chunks);
            let handle: &GsHandle = handle;
            let env = StageEnv {
                cfg,
                basis: &basis,
                geom: &geom,
                handle,
                chosen,
                nel,
            };
            for (uf, u0f) in u.iter().zip(u0.iter_mut()) {
                u0f.as_mut_slice().copy_from_slice(uf.as_slice());
            }
            for stage in 0..rk::STAGES {
                match cfg.pipeline {
                    // ---- legacy schedule: one blocking exchange per field ----
                    Pipeline::Blocking => {
                        for f in 0..cfg.fields {
                            let rhs = &mut rhs_all[f];
                            let faces = &mut faces_all[f];
                            let faces_own = &mut faces_own_all[f];

                            // (1) flux divergence: the small-matrix-multiply kernel
                            prof.enter(regions::DERIV);
                            advect_volume_rhs(
                                cfg.variant,
                                &basis,
                                &geom,
                                cfg.velocity,
                                &u[f],
                                rhs,
                                scratch,
                            );
                            prof.exit();

                            // (1b) dealiasing round-trip on the RHS (identity on
                            // the resolved polynomial content; pure kernel
                            // workload)
                            if let Some((m, up, down)) = dealias_ops.as_ref() {
                                prof.enter(regions::DEALIAS);
                                kernels::tensor3_apply_variant(
                                    cfg.variant,
                                    *m,
                                    n,
                                    up,
                                    rhs.as_slice(),
                                    dealias_fine,
                                    nel,
                                );
                                kernels::tensor3_apply_variant(
                                    cfg.variant,
                                    n,
                                    *m,
                                    down,
                                    dealias_fine,
                                    rhs.as_mut_slice(),
                                    nel,
                                );
                                prof.exit();
                            }

                            // (2) surface extraction
                            prof.enter(regions::FULL2FACE);
                            face::full2face(n, nel, u[f].as_slice(), faces);
                            faces_own.copy_from_slice(faces);
                            prof.exit();

                            // (3) numerical flux: nearest-neighbor exchange. The
                            // face-exchange ids pair each face point with exactly
                            // its across-face twin, so Add recovers own + neighbor.
                            prof.enter(regions::GS_OP);
                            rank.set_context("faces");
                            handle.gs_op(rank, faces, GsOp::Add, chosen);
                            rank.set_context("main");
                            prof.exit();

                            // (4) upwind lifting: neighbor trace = sum - own
                            prof.enter(regions::FLUX_LIFT);
                            for (s, o) in faces.iter_mut().zip(faces_own.iter()) {
                                *s -= o;
                            }
                            upwind_face_correction(
                                &basis,
                                &geom,
                                cfg.velocity,
                                faces_own,
                                faces,
                                rhs,
                            );
                            prof.exit();

                            // (4v) viscous BR1 passes
                            if let Some(ws) = viscous.as_mut() {
                                viscous_pass(
                                    &env,
                                    rank,
                                    &mut prof,
                                    ws,
                                    &u[f],
                                    &faces_all[f],
                                    &faces_own_all[f],
                                    &mut rhs_all[f],
                                    scratch,
                                );
                            }

                            // (5) RK stage update
                            prof.enter(regions::RK);
                            rk::stage_update(stage, &mut u[f], &u0[f], &rhs_all[f], dt);
                            prof.exit();
                        }
                    }

                    // ---- split-phase schedule: batch, start, overlap, finish ----
                    Pipeline::Overlapped => {
                        // (1) surface extraction for every field up front
                        prof.enter(regions::FULL2FACE);
                        for f in 0..cfg.fields {
                            face::full2face(n, nel, u[f].as_slice(), &mut faces_all[f]);
                            faces_own_all[f].copy_from_slice(&faces_all[f]);
                        }
                        prof.exit();

                        // (2) start ONE exchange carrying all fields (a k-field
                        // payload per neighbor: `fields`x fewer messages than the
                        // blocking schedule). The slice-view list is assembled
                        // before the region opens so its allocation never counts
                        // against the exchange.
                        let views: Vec<&[f64]> = faces_all.iter().map(|v| v.as_slice()).collect();
                        prof.enter(regions::GS_OP);
                        prof.enter(regions::GS_START);
                        rank.set_context("faces");
                        let pending = handle.gs_op_start(rank, &views, GsOp::Add, chosen);
                        rank.set_context("main");
                        prof.exit();
                        prof.exit();

                        // (3) overlap window: every field's volume work (flux
                        // divergence + dealias) runs while the face messages are
                        // in flight. With `--workers`, the element loop of each
                        // kernel is shared across the rank's work-stealing pool —
                        // compute fills the same in-flight window, just on more
                        // cores. Chunks write disjoint element ranges and nothing
                        // is reduced across chunks, so the result is bitwise
                        // identical to the serial path.
                        for f in 0..cfg.fields {
                            prof.enter(regions::DERIV);
                            if let Some(pool) = &pool {
                                let us = u[f].as_slice();
                                let rhs_sh = SharedSliceMut::new(rhs_all[f].as_mut_slice());
                                let scr_sh = SharedSliceMut::new(&mut pool_scratch[..]);
                                pool.run(n_chunks, &|c| {
                                    let (lo, hi) = chunk_range(nel, grain, c);
                                    // SAFETY: chunk ranges partition 0..nel and
                                    // each chunk owns slab c of the scratch, so
                                    // every range below is touched by one chunk.
                                    let rhs_c = unsafe { rhs_sh.range_mut(lo * n3, hi * n3) };
                                    let scr_c = unsafe {
                                        scr_sh
                                            .range_mut(c * grain * n3, (c * grain + (hi - lo)) * n3)
                                    };
                                    advect_volume_rhs_slices(
                                        cfg.variant,
                                        &basis,
                                        &geom,
                                        cfg.velocity,
                                        n,
                                        hi - lo,
                                        &us[lo * n3..hi * n3],
                                        rhs_c,
                                        scr_c,
                                    );
                                });
                                let (wa, wb) = pool.drain_worker_allocs();
                                prof.charge_allocs(wa, wb);
                            } else {
                                advect_volume_rhs(
                                    cfg.variant,
                                    &basis,
                                    &geom,
                                    cfg.velocity,
                                    &u[f],
                                    &mut rhs_all[f],
                                    scratch,
                                );
                            }
                            prof.exit();
                            if let Some((m, up, down)) = dealias_ops.as_ref() {
                                let fine = &mut *dealias_fine;
                                prof.enter(regions::DEALIAS);
                                if let Some(pool) = &pool {
                                    let (m, up, down): (usize, &[f64], &[f64]) = (*m, up, down);
                                    let m3 = m * m * m;
                                    let big3 = m.max(n).pow(3);
                                    let rhs_sh = SharedSliceMut::new(rhs_all[f].as_mut_slice());
                                    let fine_sh = SharedSliceMut::new(&mut fine[..]);
                                    let t_sh = SharedSliceMut::new(&mut dealias_pool_scratch[..]);
                                    pool.run(n_chunks, &|c| {
                                        let (lo, hi) = chunk_range(nel, grain, c);
                                        let nel_c = hi - lo;
                                        // SAFETY: disjoint element ranges per
                                        // chunk; slab c of the scratch is private.
                                        let rhs_c = unsafe { rhs_sh.range_mut(lo * n3, hi * n3) };
                                        let fine_c = unsafe { fine_sh.range_mut(lo * m3, hi * m3) };
                                        let ts = unsafe {
                                            t_sh.range_mut(2 * c * big3, 2 * (c + 1) * big3)
                                        };
                                        let (t1, t2) = ts.split_at_mut(big3);
                                        kernels::tensor3_apply_scratch_variant(
                                            cfg.variant,
                                            m,
                                            n,
                                            up,
                                            rhs_c,
                                            fine_c,
                                            nel_c,
                                            t1,
                                            t2,
                                        );
                                        kernels::tensor3_apply_scratch_variant(
                                            cfg.variant,
                                            n,
                                            m,
                                            down,
                                            fine_c,
                                            rhs_c,
                                            nel_c,
                                            t1,
                                            t2,
                                        );
                                    });
                                    let (wa, wb) = pool.drain_worker_allocs();
                                    prof.charge_allocs(wa, wb);
                                } else {
                                    kernels::tensor3_apply_variant(
                                        cfg.variant,
                                        *m,
                                        n,
                                        up,
                                        rhs_all[f].as_slice(),
                                        fine,
                                        nel,
                                    );
                                    kernels::tensor3_apply_variant(
                                        cfg.variant,
                                        n,
                                        *m,
                                        down,
                                        fine,
                                        rhs_all[f].as_mut_slice(),
                                        nel,
                                    );
                                }
                                prof.exit();
                            }
                        }

                        // (4) finish: wait, fold remote contributions, scatter
                        // (view list built outside the region, as at start)
                        let mut outs: Vec<&mut [f64]> =
                            faces_all.iter_mut().map(|v| v.as_mut_slice()).collect();
                        prof.enter(regions::GS_OP);
                        prof.enter(regions::GS_FINISH);
                        rank.set_context("faces");
                        handle.gs_op_finish(rank, pending, &mut outs);
                        rank.set_context("main");
                        prof.exit();
                        prof.exit();

                        // (5) per-field lift + viscous + RK
                        for f in 0..cfg.fields {
                            prof.enter(regions::FLUX_LIFT);
                            let faces = &mut faces_all[f];
                            let faces_own = &faces_own_all[f];
                            for (s, o) in faces.iter_mut().zip(faces_own.iter()) {
                                *s -= o;
                            }
                            upwind_face_correction(
                                &basis,
                                &geom,
                                cfg.velocity,
                                faces_own,
                                faces,
                                &mut rhs_all[f],
                            );
                            prof.exit();

                            if let Some(ws) = viscous.as_mut() {
                                viscous_pass(
                                    &env,
                                    rank,
                                    &mut prof,
                                    ws,
                                    &u[f],
                                    &faces_all[f],
                                    &faces_own_all[f],
                                    &mut rhs_all[f],
                                    scratch,
                                );
                            }

                            prof.enter(regions::RK);
                            rk::stage_update(stage, &mut u[f], &u0[f], &rhs_all[f], dt);
                            prof.exit();
                        }
                    }
                }
            }
            time += dt;

            // ---- particle phase: advect in the end-of-step field, migrate --
            // Interpolation is per-element with identical arithmetic on every
            // partition, and the migrated set is sorted by particle id — the
            // phase is bitwise partition-independent, like the field physics.
            if let Some(ps) = pset.as_mut() {
                prof.enter(cmt_perf::regions::PARTICLE_ADVECT);
                ps.advect_field(dt, [&u[0], &u[1 % cfg.fields], &u[2 % cfg.fields]]);
                prof.exit();
                prof.enter(cmt_perf::regions::PARTICLE_MIGRATE);
                let moved = ps.migrate(rank);
                lb_particles_moved += moved.sent as u64;
                prof.exit();
            }

            // (6) vector reduction: timestep control
            if (step + 1) % cfg.cfl_interval as u64 == 0 {
                prof.enter(regions::CFL);
                rank.set_context("cfl");
                let local_max = u.iter().fold(0.0f64, |m, f| m.max(f.norm_inf()));
                let _global_max = rank.allreduce_scalar(local_max, ReduceOp::Max);
                rank.set_context("main");
                prof.exit();
            }
        }
        step += 1;

        // ---- load balancer: monitor (and maybe migrate) ----------------
        // Runs between steps on SPMD-uniform inputs (one allgather), so
        // every rank reaches the identical decision with no extra
        // synchronization. Skipped after the last step: there is no work
        // left to balance.
        if cfg.lb_every > 0 && step % cfg.lb_every as u64 == 0 && step < steps {
            prof.enter(cmt_perf::regions::LB_MONITOR);
            let ps = pset.as_mut().expect("validate(): lb requires particles");
            let counts = ps.counts_per_owned();
            let delay_us = rank.injected_delay_us();
            let global = gather_costs(rank, &part, &counts, delay_us);
            let decision = decide(&model, &part, &global, cfg.lb_threshold);
            lb_peak_imbalance = lb_peak_imbalance.max(decision.imbalance);
            prof.exit();
            if let Some(owners) = decision.owners {
                prof.enter(cmt_perf::regions::LB_MIGRATE);
                let new_part = ElemPartition::from_owner(rank.size(), owners);
                let me = rank.rank();
                // Drain departing residents first, keyed by gid, so the
                // element pack below can ship them with their element.
                let dep: std::collections::HashMap<usize, Vec<Particle>> = ps
                    .split_off_elems(|gid| new_part.owner_of(gid) != me)
                    .into_iter()
                    .collect();
                let shipped: usize = dep.values().map(|v| v.len()).sum();
                // Rebuild the block on the new partition first (collective
                // gs setup — every rank is here, by the SPMD argument
                // above), so arrivals can unpack straight into it.
                let owned = new_part.owned_by(me);
                let gids = face_exchange_gids_for(mesh_cfg, owned);
                let new_handle = GsHandle::setup(rank, &gids);
                let grain = grain_for(owned.len());
                let mut nb = build_block(cfg, owned.to_vec(), new_handle, grain, pool_on);
                // Kept elements copy over; gained elements are written by
                // the unpack callback below, each placed at its new local
                // slot as its frame is walked — no intermediate copy.
                for (slot, &gid) in nb.owned.iter().enumerate() {
                    if part.owner_of(gid) == me {
                        let (_, old_slot) = part.slot_of(gid);
                        for (nf, of) in nb.u.iter_mut().zip(blk.u.iter()) {
                            nf.as_mut_slice()[slot * n3..(slot + 1) * n3].copy_from_slice(
                                &of.as_slice()[old_slot * n3..(old_slot + 1) * n3],
                            );
                        }
                    }
                }
                let u_old = &blk.u;
                let mut gained = 0usize;
                let mstats = migrate_blocks(
                    rank,
                    &part,
                    &new_part,
                    |gid| {
                        let (_, slot) = part.slot_of(gid);
                        let res = dep.get(&gid).map(|v| v.as_slice()).unwrap_or(&[]);
                        let mut vals = Vec::with_capacity(cfg.fields * n3 + 1 + res.len() * 4);
                        for uf in u_old {
                            vals.extend_from_slice(&uf.as_slice()[slot * n3..(slot + 1) * n3]);
                        }
                        vals.push(res.len() as f64);
                        for p in res {
                            vals.push(p.id as f64);
                            vals.extend_from_slice(&p.pos);
                        }
                        vals
                    },
                    |gid, data| {
                        assert_ne!(part.owner_of(gid), me, "arrival for a kept element");
                        let (owner, slot) = new_part.slot_of(gid);
                        assert_eq!(owner, me, "migration routing mismatch");
                        gained += 1;
                        for (f, nf) in nb.u.iter_mut().enumerate() {
                            nf.as_mut_slice()[slot * n3..(slot + 1) * n3]
                                .copy_from_slice(&data[f * n3..(f + 1) * n3]);
                        }
                        let npart = data[cfg.fields * n3] as usize;
                        let rec = &data[cfg.fields * n3 + 1..];
                        assert_eq!(rec.len(), npart * 4, "corrupt migrated particle record");
                        for c in rec.chunks_exact(4) {
                            ps.insert(Particle {
                                id: c[0] as u64,
                                pos: [c[1], c[2], c[3]],
                            });
                        }
                    },
                );
                let expected_gained = nb
                    .owned
                    .iter()
                    .filter(|&&gid| part.owner_of(gid) != me)
                    .count();
                assert_eq!(gained, expected_gained, "unconsumed migration arrivals");
                ps.set_partition(new_part.clone());
                blk = nb;
                part = new_part;
                lb_rebalances += 1;
                lb_elems_moved += mstats.elems_sent as u64;
                lb_particles_moved += shipped as u64;
                prof.exit();
            }
        }
    }
    prof.exit();

    // Determinism checksum: global sum over all fields. (Unlike the
    // state hash this groups the sum by rank, so it is *not* bitwise
    // partition-independent — the LB identity tests compare hashes.)
    let local_sum: f64 = blk.u.iter().map(|f| f.sum()).sum();
    rank.set_context("checksum");
    let checksum = rank.allreduce_scalar(local_sum, ReduceOp::Sum);
    rank.set_context("main");

    let (elem_gids, elem_hashes) = hash_elements(&blk.u, n3, &blk.owned, pset.as_mut());

    // Finalize-time verification sweep (leaked messages, abandoned
    // exchanges), timed as its own region so overhead comparisons can
    // isolate the checker's cost. `World::run` would run the sweep
    // anyway; doing it here puts it on this rank's profile.
    if rank.verifying() {
        prof.enter(cmt_perf::regions::VERIFY);
        rank.verify_finalize();
        prof.exit();
    }

    let solution = collect.then(|| SolutionDump {
        global_elem_ids: blk.owned.clone(),
        fields: blk.u.iter().map(|f| f.as_slice().to_vec()).collect(),
        time,
        dt,
    });

    let lb = (cfg.lb_every > 0).then_some(LbSummary {
        rebalances: lb_rebalances,
        elems_moved: lb_elems_moved,
        particles_moved: lb_particles_moved,
        peak_imbalance: lb_peak_imbalance,
    });

    RankOutput {
        profiler: prof,
        autotune: tune_report,
        kernel_autotune: kernel_tune,
        chosen,
        checksum,
        elem_gids,
        elem_hashes,
        lb,
        wall_s: start.elapsed().as_secs_f64(),
        modeled_s: rank.modeled_time_s(),
        solution,
    }
}

fn run_inner(cfg: &Config, collect: bool) -> (RunReport, Vec<SolutionDump>) {
    cfg.validate().expect("invalid CMT-bone configuration");
    let mesh_cfg = MeshConfig::for_ranks(cfg.ranks, cfg.elems_per_rank, cfg.n, true);
    let mut world = match cfg.net {
        Some(net) => World::with_network(net),
        None => World::new(),
    };
    world = world
        .with_pooling(cfg.pool)
        .with_workers(cfg.workers)
        .with_worker_alloc_counters(cmt_perf::alloc::thread_counts);
    if let Some(plan) = &cfg.fault_plan {
        world = world.with_fault_plan(plan.clone());
    }
    if let Some(seed) = cfg.chaos_sched {
        world = world.with_chaos_sched(seed);
    }
    let verifier = cfg.verify.then(|| Arc::new(Verifier::new()));
    if let Some(v) = &verifier {
        world = world.with_verifier(v.clone());
    }
    world = world.with_transport(cfg.transport.clone());
    // run_dist: inproc worlds run rank threads exactly as before; socket
    // worlds spawn one child process per rank (or run this process's
    // single rank and exit, when the launcher spawned us).
    let result = world.run_dist(cfg.ranks, |rank| rank_main(rank, cfg, &mesh_cfg, collect));

    let mut merged = Profiler::new();
    let mut autotune_rep = None;
    let mut kernel_autotune_rep = None;
    let mut chosen = None;
    let mut checksum = f64::NAN;
    let mut elem_pairs: Vec<(u64, u64)> = Vec::new();
    let mut lb_total: Option<LbSummary> = None;
    let mut rank_wall = Vec::with_capacity(cfg.ranks);
    let mut rank_compute = Vec::with_capacity(cfg.ranks);
    let mut modeled = Vec::with_capacity(cfg.ranks);
    let mut dumps = Vec::new();
    // The physics regions the load balancer redistributes; their summed
    // self time per rank is the compute side of the critical path.
    const COMPUTE_REGIONS: &[&str] = &[
        regions::DERIV,
        regions::FULL2FACE,
        regions::FLUX_LIFT,
        regions::RK,
        regions::DEALIAS,
        regions::VISCOUS,
        cmt_perf::regions::PARTICLE_ADVECT,
    ];
    for out in result.results {
        let rank_report = out.profiler.report();
        rank_compute.push(
            rank_report
                .flat
                .iter()
                .filter(|(name, _)| COMPUTE_REGIONS.contains(&name.as_str()))
                .map(|(_, s)| s.self_s())
                .sum::<f64>(),
        );
        merged.merge(&out.profiler);
        if out.autotune.is_some() && autotune_rep.is_none() {
            autotune_rep = out.autotune;
        }
        if out.kernel_autotune.is_some() && kernel_autotune_rep.is_none() {
            kernel_autotune_rep = out.kernel_autotune;
        }
        chosen.get_or_insert(out.chosen);
        checksum = out.checksum; // identical on every rank
        elem_pairs.extend(
            out.elem_gids
                .iter()
                .copied()
                .zip(out.elem_hashes.iter().copied()),
        );
        if let Some(l) = out.lb {
            let t = lb_total.get_or_insert_with(LbSummary::default);
            // rebalances and the peak are SPMD-identical across ranks;
            // the traffic counters are per-rank and sum
            t.rebalances = t.rebalances.max(l.rebalances);
            t.peak_imbalance = t.peak_imbalance.max(l.peak_imbalance);
            t.elems_moved += l.elems_moved;
            t.particles_moved += l.particles_moved;
        }
        rank_wall.push(out.wall_s);
        modeled.push(out.modeled_s);
        if let Some(d) = out.solution {
            dumps.push(d);
        }
    }
    // Combine the per-element hashes host-side in ascending global-id
    // order: the fingerprint is then independent of which rank owned
    // which element at the end of the run.
    elem_pairs.sort_unstable_by_key(|&(gid, _)| gid);
    let mut state_hash = hash::FNV_OFFSET;
    for (gid, h) in &elem_pairs {
        hash::fnv1a(&mut state_hash, &gid.to_le_bytes());
        hash::fnv1a(&mut state_hash, &h.to_le_bytes());
    }
    // The variant that actually ran: the autotune winner under
    // `--variant auto`, otherwise the configured variant resolved for
    // this n; the ISA only applies to the simd tier.
    let kernel_variant = kernel_autotune_rep
        .as_ref()
        .map(|t: &KernelAutotuneReport| t.effective)
        .unwrap_or_else(|| cfg.variant.resolve(cfg.n));
    let kernel_isa = if kernel_variant == cmt_core::KernelVariant::Simd {
        cmt_core::kernels::simd::active_isa().name()
    } else {
        "-"
    };
    let report = RunReport {
        mesh_summary: mesh_cfg.summary(),
        mesh: mesh_cfg,
        chosen_method: chosen.expect("at least one rank"),
        autotune: autotune_rep,
        kernel_autotune: kernel_autotune_rep,
        kernel_variant,
        kernel_isa,
        profile: merged.report(),
        comm: MpipReport::from_stats(&result.stats),
        rank_wall_s: rank_wall,
        rank_compute_s: rank_compute,
        modeled_comm_s: modeled,
        checksum,
        state_hash,
        lb: lb_total,
        steps: cfg.steps,
        fields: cfg.fields,
        verify: verifier.map(|v| v.findings()),
    };
    (report, dumps)
}

/// Execute the mini-app and collect the full measurement set.
pub fn run(cfg: &Config) -> RunReport {
    run_inner(cfg, false).0
}

/// Execute the mini-app and additionally return every rank's final fields
/// (rank order), for validation against the serial reference solver.
pub fn run_collecting_solution(cfg: &Config) -> (RunReport, Vec<SolutionDump>) {
    run_inner(cfg, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_core::solver::{AdvectionConfig, AdvectionSolver};
    use cmt_core::KernelVariant;

    fn small_cfg() -> Config {
        Config {
            n: 5,
            elems_per_rank: 8,
            ranks: 4,
            steps: 4,
            fields: 2,
            cfl_interval: 2,
            ..Default::default()
        }
    }

    #[test]
    fn run_is_deterministic() {
        // Force the method: the autotuned choice is timing-dependent, but
        // a fixed method must yield a bitwise-identical checksum.
        let cfg = Config {
            method: Some(GsMethod::PairwiseExchange),
            ..small_cfg()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert!(a.checksum.is_finite());
        assert_eq!(a.checksum, b.checksum, "checksum not deterministic");
        assert_eq!(a.chosen_method, GsMethod::PairwiseExchange);
    }

    /// The hybrid MPI+workers overlap window must not change a single
    /// bit: chunked element loops reuse the serial kernels on disjoint
    /// subslices, so state hash and checksum are invariant in the worker
    /// count (with and without dealiasing).
    #[test]
    fn hybrid_workers_are_bitwise_identical_to_serial() {
        for dealias_m in [None, Some(7)] {
            let cfg = Config {
                method: Some(GsMethod::PairwiseExchange),
                dealias_m,
                ..small_cfg()
            };
            let serial = run(&cfg);
            for workers in [2, 4] {
                let hybrid = run(&Config {
                    workers,
                    ..cfg.clone()
                });
                assert_eq!(
                    serial.state_hash, hybrid.state_hash,
                    "state diverged with {workers} workers (dealias {dealias_m:?})"
                );
                assert_eq!(serial.checksum, hybrid.checksum);
            }
        }
    }

    /// The simd tier's end-to-end contract: runtime-dispatched
    /// lane-parallel kernels must not change a single bit relative to
    /// the scalar `opt` run — on both transports, under the dynamic
    /// checker, and through a kill + rollback recovery.
    #[test]
    fn simd_variant_is_bitwise_identical_to_opt() {
        let base = Config {
            method: Some(GsMethod::PairwiseExchange),
            dealias_m: Some(7),
            ..small_cfg()
        };
        let opt = run(&base);
        let simd_cfg = Config {
            variant: KernelVariant::Simd,
            ..base.clone()
        };
        let simd = run(&simd_cfg);
        assert_eq!(opt.state_hash, simd.state_hash, "simd diverged from opt");
        assert_eq!(opt.checksum, simd.checksum);
        assert_eq!(simd.kernel_variant, KernelVariant::Simd);
        assert!(["avx2", "sse2", "scalar"].contains(&simd.kernel_isa));
        assert!(simd.render().contains(&format!(
            "kernel variant: simd (effective isa: {})",
            simd.kernel_isa
        )));

        // multi-process socket backend (thread mode): same bits
        let socket = run(&Config {
            transport: simmpi::TransportKind::Socket(simmpi::SocketConfig {
                addr: None,
                threads: true,
            }),
            ..simd_cfg.clone()
        });
        assert_eq!(opt.state_hash, socket.state_hash, "socket simd diverged");
        assert_eq!(socket.kernel_isa, simd.kernel_isa);

        // verified run stays clean and identical
        let verified = run(&Config {
            verify: true,
            ..simd_cfg.clone()
        });
        assert_eq!(opt.state_hash, verified.state_hash);
        assert!(verified.verify.as_ref().is_some_and(|f| f.is_empty()));

        // kill + rollback recovery lands on the same bits
        let ckpt = Config {
            steps: 8,
            checkpoint_every: 2,
            ..simd_cfg
        };
        let clean = run(&ckpt);
        let recovered = run(&Config {
            fault_plan: Some(simmpi::FaultPlan::parse("kill:rank=2,step=5").unwrap()),
            ..ckpt
        });
        assert_eq!(
            clean.state_hash, recovered.state_hash,
            "simd recovery diverged"
        );
    }

    /// `--variant auto`: the startup kernel autotune must produce a
    /// report, pick a resolved (effective) variant, and leave the run
    /// numerically sane.
    #[test]
    fn kernel_autotune_runs_and_reports() {
        let cfg = Config {
            kernel_autotune: true,
            method: Some(GsMethod::PairwiseExchange),
            steps: 2,
            ..small_cfg()
        };
        let rep = run(&cfg);
        let tune = rep
            .kernel_autotune
            .as_ref()
            .expect("kernel autotune report");
        assert_eq!(tune.effective, tune.chosen.variant.resolve(cfg.n));
        assert!(!tune.timings.is_empty());
        assert!(rep.checksum.is_finite());
        assert!(rep.render().contains("Kernel autotune"));
    }

    #[test]
    fn forced_methods_agree_numerically() {
        let mut cfg = small_cfg();
        let mut sums = Vec::new();
        for m in GsMethod::ALL {
            cfg.method = Some(m);
            sums.push(run(&cfg).checksum);
        }
        for s in &sums[1..] {
            assert!((s - sums[0]).abs() < 1e-9 * (1.0 + sums[0].abs()));
        }
    }

    #[test]
    fn profile_contains_fig4_regions_and_deriv_dominates() {
        let cfg = Config {
            steps: 6,
            ..small_cfg()
        };
        let rep = run(&cfg);
        for name in [
            regions::DERIV,
            regions::FULL2FACE,
            regions::GS_OP,
            regions::RK,
        ] {
            assert!(
                rep.profile.flat.iter().any(|(n, _)| n == name),
                "missing region {name}"
            );
        }
        // Fig. 4's headline: the derivative kernel is the dominant
        // compute region (compare against other compute, not against the
        // thread-contended exchange).
        let deriv = rep.profile.share(regions::DERIV);
        assert!(deriv > rep.profile.share(regions::FULL2FACE));
        assert!(deriv > rep.profile.share(regions::RK));
    }

    /// The mini-app's proxy loop is a real distributed DG advection: its
    /// result must match the single-process reference solver.
    #[test]
    fn distributed_solution_matches_serial_reference() {
        let cfg = Config {
            n: 6,
            elems_per_rank: 4,
            ranks: 4,
            steps: 5,
            fields: 1,
            variant: KernelVariant::Optimized,
            method: Some(GsMethod::PairwiseExchange),
            ..Default::default()
        };
        let mesh_cfg = MeshConfig::for_ranks(cfg.ranks, cfg.elems_per_rank, cfg.n, true);
        let ge = mesh_cfg.global_elems();
        let (_, dumps) = run_collecting_solution(&cfg);
        let dt = dumps[0].dt;

        // serial reference on the identical global mesh
        let mut serial = AdvectionSolver::new(AdvectionConfig {
            n: cfg.n,
            elems: ge,
            lengths: [ge[0] as f64, ge[1] as f64, ge[2] as f64],
            velocity: cfg.velocity,
            variant: cfg.variant,
        });
        let lengths = [ge[0] as f64, ge[1] as f64, ge[2] as f64];
        serial.init(|x, y, z| initial_profile(0, x, y, z, lengths));
        for _ in 0..cfg.steps {
            serial.step(dt);
        }

        // compare element by element via global ids
        let npts = cfg.n * cfg.n * cfg.n;
        let mut checked = 0;
        for dump in &dumps {
            for (le, &geid) in dump.global_elem_ids.iter().enumerate() {
                let data = &dump.fields[0][le * npts..(le + 1) * npts];
                let sdata = &serial.solution().element(geid);
                for (a, b) in data.iter().zip(sdata.iter()) {
                    assert!(
                        (a - b).abs() < 1e-10,
                        "elem {geid}: {a} vs {b} (diff {})",
                        (a - b).abs()
                    );
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, serial.nel() * npts);
    }

    #[test]
    fn dealias_roundtrip_changes_nothing_but_adds_the_workload() {
        let base = Config {
            method: Some(GsMethod::PairwiseExchange),
            ..small_cfg()
        };
        let plain = run(&base);
        let dealiased = run(&Config {
            dealias_m: Some(base.n + 3),
            ..base.clone()
        });
        // identity on the polynomial data: same physics to roundoff
        assert!(
            (plain.checksum - dealiased.checksum).abs() < 1e-9 * (1.0 + plain.checksum.abs()),
            "{} vs {}",
            plain.checksum,
            dealiased.checksum
        );
        // but the dealias region exists and did work
        assert!(dealiased.profile.share(regions::DEALIAS) > 0.0);
        assert!(plain.profile.share(regions::DEALIAS) == 0.0);
    }

    #[test]
    fn dealias_mesh_must_be_at_least_n() {
        let cfg = Config {
            dealias_m: Some(3),
            n: 5,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    /// The viscous proxy loop is a real distributed advection–diffusion
    /// solve: it must match the single-process BR1 reference solver.
    #[test]
    fn distributed_viscous_solution_matches_serial_reference() {
        use cmt_core::diffusion::{AdvDiffConfig, AdvDiffSolver};
        let cfg = Config {
            n: 5,
            elems_per_rank: 4,
            ranks: 4,
            steps: 4,
            fields: 1,
            viscosity: Some(0.02),
            method: Some(GsMethod::PairwiseExchange),
            ..Default::default()
        };
        let mesh_cfg = MeshConfig::for_ranks(cfg.ranks, cfg.elems_per_rank, cfg.n, true);
        let ge = mesh_cfg.global_elems();
        let lengths = [ge[0] as f64, ge[1] as f64, ge[2] as f64];
        let (_, dumps) = run_collecting_solution(&cfg);
        let dt = dumps[0].dt;

        let mut serial = AdvDiffSolver::new(AdvDiffConfig {
            n: cfg.n,
            elems: ge,
            lengths,
            velocity: cfg.velocity,
            nu: 0.02,
            variant: cfg.variant,
        });
        serial.init(|x, y, z| initial_profile(0, x, y, z, lengths));
        for _ in 0..cfg.steps {
            serial.step(dt);
        }

        let npts = cfg.n * cfg.n * cfg.n;
        let mut max_diff = 0.0f64;
        for dump in &dumps {
            for (le, &geid) in dump.global_elem_ids.iter().enumerate() {
                let data = &dump.fields[0][le * npts..(le + 1) * npts];
                for (a, b) in data.iter().zip(serial.solution().element(geid)) {
                    max_diff = max_diff.max((a - b).abs());
                }
            }
        }
        assert!(
            max_diff < 1e-10,
            "viscous distributed vs serial: {max_diff}"
        );
    }

    #[test]
    fn viscosity_adds_regions_and_shrinks_dt() {
        let base = Config {
            n: 6,
            elems_per_rank: 8,
            ranks: 2,
            steps: 2,
            fields: 1,
            method: Some(GsMethod::PairwiseExchange),
            ..Default::default()
        };
        let geom = cmt_core::ops::ElementGeom::cube(1.0);
        let dt_inviscid = super::stable_dt(&base, &geom);
        let viscous_cfg = Config {
            viscosity: Some(0.5),
            ..base.clone()
        };
        assert!(super::stable_dt(&viscous_cfg, &geom) < dt_inviscid);
        let rep = run(&viscous_cfg);
        assert!(rep.profile.share(regions::VISCOUS) > 0.0);
        // viscous trace exchanges recorded under their own context
        assert!(rep
            .comm
            .sites
            .iter()
            .any(|s| s.site.context.contains("faces_visc")));
    }

    /// The overlapped schedule only reorders *independent* work (volume
    /// kernels of other fields run between start and finish), and `finish`
    /// folds neighbor contributions in the same fixed order as the
    /// blocking path — so the inviscid solve must be bitwise identical.
    #[test]
    fn overlapped_pipeline_is_bitwise_identical_to_blocking_inviscid() {
        let base = Config {
            n: 5,
            elems_per_rank: 8,
            ranks: 4,
            steps: 3,
            fields: 3,
            dealias_m: Some(8),
            method: Some(GsMethod::PairwiseExchange),
            ..Default::default()
        };
        let (_, blocking) = run_collecting_solution(&Config {
            pipeline: Pipeline::Blocking,
            ..base.clone()
        });
        let (_, overlapped) = run_collecting_solution(&Config {
            pipeline: Pipeline::Overlapped,
            ..base.clone()
        });
        assert_eq!(blocking.len(), overlapped.len());
        for (a, b) in blocking.iter().zip(&overlapped) {
            assert_eq!(a.global_elem_ids, b.global_elem_ids);
            for (fa, fb) in a.fields.iter().zip(&b.fields) {
                assert_eq!(fa, fb, "overlapped inviscid must match blocking bitwise");
            }
        }
    }

    /// The overlapped viscous pass accumulates the three axis divergences
    /// before the three surface corrections (the blocking path interleaves
    /// them), so it is equal only to roundoff — but no looser.
    #[test]
    fn overlapped_viscous_matches_blocking_to_roundoff() {
        let base = Config {
            n: 5,
            elems_per_rank: 4,
            ranks: 4,
            steps: 3,
            fields: 2,
            viscosity: Some(0.02),
            method: Some(GsMethod::PairwiseExchange),
            ..Default::default()
        };
        let a = run(&Config {
            pipeline: Pipeline::Blocking,
            ..base.clone()
        })
        .checksum;
        let b = run(&Config {
            pipeline: Pipeline::Overlapped,
            ..base.clone()
        })
        .checksum;
        assert!((a - b).abs() < 1e-11 * (1.0 + a.abs()), "{a} vs {b}");
    }

    /// One batched exchange carries all fields: the overlapped schedule
    /// must send `fields`x fewer face messages than the blocking one.
    #[test]
    fn overlapped_pipeline_batches_field_exchanges() {
        let base = Config {
            n: 5,
            elems_per_rank: 8,
            ranks: 4,
            steps: 2,
            fields: 5,
            method: Some(GsMethod::PairwiseExchange),
            ..Default::default()
        };
        let face_isends = |rep: &RunReport| -> u64 {
            rep.comm
                .sites
                .iter()
                .filter(|s| {
                    s.site.op == simmpi::MpiOp::Isend && s.site.context == "faces/gs:pairwise"
                })
                .map(|s| s.calls)
                .sum()
        };
        let blocking = run(&Config {
            pipeline: Pipeline::Blocking,
            ..base.clone()
        });
        let overlapped = run(&Config {
            pipeline: Pipeline::Overlapped,
            ..base.clone()
        });
        let (nb, no) = (face_isends(&blocking), face_isends(&overlapped));
        assert!(no > 0, "overlapped run sent no face messages");
        assert_eq!(
            nb,
            base.fields as u64 * no,
            "blocking sent {nb} face messages, overlapped {no}; expected a {}x reduction",
            base.fields
        );
    }

    #[test]
    fn overlapped_profile_splits_gs_into_start_and_finish() {
        let rep = run(&Config {
            steps: 4,
            ..small_cfg()
        });
        for name in [regions::GS_OP, regions::GS_START, regions::GS_FINISH] {
            assert!(
                rep.profile.flat.iter().any(|(n, _)| n == name),
                "missing region {name}"
            );
        }
        // start/finish nest under the gs_op_ parent row
        for child in [regions::GS_START, regions::GS_FINISH] {
            assert!(
                rep.profile
                    .edges
                    .iter()
                    .any(|(p, c, _, _)| p == regions::GS_OP && c == child),
                "missing call-graph edge {} -> {child}",
                regions::GS_OP
            );
        }
        // the blocking baseline keeps the undivided gs_op_ row
        let blocking = run(&Config {
            steps: 2,
            pipeline: Pipeline::Blocking,
            ..small_cfg()
        });
        assert!(!blocking
            .profile
            .flat
            .iter()
            .any(|(n, _)| n == regions::GS_START));
    }

    #[test]
    fn comm_stats_include_face_exchange() {
        let rep = run(&Config {
            method: Some(GsMethod::PairwiseExchange),
            ..small_cfg()
        });
        // pairwise exchange under the "faces" context shows Isend/Wait
        let found =
            rep.comm.sites.iter().any(|s| {
                s.site.op == simmpi::MpiOp::Wait && s.site.context.contains("gs:pairwise")
            });
        assert!(found, "missing MPI_Wait at gs:pairwise site");
        let cfl = rep
            .comm
            .sites
            .iter()
            .any(|s| s.site.op == simmpi::MpiOp::Allreduce && s.site.context == "cfl");
        assert!(cfl, "missing cfl allreduce site");
    }

    #[test]
    #[should_panic(expected = "invalid CMT-bone configuration")]
    fn invalid_config_rejected() {
        let _ = run(&Config {
            n: 1,
            ..Default::default()
        });
    }

    #[test]
    fn injected_kill_recovers_to_identical_state() {
        let base = Config {
            steps: 8,
            checkpoint_every: 2,
            method: Some(GsMethod::PairwiseExchange),
            ..small_cfg()
        };
        let clean = run(&base);
        let faulty = run(&Config {
            fault_plan: Some(simmpi::FaultPlan::parse("kill:rank=2,step=5").unwrap()),
            ..base.clone()
        });
        // coordinated rollback + deterministic solver: the interrupted run
        // must finish bitwise identical to the uninterrupted one
        assert_eq!(clean.checksum, faulty.checksum);
        assert_eq!(
            clean.state_hash, faulty.state_hash,
            "recovered run diverged from the uninterrupted run"
        );
        // recovery shows up as its own region in the Fig. 4 profile...
        for name in [cmt_perf::regions::CHECKPOINT, cmt_perf::regions::RECOVERY] {
            assert!(
                faulty.profile.flat.iter().any(|(n, _)| n == name),
                "missing region {name}"
            );
        }
        assert!(!clean
            .profile
            .flat
            .iter()
            .any(|(n, _)| n == cmt_perf::regions::RECOVERY));
        // ...and its traffic is a distinct context in the mpiP report
        for ctx in ["checkpoint", "recovery"] {
            assert!(
                faulty.comm.sites.iter().any(|s| s.site.context == ctx),
                "missing '{ctx}' comm context"
            );
        }
    }

    #[test]
    fn message_faults_are_reported_and_harmless() {
        let base = Config {
            method: Some(GsMethod::PairwiseExchange),
            ..small_cfg()
        };
        let clean = run(&base);
        let faulty = run(&Config {
            fault_plan: Some(
                simmpi::FaultPlan::parse(
                    "delay:prob=0.2,us=50;drop:prob=0.1,us=100,retries=3;seed=11",
                )
                .unwrap(),
            ),
            ..base.clone()
        });
        // delays and retransmissions never change what arrives
        assert_eq!(clean.state_hash, faulty.state_hash);
        assert_eq!(clean.checksum, faulty.checksum);
        // injected events are distinct entries in the mpiP-style report
        let injected: u64 = faulty
            .comm
            .sites
            .iter()
            .filter(|s| s.site.op.is_fault())
            .map(|s| s.calls)
            .sum();
        assert!(injected > 0, "fault plan injected nothing");
        assert!(!clean.comm.sites.iter().any(|s| s.site.op.is_fault()));
    }

    #[test]
    #[should_panic(expected = "checkpointing is off")]
    fn kills_without_checkpointing_rejected() {
        let _ = run(&Config {
            fault_plan: Some(simmpi::FaultPlan::parse("kill:rank=1,step=2").unwrap()),
            ..small_cfg()
        });
    }

    /// A clustered-particle config that leaves most particles on a few
    /// ranks: the canonical load-balancer workload.
    fn lb_cfg() -> Config {
        Config {
            steps: 8,
            particles_per_elem: 6,
            particle_cluster: Some(0.25),
            method: Some(GsMethod::PairwiseExchange),
            ..small_cfg()
        }
    }

    /// The load balancer's first law: migrating elements must not change
    /// the physics. The per-element state hash (fields + resident
    /// particles, merged in global-id order) must be bitwise identical
    /// with the balancer off and on — including the particle cloud.
    #[test]
    fn rebalanced_run_is_bitwise_identical_to_static_run() {
        let off = run(&lb_cfg());
        let on = run(&Config {
            lb_every: 2,
            lb_threshold: 1.05,
            ..lb_cfg()
        });
        let lb = on.lb.expect("lb summary present when enabled");
        assert!(
            lb.rebalances >= 1,
            "clustered particles at threshold 1.05 should trigger: {lb:?}"
        );
        assert!(lb.peak_imbalance > 1.05);
        assert_eq!(
            off.state_hash, on.state_hash,
            "rebalancing changed the physics"
        );
        assert!(off.lb.is_none());
        // the balancer's traffic is first-class in the mpiP report:
        // monitor gathers and element migration under the "lb" context
        use simmpi::MpiOp;
        for (op, ctx) in [(MpiOp::LbGather, "lb"), (MpiOp::LbMigrate, "lb")] {
            assert!(
                on.comm
                    .sites
                    .iter()
                    .any(|s| s.site.op == op && s.site.context == ctx),
                "missing {op:?} under context {ctx:?}"
            );
        }
        // particle drift between ranks is badged too
        assert!(on
            .comm
            .sites
            .iter()
            .any(|s| s.site.op == MpiOp::LbMigrate && s.site.context == "particle_migration"));
        // and the monitor/migration phases appear in the Fig. 4 profile
        for name in [cmt_perf::regions::LB_MONITOR, cmt_perf::regions::LB_MIGRATE] {
            assert!(
                on.profile.flat.iter().any(|(n, _)| n == name),
                "missing region {name}"
            );
        }
        assert!(on.render().contains("load balancing:"));
    }

    /// Deterministic straggler: a seeded per-rank delay hazard feeds the
    /// monitor's injected-delay signal, the policy sheds elements from
    /// the slow rank, and the run still reproduces the clean run exactly
    /// (delays and migrations are both physics-neutral).
    #[test]
    fn straggler_delay_triggers_rebalance_and_preserves_state() {
        let base = Config {
            particles_per_elem: 4,
            method: Some(GsMethod::PairwiseExchange),
            ..small_cfg()
        };
        let clean = run(&base);
        let balanced = run(&Config {
            lb_every: 2,
            lb_threshold: 1.1,
            fault_plan: Some(
                simmpi::FaultPlan::parse("delay:prob=1.0,us=500,rank=1;seed=9").unwrap(),
            ),
            ..base.clone()
        });
        let lb = balanced.lb.expect("lb summary");
        assert!(
            lb.rebalances >= 1,
            "persistent straggler should trigger a rebalance: {lb:?}"
        );
        assert!(lb.elems_moved > 0);
        assert_eq!(
            clean.state_hash, balanced.state_hash,
            "straggler-driven rebalance changed the physics"
        );
    }

    /// Converged steady state: once the policy has evened out the load,
    /// re-evaluations must not keep shuffling elements. With a static
    /// imbalance source the rebalance count stays far below the number
    /// of monitor evaluations.
    #[test]
    fn rebalance_converges_instead_of_thrashing() {
        let rep = run(&Config {
            steps: 16,
            lb_every: 2,
            lb_threshold: 1.05,
            ..lb_cfg()
        });
        let lb = rep.lb.expect("lb summary");
        // 7 in-run evaluations (steps 2..14): the cloud barely moves, so
        // after the first correction the greedy plan is stable
        assert!(
            (1..=3).contains(&lb.rebalances),
            "expected 1-3 rebalances over 16 steps, got {lb:?}"
        );
    }

    /// Load balancing composes with checkpoint/rollback: a kill after a
    /// rebalance rolls back to a checkpoint that may predate it; the
    /// restored owner vector rebuilds that partition and the run still
    /// finishes bitwise identical to the clean static run.
    #[test]
    fn lb_with_kill_and_rollback_stays_identical() {
        let off = run(&lb_cfg());
        let on = run(&Config {
            lb_every: 2,
            lb_threshold: 1.05,
            checkpoint_every: 2,
            fault_plan: Some(simmpi::FaultPlan::parse("kill:rank=2,step=5").unwrap()),
            ..lb_cfg()
        });
        assert!(on.lb.expect("lb summary").rebalances >= 1);
        assert_eq!(
            off.state_hash, on.state_hash,
            "kill+rollback under load balancing diverged"
        );
    }

    /// The message-level verifier stays clean across migrations: every
    /// shipped element and particle is received exactly once.
    #[test]
    fn lb_run_passes_verification() {
        let rep = run(&Config {
            lb_every: 2,
            lb_threshold: 1.05,
            verify: true,
            ..lb_cfg()
        });
        assert!(rep.lb.expect("lb summary").rebalances >= 1);
        let findings = rep.verify.expect("verification ran");
        assert!(
            findings.is_empty(),
            "verifier found protocol violations in a balanced run: {findings:?}"
        );
    }
}
