//! # cmt-bone
//!
//! The CMT-bone mini-app (Kumar et al., CLUSTER 2015): a performance proxy
//! for CMT-nek, the discontinuous-Galerkin spectral-element compressible
//! multiphase turbulence solver built on Nek5000.
//!
//! Per the paper (§IV), the mini-app abstracts CMT-nek's timestep into
//!
//! 1. the **flux-divergence** term — small matrix multiplications of the
//!    `N x N` derivative operator against the `(N, N, N, Nel)` element
//!    data ([`cmt_core::kernels`], the dominant `ax_`-like cost of
//!    Fig. 4);
//! 2. the **numerical-flux** term — `full2face` surface extraction and a
//!    nearest-neighbor gather–scatter exchange ([`cmt_gs`]);
//! 3. **vector reductions** — global allreduces for timestep control.
//!
//! The proxy's five fields stand in for the conserved variables (mass,
//! momentum, energy). Rather than stepping meaningless data, this
//! implementation advances each field with a *real* DG advection operator
//! assembled from exactly the proxy kernels (upwind fluxes recovered from
//! the gather-scatter exchange), so the mini-app is simultaneously a
//! faithful performance proxy and a numerically verifiable program: the
//! test suite checks the distributed run against the single-process
//! reference solver of [`cmt_core::solver`].
//!
//! Entry points:
//! * [`Config`] + [`run`] — execute the mini-app and collect the full
//!   measurement set ([`RunReport`]: Fig. 4 profile, Fig. 7 autotune
//!   table, Figs. 8-10 communication statistics);
//! * [`run_collecting_solution`] — same, returning the final fields for
//!   validation;
//! * the `cmt-bone` binary — command-line driver printing the paper-style
//!   reports.

#![warn(missing_docs)]

mod config;
mod driver;
pub mod euler;
mod report;

pub use config::{Config, Pipeline};
pub use driver::{run, run_collecting_solution, SolutionDump};
pub use euler::{run_euler, EulerRunConfig, EulerRunReport};
pub use report::{LbSummary, RunReport};
