//! CMT-bone command-line driver.
//!
//! ```text
//! cmt-bone [--ranks P] [--elems NEL] [--n N] [--steps S] [--fields F]
//!          [--variant basic|opt|spec] [--method pairwise|crystal|allreduce]
//!          [--pipeline blocking|overlapped] [--net qdr|exa|gbe] [--quiet]
//! ```
//!
//! Runs the mini-app and prints the paper-style report (setup block,
//! Fig. 7 autotune table, Fig. 4 profile, Figs. 8-10 communication
//! statistics).

use cmt_bone::{run, Config, Pipeline};
use cmt_core::KernelVariant;
use cmt_gs::GsMethod;
use simmpi::{FaultPlan, NetworkModel, SocketConfig, TransportKind};

fn usage() -> ! {
    eprintln!(
        "usage: cmt-bone [--ranks P] [--elems NEL_PER_RANK] [--n N] [--steps S]\n\
         \x20                [--fields F] [--variant basic|opt|spec|batched|unroll|simd|auto]\n\
         \x20                [--workers W]\n\
         \x20                [--method pairwise|crystal|allreduce]\n\
         \x20                [--pipeline blocking|overlapped] [--net qdr|exa|gbe]\n\
         \x20                [--cfl-interval K] [--dealias M] [--euler] [--quiet]\n\
         \x20                [--checkpoint-every K] [--checkpoint-dir PATH]\n\
         \x20                [--restart PATH] [--fault-plan SPEC]\n\
         \x20                [--verify] [--chaos-sched SEED] [--no-pool]\n\
         \x20                [--transport inproc|socket] [--transport-addr ADDR]\n\
         \x20                [--particles-per-elem Q] [--particle-cluster FRAC]\n\
         \x20                [--lb-every K] [--lb-threshold T]\n\
         \n\
         --transport socket runs every rank as a child process over\n\
         Unix-domain sockets (rank 0's process is the launcher/hub);\n\
         --transport-addr overrides the endpoint, e.g. unix:/tmp/w.sock\n\
         or tcp:127.0.0.1:0. Results are bitwise identical to inproc.\n\
         fault plan SPEC: semicolon-separated events, e.g.\n\
         \x20 'delay:prob=0.1,us=200;drop:prob=0.05;kill:rank=2,step=5;seed=7'\n\
         --variant auto autotunes the derivative kernel at startup (variant x\n\
         chunk grain, averaged across ranks — the Fig. 7 protocol for compute).\n\
         --workers shares each rank's overlap-window element loops across a\n\
         work-stealing pool of W threads (1 = pure MPI); results are bitwise\n\
         identical across worker counts.\n\
         --verify runs the cmt-verify dynamic checker (deadlock, collective\n\
         matching, message leaks, races); exit status 1 on findings.\n\
         --chaos-sched overlays seeded message delays to perturb the schedule.\n\
         --no-pool disables message-buffer recycling (allocate per message).\n\
         --particles-per-elem seeds Q passive tracers per element (0 = off);\n\
         --particle-cluster FRAC crowds them into the first FRAC of the x\n\
         extent (the imbalanced cloud). --lb-every K evaluates the dynamic\n\
         load balancer every K steps; --lb-threshold T (max/mean load, > 1)\n\
         sets the rebalance trigger. Balancing never changes the physics:\n\
         state hashes are bitwise identical with LB on or off."
    );
    std::process::exit(2);
}

fn parse_usize(v: Option<String>) -> usize {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

/// Run the compressible-Euler physics mode instead of the proxy loop.
fn run_euler_mode(cfg: &Config, quiet: bool) {
    use cmt_bone::{run_euler, EulerRunConfig};
    use std::f64::consts::PI;
    let ecfg = EulerRunConfig {
        n: cfg.n,
        elems_per_rank: cfg.elems_per_rank,
        ranks: cfg.ranks,
        steps: cfg.steps,
        variant: cfg.variant,
        method: cfg.method.unwrap_or(cmt_gs::GsMethod::PairwiseExchange),
        cfl: cfg.cfl,
        cfl_interval: cfg.cfl_interval,
        particles_per_elem: if cfg.particles_per_elem > 0 {
            cfg.particles_per_elem
        } else {
            2
        },
        ..Default::default()
    };
    let mesh = cmt_mesh::MeshConfig::for_ranks(ecfg.ranks, ecfg.elems_per_rank, ecfg.n, true);
    let ge = mesh.global_elems();
    let lengths = [ge[0] as f64, ge[1] as f64, ge[2] as f64];
    let rep = run_euler(&ecfg, move |x, y, _z| cmt_core::eos::Primitive {
        rho: 1.0 + 0.2 * (2.0 * PI * x / lengths[0]).sin(),
        vel: [0.5, 0.1 * (2.0 * PI * y / lengths[1]).cos(), 0.0],
        p: 1.0,
    });
    if quiet {
        println!(
            "t {:.6}  admissible {}  mass {:+.9e}  particles {}",
            rep.time, rep.admissible, rep.totals_after[0], rep.particle_count
        );
    } else {
        println!("{}", rep.render());
    }
}

fn main() {
    let mut cfg = Config::default();
    let mut quiet = false;
    let mut euler = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ranks" => cfg.ranks = parse_usize(args.next()),
            "--elems" => cfg.elems_per_rank = parse_usize(args.next()),
            "--n" => cfg.n = parse_usize(args.next()),
            "--steps" => cfg.steps = parse_usize(args.next()),
            "--fields" => cfg.fields = parse_usize(args.next()),
            "--cfl-interval" => cfg.cfl_interval = parse_usize(args.next()),
            "--dealias" => cfg.dealias_m = Some(parse_usize(args.next())),
            "--variant" => match args.next().as_deref() {
                Some("basic") => cfg.variant = KernelVariant::Basic,
                Some("opt") => cfg.variant = KernelVariant::Optimized,
                Some("spec") => cfg.variant = KernelVariant::Specialized,
                Some("batched") => cfg.variant = KernelVariant::Batched,
                Some("unroll") => cfg.variant = KernelVariant::UnrollJam,
                Some("simd") => cfg.variant = KernelVariant::Simd,
                Some("auto") => cfg.kernel_autotune = true,
                _ => usage(),
            },
            "--workers" => cfg.workers = parse_usize(args.next()),
            "--method" => {
                cfg.method = match args.next().as_deref() {
                    Some("pairwise") => Some(GsMethod::PairwiseExchange),
                    Some("crystal") => Some(GsMethod::CrystalRouter),
                    Some("allreduce") => Some(GsMethod::AllReduce),
                    _ => usage(),
                }
            }
            "--pipeline" => {
                cfg.pipeline = match args.next().as_deref() {
                    Some("blocking") => Pipeline::Blocking,
                    Some("overlapped") => Pipeline::Overlapped,
                    _ => usage(),
                }
            }
            "--net" => {
                cfg.net = match args.next().as_deref() {
                    Some("qdr") => Some(NetworkModel::qdr_infiniband()),
                    Some("exa") => Some(NetworkModel::notional_exascale()),
                    Some("gbe") => Some(NetworkModel::gigabit_ethernet()),
                    _ => usage(),
                }
            }
            "--checkpoint-every" => cfg.checkpoint_every = parse_usize(args.next()),
            "--checkpoint-dir" => {
                cfg.checkpoint_dir = Some(args.next().unwrap_or_else(|| usage()).into())
            }
            "--restart" => cfg.restart_from = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--fault-plan" => {
                let spec = args.next().unwrap_or_else(|| usage());
                cfg.fault_plan = match FaultPlan::parse(&spec) {
                    Ok(plan) => Some(plan),
                    Err(e) => {
                        eprintln!("bad fault plan: {e}");
                        usage()
                    }
                }
            }
            "--verify" => cfg.verify = true,
            "--no-pool" => cfg.pool = false,
            "--transport" => match args.next().as_deref() {
                Some("inproc") => cfg.transport = TransportKind::Inproc,
                Some("socket") => {
                    if !matches!(cfg.transport, TransportKind::Socket(_)) {
                        cfg.transport = TransportKind::Socket(SocketConfig::default());
                    }
                }
                _ => usage(),
            },
            "--transport-addr" => {
                let addr = Some(args.next().unwrap_or_else(|| usage()));
                match &mut cfg.transport {
                    TransportKind::Socket(c) => c.addr = addr,
                    _ => {
                        cfg.transport = TransportKind::Socket(SocketConfig {
                            addr,
                            ..Default::default()
                        })
                    }
                }
            }
            "--particles-per-elem" => cfg.particles_per_elem = parse_usize(args.next()),
            "--particle-cluster" => {
                cfg.particle_cluster = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--lb-every" => cfg.lb_every = parse_usize(args.next()),
            "--lb-threshold" => {
                cfg.lb_threshold = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--chaos-sched" => {
                cfg.chaos_sched = args.next().and_then(|s| s.parse().ok()).or_else(|| usage())
            }
            "--quiet" => quiet = true,
            "--euler" => euler = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }
    if euler {
        run_euler_mode(&cfg, quiet);
        return;
    }
    let report = run(&cfg);
    if quiet {
        println!(
            "checksum {:.12e}  state {:016x}  wall avg {:.4}s max {:.4}s  method {}",
            report.checksum,
            report.state_hash,
            report.avg_wall_s(),
            report.max_wall_s(),
            report.chosen_method.name()
        );
        if let Some(findings) = &report.verify {
            print!("{}", cmt_verify::render_findings(findings));
        }
    } else {
        println!("{}", report.render());
    }
    if report.verify.as_ref().is_some_and(|f| !f.is_empty()) {
        std::process::exit(1);
    }
}
