//! Distributed compressible Euler stepping — the mini-app's proxy loop
//! upgraded to the parent application's physics.
//!
//! CMT-nek "solves the conservation law for each component of the vector
//! of conserved variables" (paper §III.B); this module does exactly that
//! across ranks: per RK stage and per conserved variable it computes the
//! flux divergence with the derivative kernels, extracts surfaces with
//! `full2face`, exchanges neighbor traces through the gather–scatter
//! library, applies the Rusanov numerical flux, and finishes with the RK
//! update — the identical operation sequence as the advection proxy, with
//! the real compressible flux in the middle.
//!
//! The test suite validates the distributed run against
//! [`cmt_core::euler::EulerSolver`] point-for-point.

use std::time::Instant;

use cmt_core::eos::{IdealGas, Primitive, NVARS};
use cmt_core::face::{self, Face};
use cmt_core::kernels::{self, DerivDir};
use cmt_core::ops::ElementGeom;
use cmt_core::poly::Basis;
use cmt_core::{rk, Field, KernelVariant};
use cmt_gs::{GsHandle, GsMethod, GsOp};
use cmt_mesh::{MeshConfig, RankMesh};
use cmt_perf::{MpipReport, Profiler};
use simmpi::{Rank, ReduceOp, World};

/// Configuration of a distributed Euler run.
#[derive(Debug, Clone)]
pub struct EulerRunConfig {
    /// GLL points per direction per element.
    pub n: usize,
    /// Elements per rank.
    pub elems_per_rank: usize,
    /// Rank count.
    pub ranks: usize,
    /// Timesteps.
    pub steps: usize,
    /// Gas model.
    pub gas: IdealGas,
    /// Kernel implementation.
    pub variant: KernelVariant,
    /// Gather-scatter method for the surface exchange.
    pub method: GsMethod,
    /// CFL number; the timestep adapts every [`EulerRunConfig::cfl_interval`]
    /// steps from a global wave-speed allreduce (the paper's "adaptive
    /// time stepping" future-work item).
    pub cfl: f64,
    /// Steps between timestep adaptations.
    pub cfl_interval: usize,
    /// Lagrangian point particles seeded per element (0 disables). When
    /// enabled, particles are advected every step by the interpolated
    /// fluid velocity and migrated between ranks with the crystal router
    /// — the "compressible *multiphase*" coupling the paper's title
    /// promises and its §III.A development plan schedules.
    pub particles_per_elem: usize,
}

impl Default for EulerRunConfig {
    fn default() -> Self {
        EulerRunConfig {
            n: 6,
            elems_per_rank: 8,
            ranks: 4,
            steps: 10,
            gas: IdealGas::default(),
            variant: KernelVariant::Optimized,
            method: GsMethod::PairwiseExchange,
            cfl: 0.2,
            cfl_interval: 5,
            particles_per_elem: 0,
        }
    }
}

/// Outcome of a distributed Euler run.
#[derive(Debug)]
pub struct EulerRunReport {
    /// Mesh summary block.
    pub mesh_summary: String,
    /// Conserved-quantity totals before stepping.
    pub totals_before: [f64; NVARS],
    /// Conserved-quantity totals after stepping.
    pub totals_after: [f64; NVARS],
    /// Simulated time reached.
    pub time: f64,
    /// Merged region profile.
    pub profile: cmt_perf::ProfileReport,
    /// Communication statistics.
    pub comm: MpipReport,
    /// Whether every rank's final state is physically admissible.
    pub admissible: bool,
    /// World-wide particle count at the end (0 when tracking is off);
    /// must equal `particles_per_elem * total_elems`.
    pub particle_count: u64,
    /// Total particle migrations over the run, summed over ranks/steps.
    pub particles_migrated: u64,
    /// Per-rank final fields + element map (for validation), rank order.
    pub solutions: Vec<EulerSolution>,
}

/// One rank's final Euler state.
#[derive(Debug, Clone)]
pub struct EulerSolution {
    /// Global element ids in local order.
    pub global_elem_ids: Vec<usize>,
    /// The five conserved fields, flat `Field` layout.
    pub fields: Vec<Vec<f64>>,
}

impl EulerRunReport {
    /// Render a human-readable summary of the run.
    pub fn render(&self) -> String {
        let mut out = String::from("Setup:\n");
        out.push_str(&self.mesh_summary);
        out.push_str(&format!(
            "\n\nreached t = {:.6}; physically admissible: {}\n",
            self.time, self.admissible
        ));
        let names = ["mass", "x-momentum", "y-momentum", "z-momentum", "energy"];
        out.push_str("conserved totals (before -> after):\n");
        for (c, name) in names.iter().enumerate() {
            out.push_str(&format!(
                "  {name:11} {:+.9e} -> {:+.9e}\n",
                self.totals_before[c], self.totals_after[c]
            ));
        }
        if self.particle_count > 0 {
            out.push_str(&format!(
                "particles: {} tracked, {} rank-to-rank migrations\n",
                self.particle_count, self.particles_migrated
            ));
        }
        out.push_str("\nExecution profile:\n");
        out.push_str(&self.profile.render_flat());
        out
    }
}

struct RankOut {
    profiler: Profiler,
    totals_before: [f64; NVARS],
    totals_after: [f64; NVARS],
    time: f64,
    admissible: bool,
    particle_count: u64,
    particles_migrated: u64,
    solution: EulerSolution,
}

/// Run the distributed Euler solver with the given smooth initial
/// primitive state (a function of global physical coordinates; elements
/// are unit cubes, so the box is `global_elems` wide).
pub fn run_euler(
    cfg: &EulerRunConfig,
    init: impl Fn(f64, f64, f64) -> Primitive + Send + Sync,
) -> EulerRunReport {
    let mesh_cfg = MeshConfig::for_ranks(cfg.ranks, cfg.elems_per_rank, cfg.n, true);
    let init = &init;
    let result = World::new().run(cfg.ranks, |rank| rank_main(rank, cfg, &mesh_cfg, init));

    let mut merged = Profiler::new();
    let mut totals_before = [0.0; NVARS];
    let mut totals_after = [0.0; NVARS];
    let mut time = 0.0;
    let mut admissible = true;
    let mut particle_count = 0;
    let mut particles_migrated = 0;
    let mut solutions = Vec::new();
    for out in result.results {
        merged.merge(&out.profiler);
        totals_before = out.totals_before; // identical on all ranks (allreduced)
        totals_after = out.totals_after;
        time = out.time;
        admissible &= out.admissible;
        particle_count = out.particle_count; // allreduced, identical
        particles_migrated = out.particles_migrated;
        solutions.push(out.solution);
    }
    EulerRunReport {
        mesh_summary: mesh_cfg.summary(),
        totals_before,
        totals_after,
        time,
        profile: merged.report(),
        comm: MpipReport::from_stats(&result.stats),
        admissible,
        particle_count,
        particles_migrated,
        solutions,
    }
}

fn rank_main(
    rank: &mut Rank,
    cfg: &EulerRunConfig,
    mesh_cfg: &MeshConfig,
    init: &(impl Fn(f64, f64, f64) -> Primitive + Send + Sync),
) -> RankOut {
    let _start = Instant::now();
    let mut prof = Profiler::new();
    let n = cfg.n;
    let n3 = n * n * n;
    let basis = Basis::new(n);
    let geom = ElementGeom::cube(1.0);
    let gas = cfg.gas;

    prof.enter("setup");
    let mesh = RankMesh::new(mesh_cfg.clone(), rank.rank());
    let gids = mesh.face_exchange_gids();
    let handle = GsHandle::setup(rank, &gids);
    prof.exit();

    let nel = mesh.nel();
    let coords = |e: usize, i: usize, j: usize, k: usize| {
        let gc = mesh.global_elem_coords(e);
        [
            gc[0] as f64 + (basis.nodes[i] + 1.0) / 2.0,
            gc[1] as f64 + (basis.nodes[j] + 1.0) / 2.0,
            gc[2] as f64 + (basis.nodes[k] + 1.0) / 2.0,
        ]
    };
    let mut u: Vec<Field> = (0..NVARS).map(|_| Field::zeros(n, nel)).collect();
    for e in 0..nel {
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let [x, y, z] = coords(e, i, j, k);
                    let cons = gas.conserved(init(x, y, z));
                    for (c, &v) in cons.iter().enumerate() {
                        u[c].set(e, i, j, k, v);
                    }
                }
            }
        }
    }
    let mut u0 = u.clone();
    let mut rhs: Vec<Field> = (0..NVARS).map(|_| Field::zeros(n, nel)).collect();
    // one flux field per conserved variable: the fused pointwise pass
    // evaluates each point's full flux vector once per axis
    let mut flux: Vec<Field> = (0..NVARS).map(|_| Field::zeros(n, nel)).collect();
    let mut scratch = Field::zeros(n, nel);
    let fpe = face::face_values_per_element(n);
    let mut faces_own: Vec<Vec<f64>> = (0..NVARS).map(|_| vec![0.0; fpe * nel]).collect();
    let mut faces_nbr: Vec<Vec<f64>> = (0..NVARS).map(|_| vec![0.0; fpe * nel]).collect();

    let totals = |u: &[Field], rank: &mut Rank| -> [f64; NVARS] {
        let w = &basis.weights;
        let jac = 1.0 / 8.0;
        let mut loc = [0.0; NVARS];
        for (c, t) in loc.iter_mut().enumerate() {
            for e in 0..nel {
                for k in 0..n {
                    for j in 0..n {
                        for i in 0..n {
                            *t += w[i] * w[j] * w[k] * jac * u[c].get(e, i, j, k);
                        }
                    }
                }
            }
        }
        rank.set_context("totals");
        let red = rank.allreduce_f64(&loc, ReduceOp::Sum);
        rank.set_context("main");
        [red[0], red[1], red[2], red[3], red[4]]
    };
    let totals_before = totals(&u, rank);

    // Adaptive dt from the global wave speed (allreduce Max) — the
    // mini-app's vector-reduction component doing real work.
    let global_dt = |u: &[Field], rank: &mut Rank| -> f64 {
        let mut s = 0.0f64;
        for e in 0..nel {
            for p in 0..n3 {
                let idx = e * n3 + p;
                let uu = [
                    u[0].as_slice()[idx],
                    u[1].as_slice()[idx],
                    u[2].as_slice()[idx],
                    u[3].as_slice()[idx],
                    u[4].as_slice()[idx],
                ];
                for axis in 0..3 {
                    s = s.max(gas.max_wave_speed(&uu, axis));
                }
            }
        }
        rank.set_context("cfl");
        let smax = rank.allreduce_scalar(s, ReduceOp::Max);
        rank.set_context("main");
        cfg.cfl / ((n * n) as f64 * smax.max(1e-30))
    };

    let eval_rhs = |u: &[Field],
                    rhs: &mut [Field],
                    flux: &mut [Field],
                    scratch: &mut Field,
                    faces_own: &mut [Vec<f64>],
                    faces_nbr: &mut [Vec<f64>],
                    rank: &mut Rank,
                    prof: &mut Profiler| {
        // volume term
        prof.enter("ax_cmt (flux divergence derivs)");
        for r in rhs.iter_mut() {
            r.fill(0.0);
        }
        for (axis, dir) in [(0, DerivDir::R), (1, DerivDir::S), (2, DerivDir::T)] {
            let scale = geom.dscale(axis);
            // fused pointwise pass: one full flux-vector evaluation per
            // point per axis, scattered to all five component fields (the
            // unfused loop recomputed the vector per component — 15 flux
            // evaluations per point per stage instead of 3). Component
            // values are unchanged, so the per-component derivative and
            // accumulation below stay bitwise identical.
            for idx in 0..n3 * nel {
                let uu = [
                    u[0].as_slice()[idx],
                    u[1].as_slice()[idx],
                    u[2].as_slice()[idx],
                    u[3].as_slice()[idx],
                    u[4].as_slice()[idx],
                ];
                let f = gas.flux(&uu, axis);
                for (c, &fc) in f.iter().enumerate() {
                    flux[c].as_mut_slice()[idx] = fc;
                }
            }
            for c in 0..NVARS {
                kernels::deriv(
                    cfg.variant,
                    dir,
                    n,
                    nel,
                    &basis.d,
                    flux[c].as_slice(),
                    scratch.as_mut_slice(),
                );
                rhs[c].axpy(-scale, scratch);
            }
        }
        prof.exit();

        // surface extraction + exchange: neighbor trace = gs_add - own
        prof.enter("full2face_cmt");
        for c in 0..NVARS {
            face::full2face(n, nel, u[c].as_slice(), &mut faces_own[c]);
            faces_nbr[c].copy_from_slice(&faces_own[c]);
        }
        prof.exit();
        prof.enter("gs_op_ (numerical flux exchange)");
        rank.set_context("faces");
        // vector gather-scatter: all five conserved traces in one bundled
        // exchange per neighbor
        {
            let mut refs: Vec<&mut [f64]> =
                faces_nbr.iter_mut().map(|v| v.as_mut_slice()).collect();
            handle.gs_op_many(rank, &mut refs, GsOp::Add, cfg.method);
        }
        rank.set_context("main");
        prof.exit();
        prof.enter("add_face2full (flux lift)");
        for c in 0..NVARS {
            for (nb, own) in faces_nbr[c].iter_mut().zip(&faces_own[c]) {
                *nb -= own;
            }
        }
        // Rusanov lifting
        let n2 = n * n;
        let w_end = basis.weights[0];
        for e in 0..nel {
            for f in Face::ALL {
                let axis = f.axis();
                let sign = f.sign() as f64;
                let lift = geom.dscale(axis) / w_end;
                let off = e * fpe + f.index() * n2;
                for p in 0..n2 {
                    let mut ul = [0.0; NVARS];
                    let mut ur = [0.0; NVARS];
                    for c in 0..NVARS {
                        ul[c] = faces_own[c][off + p];
                        ur[c] = faces_nbr[c][off + p];
                    }
                    let fstar = gas.rusanov_flux(&ul, &ur, axis, sign);
                    let fown = gas.flux(&ul, axis);
                    let vi = face::face_point_volume_index(n, f, p);
                    let idx = e * n3 + vi;
                    for c in 0..NVARS {
                        rhs[c].as_mut_slice()[idx] -= lift * (fstar[c] - sign * fown[c]);
                    }
                }
            }
        }
        prof.exit();
    };

    // Lagrangian particles riding the carrier flow.
    let mut pset = (cfg.particles_per_elem > 0).then(|| {
        let mut set = cmt_particles::ParticleSet::new(mesh.clone(), &basis);
        set.seed_uniform(cfg.particles_per_elem);
        set
    });
    let mut particles_migrated = 0u64;
    let mut vel_fields: Option<[Field; 3]> = pset.as_ref().map(|_| {
        [
            Field::zeros(n, nel),
            Field::zeros(n, nel),
            Field::zeros(n, nel),
        ]
    });

    prof.enter("timestep_loop");
    let mut time = 0.0;
    let mut dt = global_dt(&u, rank);
    for step in 0..cfg.steps {
        if step > 0 && step % cfg.cfl_interval == 0 {
            prof.enter("cfl_allreduce");
            dt = global_dt(&u, rank);
            prof.exit();
        }
        for (u0f, uf) in u0.iter_mut().zip(&u) {
            u0f.as_mut_slice().copy_from_slice(uf.as_slice());
        }
        for s in 0..rk::STAGES {
            eval_rhs(
                &u,
                &mut rhs,
                &mut flux,
                &mut scratch,
                &mut faces_own,
                &mut faces_nbr,
                rank,
                &mut prof,
            );
            prof.enter("rk_stage_update");
            for c in 0..NVARS {
                rk::stage_update(s, &mut u[c], &u0[c], &rhs[c], dt);
            }
            prof.exit();
        }
        time += dt;

        // One particle step per fluid step: interpolate the fluid
        // velocity (u_i = momentum_i / density), advect, migrate.
        if let (Some(set), Some(vf)) = (pset.as_mut(), vel_fields.as_mut()) {
            prof.enter(cmt_perf::regions::PARTICLE_ADVECT);
            for axis in 0..3 {
                let vfs = vf[axis].as_mut_slice();
                let rho = u[0].as_slice();
                let mom = u[1 + axis].as_slice();
                for (v, (r, m)) in vfs.iter_mut().zip(rho.iter().zip(mom)) {
                    *v = m / r;
                }
            }
            set.advect_field(dt, [&vf[0], &vf[1], &vf[2]]);
            prof.exit();
            prof.enter(cmt_perf::regions::PARTICLE_MIGRATE);
            let stats = set.migrate(rank);
            particles_migrated += stats.sent as u64;
            prof.exit();
        }
    }
    prof.exit();

    let particle_count = match pset.as_ref() {
        Some(set) => set.global_count(rank),
        None => 0,
    };
    rank.set_context("particle_totals");
    let particles_migrated = rank.allreduce_u64(&[particles_migrated], ReduceOp::Sum)[0];
    rank.set_context("main");

    let totals_after = totals(&u, rank);
    let admissible = (0..n3 * nel).all(|idx| {
        let uu = [
            u[0].as_slice()[idx],
            u[1].as_slice()[idx],
            u[2].as_slice()[idx],
            u[3].as_slice()[idx],
            u[4].as_slice()[idx],
        ];
        gas.is_admissible(&uu)
    });

    RankOut {
        profiler: prof,
        totals_before,
        totals_after,
        time,
        admissible,
        particle_count,
        particles_migrated,
        solution: EulerSolution {
            global_elem_ids: (0..nel).map(|le| mesh.global_elem_id(le)).collect(),
            fields: u.iter().map(|f| f.as_slice().to_vec()).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_core::euler::{EulerConfig, EulerSolver};
    use std::f64::consts::PI;

    fn wave(lengths: [f64; 3]) -> impl Fn(f64, f64, f64) -> Primitive + Send + Sync {
        move |x, y, _z| Primitive {
            rho: 1.0 + 0.15 * (2.0 * PI * x / lengths[0]).sin(),
            vel: [0.6, 0.1 * (2.0 * PI * y / lengths[1]).cos(), 0.0],
            p: 1.0,
        }
    }

    #[test]
    fn conserves_invariants_and_stays_admissible() {
        let cfg = EulerRunConfig {
            ranks: 4,
            elems_per_rank: 8,
            n: 5,
            steps: 8,
            ..Default::default()
        };
        let mesh_cfg = MeshConfig::for_ranks(cfg.ranks, cfg.elems_per_rank, cfg.n, true);
        let ge = mesh_cfg.global_elems();
        let lengths = [ge[0] as f64, ge[1] as f64, ge[2] as f64];
        let rep = run_euler(&cfg, wave(lengths));
        assert!(rep.admissible);
        for c in 0..NVARS {
            let scale = rep.totals_before[c].abs().max(1.0);
            assert!(
                (rep.totals_after[c] - rep.totals_before[c]).abs() < 1e-9 * scale,
                "invariant {c}: {} -> {}",
                rep.totals_before[c],
                rep.totals_after[c]
            );
        }
    }

    #[test]
    fn distributed_euler_matches_serial_solver() {
        let cfg = EulerRunConfig {
            ranks: 4,
            elems_per_rank: 4,
            n: 5,
            steps: 5,
            cfl_interval: 1000, // fixed dt over the run
            ..Default::default()
        };
        let mesh_cfg = MeshConfig::for_ranks(cfg.ranks, cfg.elems_per_rank, cfg.n, true);
        let ge = mesh_cfg.global_elems();
        let lengths = [ge[0] as f64, ge[1] as f64, ge[2] as f64];
        let rep = run_euler(&cfg, wave(lengths));

        // serial reference with the identical dt schedule
        let mut serial = EulerSolver::new(EulerConfig {
            n: cfg.n,
            elems: ge,
            lengths,
            gas: cfg.gas,
            variant: cfg.variant,
            artificial_viscosity: 0.0,
        });
        serial.init(wave(lengths));
        let dt = rep.time / cfg.steps as f64;
        for _ in 0..cfg.steps {
            serial.step(dt);
        }

        let npts = cfg.n * cfg.n * cfg.n;
        let mut max_diff = 0.0f64;
        for sol in &rep.solutions {
            for (le, &geid) in sol.global_elem_ids.iter().enumerate() {
                for c in 0..NVARS {
                    let data = &sol.fields[c][le * npts..(le + 1) * npts];
                    for (a, b) in data.iter().zip(serial.state()[c].element(geid)) {
                        max_diff = max_diff.max((a - b).abs());
                    }
                }
            }
        }
        assert!(max_diff < 1e-9, "distributed vs serial Euler: {max_diff}");
    }

    #[test]
    fn particle_laden_flow_conserves_particles_and_tracks_the_stream() {
        let cfg = EulerRunConfig {
            ranks: 4,
            elems_per_rank: 8,
            n: 5,
            steps: 40,
            particles_per_elem: 4,
            ..Default::default()
        };
        let mesh_cfg = MeshConfig::for_ranks(cfg.ranks, cfg.elems_per_rank, cfg.n, true);
        let ge = mesh_cfg.global_elems();
        let lengths = [ge[0] as f64, ge[1] as f64, ge[2] as f64];
        let rep = run_euler(&cfg, wave(lengths));
        assert_eq!(
            rep.particle_count,
            (mesh_cfg.total_elems() * 4) as u64,
            "particles lost or duplicated"
        );
        // with bulk velocity ~0.6 across rank blocks, some particles must
        // actually have migrated
        assert!(rep.particles_migrated > 0, "no particle ever migrated");
        // fluid untouched by (one-way-coupled) particles: invariants hold
        for c in 0..NVARS {
            let scale = rep.totals_before[c].abs().max(1.0);
            assert!((rep.totals_after[c] - rep.totals_before[c]).abs() < 1e-9 * scale);
        }
        // profile shows the particle regions
        assert!(rep.profile.flat.iter().any(|(n, _)| n == "particle_advect"));
        assert!(rep
            .profile
            .flat
            .iter()
            .any(|(n, _)| n.starts_with("particle_migrate")));
    }

    #[test]
    fn all_gs_methods_give_same_physics() {
        let mut sums = Vec::new();
        for method in GsMethod::ALL {
            let cfg = EulerRunConfig {
                ranks: 2,
                elems_per_rank: 4,
                n: 4,
                steps: 4,
                method,
                ..Default::default()
            };
            let mesh_cfg = MeshConfig::for_ranks(cfg.ranks, cfg.elems_per_rank, cfg.n, true);
            let ge = mesh_cfg.global_elems();
            let lengths = [ge[0] as f64, ge[1] as f64, ge[2] as f64];
            let rep = run_euler(&cfg, wave(lengths));
            sums.push(rep.totals_after);
        }
        for s in &sums[1..] {
            for c in 0..NVARS {
                assert!((s[c] - sums[0][c]).abs() < 1e-9 * (1.0 + sums[0][c].abs()));
            }
        }
    }
}
