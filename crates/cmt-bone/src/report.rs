//! Run reports: everything the paper's evaluation section measures, from
//! one mini-app execution.

use cmt_gs::{AutotuneReport, GsMethod};
use cmt_mesh::MeshConfig;
use cmt_perf::{MpipReport, ProfileReport};

/// Aggregate load-balancer activity over one run (all ranks), present
/// when `Config::lb_every` enabled the balancer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LbSummary {
    /// Times the rebalance trigger fired and a new partition was adopted.
    pub rebalances: u64,
    /// Elements shipped between ranks by rebalances (sum over ranks).
    pub elems_moved: u64,
    /// Particle ownership moves (advective drift + rebalances, sum over
    /// ranks).
    pub particles_moved: u64,
    /// Largest max-over-mean effective load the monitor observed at any
    /// evaluation point.
    pub peak_imbalance: f64,
}

/// The full measurement set of one CMT-bone (or Nekbone) run.
#[derive(Debug)]
pub struct RunReport {
    /// The mesh/partition configuration used.
    pub mesh: MeshConfig,
    /// Paper-style setup block (the Fig. 7 header).
    pub mesh_summary: String,
    /// The gather-scatter method actually used for the surface exchange.
    pub chosen_method: GsMethod,
    /// The startup tuning table (Fig. 7 body), when autotuning ran.
    pub autotune: Option<AutotuneReport>,
    /// The derivative-kernel tuning table (`--variant auto`): variant ×
    /// chunk-grain timings averaged across ranks, when the kernel
    /// autotune ran.
    pub kernel_autotune: Option<cmt_core::kernels::autotune::KernelAutotuneReport>,
    /// The derivative-kernel variant that actually ran: the configured
    /// variant resolved for this `n`, or the autotune winner under
    /// `--variant auto`.
    pub kernel_variant: cmt_core::KernelVariant,
    /// The instruction set the simd kernel tier dispatched to
    /// (`avx2` / `sse2` / `scalar`); `-` when a non-simd variant ran.
    pub kernel_isa: &'static str,
    /// Region profile merged over all ranks (Fig. 4).
    pub profile: ProfileReport,
    /// mpiP-style communication statistics (Figs. 8-10).
    pub comm: MpipReport,
    /// Per-rank wall time of the whole rank program, seconds.
    pub rank_wall_s: Vec<f64>,
    /// Per-rank *compute* self time, seconds: the physics regions only
    /// (derivatives, surface ops, RK, dealias, viscous, particle
    /// advection), excluding exchanges and waits. This is the quantity
    /// the load balancer redistributes, and its max over ranks is the
    /// step-loop critical path a parallel host's wall time follows. (On
    /// a host with fewer cores than ranks the *process* wall is the SUM
    /// of rank computes — partition-independent — so balancing effects
    /// are only visible here.)
    pub rank_compute_s: Vec<f64>,
    /// Per-rank modelled network time, seconds (zeros without a network
    /// model).
    pub modeled_comm_s: Vec<f64>,
    /// Deterministic global checksum of the final fields.
    pub checksum: f64,
    /// FNV-1a hash over every element's final state (field bytes plus
    /// resident particles), combined in ascending global-element-id
    /// order — a bitwise, *partition-independent* fingerprint of the
    /// final state. Used by the resilience tests and the CI
    /// fault-injection smoke job to compare recovered runs against
    /// uninterrupted ones, and by the load-balancer tests to prove a
    /// rebalanced run reproduces the static run exactly.
    pub state_hash: u64,
    /// Load-balancer activity, when `Config::lb_every` enabled it.
    pub lb: Option<LbSummary>,
    /// Timesteps executed.
    pub steps: usize,
    /// Conserved-variable fields stepped.
    pub fields: usize,
    /// `cmt-verify` findings when the run was checked (`Config::verify`);
    /// `None` when verification was off, `Some(vec![])` for a clean run.
    pub verify: Option<Vec<cmt_verify::Finding>>,
}

impl RunReport {
    /// Modelled floating-point work of the whole run (all ranks): the
    /// derivative kernels (3 per field per stage), the RK updates, and
    /// the face lift — from the exact operation counts of
    /// [`cmt_core::cost`].
    pub fn modeled_flops(&self) -> u64 {
        use cmt_core::cost;
        let n = self.mesh.n as u64;
        let nel = (self.mesh.total_elems()) as u64;
        let per_stage = cost::grad_counts(n, nel)
            .plus(cost::rk_stage_counts(n, nel))
            .plus(cost::face2full_counts(n, nel));
        per_stage
            .times(3 * self.steps as u64 * self.fields as u64)
            .flops
    }

    /// Achieved modelled flop rate over the slowest rank's wall time,
    /// flops/second (a coarse utilization indicator, not a benchmark).
    pub fn flop_rate(&self) -> f64 {
        self.modeled_flops() as f64 / self.max_wall_s().max(1e-12)
    }

    /// Slowest rank's wall time (the run's critical path).
    pub fn max_wall_s(&self) -> f64 {
        self.rank_wall_s.iter().fold(0.0f64, |m, &v| m.max(v))
    }

    /// Slowest rank's compute self time — the step-loop critical path on
    /// a parallel host (see [`RunReport::rank_compute_s`]).
    pub fn compute_critical_path_s(&self) -> f64 {
        self.rank_compute_s.iter().fold(0.0f64, |m, &v| m.max(v))
    }

    /// Straggler signature: slowest rank's compute over the mean rank
    /// compute (1.0 = perfectly balanced).
    pub fn compute_spread(&self) -> f64 {
        if self.rank_compute_s.is_empty() {
            return 1.0;
        }
        let avg = self.rank_compute_s.iter().sum::<f64>() / self.rank_compute_s.len() as f64;
        self.compute_critical_path_s() / avg.max(1e-12)
    }

    /// Mean rank wall time.
    pub fn avg_wall_s(&self) -> f64 {
        if self.rank_wall_s.is_empty() {
            0.0
        } else {
            self.rank_wall_s.iter().sum::<f64>() / self.rank_wall_s.len() as f64
        }
    }

    /// Render the complete paper-style report (setup block, autotune
    /// table, flat profile, communication summaries).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Setup:\n");
        out.push_str(&self.mesh_summary);
        out.push('\n');
        out.push_str(&format!(
            "\nsteps = {}  fields = {}  checksum = {:.12e}\n",
            self.steps, self.fields, self.checksum
        ));
        out.push_str(&format!("state hash: {:016x}\n", self.state_hash));
        out.push_str(&format!(
            "wall time: avg {:.4}s  max {:.4}s   modelled kernel work: {:.2} Gflop ({:.2} Gflop/s)\n",
            self.avg_wall_s(),
            self.max_wall_s(),
            self.modeled_flops() as f64 / 1e9,
            self.flop_rate() / 1e9,
        ));
        out.push_str(&format!(
            "chosen gs method: {}\n",
            self.chosen_method.name()
        ));
        out.push_str(&format!(
            "kernel variant: {} (effective isa: {})\n",
            self.kernel_variant.name(),
            self.kernel_isa
        ));
        if let Some(lb) = &self.lb {
            out.push_str(&format!(
                "load balancing: {} rebalances, {} elements migrated, \
                 {} particle moves, peak imbalance {:.3}\n",
                lb.rebalances, lb.elems_moved, lb.particles_moved, lb.peak_imbalance
            ));
        }
        if let Some(findings) = &self.verify {
            out.push_str(&cmt_verify::render_findings(findings));
        }
        if let Some(t) = &self.autotune {
            out.push_str("\nAutotune (Fig. 7):\n");
            out.push_str(
                "mini-app   | method             |      avg (s) |      min (s) |      max (s)\n",
            );
            out.push_str(&t.table("CMT-bone"));
        }
        if let Some(t) = &self.kernel_autotune {
            out.push_str("\nKernel autotune (variant x grain, rank-averaged):\n");
            out.push_str(&t.table("CMT-bone"));
        }
        out.push_str("\nExecution profile (Fig. 4):\n");
        out.push_str(&self.profile.render_flat());
        out.push_str("\nCall graph edges:\n");
        out.push_str(&self.profile.render_call_graph());
        out.push_str("\nMPI time per rank (Fig. 8):\n");
        out.push_str(&self.comm.render_rank_bars());
        out.push_str("\nTop MPI call sites (Fig. 9):\n");
        out.push_str(&self.comm.render_top_sites(20));
        out.push_str("\nMessage sizes (Fig. 10):\n");
        out.push_str(&self.comm.render_msg_sizes(10));
        let net = self.comm.render_net_fit();
        if !net.is_empty() {
            out.push_str("\nMeasured network (socket transport):\n");
            out.push_str(&net);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{run, Config};
    use cmt_gs::GsMethod;

    #[test]
    fn render_produces_all_sections() {
        let rep = run(&Config {
            n: 4,
            elems_per_rank: 4,
            ranks: 2,
            steps: 2,
            fields: 1,
            ..Default::default()
        });
        let text = rep.render();
        for needle in [
            "Setup:",
            "Autotune (Fig. 7)",
            "Execution profile (Fig. 4)",
            "MPI time per rank (Fig. 8)",
            "Top MPI call sites (Fig. 9)",
            "Message sizes (Fig. 10)",
            "chosen gs method:",
        ] {
            assert!(text.contains(needle), "missing section {needle}");
        }
    }

    #[test]
    fn forced_method_skips_autotune_section() {
        let rep = run(&Config {
            n: 4,
            elems_per_rank: 2,
            ranks: 2,
            steps: 1,
            fields: 1,
            method: Some(GsMethod::CrystalRouter),
            ..Default::default()
        });
        assert!(rep.autotune.is_none());
        assert_eq!(rep.chosen_method, GsMethod::CrystalRouter);
        assert!(!rep.render().contains("Autotune"));
    }

    #[test]
    fn modeled_flops_scale_with_steps_and_fields() {
        let base = Config {
            n: 4,
            elems_per_rank: 2,
            ranks: 2,
            steps: 2,
            fields: 1,
            method: Some(GsMethod::PairwiseExchange),
            ..Default::default()
        };
        let a = run(&base);
        let b = run(&Config {
            steps: 4,
            fields: 2,
            ..base
        });
        assert_eq!(b.modeled_flops(), 4 * a.modeled_flops());
        assert!(a.flop_rate() > 0.0);
        assert!(a.render().contains("Gflop"));
    }

    #[test]
    fn wall_time_stats_sane() {
        let rep = run(&Config {
            n: 4,
            elems_per_rank: 2,
            ranks: 3,
            steps: 1,
            fields: 1,
            ..Default::default()
        });
        assert_eq!(rep.rank_wall_s.len(), 3);
        assert!(rep.avg_wall_s() > 0.0);
        assert!(rep.max_wall_s() >= rep.avg_wall_s());
    }
}
