//! The per-rank cost monitor: rolling observed samples for reporting,
//! and the collective gather of the deterministic cost inputs.
//!
//! Two kinds of numbers flow through here and they must never mix:
//!
//! * **Observed** samples (step wall time, region timers) go into the
//!   rolling [`CostMonitor`] window. They are honest measurements and
//!   therefore differ across ranks, machines and runs — they feed the
//!   load-balancer *summary line*, never a decision.
//! * **Deterministic** inputs (per-element particle populations,
//!   per-rank injected-delay totals from the fault injector) are exact
//!   integers that every run reproduces. [`gather_costs`] allgathers
//!   them so each rank holds the identical [`GlobalCost`], which is the
//!   *only* input [`crate::policy::decide`] accepts.

use std::collections::VecDeque;

use cmt_mesh::ElemPartition;
use cmt_perf::Profiler;
use simmpi::{MpiOp, Rank, ReduceOp};

/// One observed step, recorded after the step completes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepSample {
    /// Wall seconds the step took on this rank.
    pub step_s: f64,
    /// Particles resident on this rank during the step.
    pub particles: u64,
}

/// Rolling window of per-step observations on one rank.
#[derive(Debug, Clone)]
pub struct CostMonitor {
    window: usize,
    samples: VecDeque<StepSample>,
}

impl CostMonitor {
    /// A monitor keeping the most recent `window` steps (at least 1).
    pub fn new(window: usize) -> Self {
        CostMonitor {
            window: window.max(1),
            samples: VecDeque::new(),
        }
    }

    /// Record one step's observations, evicting the oldest beyond the
    /// window.
    pub fn record(&mut self, s: StepSample) {
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(s);
    }

    /// Steps currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no steps have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean observed step wall time over the window (0 when empty).
    pub fn mean_step_s(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.step_s).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean resident-particle count over the window (0 when empty).
    pub fn mean_particles(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.particles as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Cumulative self seconds booked to `region` so far — the
    /// profiler-side sample (difference two snapshots to get a
    /// per-interval reading).
    pub fn region_s(prof: &Profiler, region: &str) -> f64 {
        let report = prof.report();
        report.share(region) * report.total_self_s()
    }
}

/// The allgathered deterministic cost vector: identical on every rank
/// after [`gather_costs`] returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalCost {
    /// Resident-particle count per global element id.
    pub particles: Vec<u64>,
    /// Cumulative injected-delay microseconds per rank (the fault
    /// injector's deterministic straggler signal).
    pub delay_us: Vec<u64>,
}

impl GlobalCost {
    /// Total particles in the domain.
    pub fn total_particles(&self) -> u64 {
        self.particles.iter().sum()
    }
}

/// Allgather the deterministic cost inputs: each rank contributes the
/// particle populations of its owned elements and its own
/// injected-delay total; one sum-allreduce over the disjoint slots
/// yields the full vector everywhere. Booked as the dedicated
/// `lb_gather` mpiP operation under the `lb` call-site context.
///
/// Collective over the world. `counts[slot]` must follow `part`'s
/// owned-element order for this rank.
pub fn gather_costs(
    rank: &mut Rank,
    part: &ElemPartition,
    counts: &[u32],
    my_delay_us: u64,
) -> GlobalCost {
    let e = part.total_elems();
    let p = part.ranks();
    let me = rank.rank();
    // cmt-lint: allow(CMT-L003) — the allgather's dense staging vector,
    // O(E + P) once per monitor cadence; the collective must materialize
    // the full global vector on every rank anyway.
    let mut slots = vec![0u64; e + p];
    let owned = part.owned_by(me);
    assert_eq!(counts.len(), owned.len(), "one count per owned element");
    for (slot, &c) in counts.iter().enumerate() {
        // counts follow ascending-gid owned order, matching owned_by
        slots[owned[slot]] = c as u64;
    }
    slots[e + me] = my_delay_us;
    let mut summed = rank.with_context("lb", |rank| {
        rank.with_op_badge(MpiOp::LbGather, |rank| {
            rank.allreduce_u64(&slots, ReduceOp::Sum)
        })
    });
    // Split the summed vector in place: the O(E) particle prefix keeps
    // the allreduce result's buffer, only the O(P) delay tail moves.
    let delay_us = summed.split_off(e);
    GlobalCost {
        particles: summed,
        delay_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::World;

    #[test]
    fn window_rolls_and_averages() {
        let mut m = CostMonitor::new(3);
        assert!(m.is_empty());
        for i in 1..=5u64 {
            m.record(StepSample {
                step_s: i as f64,
                particles: 10 * i,
            });
        }
        assert_eq!(m.len(), 3);
        // window holds steps 3, 4, 5
        assert!((m.mean_step_s() - 4.0).abs() < 1e-12);
        assert!((m.mean_particles() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn gather_is_identical_on_every_rank() {
        use cmt_mesh::MeshConfig;
        let ranks = 4usize;
        let cfg = MeshConfig::for_ranks(ranks, 4, 4, true);
        let res = World::new().run(ranks, move |rank| {
            let part = ElemPartition::initial(&cfg);
            let me = rank.rank();
            // rank r holds r+1 particles in each of its elements
            let counts = vec![(me + 1) as u32; part.owned_by(me).len()];
            let g = gather_costs(rank, &part, &counts, 100 * me as u64);
            (g, part)
        });
        let (first, part) = &res.results[0];
        for (g, _) in &res.results {
            assert_eq!(g, first, "gather differs across ranks");
        }
        for gid in 0..part.total_elems() {
            assert_eq!(first.particles[gid], (part.owner_of(gid) + 1) as u64);
        }
        assert_eq!(first.delay_us, vec![0, 100, 200, 300]);
        // booked as lb_gather under the lb context, replacing the
        // underlying allreduce row
        for s in &res.stats {
            assert_eq!(s.site(MpiOp::LbGather, "lb").unwrap().calls, 1);
            assert!(s.site(MpiOp::Allreduce, "lb").is_none());
        }
    }
}
