//! # cmt-lb
//!
//! Dynamic load balancing for the CMT-bone reproduction.
//!
//! CMT-nek's particle phase concentrates work wherever the particle
//! cloud happens to be dense, so a static Cartesian element partition
//! degenerates into a straggler problem: every per-step collective runs
//! at the pace of the most loaded rank. This crate supplies the three
//! pieces the driver wires together to fix that at runtime:
//!
//! * [`monitor`] — a per-rank **cost monitor**: a rolling window of
//!   observed per-step samples (region timers from [`cmt_perf`],
//!   particle populations) for reporting, plus [`monitor::gather_costs`],
//!   the collective that allgathers the *deterministic* cost inputs
//!   (per-element particle counts, per-rank injected-delay totals) every
//!   `--lb-every` steps — badged as the dedicated `lb_gather` mpiP
//!   operation.
//! * [`policy`] — the deterministic **rebalance policy**: an analytic
//!   [`CostModel`] built from the exact operation counts of
//!   [`cmt_core::cost`] turns the gathered vector into per-element
//!   costs, and a threshold-triggered greedy chain partitioner emits a
//!   new owner vector. Every rank feeds the identical gathered vector
//!   through the identical pure-f64 arithmetic, so every rank computes
//!   the identical decision with no further communication — and no
//!   wall-clock reading is ever an input.
//! * [`migrate`] — the **migration engine**: ships per-element state
//!   blocks (field values plus resident particles, packed by the
//!   caller) to their new owners over the pooled crystal router, badged
//!   as the `lb_migrate` mpiP operation. Plan rebuilds (gather–scatter,
//!   checkpoint partners) stay with the driver, which owns those
//!   handles.
//!
//! The split keeps a hard line between *observation* (wall-clock
//! timers, free to differ across ranks and runs) and *decision* (pure
//! function of SPMD-identical integers), which is what lets a
//! load-balanced run reproduce the unbalanced run's physics bit for
//! bit.

#![warn(missing_docs)]

pub mod migrate;
pub mod monitor;
pub mod policy;

pub use migrate::{migrate_blocks, MigrationStats};
pub use monitor::{gather_costs, CostMonitor, GlobalCost, StepSample};
pub use policy::{decide, CostModel, Decision};
