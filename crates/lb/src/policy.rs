//! The deterministic rebalance policy.
//!
//! Inputs are the SPMD-identical [`GlobalCost`](crate::GlobalCost)
//! vector and the current [`ElemPartition`]; the output is either "keep
//! the partition" or a complete new owner vector. Everything in between
//! is pure f64 arithmetic over those integers — no wall clock, no RNG,
//! no rank-dependent branch — so every rank that runs [`decide`] on the
//! same gathered vector adopts the same partition without any further
//! agreement protocol.
//!
//! The partitioner itself is the classical *greedy chain* scheme: walk
//! the elements in global-id order (the natural space-filling chain of
//! the Cartesian enumeration, which keeps each rank's elements spatially
//! coherent) and cut the chain wherever a rank's cumulative cost share
//! is met. Stragglers are handled by shrinking a slow rank's target
//! share: a rank whose fault-injected delay burns `d` microseconds per
//! interval has that overhead (converted to flop units by the cost
//! model) subtracted from its fair share before the cuts are placed.

use cmt_core::cost;
use cmt_mesh::ElemPartition;

use crate::GlobalCost;

/// Analytic per-step cost model, in flop units, derived from the exact
/// kernel operation counts of [`cmt_core::cost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost of advancing one element one step (all RK stages of
    /// the field solve).
    pub elem_cost: f64,
    /// Cost of advancing one resident particle one step (RK2 push with
    /// two interpolated velocity evaluations).
    pub particle_cost: f64,
    /// Flop-equivalent of one microsecond of injected delay. The
    /// reference machine is taken at 1 Gflop/s — the absolute value only
    /// scales how aggressively delay hazards are compensated, and the
    /// same value is used on every rank, so determinism is unaffected.
    pub delay_cost_per_us: f64,
}

impl CostModel {
    /// Model for a run shape: polynomial order `n`, `fields` conserved
    /// fields, 3 RK stages per step.
    pub fn for_shape(n: usize, fields: usize) -> Self {
        let n64 = n as u64;
        let per_stage = cost::grad_counts(n64, 1)
            .times(fields as u64)
            .plus(cost::rk_stage_counts(n64, 1).times(fields as u64));
        // two velocity evaluations per RK2 push, 3 components each, one
        // tensor-product basis evaluation (~2 n^3 flops) per component
        let particle = (2 * 3 * 2 * n64 * n64 * n64) as f64;
        CostModel {
            elem_cost: per_stage.times(3).flops as f64,
            particle_cost: particle,
            delay_cost_per_us: 1000.0,
        }
    }

    /// Cost of one element with `particles` residents.
    fn elem(&self, particles: u64) -> f64 {
        self.elem_cost + self.particle_cost * particles as f64
    }
}

/// Outcome of one policy evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Max-over-mean effective rank load under the *current* partition
    /// (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// New owner vector, present only when the trigger fired *and* the
    /// greedy partition actually differs from the current one.
    pub owners: Option<Vec<u32>>,
}

/// Evaluate the rebalance policy: measure imbalance under the current
/// partition and, if it exceeds `threshold`, repartition the element
/// chain greedily by cost share.
///
/// Pure and deterministic: identical inputs give identical output on
/// every rank. Every rank is always assigned at least one element.
///
/// # Panics
/// Panics if the cost vector does not match the partition shape or
/// there are fewer elements than ranks.
pub fn decide(
    model: &CostModel,
    part: &ElemPartition,
    global: &GlobalCost,
    threshold: f64,
) -> Decision {
    let e = part.total_elems();
    let p = part.ranks();
    assert_eq!(global.particles.len(), e, "cost vector shape");
    assert_eq!(global.delay_us.len(), p, "delay vector shape");
    assert!(e >= p, "need at least one element per rank");
    assert!(threshold > 0.0, "threshold must be positive");

    let costs: Vec<f64> = global.particles.iter().map(|&c| model.elem(c)).collect();
    let overhead: Vec<f64> = global
        .delay_us
        .iter()
        .map(|&us| us as f64 * model.delay_cost_per_us)
        .collect();

    // Effective load per rank under the current partition: element work
    // plus the rank's fixed injected-delay overhead.
    let mut load = overhead.clone();
    for gid in 0..e {
        load[part.owner_of(gid)] += costs[gid];
    }
    let total: f64 = load.iter().sum();
    let mean = total / p as f64;
    let imbalance = if mean > 0.0 {
        load.iter().cloned().fold(0.0f64, f64::max) / mean
    } else {
        1.0
    };
    if imbalance <= threshold {
        return Decision {
            imbalance,
            owners: None,
        };
    }

    // Target element-work share per rank: the fair share minus the
    // rank's own overhead (a slow rank gets fewer elements), floored at
    // zero — the chain walk still guarantees one element each.
    let work: f64 = costs.iter().sum();
    let fair = (work + overhead.iter().sum::<f64>()) / p as f64;
    let want: Vec<f64> = overhead.iter().map(|&o| (fair - o).max(0.0)).collect();
    let want_sum: f64 = want.iter().sum();
    let scale = if want_sum > 0.0 { work / want_sum } else { 1.0 };
    // prefix cut targets over the chain
    let mut cut = Vec::with_capacity(p);
    let mut acc_t = 0.0;
    for &w in &want {
        acc_t += w * scale;
        cut.push(acc_t);
    }

    let mut owners = vec![0u32; e];
    let mut r = 0usize;
    let mut acc = 0.0f64;
    let mut in_rank = 0usize;
    for gid in 0..e {
        let elems_left = e - gid;
        let ranks_after = p - 1 - r;
        let must_advance = in_rank >= 1 && elems_left == ranks_after;
        let want_advance = in_rank >= 1 && r + 1 < p && acc >= cut[r] && elems_left > ranks_after;
        if must_advance || want_advance {
            r += 1;
            in_rank = 0;
        }
        owners[gid] = r as u32;
        acc += costs[gid];
        in_rank += 1;
    }

    if owners == part.owner_vec() {
        return Decision {
            imbalance,
            owners: None,
        };
    }
    Decision {
        imbalance,
        owners: Some(owners),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_global(e: usize, p: usize, per_elem: u64) -> GlobalCost {
        GlobalCost {
            particles: vec![per_elem; e],
            delay_us: vec![0; p],
        }
    }

    fn chain_part(e: usize, p: usize) -> ElemPartition {
        // contiguous equal blocks along the chain
        let owner = (0..e).map(|gid| (gid * p / e) as u32).collect();
        ElemPartition::from_owner(p, owner)
    }

    #[test]
    fn balanced_load_does_not_trigger() {
        let model = CostModel::for_shape(5, 5);
        let part = chain_part(16, 4);
        let d = decide(&model, &part, &uniform_global(16, 4, 3), 1.10);
        assert!((d.imbalance - 1.0).abs() < 1e-12);
        assert!(d.owners.is_none());
    }

    #[test]
    fn clustered_particles_trigger_and_improve() {
        let model = CostModel::for_shape(5, 5);
        let e = 16;
        let p = 4;
        let part = chain_part(e, p);
        // all particles crowd the first quarter of the chain (rank 0)
        let mut g = uniform_global(e, p, 0);
        for gid in 0..4 {
            g.particles[gid] = 500;
        }
        let d = decide(&model, &part, &g, 1.25);
        assert!(d.imbalance > 1.25, "imbalance {} too low", d.imbalance);
        let owners = d.owners.expect("rebalance must fire");
        let new = ElemPartition::from_owner(p, owners);
        let after = decide(&model, &new, &g, 1.25);
        assert!(
            after.imbalance < d.imbalance * 0.6,
            "imbalance {} -> {} did not improve enough",
            d.imbalance,
            after.imbalance
        );
        // loaded elements spread out: rank 0 no longer owns all of them
        assert!(new.owned_by(0).len() < 4);
    }

    #[test]
    fn decision_is_deterministic_and_converges() {
        let model = CostModel::for_shape(4, 5);
        let e = 24;
        let p = 6;
        let mut part = chain_part(e, p);
        let mut g = uniform_global(e, p, 1);
        for gid in 0..6 {
            g.particles[gid] = 200;
        }
        let first = decide(&model, &part, &g, 1.2);
        assert_eq!(first, decide(&model, &part, &g, 1.2), "not deterministic");
        // iterate: the policy must reach a fixed point (no churn loop)
        let mut hops = 0;
        while let Some(owners) = decide(&model, &part, &g, 1.2).owners {
            part = ElemPartition::from_owner(p, owners);
            hops += 1;
            assert!(hops < 4, "policy churns without converging");
        }
    }

    #[test]
    fn straggler_delay_shrinks_the_slow_ranks_share() {
        let model = CostModel::for_shape(5, 5);
        let e = 32;
        let p = 4;
        let part = chain_part(e, p);
        let mut g = uniform_global(e, p, 10);
        // rank 1 burns the equivalent of ~half the total element work
        let work = model.elem(10) * e as f64;
        g.delay_us[1] = (0.5 * work / model.delay_cost_per_us) as u64;
        let d = decide(&model, &part, &g, 1.1);
        let owners = d.owners.expect("straggler must trigger rebalance");
        let new = ElemPartition::from_owner(p, owners);
        let counts = new.counts();
        assert!(
            counts[1] < counts[0] && counts[1] < counts[2] && counts[1] < counts[3],
            "slow rank kept too many elements: {counts:?}"
        );
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn every_rank_keeps_an_element_under_extreme_skew() {
        let model = CostModel::for_shape(4, 5);
        let e = 8;
        let p = 8;
        let part = chain_part(e, p);
        let mut g = uniform_global(e, p, 0);
        g.particles[0] = 1_000_000; // one element dwarfs everything
        let d = decide(&model, &part, &g, 1.01);
        // the chain walk may or may not move anything (8 elems over 8
        // ranks is pinned), but any emitted partition must stay total
        if let Some(owners) = d.owners {
            let new = ElemPartition::from_owner(p, owners);
            assert!(new.counts().iter().all(|&c| c >= 1));
        }
    }
}
