//! The element migration engine: ship per-element state blocks to their
//! new owners over the pooled crystal router.
//!
//! The engine is deliberately payload-agnostic: the driver packs
//! whatever one element's state is (conserved-field values, resident
//! particle records, ...) into a flat `Vec<f64>` and unpacks it on
//! arrival. What lives here is the routing: bucket departing elements
//! by destination, run one crystal-router exchange (all-to-all capable,
//! pooled buffers, [`simmpi::MpiOp::CrystalRouter`] semantics), and
//! hand back arrivals in ascending global-id order so every receiver
//! rebuilds its local element list deterministically. The traffic is
//! badged as the dedicated `lb_migrate` mpiP operation under the `lb`
//! call-site context, so both mini-app drivers surface migration volume
//! as a first-class row in their Fig. 9/10-style reports.

use cmt_mesh::ElemPartition;
use simmpi::{MpiOp, Rank};

/// Traffic accounting for one migration pass (this rank's view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationStats {
    /// Elements shipped away.
    pub elems_sent: usize,
    /// Elements received.
    pub elems_received: usize,
    /// Payload f64 values shipped (excluding framing).
    pub values_sent: usize,
    /// Payload f64 values received (excluding framing).
    pub values_received: usize,
}

impl MigrationStats {
    /// Merge another rank's (or pass's) accounting into this one.
    pub fn absorb(&mut self, o: MigrationStats) {
        self.elems_sent += o.elems_sent;
        self.elems_received += o.elems_received;
        self.values_sent += o.values_sent;
        self.values_received += o.values_received;
    }
}

/// Ship every element this rank owns under `old` but not under `new` to
/// its new owner; receive the elements this rank gains. `pack(gid)` is
/// called once per departing element (ascending gid) and must produce
/// the element's complete state; `unpack(gid, payload)` is called once
/// per gained element, borrowing the payload straight out of the
/// arriving router frame — no per-element copy. Arrival order is
/// deterministic (sorted by source rank, ascending gid within a
/// source) but not globally gid-sorted; receivers that need a
/// particular layout should place by `new.slot_of(gid)`.
///
/// Collective over the world — every rank must call it, including ranks
/// that neither lose nor gain elements.
///
/// # Panics
/// Panics if the two partitions disagree on shape or a payload frame is
/// corrupt on arrival.
pub fn migrate_blocks(
    rank: &mut Rank,
    old: &ElemPartition,
    new: &ElemPartition,
    mut pack: impl FnMut(usize) -> Vec<f64>,
    mut unpack: impl FnMut(usize, &[f64]),
) -> MigrationStats {
    assert_eq!(old.total_elems(), new.total_elems(), "partition shape");
    assert_eq!(old.ranks(), new.ranks(), "partition ranks");
    let me = rank.rank();
    let mut stats = MigrationStats::default();
    // wire format per element: [gid, nvals, vals...] — gids and lengths
    // fit f64 exactly (far below 2^53)
    //
    // cmt-lint: allow(CMT-L003) — O(ranks) table of *empty* (heapless)
    // vectors, built once per migration pass at rebalance cadence; the
    // payload bytes themselves ride the pooled crystal router.
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); new.ranks()];
    for &gid in old.owned_by(me) {
        let dest = new.owner_of(gid);
        if dest == me {
            continue;
        }
        let payload = pack(gid);
        stats.elems_sent += 1;
        stats.values_sent += payload.len();
        let b = &mut buckets[dest];
        b.push(gid as f64);
        b.push(payload.len() as f64);
        b.extend_from_slice(&payload);
    }
    // cmt-lint: allow(CMT-L003) — O(active destinations) per pass; the
    // bucket payloads move, they are not copied.
    let outgoing: Vec<(usize, Vec<f64>)> = buckets
        .into_iter()
        .enumerate()
        .filter(|(_, b)| !b.is_empty())
        .collect();
    let arrived = rank.with_context("lb", |rank| {
        rank.with_op_badge(MpiOp::LbMigrate, |rank| rank.crystal_router(outgoing))
    });
    for (_src, data) in &arrived {
        let mut at = 0usize;
        while at < data.len() {
            assert!(at + 2 <= data.len(), "truncated migration frame");
            let gid = data[at] as usize;
            let nvals = data[at + 1] as usize;
            at += 2;
            assert!(at + nvals <= data.len(), "truncated migration payload");
            assert_eq!(new.owner_of(gid), me, "element {gid} misrouted");
            stats.elems_received += 1;
            stats.values_received += nvals;
            unpack(gid, &data[at..at + nvals]);
            at += nvals;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmt_mesh::MeshConfig;
    use simmpi::World;

    #[test]
    fn blocks_arrive_intact_and_sorted() {
        let ranks = 4usize;
        let cfg = MeshConfig::for_ranks(ranks, 4, 4, true);
        let e = cfg.total_elems();
        // rotate every element one rank forward
        let old = ElemPartition::initial(&cfg);
        let new_owner: Vec<u32> = (0..e)
            .map(|gid| ((old.owner_of(gid) + 1) % ranks) as u32)
            .collect();
        let res = World::new().run(ranks, move |rank| {
            let old = ElemPartition::initial(&cfg);
            let new = ElemPartition::from_owner(ranks, new_owner.clone());
            let mut blocks: Vec<(usize, Vec<f64>)> = Vec::new();
            let stats = migrate_blocks(
                rank,
                &old,
                &new,
                |gid| {
                    // payload encodes its own gid with variable length
                    vec![gid as f64; gid % 3 + 1]
                },
                |gid, vals| blocks.push((gid, vals.to_vec())),
            );
            // everything moved: sent all owned, received the new set
            assert_eq!(stats.elems_sent, old.owned_by(rank.rank()).len());
            assert_eq!(blocks.len(), new.owned_by(rank.rank()).len());
            // delivery order is per-source; gid-sort to compare sets
            blocks.sort_by_key(|&(gid, _)| gid);
            let gids: Vec<usize> = blocks.iter().map(|&(g, _)| g).collect();
            assert_eq!(gids, new.owned_by(rank.rank()), "wrong element set");
            for (gid, vals) in &blocks {
                assert_eq!(vals.len(), gid % 3 + 1);
                assert!(vals.iter().all(|&v| v == *gid as f64));
            }
            stats
        });
        let sent: usize = res.results.iter().map(|s| s.elems_sent).sum();
        let recv: usize = res.results.iter().map(|s| s.elems_received).sum();
        assert_eq!(sent, e);
        assert_eq!(recv, e);
        // badged as lb_migrate, not crystal_router, under the lb context
        for s in &res.stats {
            assert!(s.site(MpiOp::LbMigrate, "lb").is_some());
            assert!(s.site(MpiOp::CrystalRouter, "lb").is_none());
        }
    }

    #[test]
    fn unchanged_partition_moves_nothing() {
        let ranks = 2usize;
        let cfg = MeshConfig::for_ranks(ranks, 8, 4, true);
        let res = World::new().run(ranks, move |rank| {
            let part = ElemPartition::initial(&cfg);
            let stats = migrate_blocks(
                rank,
                &part,
                &part,
                |_| panic!("nothing departs"),
                |_, _| panic!("nothing arrives"),
            );
            stats
        });
        for s in res.results {
            assert_eq!(s, MigrationStats::default());
        }
    }
}
