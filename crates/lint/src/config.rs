//! Rule registries: the names and places each rule family keys on.
//!
//! These are deliberately *data*, kept in one audited module, because
//! they encode contracts that live elsewhere in the workspace:
//!
//! * the split-phase API surface of `cmt-gs` (CMT-L001),
//! * the collective entry points of `simmpi` and `cmt-lb` (CMT-L002),
//! * the zero-allocation regions `BENCH_alloc.json` and the
//!   `alloc_free` counting-allocator tests assert dynamically
//!   (CMT-L003 roots), plus the pool entry points blessed to allocate,
//! * the socket wire format's closed payload registry in
//!   `simmpi::wire` (CMT-L004),
//! * the audited `unsafe` boundary (CMT-L005).
//!
//! Growing one of those surfaces means growing the matching registry
//! here — the self-check test (`cmt-lint --workspace` must be clean)
//! makes the drift visible either way.

/// Rust keywords: never call names, never resolved.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while", "yield",
];

/// Names too ubiquitous to resolve by name alone: an edge to every
/// `new` in the workspace would connect the call graph into one blob.
/// Calls to these are still visible to token-level rules (CMT-L003
/// flags `clone`/`collect`/... directly); they just don't create
/// interprocedural edges.
pub const CALL_NAME_STOPLIST: &[&str] = &[
    "new",
    "default",
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "set",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "fold",
    "sum",
    "min",
    "max",
    "abs",
    "sqrt",
    "powi",
    "powf",
    "clone",
    "drop",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "to_string",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "take",
    "write",
    "writeln",
    "print",
    "extend",
    "extend_from_slice",
    "clear",
    "resize",
    "reserve",
    "with_capacity",
    "split_at",
    "split_at_mut",
    "swap",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "binary_search",
    "position",
    "name",
    "index",
    "deref",
    "borrow",
    "borrow_mut",
    "lock",
    "read",
    "send_to",
    "flush",
    "min_by",
    "max_by",
    "entry",
    "or_default",
    "or_insert",
    "or_insert_with",
    "retain",
    "rev",
    "zip",
    "enumerate",
    "chain",
    "copied",
    "cloned",
    "count",
    "any",
    "all",
    "find",
    "last",
    "first",
    "chunks",
    "chunks_mut",
    "windows",
    "join",
    "spawn",
    "record",
    // `run` is as ubiquitous as `new`: WorkerPool::run, World::run, the
    // drivers' top-level `run`, ... Resolving it by name would wire the
    // kernel hot paths straight into every driver. Closure bodies are
    // attributed to their enclosing fn, so `pool.run(&|c| ...)` loses
    // no hot-path coverage by skipping the edge.
    "run",
    // `send`/`recv` collide with mpsc channels and the transport trait
    // (`self.transport.send(..)` in `raw_send` would resolve to
    // `Rank::send`). The product hot paths use the pooled variants
    // (`isend_pooled`/`wait_recv_pooled`), which resolve normally.
    "send",
    "recv",
];

// --------------------------------------------------------------- L001

/// Split-phase openers: each returns a pending handle that must reach a
/// matching finisher on every control-flow path.
pub const SPLIT_START: &[&str] = &["gs_op_start"];

/// Split-phase finishers (consume the pending handle).
pub const SPLIT_FINISH: &[&str] = &["gs_op_finish"];

/// Calls that legitimately dispose of a pending handle without
/// finishing the exchange (explicit drop-drain: `GsPending`'s `Drop`
/// purges the in-flight traffic through the discard list).
pub const SPLIT_DRAIN: &[&str] = &["drop"];

// --------------------------------------------------------------- L002

/// Collective entry points: every rank must execute the same skeleton
/// of these between two barriers. Includes the `cmt-lb` wrappers that
/// are collectives by contract (all-rank cost gather, crystal-router
/// migration).
pub const COLLECTIVES: &[&str] = &[
    "barrier",
    "bcast",
    "reduce_with",
    "allreduce_with",
    "allreduce_in_place",
    "allreduce_f64",
    "allreduce_u64",
    "allreduce_scalar",
    "exscan_u64",
    "gather",
    "alltoallv",
    "crystal_router",
    "crystal_router_into",
    "gather_costs",
    "migrate_blocks",
];

// --------------------------------------------------------------- L003

/// Zero-allocation roots: the functions behind the steady-state regions
/// that `BENCH_alloc.json` + the `alloc_free` tests assert allocate
/// nothing per timestep (`gs_op*` for cmt-bone, `dssum*` via nekbone's
/// assembled apply, the overlap-window `deriv`/`dealias` kernels), plus
/// the pooled LB traffic paths (`gather_costs`/`migrate_blocks`) whose
/// crystal-router frames ride the same buffer pool.
///
/// `tensor3_apply` (without `_scratch`) is deliberately absent: it is
/// the documented allocating convenience wrapper; the worker-pooled
/// dealias path calls the `_scratch` form with per-chunk buffers.
pub const HOT_ROOTS: &[&str] = &[
    "gs_op",
    "gs_op_many",
    "gs_op_start",
    "gs_op_finish",
    "apply_assembled",
    "apply_assembled_dot",
    "deriv",
    "grad",
    "tensor3_apply_scratch",
    "tensor3_apply_scratch_variant",
    "gather_costs",
    "migrate_blocks",
];

/// Traversal barriers: audited subsystems a hot path may call but whose
/// internals are out of scope for CMT-L003.
///
/// * Pool entry points (`take`/`adopt`/`pooled_vec`/`detach`): a miss
///   allocates by design and is tracked by the pool's hit/miss
///   counters; the steady state is all hits.
/// * Profiler instrumentation (`enter`/`exit`/`charge_allocs`,
///   context labels): its hot path is allocation-free by construction
///   (recycled region-name strings) and is asserted separately by the
///   counting-allocator tests.
/// * Verifier hooks (`verify_*` wrappers and the `on_*` hook-trait
///   methods): no-ops unless a verifier is installed, and an installed
///   verifier is a debug harness outside the zero-alloc contract.
pub const ALLOC_BARRIERS: &[&str] = &[
    "take",
    "adopt",
    "pooled_vec",
    "detach",
    "enter",
    "exit",
    "charge_allocs",
    "set_context",
    "with_context",
    "with_subcontext",
    "with_op_badge",
    "verify_exchange_start",
    "verify_exchange_finish",
    "verify_slot_access",
    "verify_note_access",
    "verify_finalize",
    "on_start",
    "on_send",
    "on_recv",
    "on_collective",
    "on_block",
    "on_block_poll",
    "on_unblock",
    "on_exchange_start",
    "on_exchange_finish",
    "on_slot_access",
    "on_discarded",
    "on_finalize",
];

/// Method-call names that allocate.
pub const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "clone",
    "into_boxed_slice",
    "repeat",
];

/// `Type::ctor` path calls that allocate.
pub const ALLOC_PATH_CALLS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("String", "from"),
    ("Box", "new"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("BTreeMap", "new"),
    ("VecDeque", "new"),
    ("Arc", "new"),
    ("Rc", "new"),
];

/// Macros that allocate.
pub const ALLOC_MACROS: &[&str] = &["vec", "format"];

// --------------------------------------------------------------- L004

/// Element types in `simmpi::wire`'s closed payload registry: the only
/// types a data envelope can carry across the socket transport.
pub const WIRE_PRIMITIVES: &[&str] = &["f64", "u64", "u8", "u32", "usize", "RoutedMsg"];

/// Transport payload positions: APIs whose element type crosses the
/// rank boundary and therefore must be wire-encodable.
pub const PAYLOAD_APIS: &[&str] = &[
    "send",
    "send_vec",
    "isend",
    "isend_vec",
    "isend_pooled",
    "recv",
    "wait_recv",
    "wait_recv_pooled",
    "waitall_recv",
    "bcast",
    "crystal_router",
    "crystal_router_into",
    "alltoallv",
    "gather",
];

// --------------------------------------------------------------- L005

/// The audited unsafe boundary: path suffixes of the only files where
/// `unsafe` is allowed to appear (each site still needs a `// SAFETY:`
/// comment). Everything else fails the build with CMT-L005.
pub const UNSAFE_FILE_ALLOWLIST: &[&str] = &[
    "crates/simmpi/src/workers.rs",
    "crates/perf/src/alloc.rs",
    "crates/cmt-bone/src/driver.rs",
    "crates/nekbone/src/ax.rs",
    "crates/core/src/kernels/simd.rs",
];
