//! CMT-L005 — unsafe-boundary audit.
//!
//! The workspace's `unsafe` lives behind a small audited boundary: the
//! work-stealing pool's `SharedSliceMut` disjoint-range writes and job
//! pointer erasure (`simmpi/src/workers.rs`), the counting global
//! allocator (`perf/src/alloc.rs`), and the two drivers' disjoint-chunk
//! scratch writes. Two requirements:
//!
//! * every `unsafe` site must carry a `// SAFETY:` comment (or, for an
//!   `unsafe fn`, a `# Safety` doc section) naming the disjointness or
//!   ownership invariant it relies on;
//! * `unsafe` outside the audited file allowlist fails the build — new
//!   unsafe code must be added to the boundary deliberately, in the
//!   same commit that extends [`config::UNSAFE_FILE_ALLOWLIST`].

use crate::config;
use crate::diag::Diagnostic;
use crate::items::UnsafeKind;
use crate::model::Workspace;

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for fa in &ws.files {
        let path_str = fa.path.to_string_lossy().replace('\\', "/");
        let allowlisted = config::UNSAFE_FILE_ALLOWLIST
            .iter()
            .any(|suffix| path_str.ends_with(suffix));
        for site in &fa.unsafe_sites {
            if !allowlisted {
                out.push(Diagnostic {
                    code: "CMT-L005",
                    file: fa.path.clone(),
                    line: site.line,
                    col: site.col,
                    message: "`unsafe` outside the audited boundary: this file is not in the \
                              unsafe allowlist"
                        .into(),
                    note: Some(
                        "keep the unsafe surface small: move the code behind an audited \
                         abstraction, or extend UNSAFE_FILE_ALLOWLIST in cmt-lint's config \
                         alongside review"
                            .into(),
                    ),
                });
                continue;
            }
            if !has_safety_comment(fa, site) {
                let what = match site.kind {
                    UnsafeKind::Block => "unsafe block",
                    UnsafeKind::Fn => "unsafe fn",
                    UnsafeKind::Impl => "unsafe impl",
                };
                out.push(Diagnostic {
                    code: "CMT-L005",
                    file: fa.path.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "{what} without a SAFETY comment naming the invariant it relies on"
                    ),
                    note: Some(
                        "add `// SAFETY: <disjointness/ownership invariant>` directly above the \
                         site (or a `# Safety` doc section on an unsafe fn)"
                            .into(),
                    ),
                });
            }
        }
    }
    out
}

/// A `SAFETY:` comment on the site's line or within the 4 lines above
/// it; for `unsafe fn` / `unsafe impl`, a `# Safety` doc section within
/// the 14 lines above also satisfies the rule (rustdoc convention).
fn has_safety_comment(fa: &crate::items::FileAnalysis, site: &crate::items::UnsafeSite) -> bool {
    fa.comments.iter().any(|c| {
        let near = c.line <= site.line && c.line + 4 >= site.line;
        let doc_near = c.line <= site.line && c.line + 14 >= site.line;
        (near && c.text.contains("SAFETY:"))
            || (doc_near
                && site.kind != UnsafeKind::Block
                && (c.text.contains("# Safety") || c.text.contains("SAFETY:")))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_at(path: &str, src: &str) -> Vec<Diagnostic> {
        check(&Workspace::build(vec![(
            PathBuf::from(path),
            src.to_string(),
        )]))
    }

    const ALLOWED: &str = "crates/simmpi/src/workers.rs";

    #[test]
    fn commented_block_in_allowlisted_file_is_clean() {
        let d = run_at(
            ALLOWED,
            "fn f(shared: &S) {\n\
               // SAFETY: chunk ranges are disjoint by construction.\n\
               let dst = unsafe { shared.range_mut(lo, hi) };\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn uncommented_block_is_flagged() {
        let d = run_at(
            ALLOWED,
            "fn f(shared: &S) {\n\
               let dst = unsafe { shared.range_mut(lo, hi) };\n\
             }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "CMT-L005");
        assert!(d[0].message.contains("SAFETY"));
    }

    #[test]
    fn unsafe_fn_with_safety_doc_section_is_clean() {
        let d = run_at(
            ALLOWED,
            "/// Returns a mutable view.\n\
             ///\n\
             /// # Safety\n\
             /// The caller must ensure no two live borrows overlap.\n\
             pub unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [T] { x }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged_even_with_comment() {
        let d = run_at(
            "crates/core/src/euler.rs",
            "fn f() {\n\
               // SAFETY: totally fine, promise.\n\
               unsafe { transmute(x) }\n\
             }",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("outside the audited boundary"));
    }

    #[test]
    fn unsafe_impl_send_needs_comment() {
        let d = run_at(ALLOWED, "unsafe impl Send for JobPtr {}");
        assert_eq!(d.len(), 1);
        let d = run_at(
            ALLOWED,
            "// SAFETY: the pointee is only dereferenced while the owning\n\
             // frame is alive.\n\
             unsafe impl Send for JobPtr {}",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
