//! CMT-L002 — collective-order consistency.
//!
//! The static twin of `cmt-verify`'s runtime collective-fingerprint
//! matching: between two barriers, every rank must execute the same
//! sequence of collectives. Dynamically that is checked per call; the
//! static skeleton check catches the whole class at once — any
//! rank-dependent branch (`if rank.rank() == 0 { .. }`, `match
//! rank.rank() { .. }`) whose arms execute *different* collective
//! skeletons will deadlock or mis-match for some rank, on some
//! schedule.
//!
//! Skeletons are interprocedural: a call to a function that
//! (transitively) performs collectives appears in the skeleton under
//! its own name, so hiding an `allreduce` behind a helper does not hide
//! it from the rule.

use std::collections::HashSet;

use crate::config;
use crate::diag::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::model::{FnId, Workspace};

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let bearing = collective_bearing(ws);
    let mut out = Vec::new();
    for (fi, fa) in ws.files.iter().enumerate() {
        for (gi, f) in fa.fns.iter().enumerate() {
            let Some((open, close)) = f.body else {
                continue;
            };
            check_body(ws, (fi, gi), &fa.toks, open, close, &bearing, &mut out);
        }
    }
    out
}

/// Names of workspace functions that (transitively) call a collective.
fn collective_bearing(ws: &Workspace) -> HashSet<String> {
    // Seed: functions with a direct collective call site.
    let mut bearing: HashSet<FnId> = HashSet::new();
    let mut worklist: Vec<FnId> = Vec::new();
    for (&id, calls) in &ws.calls {
        if calls
            .iter()
            .any(|c| !c.is_macro && config::COLLECTIVES.contains(&c.name.as_str()))
        {
            bearing.insert(id);
            worklist.push(id);
        }
    }
    // Reverse-propagate through the call graph.
    let mut changed = true;
    while changed {
        changed = false;
        let ids: Vec<FnId> = ws.calls.keys().copied().collect();
        for id in ids {
            if bearing.contains(&id) {
                continue;
            }
            if ws.callees(id).iter().any(|c| bearing.contains(c)) {
                bearing.insert(id);
                changed = true;
            }
        }
    }
    bearing
        .iter()
        .map(|&id| ws.fn_item(id).name.clone())
        .collect()
}

fn check_body(
    ws: &Workspace,
    id: FnId,
    toks: &[Token],
    open: usize,
    close: usize,
    bearing: &HashSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let path = ws.path(id).to_path_buf();
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && t.text == "if"
            && toks.get(i.wrapping_sub(1)).map(|p| p.text.as_str()) != Some("else")
        {
            if let Some(chain) = parse_if_chain(toks, i, close) {
                if rank_dependent(&chain.cond_toks(toks)) {
                    let skels: Vec<Vec<String>> = chain
                        .branches
                        .iter()
                        .map(|&(a, b)| skeleton(ws, id, a, b, bearing))
                        .collect();
                    report_mismatch(&path, t, &skels, chain.has_else, out);
                }
            }
        }
        if t.kind == TokKind::Ident && t.text == "match" {
            if let Some((scrut, arms)) = parse_match(toks, i, close) {
                if rank_dependent(&scrut) {
                    let skels: Vec<Vec<String>> = arms
                        .iter()
                        .map(|&(a, b)| skeleton(ws, id, a, b, bearing))
                        .collect();
                    report_mismatch(&path, t, &skels, true, out);
                }
            }
        }
        i += 1;
    }
}

fn report_mismatch(
    path: &std::path::Path,
    at: &Token,
    skels: &[Vec<String>],
    exhaustive: bool,
    out: &mut Vec<Diagnostic>,
) {
    let mut all = skels.to_vec();
    if !exhaustive {
        all.push(Vec::new()); // missing else = empty skeleton
    }
    if all.iter().all(|s| s.is_empty()) {
        return;
    }
    let first = &all[0];
    if all.iter().all(|s| s == first) {
        return;
    }
    let rendered: Vec<String> = all
        .iter()
        .map(|s| {
            if s.is_empty() {
                "(none)".to_string()
            } else {
                s.join(" -> ")
            }
        })
        .collect();
    out.push(Diagnostic {
        code: "CMT-L002",
        file: path.to_path_buf(),
        line: at.line,
        col: at.col,
        message: "rank-dependent branch executes different collective skeletons; some rank will \
                  mismatch or deadlock"
            .into(),
        note: Some(format!(
            "per-branch skeletons: [{}]",
            rendered.join("] vs [")
        )),
    });
}

/// Ordered collective skeleton of a token range: direct collective
/// calls plus calls into collective-bearing workspace functions.
fn skeleton(
    ws: &Workspace,
    id: FnId,
    a: usize,
    b: usize,
    bearing: &HashSet<String>,
) -> Vec<String> {
    let Some(calls) = ws.calls.get(&id) else {
        return Vec::new();
    };
    calls
        .iter()
        .filter(|c| c.tok >= a && c.tok < b && !c.is_macro)
        .filter(|c| {
            config::COLLECTIVES.contains(&c.name.as_str())
                || (!config::CALL_NAME_STOPLIST.contains(&c.name.as_str())
                    && bearing.contains(&c.name))
        })
        .map(|c| c.name.clone())
        .collect()
}

/// Does a condition/scrutinee token sequence depend on the rank id?
/// Matches `.rank()` calls, and identifiers containing `rank` used in a
/// comparison (`my_rank == 0`, `0 != rank`).
fn rank_dependent(cond: &[Token]) -> bool {
    for (j, t) in cond.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_ranky = t.text == "rank" || t.text.ends_with("_rank") || t.text == "is_root";
        if !is_ranky {
            continue;
        }
        let next = cond.get(j + 1).map(|t| t.text.as_str()).unwrap_or("");
        let next2 = cond.get(j + 2).map(|t| t.text.as_str()).unwrap_or("");
        let prev = if j > 0 { cond[j - 1].text.as_str() } else { "" };
        // `.rank()` / `.is_root()` call.
        if next == "(" && next2 == ")" {
            return true;
        }
        // `rank ==` / `rank !=` / `rank <` ... and the mirrored forms.
        if matches!(next, "==" | "!=" | "<" | ">" | "<=" | ">=" | "%") {
            return true;
        }
        if matches!(prev, "==" | "!=" | "<" | ">" | "<=" | ">=") {
            return true;
        }
    }
    false
}

/// An `if`/`else if`/`else` chain: condition span + branch body spans.
struct IfChain {
    cond: (usize, usize),
    /// Token ranges of each `{ .. }` branch body (exclusive braces).
    branches: Vec<(usize, usize)>,
    has_else: bool,
}

impl IfChain {
    fn cond_toks(&self, toks: &[Token]) -> Vec<Token> {
        toks[self.cond.0..self.cond.1].to_vec()
    }
}

/// Parse the chain starting at the `if` token. Returns `None` on
/// anything the scanner can't shape (malformed input only; rustc
/// accepted the file).
fn parse_if_chain(toks: &[Token], at: usize, close: usize) -> Option<IfChain> {
    let (cond_start, body_open) = find_block_open(toks, at + 1, close)?;
    let body_close = crate::items::matching_brace(toks, body_open)?;
    let mut chain = IfChain {
        cond: (cond_start, body_open),
        branches: vec![(body_open + 1, body_close)],
        has_else: false,
    };
    let mut j = body_close + 1;
    loop {
        if toks.get(j).map(|t| t.text.as_str()) != Some("else") {
            break;
        }
        if toks.get(j + 1).map(|t| t.text.as_str()) == Some("if") {
            let (_, open) = find_block_open(toks, j + 2, close)?;
            let cl = crate::items::matching_brace(toks, open)?;
            chain.branches.push((open + 1, cl));
            j = cl + 1;
        } else if toks.get(j + 1).map(|t| t.text.as_str()) == Some("{") {
            let cl = crate::items::matching_brace(toks, j + 1)?;
            chain.branches.push((j + 2, cl));
            chain.has_else = true;
            break;
        } else {
            break;
        }
    }
    Some(chain)
}

/// From `from`, find the `{` opening the block, skipping the condition
/// (parens/brackets balanced; struct literals cannot appear unless
/// parenthesized, per Rust's own restriction in `if` conditions).
fn find_block_open(toks: &[Token], from: usize, close: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().take(close).skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some((from, j)),
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
    }
    None
}

/// Scrutinee tokens and each arm body's token range.
type MatchShape = (Vec<Token>, Vec<(usize, usize)>);

/// Parse `match scrutinee { arm => body, .. }`.
fn parse_match(toks: &[Token], at: usize, close: usize) -> Option<MatchShape> {
    let (scrut_start, body_open) = find_block_open(toks, at + 1, close)?;
    let body_close = crate::items::matching_brace(toks, body_open)?;
    let scrut = toks[scrut_start..body_open].to_vec();
    let mut arms = Vec::new();
    let mut j = body_open + 1;
    while j < body_close {
        // Find the `=>` of this arm (skipping pattern-level nesting and
        // an optional `if` guard).
        let mut depth = 0i64;
        let mut arrow = None;
        let mut k = j;
        while k < body_close {
            let t = &toks[k];
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=>" if depth == 0 => {
                    arrow = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let arrow = arrow?;
        // Arm body: `{ .. }` block or expression up to the top-level `,`.
        if toks.get(arrow + 1).map(|t| t.text.as_str()) == Some("{") {
            let cl = crate::items::matching_brace(toks, arrow + 1)?;
            arms.push((arrow + 2, cl));
            j = cl + 1;
            if toks.get(j).map(|t| t.text.as_str()) == Some(",") {
                j += 1;
            }
        } else {
            let mut depth = 0i64;
            let mut k = arrow + 1;
            while k < body_close {
                let t = &toks[k];
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            arms.push((arrow + 1, k));
            j = k + 1;
        }
    }
    Some((scrut, arms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&Workspace::build(vec![(
            PathBuf::from("t.rs"),
            src.to_string(),
        )]))
    }

    #[test]
    fn root_only_collective_is_flagged() {
        let d = run("fn f(rank: &mut Rank) {\n\
               if rank.rank() == 0 {\n\
                 let rows = rank.gather(0, data);\n\
               }\n\
             }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "CMT-L002");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn same_skeleton_on_both_branches_is_clean() {
        let d = run("fn f(rank: &mut Rank, root: usize) {\n\
               if rank.rank() == root {\n\
                 let v = rank.bcast(root, payload);\n\
               } else {\n\
                 let v = rank.bcast(root, Vec::new());\n\
               }\n\
             }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn rank_independent_branch_is_clean() {
        let d = run("fn f(rank: &mut Rank, flag: bool) {\n\
               if flag {\n\
                 rank.barrier();\n\
               }\n\
             }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn collective_hidden_behind_helper_is_still_seen() {
        let d = run(
            "fn helper(rank: &mut Rank) { rank.allreduce_f64(&xs, op); }\n\
             fn f(rank: &mut Rank) {\n\
               if rank.rank() == 0 {\n\
                 helper(rank);\n\
               }\n\
             }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn match_on_rank_with_differing_arms_is_flagged() {
        let d = run("fn f(rank: &mut Rank) {\n\
               match rank.rank() {\n\
                 0 => { rank.barrier(); }\n\
                 _ => {}\n\
               }\n\
             }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn rank_comparison_via_local_is_flagged() {
        let d = run("fn f(rank: &mut Rank, my_rank: usize) {\n\
               if my_rank == 0 {\n\
                 rank.barrier();\n\
               }\n\
             }");
        assert_eq!(d.len(), 1);
    }
}
