//! CMT-L001 — split-phase pairing.
//!
//! Every `gs_op_start` must reach a matching `gs_op_finish` (or an
//! explicit `drop` drain) on every control-flow path of its function.
//! Two findings fall out of the token-level analysis:
//!
//! * **unpaired** — the function binds the pending handle but contains
//!   no finish/drain for it, and the handle does not escape (is not
//!   returned or handed to another function): the exchange is silently
//!   abandoned to `GsPending::drop` on *every* path, which purges the
//!   traffic but never lands the combined values.
//! * **early exit in flight** — a `return` / `?` / `break` between the
//!   start and its finish: the happy path pairs up, but that exit path
//!   abandons the exchange. This is the static twin of the
//!   finalize-time abandoned-`GsPending` sweep in `cmt-verify`, which
//!   only fires if the exit path actually executes.

use crate::config;
use crate::diag::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::model::{CallSite, FnId, Workspace};

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, fa) in ws.files.iter().enumerate() {
        for (gi, f) in fa.fns.iter().enumerate() {
            let Some((open, close)) = f.body else {
                continue;
            };
            let id: FnId = (fi, gi);
            let Some(calls) = ws.calls.get(&id) else {
                continue;
            };
            for start in calls
                .iter()
                .filter(|c| config::SPLIT_START.contains(&c.name.as_str()))
            {
                check_one_start(
                    ws,
                    fa.path.clone(),
                    &fa.toks,
                    open,
                    close,
                    calls,
                    start,
                    &mut out,
                );
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn check_one_start(
    _ws: &Workspace,
    path: std::path::PathBuf,
    toks: &[Token],
    open: usize,
    close: usize,
    calls: &[CallSite],
    start: &CallSite,
    out: &mut Vec<Diagnostic>,
) {
    // End of the start call's statement: next `;` at the statement's
    // paren depth, or the end of the body for a tail expression.
    let stmt_end = statement_end(toks, start.tok, close);

    // The binding the pending handle lands in, when there is one. No
    // `let` means the result is a tail expression or a direct argument
    // — it escapes this function and pairing is the caller's job.
    let Some(binding) = binding_name(toks, open, start.tok) else {
        return;
    };

    // Nearest finish call after the start.
    let finish = calls
        .iter()
        .filter(|c| config::SPLIT_FINISH.contains(&c.name.as_str()) && c.tok > start.tok)
        .map(|c| c.tok)
        .min();

    // Explicit drain: `drop(binding)`.
    let drained = calls.iter().any(|c| {
        config::SPLIT_DRAIN.contains(&c.name.as_str())
            && c.tok > stmt_end
            && call_args_contain(toks, c, close, &binding)
    });

    // Escape: the binding is returned, wrapped into a constructor, or
    // passed to some non-finish call after the start — the pending
    // handle leaves this function and the pairing obligation with it.
    let escapes = binding_escapes(toks, stmt_end, close, &binding);

    match finish {
        None => {
            if !drained && !escapes {
                out.push(Diagnostic {
                    code: "CMT-L001",
                    file: path,
                    line: start.line,
                    col: start.col,
                    message: format!(
                        "split-phase exchange started here is never finished: `{}` has no \
                         matching `gs_op_finish` (or explicit drain) in this function",
                        binding
                    ),
                    note: Some(
                        "every control-flow path must reach gs_op_finish; dropping the pending \
                         handle purges the in-flight traffic but never lands the combined values"
                            .into(),
                    ),
                });
            }
        }
        Some(fin_tok) => {
            // Early exits strictly between the start statement and the
            // finish call abandon the exchange on that path. A `break`
            // out of a loop that *opened after the start* (a polling
            // loop in the overlap window) stays inside the pairing and
            // is fine — track loop frames opened during the scan.
            let scan_from = stmt_end.max(open) + 1;
            let mut loop_frames: Vec<bool> = Vec::new();
            for (j, t) in toks.iter().enumerate().take(fin_tok).skip(scan_from) {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "{" => loop_frames.push(is_loop_brace(toks, scan_from, j)),
                        "}" => {
                            loop_frames.pop();
                        }
                        _ => {}
                    }
                }
                let early = match (t.kind, t.text.as_str()) {
                    (TokKind::Ident, "return") => true,
                    (TokKind::Ident, "break") => !loop_frames.iter().any(|&l| l),
                    (TokKind::Punct, "?") => true,
                    _ => false,
                };
                if !early {
                    continue;
                }
                // A `return`/`break` whose expression itself finishes or
                // drains the exchange is fine; that needs the finish to
                // appear within the exit statement.
                let exit_stmt_end = statement_end(toks, j, close);
                let exits_clean = calls.iter().any(|c| {
                    (config::SPLIT_FINISH.contains(&c.name.as_str())
                        || config::SPLIT_DRAIN.contains(&c.name.as_str()))
                        && c.tok > j
                        && c.tok <= exit_stmt_end
                });
                if exits_clean {
                    continue;
                }
                out.push(Diagnostic {
                    code: "CMT-L001",
                    file: path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "early exit (`{}`) while split-phase exchange `{}` is in flight: this \
                         path never reaches `gs_op_finish`",
                        t.text, binding
                    ),
                    note: Some(format!(
                        "exchange started at line {}; finish or drain it before exiting",
                        start.line
                    )),
                });
            }
        }
    }
}

/// Is the `{` at `brace` the body of a `loop` / `while` / `for`
/// header? Scans back to the previous statement boundary.
fn is_loop_brace(toks: &[Token], floor: usize, brace: usize) -> bool {
    let mut j = brace;
    while j > floor {
        j -= 1;
        let t = &toks[j];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), "{" | "}" | ";") {
            return false;
        }
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "loop" | "while" | "for") {
            return true;
        }
    }
    false
}

/// Token index of the `;` ending the statement containing `at` (at the
/// statement's own nesting level), or the body end.
fn statement_end(toks: &[Token], at: usize, close: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().take(close).skip(at) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                ";" if depth == 0 => return j,
                _ => {}
            }
        }
    }
    close
}

/// Walk back from the call to the start of its statement looking for
/// `let [mut] name = ...`.
fn binding_name(toks: &[Token], open: usize, call_tok: usize) -> Option<String> {
    let mut j = call_tok;
    while j > open {
        j -= 1;
        let t = &toks[j];
        if t.kind == TokKind::Punct && (t.text == ";" || t.text == "{" || t.text == "}") {
            break;
        }
        if t.kind == TokKind::Ident && t.text == "let" {
            let mut k = j + 1;
            if toks.get(k).map(|t| t.text.as_str()) == Some("mut") {
                k += 1;
            }
            let name = toks.get(k)?;
            if name.kind == TokKind::Ident {
                return Some(name.text.clone());
            }
            return None;
        }
    }
    None
}

/// Do the parenthesized arguments of call `c` mention `binding`?
fn call_args_contain(toks: &[Token], c: &CallSite, close: usize, binding: &str) -> bool {
    // Find the opening paren after the callee name (skipping turbofish).
    let mut j = c.tok + 1;
    let mut angle = 0i64;
    while j < close {
        match toks[j].text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "(" if angle == 0 => break,
            _ => {}
        }
        j += 1;
    }
    if j >= close {
        return false;
    }
    let mut depth = 0i64;
    for t in &toks[j..close] {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            _ => {
                if t.kind == TokKind::Ident && t.text == binding {
                    return true;
                }
            }
        }
    }
    false
}

/// Does `binding` escape between `from` and `close` — returned, built
/// into a value, or passed to a call?
fn binding_escapes(toks: &[Token], from: usize, close: usize, binding: &str) -> bool {
    for (j, t) in toks.iter().enumerate().take(close).skip(from) {
        if t.kind != TokKind::Ident || t.text != binding {
            continue;
        }
        let prev = toks[..j].last().map(|t| t.text.as_str()).unwrap_or("");
        let next = toks.get(j + 1).map(|t| t.text.as_str()).unwrap_or("");
        // `return p` / `Some(p)` / `(p, ..)` / `f(p)` / `push(p)` /
        // struct literal field `pending: p` / tail `p }`.
        if prev == "return" || prev == "(" || prev == "," || prev == ":" {
            return true;
        }
        if next == "}" || next == "," || next == ")" {
            // Tail position or argument position.
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&Workspace::build(vec![(
            PathBuf::from("t.rs"),
            src.to_string(),
        )]))
    }

    #[test]
    fn paired_start_finish_is_clean() {
        let d = run("fn f(h: &H, rank: &mut Rank) {\n\
               let pending = h.gs_op_start(rank, &fields, op, m);\n\
               compute();\n\
               h.gs_op_finish(rank, pending, &mut fields);\n\
             }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_finish_is_flagged() {
        let d = run("fn f(h: &H, rank: &mut Rank) {\n\
               let pending = h.gs_op_start(rank, &fields, op, m);\n\
               compute();\n\
             }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "CMT-L001");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn early_return_between_start_and_finish_is_flagged() {
        let d = run("fn f(h: &H, rank: &mut Rank, bad: bool) {\n\
               let pending = h.gs_op_start(rank, &fields, op, m);\n\
               if bad {\n\
                 return;\n\
               }\n\
               h.gs_op_finish(rank, pending, &mut fields);\n\
             }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn question_mark_between_start_and_finish_is_flagged() {
        let d = run("fn f(h: &H, rank: &mut Rank) -> Result<(), E> {\n\
               let pending = h.gs_op_start(rank, &fields, op, m);\n\
               fallible()?;\n\
               h.gs_op_finish(rank, pending, &mut fields);\n\
               Ok(())\n\
             }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn explicit_drain_is_clean() {
        let d = run("fn f(h: &H, rank: &mut Rank) {\n\
               let pending = h.gs_op_start(rank, &fields, op, m);\n\
               drop(pending);\n\
             }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn break_out_of_polling_loop_inside_window_is_clean() {
        let d = run("fn f(h: &H, rank: &mut Rank) {\n\
               let pending = h.gs_op_start(rank, &fields, op, m);\n\
               loop {\n\
                 if rank.iprobe(src, tag) {\n\
                   break;\n\
                 }\n\
                 compute_chunk();\n\
               }\n\
               h.gs_op_finish(rank, pending, &mut fields);\n\
             }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn break_past_the_finish_is_flagged() {
        let d = run("fn f(h: &H, rank: &mut Rank, xs: &[u64]) {\n\
               for x in xs {\n\
                 let pending = h.gs_op_start(rank, &fields, op, m);\n\
                 if stop(x) {\n\
                   break;\n\
                 }\n\
                 h.gs_op_finish(rank, pending, &mut fields);\n\
               }\n\
             }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn escaping_pending_is_callers_problem() {
        let d = run("fn f(h: &H, rank: &mut Rank) -> GsPending {\n\
               let pending = h.gs_op_start(rank, &fields, op, m);\n\
               pending\n\
             }\n\
             fn g(h: &H, rank: &mut Rank) {\n\
               let pending = h.gs_op_start(rank, &fields, op, m);\n\
               stash(pending);\n\
             }");
        assert!(d.is_empty(), "{d:?}");
    }
}
