//! CMT-L003 — hot-path allocation.
//!
//! `BENCH_alloc.json` and the `alloc_free` counting-allocator tests
//! assert that steady-state timesteps perform zero heap allocations in
//! the gather–scatter and overlap-window regions — but only on the
//! schedules CI happens to run. This rule proves the property's static
//! side: no allocation construct (`Vec::new`, `vec!`, `.clone()`,
//! `.collect()`, `format!`, ...) may appear in any function reachable
//! from the zero-alloc roots through the workspace call graph, except
//! behind the blessed pool/instrumentation barriers
//! ([`config::ALLOC_BARRIERS`]).

use std::collections::HashMap;

use crate::config;
use crate::diag::Diagnostic;
use crate::model::{FnId, Workspace};

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    // BFS from the roots; remember one parent per function so findings
    // can show a concrete call chain back to a root.
    let mut parent: HashMap<FnId, Option<FnId>> = HashMap::new();
    let mut queue: Vec<FnId> = Vec::new();
    for (name, ids) in &ws.fn_by_name {
        if config::HOT_ROOTS.contains(&name.as_str()) {
            for &id in ids {
                parent.entry(id).or_insert(None);
                queue.push(id);
            }
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let id = queue[qi];
        qi += 1;
        for callee in ws.callees(id) {
            let f = ws.fn_item(callee);
            if config::ALLOC_BARRIERS.contains(&f.name.as_str()) {
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(callee) {
                e.insert(Some(id));
                queue.push(callee);
            }
        }
    }

    let mut out = Vec::new();
    for (&id, _) in parent.iter() {
        let Some(calls) = ws.calls.get(&id) else {
            continue;
        };
        for c in calls {
            let construct = if c.is_macro {
                config::ALLOC_MACROS
                    .contains(&c.name.as_str())
                    .then(|| format!("{}!", c.name))
            } else if c.is_method {
                config::ALLOC_METHODS
                    .contains(&c.name.as_str())
                    .then(|| format!(".{}()", c.name))
            } else if let Some(recv) = &c.receiver_type {
                config::ALLOC_PATH_CALLS
                    .iter()
                    .any(|&(t, m)| t == recv && m == c.name)
                    .then(|| format!("{}::{}", recv, c.name))
            } else {
                None
            };
            let Some(construct) = construct else {
                continue;
            };
            out.push(Diagnostic {
                code: "CMT-L003",
                file: ws.path(id).to_path_buf(),
                line: c.line,
                col: c.col,
                message: format!(
                    "allocation construct `{}` in `{}`, which is reachable from a zero-alloc \
                     steady-state root",
                    construct,
                    ws.fn_label(id)
                ),
                note: Some(format!(
                    "call chain: {}; route the buffer through the rank's BufferPool or a \
                     persistent plan instead",
                    chain(ws, &parent, id)
                )),
            });
        }
    }
    out
}

/// Render `root -> .. -> f` from the BFS parent map.
fn chain(ws: &Workspace, parent: &HashMap<FnId, Option<FnId>>, id: FnId) -> String {
    let mut names = vec![ws.fn_label(id)];
    let mut cur = id;
    while let Some(Some(p)) = parent.get(&cur) {
        names.push(ws.fn_label(*p));
        cur = *p;
        if names.len() > 12 {
            break;
        }
    }
    names.reverse();
    names.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&Workspace::build(vec![(
            PathBuf::from("t.rs"),
            src.to_string(),
        )]))
    }

    #[test]
    fn direct_alloc_in_root_is_flagged() {
        let d = run("fn gs_op_start(rank: &mut Rank) { let v = Vec::with_capacity(8); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "CMT-L003");
        assert!(d[0].message.contains("Vec::with_capacity"));
    }

    #[test]
    fn alloc_behind_helper_is_flagged_with_chain() {
        let d = run("fn gs_op_finish(rank: &mut Rank) { unpack_stage(rank); }\n\
             fn unpack_stage(rank: &mut Rank) { let s = data.to_vec(); }");
        assert_eq!(d.len(), 1);
        assert!(d[0]
            .note
            .as_ref()
            .unwrap()
            .contains("gs_op_finish -> unpack_stage"));
    }

    #[test]
    fn pool_barrier_is_not_traversed() {
        let d = run(
            "fn gs_op_start(rank: &mut Rank) { let b = rank.pool().take(); }\n\
             fn take(p: &Pool) -> Buf { Vec::with_capacity(64) }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unreachable_alloc_is_fine() {
        let d = run("fn setup_only() { let v = vec![0.0; 64]; }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn macro_and_clone_constructs_are_flagged() {
        let d = run("fn gs_op(rank: &mut Rank) {\n\
               let msg = format!(\"{}\", x);\n\
               let c = buf.clone();\n\
             }");
        assert_eq!(d.len(), 2);
    }
}
