//! The rule engine: each family takes the workspace model and returns
//! raw findings; the driver applies the in-source escape hatch and the
//! CLI filter afterwards.

pub mod alloc;
pub mod coll;
pub mod split;
pub mod unsafe_audit;
pub mod wire;

use crate::diag::Diagnostic;
use crate::model::Workspace;

/// Run every rule family over `ws`.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(split::check(ws));
    out.extend(coll::check(ws));
    out.extend(alloc::check(ws));
    out.extend(wire::check(ws));
    out.extend(unsafe_audit::check(ws));
    out.sort_by(|a, b| {
        (a.file.clone(), a.line, a.col, a.code).cmp(&(b.file.clone(), b.line, b.col, b.code))
    });
    out
}
