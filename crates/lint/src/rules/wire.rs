//! CMT-L004 — wire-codec completeness.
//!
//! The socket transport can only serialize payload element types in
//! `simmpi::wire`'s closed registry; anything else compiles fine, runs
//! fine on the `inproc` backend, and panics the first time it crosses a
//! process boundary. Compound values are supposed to ship through a
//! [`WireCodec`] impl (encode to `Vec<u8>`, send the bytes), which is
//! how driver results and checkpoint payloads travel.
//!
//! The rule checks every *resolvable* payload position — a transport
//! call with an explicit turbofish (`send::<T>`) — and rejects element
//! types that are neither wire-registered primitives nor covered by a
//! workspace `impl WireCodec`. Unannotated call sites are type-inferred
//! by rustc and invisible to a syntactic pass; the dynamic registry
//! panic still backstops those.

use crate::config;
use crate::diag::Diagnostic;
use crate::model::Workspace;

pub fn check(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, fa) in ws.files.iter().enumerate() {
        for (gi, _f) in fa.fns.iter().enumerate() {
            let Some(calls) = ws.calls.get(&(fi, gi)) else {
                continue;
            };
            for c in calls {
                if c.is_macro || !config::PAYLOAD_APIS.contains(&c.name.as_str()) {
                    continue;
                }
                // Outermost turbofish identifiers; `send::<f64>` ->
                // ["f64"], `crystal_router::<RoutedMsg<f64>>` ->
                // ["RoutedMsg"].
                let Some(elem) = c.turbofish.first() else {
                    continue;
                };
                if config::WIRE_PRIMITIVES.contains(&elem.as_str()) {
                    continue;
                }
                if ws.wirecodec_types.contains(elem) {
                    continue;
                }
                out.push(Diagnostic {
                    code: "CMT-L004",
                    file: fa.path.clone(),
                    line: c.line,
                    col: c.col,
                    message: format!(
                        "`{}` crosses the transport in `{}` but is neither a registered wire \
                         primitive nor covered by a WireCodec impl; it will panic on the socket \
                         backend",
                        elem, c.name
                    ),
                    note: Some(
                        "implement simmpi::WireCodec for the type and ship its encoded bytes, or \
                         register the element type in simmpi::wire's payload registry"
                            .into(),
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&Workspace::build(vec![(
            PathBuf::from("t.rs"),
            src.to_string(),
        )]))
    }

    #[test]
    fn registered_primitives_are_clean() {
        let d = run("fn f(rank: &mut Rank) {\n\
               rank.send::<f64>(1, TAG, &xs);\n\
               let v = rank.recv::<u64>(0, TAG);\n\
               rank.crystal_router::<RoutedMsg<f64>>(msgs);\n\
             }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unregistered_struct_is_flagged() {
        let d = run("fn f(rank: &mut Rank) { rank.send::<ParticleRecord>(1, TAG, &xs); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "CMT-L004");
        assert!(d[0].message.contains("ParticleRecord"));
    }

    #[test]
    fn wirecodec_covered_type_is_clean() {
        let d = run("impl WireCodec for ParticleRecord { }\n\
             fn f(rank: &mut Rank) { rank.bcast::<ParticleRecord>(0, xs); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn inferred_sites_are_skipped() {
        let d = run("fn f(rank: &mut Rank) { rank.send(1, TAG, &xs); }");
        assert!(d.is_empty(), "{d:?}");
    }
}
