//! `cmt-lint` — a workspace static analyzer that proves simmpi's
//! communication, pooling, and unsafe-boundary invariants before the
//! code ever runs.
//!
//! The dynamic checkers (`cmt-verify`, the counting allocator, TSan)
//! only catch a bug if it executes on the right schedule; this crate is
//! their static twin, catching the whole class at `cargo` time on every
//! path. Five rule families, stable codes:
//!
//! | code | invariant |
//! |------|-----------|
//! | CMT-L001 | split-phase `gs_op_start` pairs with `gs_op_finish` on all paths |
//! | CMT-L002 | rank-dependent branches execute identical collective skeletons |
//! | CMT-L003 | zero-alloc steady-state functions contain no allocation constructs |
//! | CMT-L004 | transport payload types are wire-registered or WireCodec-covered |
//! | CMT-L005 | `unsafe` stays in the audited boundary, each site SAFETY-commented |
//!
//! The pipeline: [`lexer`] tokenizes, [`items`] extracts the structural
//! skeleton (functions, impls, unsafe sites), [`model`] builds the
//! workspace call graph, [`rules`] runs the families, and [`diag`]
//! applies the in-source escape hatch (`// cmt-lint: allow(CODE)`) and
//! CLI filtering.

pub mod audit;
pub mod config;
pub mod diag;
pub mod items;
pub mod lexer;
pub mod model;
pub mod rules;

use std::path::{Path, PathBuf};

use diag::{Diagnostic, Filter};
use model::Workspace;

/// Analyze a set of `.rs` files (or directories, walked recursively)
/// and return the filtered findings.
pub fn analyze(paths: &[PathBuf], filter: &Filter) -> std::io::Result<Vec<Diagnostic>> {
    let mut sources = Vec::new();
    for p in paths {
        collect_sources(p, &mut sources)?;
    }
    sources.sort();
    sources.dedup();
    let mut loaded = Vec::with_capacity(sources.len());
    for p in sources {
        let src = std::fs::read_to_string(&p)?;
        loaded.push((p, src));
    }
    let ws = Workspace::build(loaded);
    let diags = rules::run_all(&ws);
    let diags = diag::apply_source_allows(diags, &ws.files);
    Ok(diags
        .into_iter()
        .filter(|d| filter.enabled(d.code))
        .collect())
}

/// Product source roots of the workspace at `root`: every crate's
/// `src/` tree plus the top-level `src/`. Tests, benches, examples and
/// fixtures are deliberately out of scope — the invariants the rules
/// prove are contracts of product code.
pub fn workspace_source_roots(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let top = root.join("src");
    if top.is_dir() {
        out.push(top);
    }
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        for e in entries.flatten() {
            let src = e.path().join("src");
            if src.is_dir() {
                out.push(src);
            }
        }
    }
    out.sort();
    out
}

/// Find the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

fn collect_sources(p: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if p.is_file() {
        if p.extension().is_some_and(|e| e == "rs") {
            out.push(p.to_path_buf());
        }
        return Ok(());
    }
    if p.is_dir() {
        for e in std::fs::read_dir(p)? {
            collect_sources(&e?.path(), out)?;
        }
    }
    Ok(())
}
