//! Diagnostics: stable codes, spans, rendering, and the two suppression
//! layers — CLI `--allow`/`--deny` filters and the in-source escape
//! hatch (`// cmt-lint: allow(CMT-L003)` comments).

use std::collections::HashSet;
use std::fmt;
use std::path::PathBuf;

use crate::items::FileAnalysis;

/// All stable diagnostic codes, with one-line summaries (the
/// `--list-rules` output and the README reference table are generated
/// from this).
pub const RULES: &[(&str, &str)] = &[
    (
        "CMT-L001",
        "split-phase pairing: every gs_op_start must reach a matching finish (or explicit drain) on all control-flow paths",
    ),
    (
        "CMT-L002",
        "collective-order consistency: rank-dependent branches must execute identical collective skeletons",
    ),
    (
        "CMT-L003",
        "hot-path allocation: no allocation constructs in functions reachable from the zero-alloc steady-state roots",
    ),
    (
        "CMT-L004",
        "wire-codec completeness: transport payload element types must be wire-registered or WireCodec-encodable",
    ),
    (
        "CMT-L005",
        "unsafe boundary: every unsafe site needs a SAFETY comment, and unsafe outside the audited file allowlist is rejected",
    ),
];

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub code: &'static str,
    pub file: PathBuf,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// Optional secondary line (call chain, hint).
    pub note: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.code, self.message)?;
        write!(
            f,
            "  --> {}:{}:{}",
            self.file.display(),
            self.line,
            self.col
        )?;
        if let Some(n) = &self.note {
            write!(f, "\n  note: {n}")?;
        }
        Ok(())
    }
}

/// CLI-level code filter. All rules are deny-by-default; `--allow CODE`
/// suppresses a code everywhere, `--deny CODE` re-asserts it (wins over
/// a preceding `--allow`, so scripted invocations can layer flags).
#[derive(Debug, Default, Clone)]
pub struct Filter {
    allowed: HashSet<String>,
    denied: HashSet<String>,
}

impl Filter {
    pub fn allow(&mut self, code: &str) {
        self.allowed.insert(code.to_uppercase());
    }

    pub fn deny(&mut self, code: &str) {
        self.denied.insert(code.to_uppercase());
    }

    pub fn enabled(&self, code: &str) -> bool {
        self.denied.contains(code) || !self.allowed.contains(code)
    }
}

/// Is `code` a known rule code?
pub fn known_code(code: &str) -> bool {
    RULES.iter().any(|(c, _)| *c == code)
}

/// Apply the in-source escape hatch: drop findings covered by a
/// `cmt-lint: allow(CODE)` comment (any comment form works — `//`,
/// `///`, `//!`, or block). Placement:
///
/// * **statement-level** — on the finding's line, or anywhere in the
///   contiguous comment block that introduces the statement containing
///   the finding (so a multi-line justification counts in full). The
///   covered span runs from the first code line after the comment to
///   the end of that statement (first `;`-carrying line, capped at 12
///   lines);
/// * **file-level** — within the first 15 lines of the file, suppresses
///   the code for that whole file.
pub fn apply_source_allows(diags: Vec<Diagnostic>, files: &[FileAnalysis]) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| {
            let Some(fa) = files.iter().find(|f| f.path == d.file) else {
                return true;
            };
            !fa.comments.iter().any(|c| {
                comment_allows(&c.text, d.code) && (c.line <= 15 || covers(fa, c.line, d.line))
            })
        })
        .collect()
}

/// Does an allow comment on `c_line` cover a finding on line `l`?
///
/// The comment covers the statement it introduces: from the first line
/// carrying a token after `c_line` (intervening lines that hold only
/// comments or whitespace are skipped, so the allow may lead a
/// multi-line comment block) through the first line carrying a `;`
/// token, capped at 12 lines of code.
fn covers(fa: &FileAnalysis, c_line: u32, l: u32) -> bool {
    if c_line > l {
        return false;
    }
    if c_line == l {
        return true;
    }
    let Some(first_code) = fa
        .toks
        .iter()
        .map(|t| t.line)
        .filter(|&tl| tl > c_line)
        .min()
    else {
        return false;
    };
    if l < first_code {
        return false; // finding inside the comment gap — shouldn't happen
    }
    let stmt_end = fa
        .toks
        .iter()
        .filter(|t| t.line >= first_code && t.text == ";")
        .map(|t| t.line)
        .min()
        .unwrap_or(first_code)
        .min(first_code + 12);
    l <= stmt_end
}

/// Does one comment text carry `cmt-lint: allow(..)` covering `code`?
fn comment_allows(text: &str, code: &str) -> bool {
    let Some(at) = text.find("cmt-lint:") else {
        return false;
    };
    let rest = text[at + "cmt-lint:".len()..].trim_start();
    let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.split(')').next())
    else {
        return false;
    };
    args.split(',')
        .any(|c| c.trim().eq_ignore_ascii_case(code) || c.trim() == "*")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::scan_file;
    use std::path::PathBuf;

    fn diag(line: u32) -> Diagnostic {
        Diagnostic {
            code: "CMT-L003",
            file: PathBuf::from("x.rs"),
            line,
            col: 1,
            message: "m".into(),
            note: None,
        }
    }

    #[test]
    fn filter_deny_wins_over_allow() {
        let mut f = Filter::default();
        assert!(f.enabled("CMT-L001"));
        f.allow("CMT-L001");
        assert!(!f.enabled("CMT-L001"));
        f.deny("CMT-L001");
        assert!(f.enabled("CMT-L001"));
    }

    #[test]
    fn line_level_allow_suppresses_nearby_finding_only() {
        let src = "\n".repeat(30) + "// cmt-lint: allow(CMT-L003)\nlet x = 1;\n";
        let fa = scan_file(PathBuf::from("x.rs"), &src);
        let files = vec![fa];
        // Comment is on line 31; finding on line 32 is covered, 35 not.
        assert!(apply_source_allows(vec![diag(32)], &files).is_empty());
        assert_eq!(apply_source_allows(vec![diag(35)], &files).len(), 1);
    }

    #[test]
    fn file_level_allow_covers_everything() {
        let src = "//! cmt-lint: allow(CMT-L003, CMT-L005)\n".to_string() + &"\n".repeat(50);
        let fa = scan_file(PathBuf::from("x.rs"), &src);
        let files = vec![fa];
        assert!(apply_source_allows(vec![diag(40)], &files).is_empty());
    }

    #[test]
    fn other_codes_are_not_suppressed() {
        let src = "// cmt-lint: allow(CMT-L001)\nlet x = 1;\n";
        let fa = scan_file(PathBuf::from("x.rs"), src);
        assert_eq!(apply_source_allows(vec![diag(2)], &[fa]).len(), 1);
    }
}
