//! CLI driver.
//!
//! ```text
//! cmt-lint --workspace                 # analyze every crate's src tree
//! cmt-lint path/to/dir file.rs ...     # analyze explicit paths
//! cmt-lint --workspace --allow CMT-L003
//! cmt-lint --workspace --deny CMT-L003 # re-assert after an --allow
//! cmt-lint --audit                     # manifest dependency/license audit
//! cmt-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use cmt_lint::diag::{known_code, Filter, RULES};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut filter = Filter::default();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut workspace = false;
    let mut audit = false;
    let mut quiet = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--audit" => audit = true,
            "--quiet" | "-q" => quiet = true,
            "--allow" | "--deny" => {
                let Some(codes) = args.next() else {
                    eprintln!("error: {arg} needs a code (e.g. {arg} CMT-L003)");
                    return ExitCode::from(2);
                };
                for code in codes.split(',') {
                    let code = code.trim().to_uppercase();
                    if !known_code(&code) {
                        eprintln!("error: unknown rule code `{code}` (see --list-rules)");
                        return ExitCode::from(2);
                    }
                    if arg == "--allow" {
                        filter.allow(&code);
                    } else {
                        filter.deny(&code);
                    }
                }
            }
            "--list-rules" => {
                for (code, summary) in RULES {
                    println!("{code}  {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("error: unknown flag `{arg}`");
                print_help();
                return ExitCode::from(2);
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };

    if audit {
        let Some(root) = cmt_lint::find_workspace_root(&cwd) else {
            eprintln!("error: --audit needs to run inside the workspace");
            return ExitCode::from(2);
        };
        return match cmt_lint::audit::audit_workspace(&root) {
            Ok(findings) if findings.is_empty() => {
                if !quiet {
                    println!(
                        "cmt-lint --audit: manifests clean (path-only deps, licenses declared)"
                    );
                }
                ExitCode::SUCCESS
            }
            Ok(findings) => {
                for f in &findings {
                    println!("{f}");
                }
                println!("cmt-lint --audit: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("error: audit failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    if workspace {
        let Some(root) = cmt_lint::find_workspace_root(&cwd) else {
            eprintln!("error: --workspace needs to run inside the workspace");
            return ExitCode::from(2);
        };
        paths.extend(cmt_lint::workspace_source_roots(&root));
    }
    if paths.is_empty() {
        eprintln!("error: nothing to analyze (pass --workspace or explicit paths)");
        print_help();
        return ExitCode::from(2);
    }

    match cmt_lint::analyze(&paths, &filter) {
        Ok(diags) if diags.is_empty() => {
            if !quiet {
                println!("cmt-lint: clean ({} rule families)", RULES.len());
            }
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("cmt-lint: {} finding(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn print_help() {
    println!(
        "cmt-lint: static analyzer for the CMT-bone workspace\n\
         \n\
         USAGE: cmt-lint [--workspace] [PATH ...] [OPTIONS]\n\
         \n\
         OPTIONS:\n\
           --workspace          analyze every crate's src/ tree\n\
           --allow CODE[,..]    suppress a rule code\n\
           --deny CODE[,..]     re-assert a rule code (wins over --allow)\n\
           --audit              dependency/license audit of the manifests\n\
           --list-rules         print the rule table\n\
           --quiet, -q          no output when clean\n\
         \n\
         In-source escape hatch: `// cmt-lint: allow(CMT-L003)` on the\n\
         finding's line or in the comment block introducing its\n\
         statement, or (file-wide) in the first 15 lines of the file."
    );
}
