//! A minimal Rust lexer.
//!
//! The analyzer needs tokens with accurate line/column spans, comments
//! kept on the side (for `// SAFETY:` and `// cmt-lint: allow(..)`
//! detection), and nothing else — no syntax tree, no name resolution.
//! Hand-rolled because the workspace is dependency-free by design: the
//! subset of Rust lexed here (idents, literals including raw strings,
//! lifetimes vs. char literals, nested block comments, multi-char
//! operators) is what the rule engine's structural scanner consumes.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Token text as written (identifier name, operator spelling, the
    /// literal including quotes for strings/chars).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the scanner distinguishes by spelling).
    Ident,
    /// `'a` — a lifetime or loop label.
    Lifetime,
    /// Numeric literal, including suffix (`1.0e-3`, `0xff_u32`).
    Number,
    /// String / raw string / byte string literal, quotes included.
    Str,
    /// Char / byte-char literal, quotes included.
    Char,
    /// Operator or delimiter (`::`, `->`, `{`, `?`, ...).
    Punct,
}

/// A comment captured out-of-band (not a token).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
}

/// Lex `src` into tokens plus a side list of comments.
///
/// The lexer never fails: malformed trailing input degrades to
/// single-char punct tokens, which is fine for a linter that only runs
/// on code rustc already accepted.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment (also captures doc comments).
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                bump!();
            }
            let trimmed = text.trim_start_matches('/').trim_start_matches('!').trim();
            comments.push(Comment {
                line: tline,
                text: trimmed.to_string(),
            });
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            let mut depth = 0usize;
            let mut text = String::new();
            while i < chars.len() {
                if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                    bump!();
                    bump!();
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(chars[i]);
                    bump!();
                }
            }
            comments.push(Comment {
                line: tline,
                text: text.trim_matches(['*', '!', ' ', '\n']).to_string(),
            });
            continue;
        }
        // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
        if (c == 'r' || c == 'b') && raw_or_byte_string_at(&chars, i) {
            let start = i;
            if chars[i] == 'b' {
                bump!();
            }
            let raw = i < chars.len() && chars[i] == 'r';
            if raw {
                bump!();
            }
            let mut hashes = 0usize;
            while raw && i < chars.len() && chars[i] == '#' {
                hashes += 1;
                bump!();
            }
            debug_assert!(i < chars.len() && chars[i] == '"');
            bump!(); // opening quote
            loop {
                if i >= chars.len() {
                    break;
                }
                if !raw && chars[i] == '\\' {
                    bump!();
                    if i < chars.len() {
                        bump!();
                    }
                    continue;
                }
                if chars[i] == '"' {
                    if raw {
                        // Need `"` followed by `hashes` hash marks.
                        let mut ok = true;
                        for k in 0..hashes {
                            if i + 1 + k >= chars.len() || chars[i + 1 + k] != '#' {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            bump!();
                            for _ in 0..hashes {
                                bump!();
                            }
                            break;
                        }
                        bump!();
                        continue;
                    }
                    bump!();
                    break;
                }
                bump!();
            }
            toks.push(Token {
                kind: TokKind::Str,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Plain string.
        if c == '"' {
            let start = i;
            bump!();
            while i < chars.len() {
                if chars[i] == '\\' {
                    bump!();
                    if i < chars.len() {
                        bump!();
                    }
                    continue;
                }
                if chars[i] == '"' {
                    bump!();
                    break;
                }
                bump!();
            }
            toks.push(Token {
                kind: TokKind::Str,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Lifetime vs. char literal.
        if c == '\'' {
            if lifetime_at(&chars, i) {
                let start = i;
                bump!();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
                toks.push(Token {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
            } else {
                let start = i;
                bump!();
                while i < chars.len() {
                    if chars[i] == '\\' {
                        bump!();
                        if i < chars.len() {
                            bump!();
                        }
                        continue;
                    }
                    if chars[i] == '\'' {
                        bump!();
                        break;
                    }
                    bump!();
                }
                toks.push(Token {
                    kind: TokKind::Char,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }
        // Identifier / keyword (including r#ident raw identifiers).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Number (integer or float, suffixes kept; `0..n` stops at `..`).
        if c.is_ascii_digit() {
            let start = i;
            bump!();
            while i < chars.len() {
                let d = chars[i];
                if d.is_alphanumeric() || d == '_' {
                    // Exponent sign: 1e-3 / 1E+3.
                    if (d == 'e' || d == 'E')
                        && i + 1 < chars.len()
                        && (chars[i + 1] == '+' || chars[i + 1] == '-')
                        && i + 2 < chars.len()
                        && chars[i + 2].is_ascii_digit()
                    {
                        bump!();
                        bump!();
                        continue;
                    }
                    bump!();
                    continue;
                }
                if d == '.' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit() {
                    bump!();
                    continue;
                }
                break;
            }
            toks.push(Token {
                kind: TokKind::Number,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Multi-char operators the scanner matches on.
        let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
        if matches!(
            two.as_str(),
            "::" | "->" | "=>" | "==" | "!=" | "<=" | ">=" | "&&" | "||" | ".."
        ) {
            bump!();
            bump!();
            toks.push(Token {
                kind: TokKind::Punct,
                text: two,
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Single-char punct.
        bump!();
        toks.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
    }
    (toks, comments)
}

/// Is position `i` (at `r` or `b`) the start of a raw/byte string?
fn raw_or_byte_string_at(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j < chars.len() && chars[j] == '"' {
            return true; // b"..."
        }
    }
    if j < chars.len() && chars[j] == 'r' {
        j += 1;
        while j < chars.len() && chars[j] == '#' {
            j += 1;
        }
        return j < chars.len() && chars[j] == '"';
    }
    false
}

/// Disambiguate `'a` (lifetime/label) from `'a'` (char literal): a quote
/// followed by an identifier is a lifetime unless the identifier is one
/// char long and immediately followed by a closing quote.
fn lifetime_at(chars: &[char], i: usize) -> bool {
    let mut j = i + 1;
    if j >= chars.len() || !(chars[j].is_alphabetic() || chars[j] == '_') {
        return false; // '\n', '0', ... — char literal or malformed
    }
    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
        j += 1;
    }
    !(j < chars.len() && chars[j] == '\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).0.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_calls() {
        let k = kinds("rank.gs_op_start(x)");
        assert_eq!(k[0], (TokKind::Ident, "rank".into()));
        assert_eq!(k[1], (TokKind::Punct, ".".into()));
        assert_eq!(k[2], (TokKind::Ident, "gs_op_start".into()));
        assert_eq!(k[3], (TokKind::Punct, "(".into()));
    }

    #[test]
    fn lifetime_vs_char() {
        let k = kinds("fn f<'a>(c: char) { let x = 'a'; let y = '\\n'; }");
        assert!(k.iter().any(|t| t.0 == TokKind::Lifetime && t.1 == "'a"));
        assert!(k.iter().any(|t| t.0 == TokKind::Char && t.1 == "'a'"));
        assert!(k.iter().any(|t| t.0 == TokKind::Char && t.1 == "'\\n'"));
    }

    #[test]
    fn strings_hide_their_contents() {
        // `unsafe` inside a string literal must not look like a token.
        let k = kinds(r##"let s = "unsafe { }"; let r = r#"also unsafe"# ;"##);
        assert!(!k.iter().any(|t| t.0 == TokKind::Ident && t.1 == "unsafe"));
        assert_eq!(k.iter().filter(|t| t.0 == TokKind::Str).count(), 2);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let (toks, comments) = lex("// SAFETY: disjoint ranges\nlet x = 1; // trailing\n");
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 1);
        assert!(comments[0].text.starts_with("SAFETY:"));
        assert_eq!(comments[1].line, 2);
        assert!(toks.iter().any(|t| t.text == "x"));
    }

    #[test]
    fn nested_block_comment() {
        let (toks, comments) = lex("/* outer /* inner */ still */ fn f() {}");
        assert_eq!(comments.len(), 1);
        assert!(toks.iter().any(|t| t.text == "fn"));
    }

    #[test]
    fn numbers_and_ranges() {
        let k = kinds("for i in 0..n { let x = 1.0e-3_f64; }");
        assert!(k.contains(&(TokKind::Number, "0".into())));
        assert!(k.contains(&(TokKind::Punct, "..".into())));
        assert!(k.contains(&(TokKind::Number, "1.0e-3_f64".into())));
    }

    #[test]
    fn spans_are_one_based() {
        let (toks, _) = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
