//! Workspace model: files, functions, call sites, and the name-resolved
//! call graph the interprocedural rules traverse.
//!
//! Resolution is purely name-based (the analyzer has no type system):
//! a call `x.foo(..)` is an edge to *every* workspace function named
//! `foo`. That over-approximates — which is the right direction for a
//! checker whose findings are reviewed — except for ubiquitous names
//! (`new`, `len`, `push`, ...) where an edge to every `new` in the
//! workspace would connect everything to everything; those names are
//! never resolved (see [`crate::config::CALL_NAME_STOPLIST`]).

use std::collections::{HashMap, HashSet};
use std::path::Path;

use crate::config;
use crate::items::{scan_file, FileAnalysis};
use crate::lexer::{TokKind, Token};

/// Index of a function: (file index, fn index within the file).
pub type FnId = (usize, usize);

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name: last path segment (`cmt_gs::setup` -> `setup`,
    /// `handle.gs_op_start` -> `gs_op_start`), or macro name for
    /// `name!(..)` invocations (flagged by `is_macro`).
    pub name: String,
    /// `Type::name` qualifier when the call is written with a path
    /// (`Vec::new`, `BufferPool::take`); `None` for method calls.
    pub receiver_type: Option<String>,
    /// Turbofish type arguments, identifiers only (`send::<Foo>` ->
    /// `["Foo"]`), outermost level.
    pub turbofish: Vec<String>,
    pub is_macro: bool,
    /// Whether this is a `.name(..)` method call.
    pub is_method: bool,
    /// Token index of the callee name.
    pub tok: usize,
    pub line: u32,
    pub col: u32,
}

/// The analyzed workspace.
pub struct Workspace {
    pub files: Vec<FileAnalysis>,
    /// Call sites per function, indexed like the function list.
    pub calls: HashMap<FnId, Vec<CallSite>>,
    /// Functions by bare name.
    pub fn_by_name: HashMap<String, Vec<FnId>>,
    /// Type names with an `impl WireCodec for T` anywhere in the tree.
    pub wirecodec_types: HashSet<String>,
}

impl Workspace {
    /// Build the model from `(path, source)` pairs.
    pub fn build(sources: Vec<(std::path::PathBuf, String)>) -> Workspace {
        let files: Vec<FileAnalysis> = sources
            .into_iter()
            .map(|(p, src)| scan_file(p, &src))
            .collect();
        let mut fn_by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut calls = HashMap::new();
        let mut wirecodec_types = HashSet::new();
        for (fi, fa) in files.iter().enumerate() {
            for im in &fa.impls {
                if im.trait_name.as_deref() == Some("WireCodec") {
                    wirecodec_types.insert(im.type_name.clone());
                }
            }
            for (gi, f) in fa.fns.iter().enumerate() {
                fn_by_name.entry(f.name.clone()).or_default().push((fi, gi));
                if let Some((open, close)) = f.body {
                    calls.insert((fi, gi), extract_calls(&fa.toks, open, close));
                }
            }
        }
        Workspace {
            files,
            calls,
            fn_by_name,
            wirecodec_types,
        }
    }

    pub fn fn_item(&self, id: FnId) -> &crate::items::FnItem {
        &self.files[id.0].fns[id.1]
    }

    pub fn path(&self, id: FnId) -> &Path {
        &self.files[id.0].path
    }

    /// Human-readable function label: `Type::name` or `name`.
    pub fn fn_label(&self, id: FnId) -> String {
        let f = self.fn_item(id);
        match &f.impl_type {
            Some(t) => format!("{}::{}", t, f.name),
            None => f.name.clone(),
        }
    }

    /// Call-graph successors of `id`, name-resolved against the
    /// workspace, skipping stoplisted names.
    pub fn callees(&self, id: FnId) -> Vec<FnId> {
        let mut out = Vec::new();
        let Some(sites) = self.calls.get(&id) else {
            return out;
        };
        for c in sites {
            if c.is_macro || config::CALL_NAME_STOPLIST.contains(&c.name.as_str()) {
                continue;
            }
            if let Some(ids) = self.fn_by_name.get(&c.name) {
                out.extend(ids.iter().copied());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Extract call sites from a body token range (exclusive of the braces).
pub fn extract_calls(toks: &[Token], open: usize, close: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Keywords never name calls; `if x(..)` must not read `if` as
        // a callee, and `match (..)` must not look like a call.
        if config::KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        let name = t.text.clone();
        let is_method = i > open + 1 && toks[i - 1].text == ".";
        let receiver_type = if !is_method && i >= 2 && toks[i - 1].text == "::" {
            // `Seg::name` — record the qualifying segment.
            (toks[i - 2].kind == TokKind::Ident).then(|| toks[i - 2].text.clone())
        } else {
            None
        };
        // Look past an optional turbofish `::<..>` for the call paren.
        let mut j = i + 1;
        let mut turbofish = Vec::new();
        if j + 1 < close && toks[j].text == "::" && toks[j + 1].text == "<" {
            let mut depth = 0i64;
            let mut k = j + 1;
            while k < close {
                match toks[k].text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {
                        if depth == 1 && toks[k].kind == TokKind::Ident {
                            turbofish.push(toks[k].text.clone());
                        }
                    }
                }
                k += 1;
            }
            j = k + 1;
        }
        if j < close && toks[j].text == "!" {
            // Macro invocation `name!(..)` / `name![..]` / `name!{..}`.
            out.push(CallSite {
                name,
                receiver_type: None,
                turbofish: Vec::new(),
                is_macro: true,
                is_method: false,
                tok: i,
                line: t.line,
                col: t.col,
            });
            i += 1;
            continue;
        }
        if j < close && toks[j].text == "(" {
            out.push(CallSite {
                name,
                receiver_type,
                turbofish,
                is_macro: false,
                is_method,
                tok: i,
                line: t.line,
                col: t.col,
            });
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws(src: &str) -> Workspace {
        Workspace::build(vec![(PathBuf::from("a.rs"), src.to_string())])
    }

    #[test]
    fn extracts_method_path_macro_and_turbofish_calls() {
        let w = ws("fn f(rank: &mut Rank) {\n\
               let v = Vec::with_capacity(4);\n\
               rank.send::<f64>(1, TAG, &v);\n\
               let s = format!(\"{}\", 1);\n\
               helper(s);\n\
             }\n\
             fn helper(_s: String) {}\n");
        let calls = &w.calls[&(0, 0)];
        let wc = calls.iter().find(|c| c.name == "with_capacity").unwrap();
        assert_eq!(wc.receiver_type.as_deref(), Some("Vec"));
        let send = calls.iter().find(|c| c.name == "send").unwrap();
        assert!(send.is_method);
        assert_eq!(send.turbofish, vec!["f64".to_string()]);
        assert!(calls.iter().any(|c| c.name == "format" && c.is_macro));
        assert!(calls.iter().any(|c| c.name == "helper" && !c.is_method));
    }

    #[test]
    fn call_graph_resolves_by_name() {
        let w = ws("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n");
        let a = w.fn_by_name["a"][0];
        let b = w.fn_by_name["b"][0];
        let c = w.fn_by_name["c"][0];
        assert_eq!(w.callees(a), vec![b]);
        assert_eq!(w.callees(b), vec![c]);
    }

    #[test]
    fn stoplisted_names_do_not_resolve() {
        let w = ws("fn a(v: &mut Vec<u8>) { v.push(1); }\nfn push(_v: u8) {}\n");
        let a = w.fn_by_name["a"][0];
        assert!(w.callees(a).is_empty());
    }

    #[test]
    fn wirecodec_impls_collected() {
        let w = ws("impl WireCodec for RankOutput { }\nimpl simmpi::WireCodec for Other { }\n");
        assert!(w.wirecodec_types.contains("RankOutput"));
        assert!(w.wirecodec_types.contains("Other"));
    }

    #[test]
    fn keyword_before_paren_is_not_a_call() {
        let w = ws("fn a(x: bool) { if x { } match x { _ => {} } while x { } }");
        assert!(w.calls[&(0, 0)].is_empty());
    }
}
