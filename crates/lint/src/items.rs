//! Structural scan of one lexed file.
//!
//! No AST: the scanner walks the token stream with a brace-matching
//! cursor and extracts exactly what the rule engine needs — function
//! items with body token ranges, `impl` headers (for the `WireCodec`
//! coverage map), `unsafe` sites, and `#[cfg(test)] mod` regions (unit
//! tests are excluded from analysis; rules target product code).

use std::path::PathBuf;

use crate::lexer::{lex, Comment, TokKind, Token};

/// Everything the rules need from one source file.
pub struct FileAnalysis {
    pub path: PathBuf,
    pub toks: Vec<Token>,
    pub comments: Vec<Comment>,
    pub fns: Vec<FnItem>,
    pub impls: Vec<ImplItem>,
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// One `fn` item (free or associated).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Self type name when the fn lives in an `impl` block.
    pub impl_type: Option<String>,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    pub col: u32,
    /// Inclusive token-index range of the body braces `{ .. }`;
    /// `None` for trait method declarations without a default body.
    pub body: Option<(usize, usize)>,
    pub is_unsafe: bool,
}

/// One `impl` header: `impl Trait for Type` or `impl Type`.
#[derive(Debug, Clone)]
pub struct ImplItem {
    pub trait_name: Option<String>,
    pub type_name: String,
    pub line: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { .. }` block inside a function body.
    Block,
    /// `unsafe fn` definition.
    Fn,
    /// `unsafe impl Trait for Type` (e.g. `Send`/`Sync` assertions).
    Impl,
}

/// One occurrence of the `unsafe` keyword in product code.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub kind: UnsafeKind,
    pub line: u32,
    pub col: u32,
    /// Name of the enclosing function, when inside one.
    pub in_fn: Option<String>,
}

/// Scan a source string into a [`FileAnalysis`].
pub fn scan_file(path: PathBuf, src: &str) -> FileAnalysis {
    let (toks, comments) = lex(src);
    let mut fns = Vec::new();
    let mut impls = Vec::new();
    let mut unsafe_sites = Vec::new();

    let test_ranges = find_test_mod_ranges(&toks);
    let in_test = |i: usize| test_ranges.iter().any(|&(a, b)| i >= a && i <= b);

    // Impl contexts as (type_name, closing-brace token index).
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    // Function bodies as (name, closing-brace token index) for
    // attributing unsafe blocks to their enclosing fn.
    let mut fn_stack: Vec<(String, usize)> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        while let Some(&(_, close)) = impl_stack.last() {
            if i > close {
                impl_stack.pop();
            } else {
                break;
            }
        }
        while let Some(&(_, close)) = fn_stack.last() {
            if i > close {
                fn_stack.pop();
            } else {
                break;
            }
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" if !in_test(i) => {
                if let Some((item, body)) = parse_impl_header(&toks, i) {
                    if let Some((open, close)) = body {
                        impl_stack.push((item.type_name.clone(), close));
                        impls.push(item);
                        i = open + 1;
                        continue;
                    }
                    impls.push(item);
                }
                i += 1;
            }
            "fn" => {
                // Skip fn-pointer types: `fn(usize) -> u64`.
                let name = match toks.get(i + 1) {
                    Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let is_unsafe = i > 0 && toks[i - 1].text == "unsafe";
                let body = find_fn_body(&toks, i + 2);
                if !in_test(i) {
                    fns.push(FnItem {
                        name: name.clone(),
                        impl_type: impl_stack.last().map(|(t, _)| t.clone()),
                        line: t.line,
                        col: t.col,
                        body,
                        is_unsafe,
                    });
                }
                if let Some((open, close)) = body {
                    fn_stack.push((name, close));
                    i = open + 1;
                    continue;
                }
                i += 1;
            }
            "unsafe" if !in_test(i) => {
                let kind = match toks.get(i + 1).map(|n| n.text.as_str()) {
                    Some("{") => Some(UnsafeKind::Block),
                    Some("fn") => Some(UnsafeKind::Fn),
                    Some("impl") | Some("trait") | Some("extern") => Some(UnsafeKind::Impl),
                    _ => None,
                };
                if let Some(kind) = kind {
                    unsafe_sites.push(UnsafeSite {
                        kind,
                        line: t.line,
                        col: t.col,
                        in_fn: fn_stack.last().map(|(n, _)| n.clone()),
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }

    FileAnalysis {
        path,
        toks,
        comments,
        fns,
        impls,
        unsafe_sites,
    }
}

/// Token index of the `}` matching the `{` at `open`.
pub fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    debug_assert_eq!(toks[open].text, "{");
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// From just after `fn name`, find the body braces: the first `{` at
/// paren/bracket depth 0, unless a `;` (no-body declaration) comes
/// first.
fn find_fn_body(toks: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    for (j, t) in toks.iter().enumerate().skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            ";" if paren == 0 && bracket == 0 => return None,
            "{" if paren == 0 && bracket == 0 => {
                return matching_brace(toks, j).map(|close| (j, close));
            }
            _ => {}
        }
    }
    None
}

/// Parse `impl<G> Trait for Type { .. }` / `impl Type { .. }` starting
/// at the `impl` token. Returns the header and the body brace range.
fn parse_impl_header(toks: &[Token], at: usize) -> Option<(ImplItem, Option<(usize, usize)>)> {
    let line = toks[at].line;
    let mut j = at + 1;
    // Skip generic parameters `<...>` by angle counting; lifetimes and
    // nested generics are fine, comparison operators cannot appear in
    // an impl header.
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        let mut depth = 0i64;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Collect header tokens until the body `{` (or `;`), splitting on
    // a top-level `for`.
    let mut before_for: Vec<&Token> = Vec::new();
    let mut after_for: Vec<&Token> = Vec::new();
    let mut saw_for = false;
    let mut depth = 0i64;
    let mut open = None;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "{" if depth <= 0 => {
                open = Some(j);
                break;
            }
            ";" if depth <= 0 => break,
            "for" if depth <= 0 && t.kind == TokKind::Ident => {
                saw_for = true;
                j += 1;
                continue;
            }
            "where" if depth <= 0 && t.kind == TokKind::Ident => {
                // `where` clause: scan ahead to the body brace.
                j += 1;
                continue;
            }
            _ => {}
        }
        if saw_for {
            after_for.push(t);
        } else {
            before_for.push(t);
        }
        j += 1;
    }
    let last_ident = |v: &[&Token]| {
        v.iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .next_back()
    };
    // The *first* path-segment ident of the trait is its name in our
    // model for `simmpi::WireCodec`-style paths... except the name is
    // the last segment; generics were already stripped above only at
    // the front. Take the last ident before any `<` in the segment.
    let head_name = |v: &[&Token]| -> Option<String> {
        let mut depth = 0i64;
        let mut name = None;
        for t in v {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                _ => {
                    if depth == 0 && t.kind == TokKind::Ident {
                        name = Some(t.text.clone());
                    }
                }
            }
        }
        name.or_else(|| last_ident(v))
    };
    let item = if saw_for {
        ImplItem {
            trait_name: head_name(&before_for),
            type_name: head_name(&after_for)?,
            line,
        }
    } else {
        ImplItem {
            trait_name: None,
            type_name: head_name(&before_for)?,
            line,
        }
    };
    let body = open.and_then(|o| matching_brace(toks, o).map(|c| (o, c)));
    Some((item, body))
}

/// Token-index ranges of `#[cfg(test)] mod .. { .. }` bodies.
fn find_test_mod_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the following item; accept further attributes, then a
        // `mod name { .. }` region.
        let mut j = i + 7;
        while j < toks.len() && toks[j].text == "#" {
            // Skip `#[...]`.
            if toks.get(j + 1).map(|t| t.text.as_str()) == Some("[") {
                let mut depth = 0i64;
                let mut k = j + 1;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                j = k + 1;
            } else {
                break;
            }
        }
        if toks.get(j).map(|t| t.text.as_str()) == Some("mod") {
            // `mod name {` or `mod name;`.
            let mut k = j + 1;
            while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                k += 1;
            }
            if k < toks.len() && toks[k].text == "{" {
                if let Some(close) = matching_brace(toks, k) {
                    out.push((i, close));
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> FileAnalysis {
        scan_file(PathBuf::from("test.rs"), src)
    }

    #[test]
    fn finds_free_and_assoc_fns() {
        let fa = scan(
            "pub fn free(a: usize) -> usize { a }\n\
             impl Foo { fn method(&self) {} }\n\
             impl Codec for Bar { fn encode(&self) {} }\n",
        );
        let names: Vec<_> = fa
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("method", Some("Foo")),
                ("encode", Some("Bar"))
            ]
        );
        assert_eq!(fa.impls.len(), 2);
        assert_eq!(fa.impls[1].trait_name.as_deref(), Some("Codec"));
        assert_eq!(fa.impls[1].type_name, "Bar");
    }

    #[test]
    fn impl_with_path_and_generics() {
        let fa = scan("impl<T: Clone> simmpi::WireCodec for RankOutput<T> { }\n");
        assert_eq!(fa.impls[0].trait_name.as_deref(), Some("WireCodec"));
        assert_eq!(fa.impls[0].type_name, "RankOutput");
    }

    #[test]
    fn unsafe_sites_classified_and_attributed() {
        let fa = scan(
            "unsafe impl Send for JobPtr {}\n\
             pub unsafe fn range_mut() {}\n\
             fn caller() { let x = unsafe { get() }; }\n",
        );
        let kinds: Vec<_> = fa.unsafe_sites.iter().map(|u| u.kind).collect();
        assert_eq!(
            kinds,
            vec![UnsafeKind::Impl, UnsafeKind::Fn, UnsafeKind::Block]
        );
        assert_eq!(fa.unsafe_sites[2].in_fn.as_deref(), Some("caller"));
        assert!(fa.fns.iter().any(|f| f.name == "range_mut" && f.is_unsafe));
    }

    #[test]
    fn cfg_test_mods_are_excluded() {
        let fa = scan(
            "fn real() {}\n\
             #[cfg(test)]\nmod tests {\n  fn helper() { unsafe { x() } }\n  #[test]\n  fn t() {}\n}\n",
        );
        assert_eq!(fa.fns.len(), 1);
        assert_eq!(fa.fns[0].name, "real");
        assert!(fa.unsafe_sites.is_empty());
    }

    #[test]
    fn trait_decl_without_body() {
        let fa = scan("trait T { fn sig(&self) -> usize; fn with_default(&self) {} }");
        let sig = fa.fns.iter().find(|f| f.name == "sig").unwrap();
        assert!(sig.body.is_none());
        let d = fa.fns.iter().find(|f| f.name == "with_default").unwrap();
        assert!(d.body.is_some());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let fa = scan("fn real(cb: fn(usize) -> u64) {}");
        assert_eq!(fa.fns.len(), 1);
    }
}
