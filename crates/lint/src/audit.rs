//! `cmt-lint --audit` — a `cargo-deny`-style dependency and license
//! audit, self-contained because the workspace is (by policy)
//! dependency-free: every crate is a path member, every crate inherits
//! the workspace license. The audit proves both properties from the
//! manifests, so a registry dependency or an unlicensed crate can't
//! slip in unnoticed.
//!
//! Findings use `CMT-A###` codes (distinct from the `CMT-L###` source
//! rules); CI runs this step non-blocking.

use std::fmt;
use std::path::{Path, PathBuf};

/// One audit finding.
#[derive(Debug, Clone)]
pub struct AuditFinding {
    pub code: &'static str,
    pub manifest: PathBuf,
    pub message: String,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit[{}]: {}\n  --> {}",
            self.code,
            self.message,
            self.manifest.display()
        )
    }
}

/// Audit every manifest under `root` (the workspace root and each
/// `crates/*` member).
pub fn audit_workspace(root: &Path) -> std::io::Result<Vec<AuditFinding>> {
    let mut manifests = vec![root.join("Cargo.toml")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let m = e.path().join("Cargo.toml");
            if m.is_file() {
                manifests.push(m);
            }
        }
    }
    manifests.sort();
    let mut out = Vec::new();
    for m in manifests {
        let text = std::fs::read_to_string(&m)?;
        audit_manifest(&m, &text, &mut out);
    }
    Ok(out)
}

/// Line-level TOML scan: sections + `key = value`. Good for exactly the
/// shapes our manifests use; anything fancier would need a TOML parser
/// this zero-dependency crate deliberately doesn't have.
fn audit_manifest(path: &Path, text: &str, out: &mut Vec<AuditFinding>) {
    let mut section = String::new();
    let mut has_license = false;
    let mut is_workspace_manifest = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            if section == "workspace" {
                is_workspace_manifest = true;
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if (section == "package" || section == "workspace.package")
            && (key == "license" || key == "license-file" || key == "license.workspace")
        {
            has_license = true;
        }
        if section == "package" && key == "license" && value == "\"\"" {
            has_license = false;
        }
        let in_dep_section = section == "dependencies"
            || section == "dev-dependencies"
            || section == "build-dependencies"
            || section == "workspace.dependencies"
            || section.ends_with(".dependencies");
        if in_dep_section && external_dep(value) {
            out.push(AuditFinding {
                code: "CMT-A001",
                manifest: path.to_path_buf(),
                message: format!(
                    "external (registry) dependency `{key} = {value}`: the workspace is \
                     dependency-free by policy; vendor or reimplement instead"
                ),
            });
        }
    }
    if !has_license && !is_workspace_manifest {
        out.push(AuditFinding {
            code: "CMT-A002",
            manifest: path.to_path_buf(),
            message: "no license declared (expected `license.workspace = true` or an explicit \
                      `license = ...`)"
                .to_string(),
        });
    }
}

/// Is a dependency value an external (registry/git) requirement?
/// Path/workspace deps are internal; bare version strings and tables
/// with `version`/`git` are external.
fn external_dep(value: &str) -> bool {
    if value.starts_with('"') {
        return true; // `foo = "1.0"`
    }
    if value.starts_with('{') {
        let has_internal = value.contains("path") || value.contains("workspace");
        let has_external = value.contains("version") || value.contains("git");
        return has_external || !has_internal;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str) -> Vec<AuditFinding> {
        let mut out = Vec::new();
        audit_manifest(Path::new("Cargo.toml"), text, &mut out);
        out
    }

    #[test]
    fn path_and_workspace_deps_are_clean() {
        let f = run("[package]\nname = \"x\"\nlicense.workspace = true\n\
             [dependencies]\nsimmpi = { path = \"../simmpi\" }\ncmt-core.workspace = true\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn registry_dep_is_flagged() {
        let f = run("[package]\nname = \"x\"\nlicense = \"MIT\"\n\
             [dependencies]\nserde = \"1.0\"\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "CMT-A001");
        assert!(f[0].message.contains("serde"));
    }

    #[test]
    fn git_dep_is_flagged() {
        let f = run("[package]\nname = \"x\"\nlicense = \"MIT\"\n\
             [dependencies]\nsyn = { git = \"https://example.com/syn\" }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn missing_license_is_flagged() {
        let f = run("[package]\nname = \"x\"\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "CMT-A002");
    }

    #[test]
    fn workspace_root_manifest_skips_license_check() {
        let f = run("[workspace]\nmembers = [\"crates/*\"]\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cmt_lint_dotted_license_key_counts() {
        // `license.workspace = true` parses as key `license.workspace`.
        let f = run("[package]\nname = \"x\"\nlicense.workspace = true\n");
        assert!(f.is_empty(), "{f:?}");
    }
}
