//! CMT-L003 bad fixture: allocation constructs directly inside a
//! zero-alloc steady-state root.

fn gs_op_finish(rank: &mut Rank, halo: &mut Halo) {
    let staged = halo.inbox.clone();
    let label = format!("finish-{}", rank.rank());
    scatter_back(halo, staged, label);
}
