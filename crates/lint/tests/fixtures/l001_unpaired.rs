//! CMT-L001 bad fixture: the pending handle is bound but the function
//! contains no `gs_op_finish` and no drain — the exchange is silently
//! abandoned on every path.

fn advance_fields(h: &GsHandle, rank: &mut Rank, fields: &mut Vec<f64>) {
    let pending = h.gs_op_start(rank, &[&fields[..]], GsOp::Add, ExchangeMethod::PairwiseNbr);
    overlap_compute(fields);
}
