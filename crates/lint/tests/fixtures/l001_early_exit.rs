//! CMT-L001 bad fixture: the happy path pairs up, but an early `return`
//! and a `?` both abandon the in-flight exchange on their exit path.

fn advance_with_halt(h: &GsHandle, rank: &mut Rank, halt: bool) {
    let pending = h.gs_op_start(rank, &[&u[..]], GsOp::Add, ExchangeMethod::CrystalRouter);
    if halt {
        return;
    }
    h.gs_op_finish(rank, pending, &mut [&mut u[..]]);
}

fn advance_fallible(h: &GsHandle, rank: &mut Rank) -> Result<(), StepError> {
    let pending = h.gs_op_start(rank, &[&u[..]], GsOp::Mul, ExchangeMethod::PairwiseNbr);
    check_budget(rank)?;
    h.gs_op_finish(rank, pending, &mut [&mut u[..]]);
    Ok(())
}
