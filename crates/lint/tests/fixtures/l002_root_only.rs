//! CMT-L002 bad fixture: only rank 0 executes the gather — every other
//! rank never enters the collective and the job deadlocks.

fn report(rank: &mut Rank, rows: Vec<u64>) {
    if rank.rank() == 0 {
        let all = rank.gather(0, rows);
        print_rows(all);
    }
}
