//! CMT-L005 bad fixture: `unsafe` outside the audited file allowlist is
//! rejected even when the site carries a justification comment.

fn reinterpret(x: u64) -> f64 {
    // SAFETY: same size, promise.
    unsafe { std::mem::transmute(x) }
}
