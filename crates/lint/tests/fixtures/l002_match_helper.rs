//! CMT-L002 bad fixture: the barrier hides two calls deep behind
//! helpers, and only the rank-0 arm of the match reaches it — the
//! interprocedural skeleton still sees through.

fn drain_queue(rank: &mut Rank) {
    sync_epoch(rank);
}

fn sync_epoch(rank: &mut Rank) {
    rank.barrier();
}

fn collect_stats(rank: &mut Rank) {
    match rank.rank() {
        0 => drain_queue(rank),
        _ => log_skip(),
    }
}
