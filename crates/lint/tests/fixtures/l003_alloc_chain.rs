//! CMT-L003 bad fixture: the allocation hides one call deep — the rule
//! walks the call graph from the root and reports the concrete chain.

fn deriv(u: &[f64], du: &mut [f64]) {
    stage_unpack(u, du);
}

fn stage_unpack(u: &[f64], du: &mut [f64]) {
    let scratch = u.to_vec();
    copy_out(scratch, du);
}
