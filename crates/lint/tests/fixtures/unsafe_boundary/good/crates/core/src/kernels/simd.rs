//! CMT-L005 clean fixture: a simd dispatch site naming the runtime
//! feature-detection invariant that discharges the intrinsic call.

fn deriv_r_dispatch(n: usize, nel: usize, d: &[f64], u: &[f64], out: &mut [f64]) {
    match active_isa() {
        // SAFETY: this arm is reached only after `active_isa()` observed
        // avx2 via `is_x86_feature_detected!`, so the `#[target_feature]`
        // contract of `avx2::deriv_r` holds on this machine.
        SimdIsa::Avx2 => unsafe { avx2::deriv_r(n, nel, d, u, out) },
        _ => opt::deriv_r(n, nel, d, u, out),
    }
}
