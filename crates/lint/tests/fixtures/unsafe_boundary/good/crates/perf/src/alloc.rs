//! CMT-L005 clean fixture: an audited file whose sites name their
//! invariants.

fn bump(counter: &Cell<u64>, layout: Layout) {
    // SAFETY: the pointer comes from the live allocation above and is
    // only read within this call.
    let v = unsafe { *probe(layout) };
    counter.set(counter.get() + v);
}

/// Reads one counter word.
///
/// # Safety
/// The caller must pass a layout that is currently live.
unsafe fn probe(layout: Layout) -> *const u64 {
    layout.as_ptr()
}
