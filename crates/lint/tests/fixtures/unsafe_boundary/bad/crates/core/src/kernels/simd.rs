//! CMT-L005 bad fixture: a simd dispatch site inside the audited
//! kernels boundary whose intrinsic call names no invariant.

fn deriv_r_dispatch(n: usize, nel: usize, d: &[f64], u: &[f64], out: &mut [f64]) {
    match active_isa() {
        SimdIsa::Avx2 => unsafe { avx2::deriv_r(n, nel, d, u, out) },
        _ => opt::deriv_r(n, nel, d, u, out),
    }
}
