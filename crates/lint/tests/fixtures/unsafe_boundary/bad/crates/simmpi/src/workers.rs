//! CMT-L005 bad fixture: inside the audited boundary (the path suffix
//! matches the allowlist) but the site has no safety justification.

fn write_chunk(shared: &SharedSliceMut<f64>, lo: usize, hi: usize) {
    let dst = unsafe { shared.range_mut(lo, hi) };
    fill(dst);
}
