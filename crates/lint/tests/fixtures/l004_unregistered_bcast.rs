//! CMT-L004 bad fixture: broadcast of an unregistered compound row type.

fn share_diag(rank: &mut Rank, rows: Vec<DiagRow>) {
    let all = rank.bcast::<DiagRow>(0, rows);
    consume(all);
}
