//! CMT-L001 clean fixture: a paired start/finish, an explicit drain,
//! and a polling-loop `break` inside the overlap window.

fn advance(h: &GsHandle, rank: &mut Rank) {
    let pending = h.gs_op_start(rank, &[&u[..]], GsOp::Add, ExchangeMethod::PairwiseNbr);
    overlap_compute();
    h.gs_op_finish(rank, pending, &mut [&mut u[..]]);
}

fn abort_exchange(h: &GsHandle, rank: &mut Rank) {
    let pending = h.gs_op_start(rank, &[&u[..]], GsOp::Add, ExchangeMethod::PairwiseNbr);
    drop(pending);
}

fn poll_window(h: &GsHandle, rank: &mut Rank) {
    let pending = h.gs_op_start(rank, &[&u[..]], GsOp::Add, ExchangeMethod::PairwiseNbr);
    loop {
        if rank.iprobe(0, TAG) {
            break;
        }
        compute_chunk();
    }
    h.gs_op_finish(rank, pending, &mut [&mut u[..]]);
}
