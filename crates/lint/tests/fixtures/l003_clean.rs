//! CMT-L003 clean fixture: the root stages through the pool barrier,
//! and the allocating setup function is not reachable from any root.

fn gs_op_start(rank: &mut Rank, plan: &Plan) {
    let staging = rank.pool().take();
    pack_faces(plan, staging);
}

fn build_plan(topo: &Topology) -> Plan {
    let faces = topo.faces().to_vec();
    Plan { faces }
}
