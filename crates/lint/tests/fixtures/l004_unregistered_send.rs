//! CMT-L004 bad fixture: a struct payload crosses the transport with no
//! wire registration and no WireCodec impl — compiles, runs on inproc,
//! panics on the socket backend.

fn ship_particles(rank: &mut Rank, recs: &[ParticleRecord]) {
    rank.isend::<ParticleRecord>(1, PART_TAG, recs);
}
