//! CMT-L004 clean fixture: registered primitives pass, and a compound
//! type covered by a workspace WireCodec impl passes.

impl WireCodec for CheckpointBlob {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.bytes);
    }
}

fn exchange(rank: &mut Rank, xs: &[f64], blob: &CheckpointBlob) {
    rank.isend::<f64>(1, FIELD_TAG, xs);
    let counts = rank.recv::<u64>(0, COUNT_TAG);
    rank.bcast::<CheckpointBlob>(0, vec![blob.clone()]);
}
