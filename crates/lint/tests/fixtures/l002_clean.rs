//! CMT-L002 clean fixture: every branch of the rank-dependent `if`
//! executes the same collective skeleton, and the rank-independent
//! branch is out of the rule's scope.

fn share_seed(rank: &mut Rank, seed: u64) {
    if rank.rank() == 0 {
        rank.bcast(0, vec![seed]);
    } else {
        rank.bcast(0, Vec::new());
    }
}

fn maybe_sync(rank: &mut Rank, verbose: bool) {
    if verbose {
        rank.barrier();
    }
}
