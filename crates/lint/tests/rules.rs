//! Fixture-corpus integration tests: every rule family gets known-bad
//! snippets asserted down to exact codes and line numbers, and a
//! known-clean snippet asserted finding-free. The fixtures live under
//! `tests/fixtures/` (a subdirectory, so cargo never compiles them) and
//! are analyzed through the same [`cmt_lint::analyze`] entry point the
//! CLI uses.

use std::path::{Path, PathBuf};

use cmt_lint::diag::{Diagnostic, Filter};

fn fixture(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel)
}

fn analyze_fixture(rel: &str) -> Vec<Diagnostic> {
    cmt_lint::analyze(&[fixture(rel)], &Filter::default()).expect("fixture analysis failed")
}

/// `(code, line)` pairs, sorted, for exact-span assertions.
fn spans(diags: &[Diagnostic]) -> Vec<(&'static str, u32)> {
    let mut v: Vec<(&'static str, u32)> = diags.iter().map(|d| (d.code, d.line)).collect();
    v.sort();
    v
}

// --------------------------------------------------------------- L001

#[test]
fn l001_unpaired_start_is_flagged_at_the_start_call() {
    let d = analyze_fixture("l001_unpaired.rs");
    assert_eq!(spans(&d), [("CMT-L001", 6)], "{d:#?}");
    assert!(d[0].message.contains("never finished"), "{}", d[0].message);
}

#[test]
fn l001_early_exits_are_flagged_at_the_exit_tokens() {
    let d = analyze_fixture("l001_early_exit.rs");
    // The `return` on line 7 and the `?` on line 14.
    assert_eq!(spans(&d), [("CMT-L001", 7), ("CMT-L001", 14)], "{d:#?}");
    for diag in &d {
        assert!(diag.message.contains("early exit"), "{}", diag.message);
    }
}

#[test]
fn l001_paired_drained_and_polling_forms_are_clean() {
    let d = analyze_fixture("l001_clean.rs");
    assert!(d.is_empty(), "{d:#?}");
}

// --------------------------------------------------------------- L002

#[test]
fn l002_root_only_collective_is_flagged_at_the_branch() {
    let d = analyze_fixture("l002_root_only.rs");
    assert_eq!(spans(&d), [("CMT-L002", 5)], "{d:#?}");
    let note = d[0].note.as_deref().unwrap_or("");
    assert!(note.contains("gather"), "{note}");
}

#[test]
fn l002_collective_behind_helpers_is_flagged_at_the_match() {
    let d = analyze_fixture("l002_match_helper.rs");
    assert_eq!(spans(&d), [("CMT-L002", 14)], "{d:#?}");
    let note = d[0].note.as_deref().unwrap_or("");
    assert!(note.contains("drain_queue"), "{note}");
}

#[test]
fn l002_symmetric_skeletons_are_clean() {
    let d = analyze_fixture("l002_clean.rs");
    assert!(d.is_empty(), "{d:#?}");
}

// --------------------------------------------------------------- L003

#[test]
fn l003_allocs_in_a_root_are_flagged_per_construct() {
    let d = analyze_fixture("l003_hot_clone.rs");
    assert_eq!(spans(&d), [("CMT-L003", 5), ("CMT-L003", 6)], "{d:#?}");
    let messages: Vec<&str> = d.iter().map(|d| d.message.as_str()).collect();
    assert!(
        messages.iter().any(|m| m.contains(".clone()")),
        "{messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("format!")),
        "{messages:?}"
    );
}

#[test]
fn l003_alloc_behind_a_helper_reports_the_call_chain() {
    let d = analyze_fixture("l003_alloc_chain.rs");
    assert_eq!(spans(&d), [("CMT-L003", 9)], "{d:#?}");
    let note = d[0].note.as_deref().unwrap_or("");
    assert!(note.contains("deriv -> stage_unpack"), "{note}");
}

#[test]
fn l003_pooled_root_and_unreachable_setup_are_clean() {
    let d = analyze_fixture("l003_clean.rs");
    assert!(d.is_empty(), "{d:#?}");
}

// --------------------------------------------------------------- L004

#[test]
fn l004_unregistered_send_payload_is_flagged() {
    let d = analyze_fixture("l004_unregistered_send.rs");
    assert_eq!(spans(&d), [("CMT-L004", 6)], "{d:#?}");
    assert!(d[0].message.contains("ParticleRecord"), "{}", d[0].message);
}

#[test]
fn l004_unregistered_bcast_payload_is_flagged() {
    let d = analyze_fixture("l004_unregistered_bcast.rs");
    assert_eq!(spans(&d), [("CMT-L004", 4)], "{d:#?}");
    assert!(d[0].message.contains("DiagRow"), "{}", d[0].message);
}

#[test]
fn l004_primitives_and_wirecodec_types_are_clean() {
    let d = analyze_fixture("l004_clean.rs");
    assert!(d.is_empty(), "{d:#?}");
}

// --------------------------------------------------------------- L005

#[test]
fn l005_unsafe_outside_the_boundary_is_flagged_despite_comment() {
    let d = analyze_fixture("l005_outside_boundary.rs");
    assert_eq!(spans(&d), [("CMT-L005", 6)], "{d:#?}");
    assert!(
        d[0].message.contains("outside the audited boundary"),
        "{}",
        d[0].message
    );
}

#[test]
fn l005_uncommented_site_in_audited_file_is_flagged() {
    let d = analyze_fixture("unsafe_boundary/bad/crates/simmpi/src/workers.rs");
    assert_eq!(spans(&d), [("CMT-L005", 5)], "{d:#?}");
    assert!(d[0].message.contains("SAFETY"), "{}", d[0].message);
}

#[test]
fn l005_commented_sites_in_audited_file_are_clean() {
    let d = analyze_fixture("unsafe_boundary/good/crates/perf/src/alloc.rs");
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn l005_unannotated_simd_intrinsic_dispatch_is_flagged() {
    let d = analyze_fixture("unsafe_boundary/bad/crates/core/src/kernels/simd.rs");
    assert_eq!(spans(&d), [("CMT-L005", 6)], "{d:#?}");
    assert!(d[0].message.contains("SAFETY"), "{}", d[0].message);
}

#[test]
fn l005_feature_detection_justified_simd_dispatch_is_clean() {
    let d = analyze_fixture("unsafe_boundary/good/crates/core/src/kernels/simd.rs");
    assert!(d.is_empty(), "{d:#?}");
}

// ---------------------------------------------------- corpus sweeps

const BAD_FIXTURES: &[&str] = &[
    "l001_unpaired.rs",
    "l001_early_exit.rs",
    "l002_root_only.rs",
    "l002_match_helper.rs",
    "l003_hot_clone.rs",
    "l003_alloc_chain.rs",
    "l004_unregistered_send.rs",
    "l004_unregistered_bcast.rs",
    "l005_outside_boundary.rs",
    "unsafe_boundary/bad/crates/simmpi/src/workers.rs",
    "unsafe_boundary/bad/crates/core/src/kernels/simd.rs",
];

const CLEAN_FIXTURES: &[&str] = &[
    "l001_clean.rs",
    "l002_clean.rs",
    "l003_clean.rs",
    "l004_clean.rs",
    "unsafe_boundary/good/crates/perf/src/alloc.rs",
    "unsafe_boundary/good/crates/core/src/kernels/simd.rs",
];

#[test]
fn every_bad_fixture_yields_findings_only_for_its_own_family() {
    for rel in BAD_FIXTURES {
        let family = if rel.contains("unsafe_boundary") {
            "CMT-L005".to_string()
        } else {
            format!("CMT-{}", rel[..4].to_uppercase())
        };
        let d = analyze_fixture(rel);
        assert!(!d.is_empty(), "{rel}: expected findings, got none");
        for diag in &d {
            assert_eq!(diag.code, family, "{rel}: cross-family finding {diag}");
        }
    }
}

#[test]
fn every_clean_fixture_is_finding_free() {
    for rel in CLEAN_FIXTURES {
        let d = analyze_fixture(rel);
        assert!(d.is_empty(), "{rel}: {d:#?}");
    }
}

// --------------------------------------------------------- CLI layer

#[test]
fn cli_exits_nonzero_on_bad_fixtures_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_cmt-lint");
    let bad = std::process::Command::new(bin)
        .arg(fixture("l003_hot_clone.rs"))
        .output()
        .expect("spawn cmt-lint");
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("CMT-L003"), "{stdout}");

    let clean = std::process::Command::new(bin)
        .arg(fixture("l001_clean.rs"))
        .output()
        .expect("spawn cmt-lint");
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");
}

#[test]
fn cli_allow_flag_suppresses_a_family_and_deny_reasserts_it() {
    let bin = env!("CARGO_BIN_EXE_cmt-lint");
    let allowed = std::process::Command::new(bin)
        .args(["--allow", "CMT-L003"])
        .arg(fixture("l003_hot_clone.rs"))
        .output()
        .expect("spawn cmt-lint");
    assert_eq!(allowed.status.code(), Some(0), "{allowed:?}");

    let denied = std::process::Command::new(bin)
        .args(["--allow", "CMT-L003", "--deny", "CMT-L003"])
        .arg(fixture("l003_hot_clone.rs"))
        .output()
        .expect("spawn cmt-lint");
    assert_eq!(denied.status.code(), Some(1), "{denied:?}");
}
