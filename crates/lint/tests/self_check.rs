//! Self-check: the shipped workspace must be finding-free. This is the
//! test-suite twin of the CI `cmt-lint --workspace` gate — any source
//! change that starts an exchange without finishing it, skews a
//! collective skeleton, allocates on a hot path, ships an unregistered
//! payload type, or grows the unsafe boundary fails here first.

use std::path::Path;

use cmt_lint::diag::Filter;

#[test]
fn shipped_workspace_is_finding_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let roots = cmt_lint::workspace_source_roots(root);
    assert!(
        roots.len() > 10,
        "expected every crate's src tree, got {roots:#?}"
    );
    let diags = cmt_lint::analyze(&roots, &Filter::default()).expect("workspace analysis failed");
    assert!(
        diags.is_empty(),
        "the shipped workspace must be cmt-lint clean; fix the finding or add a justified \
         in-source allow:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
