//! Nekbone command-line driver.
//!
//! ```text
//! nekbone [--ranks P] [--elems NEL] [--n N] [--iters K] [--tol T]
//!         [--method pairwise|crystal|allreduce] [--quiet]
//! ```

use cmt_core::KernelVariant;
use cmt_gs::GsMethod;
use nekbone::{run, Config};
use simmpi::{FaultPlan, SocketConfig, TransportKind};

fn usage() -> ! {
    eprintln!(
        "usage: nekbone [--ranks P] [--elems NEL_PER_RANK] [--n N] [--iters K]\n\
         \x20              [--tol T] [--variant basic|opt|spec|batched|unroll|simd|auto]\n\
         \x20              [--workers W]\n\
         \x20              [--method pairwise|crystal|allreduce] [--quiet]\n\
         \x20              [--checkpoint-every K] [--checkpoint-dir PATH]\n\
         \x20              [--restart PATH] [--fault-plan SPEC]\n\
         \x20              [--verify] [--chaos-sched SEED] [--no-pool]\n\
         \x20              [--transport inproc|socket] [--transport-addr ADDR]\n\
         \n\
         --transport socket runs every rank as a child process over\n\
         Unix-domain sockets (rank 0's process is the launcher/hub);\n\
         --transport-addr overrides the endpoint, e.g. unix:/tmp/w.sock\n\
         or tcp:127.0.0.1:0. Results are bitwise identical to inproc.\n\
         fault plan SPEC: semicolon-separated events, e.g.\n\
         \x20 'delay:prob=0.1,us=200;drop:prob=0.05;kill:rank=2,step=5;seed=7'\n\
         --workers shares each rank's ax element loop across a work-stealing\n\
         pool of W threads (1 = pure MPI); results are bitwise identical.\n\
         --verify runs the cmt-verify dynamic checker (deadlock, collective\n\
         matching, message leaks, races); exit status 1 on findings.\n\
         --chaos-sched overlays seeded message delays to perturb the schedule.\n\
         --no-pool disables message-buffer recycling (allocate per message).\n\
         --variant auto autotunes the ax derivative kernel at startup (variant\n\
         x chunk grain, averaged across ranks); --variant simd dispatches to\n\
         the widest vector unit present (avx2/sse2, scalar fallback) with\n\
         bitwise-identical results."
    );
    std::process::exit(2);
}

fn parse_usize(v: Option<String>) -> usize {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

fn main() {
    let mut cfg = Config::default();
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ranks" => cfg.ranks = parse_usize(args.next()),
            "--elems" => cfg.elems_per_rank = parse_usize(args.next()),
            "--n" => cfg.n = parse_usize(args.next()),
            "--iters" => cfg.cg_iters = parse_usize(args.next()),
            "--tol" => {
                cfg.tol = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--variant" => match args.next().as_deref() {
                Some("basic") => cfg.variant = KernelVariant::Basic,
                Some("opt") => cfg.variant = KernelVariant::Optimized,
                Some("spec") => cfg.variant = KernelVariant::Specialized,
                Some("batched") => cfg.variant = KernelVariant::Batched,
                Some("unroll") => cfg.variant = KernelVariant::UnrollJam,
                Some("simd") => cfg.variant = KernelVariant::Simd,
                Some("auto") => cfg.kernel_autotune = true,
                _ => usage(),
            },
            "--workers" => cfg.workers = parse_usize(args.next()),
            "--method" => {
                cfg.method = match args.next().as_deref() {
                    Some("pairwise") => Some(GsMethod::PairwiseExchange),
                    Some("crystal") => Some(GsMethod::CrystalRouter),
                    Some("allreduce") => Some(GsMethod::AllReduce),
                    _ => usage(),
                }
            }
            "--checkpoint-every" => cfg.checkpoint_every = parse_usize(args.next()),
            "--checkpoint-dir" => {
                cfg.checkpoint_dir = Some(args.next().unwrap_or_else(|| usage()).into())
            }
            "--restart" => cfg.restart_from = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--fault-plan" => {
                let spec = args.next().unwrap_or_else(|| usage());
                cfg.fault_plan = match FaultPlan::parse(&spec) {
                    Ok(plan) => Some(plan),
                    Err(e) => {
                        eprintln!("bad fault plan: {e}");
                        usage()
                    }
                }
            }
            "--verify" => cfg.verify = true,
            "--no-pool" => cfg.pool = false,
            "--transport" => match args.next().as_deref() {
                Some("inproc") => cfg.transport = TransportKind::Inproc,
                Some("socket") => {
                    if !matches!(cfg.transport, TransportKind::Socket(_)) {
                        cfg.transport = TransportKind::Socket(SocketConfig::default());
                    }
                }
                _ => usage(),
            },
            "--transport-addr" => {
                let addr = Some(args.next().unwrap_or_else(|| usage()));
                match &mut cfg.transport {
                    TransportKind::Socket(c) => c.addr = addr,
                    _ => {
                        cfg.transport = TransportKind::Socket(SocketConfig {
                            addr,
                            ..Default::default()
                        })
                    }
                }
            }
            "--chaos-sched" => {
                cfg.chaos_sched = args.next().and_then(|s| s.parse().ok()).or_else(|| usage())
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }
    let report = run(&cfg);
    if quiet {
        println!(
            "iters {}  residual {:.3e}  checksum {:.12e}  state {:016x}  method {}",
            report.cg.iterations,
            report.cg.final_residual(),
            report.checksum,
            report.state_hash,
            report.chosen_method.name()
        );
        if let Some(findings) = &report.verify {
            print!("{}", cmt_verify::render_findings(findings));
        }
    } else {
        println!("{}", report.render());
    }
    if report.verify.as_ref().is_some_and(|f| !f.is_empty()) {
        std::process::exit(1);
    }
}
