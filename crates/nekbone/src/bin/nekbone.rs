//! Nekbone command-line driver.
//!
//! ```text
//! nekbone [--ranks P] [--elems NEL] [--n N] [--iters K] [--tol T]
//!         [--method pairwise|crystal|allreduce] [--quiet]
//! ```

use cmt_core::KernelVariant;
use cmt_gs::GsMethod;
use nekbone::{run, Config};

fn usage() -> ! {
    eprintln!(
        "usage: nekbone [--ranks P] [--elems NEL_PER_RANK] [--n N] [--iters K]\n\
         \x20              [--tol T] [--variant basic|opt|spec]\n\
         \x20              [--method pairwise|crystal|allreduce] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_usize(v: Option<String>) -> usize {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

fn main() {
    let mut cfg = Config::default();
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ranks" => cfg.ranks = parse_usize(args.next()),
            "--elems" => cfg.elems_per_rank = parse_usize(args.next()),
            "--n" => cfg.n = parse_usize(args.next()),
            "--iters" => cfg.cg_iters = parse_usize(args.next()),
            "--tol" => {
                cfg.tol = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--variant" => {
                cfg.variant = match args.next().as_deref() {
                    Some("basic") => KernelVariant::Basic,
                    Some("opt") => KernelVariant::Optimized,
                    Some("spec") => KernelVariant::Specialized,
                    _ => usage(),
                }
            }
            "--method" => {
                cfg.method = match args.next().as_deref() {
                    Some("pairwise") => Some(GsMethod::PairwiseExchange),
                    Some("crystal") => Some(GsMethod::CrystalRouter),
                    Some("allreduce") => Some(GsMethod::AllReduce),
                    _ => usage(),
                }
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    let report = run(&cfg);
    if quiet {
        println!(
            "iters {}  residual {:.3e}  checksum {:.12e}  method {}",
            report.cg.iterations,
            report.cg.final_residual(),
            report.checksum,
            report.chosen_method.name()
        );
    } else {
        println!("{}", report.render());
    }
}
