//! The `ax` kernel: element-local stiffness + mass operator.
//!
//! For the Poisson/Helmholtz bilinear form on uniform cubic elements of
//! edge `h`, the element operator in tensor-product GLL collocation form
//! is
//!
//! ```text
//! A_e u = (h/2) * sum_a D_a^T diag(W) D_a u  +  lambda * (h/2)^3 diag(W) u
//! ```
//!
//! where `W_ijk = w_i w_j w_k` is the tensor quadrature weight and `D_a`
//! differentiates direction `a` (`(2/h)^2` from the two chain rules and
//! `(h/2)^3` from the Jacobian combine into the single `h/2` factor on
//! the stiffness term). With `lambda > 0` the assembled operator is
//! symmetric positive definite, so unpreconditioned CG converges — the
//! same formulation the Fortran Nekbone uses (it runs a fixed-iteration
//! CG on `A = K + 0.1 M`).
//!
//! The kernel is deliberately built from the *same* derivative kernels as
//! CMT-bone ([`cmt_core::kernels`]): per element it performs six `O(N^4)`
//! contractions (forward `D` and adjoint `D^T` per direction), which is
//! what makes Nekbone the natural computational sibling of CMT-bone's
//! flux-divergence kernel.

use cmt_core::kernels::{deriv, DerivDir};
use cmt_core::poly::Basis;
use cmt_core::{Field, KernelVariant};
use simmpi::{chunk_count, chunk_range, SharedSliceMut, WorkerPool};

/// Precomputed operator data shared by all `ax` applications.
#[derive(Debug, Clone)]
pub struct AxOperator {
    /// The reference-element basis.
    pub basis: Basis,
    /// Element edge length.
    pub h: f64,
    /// Mass-term coefficient `lambda` (0.1 in classic Nekbone).
    pub lambda: f64,
    /// Kernel implementation used for the contractions.
    pub variant: KernelVariant,
    /// Tensor quadrature weights `w_i w_j w_k`, length `n^3`.
    gw: Vec<f64>,
}

impl AxOperator {
    /// Build the operator for order-`n` elements of edge `h`.
    pub fn new(n: usize, h: f64, lambda: f64, variant: KernelVariant) -> Self {
        let basis = Basis::new(n);
        let w = &basis.weights;
        let mut gw = Vec::with_capacity(n * n * n);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    gw.push(w[i] * w[j] * w[k]);
                }
            }
        }
        AxOperator {
            basis,
            h,
            lambda,
            variant,
            gw,
        }
    }

    /// Element order.
    pub fn n(&self) -> usize {
        self.basis.n
    }

    /// Apply the *local* (unassembled) operator: `w = A_e u` per element.
    /// The caller completes assembly with a `dssum` over the continuous
    /// numbering.
    ///
    /// `t1` and `t2` are scratch fields of the same shape.
    pub fn apply(&self, u: &Field, w: &mut Field, t1: &mut Field, t2: &mut Field) {
        let n = u.n();
        let nel = u.nel();
        assert_eq!(n, self.basis.n, "order mismatch");
        assert_eq!((w.n(), w.nel()), (n, nel), "w shape");
        assert_eq!((t1.n(), t1.nel()), (n, nel), "t1 shape");
        assert_eq!((t2.n(), t2.nel()), (n, nel), "t2 shape");
        self.apply_slices(
            nel,
            u.as_slice(),
            w.as_mut_slice(),
            t1.as_mut_slice(),
            t2.as_mut_slice(),
        );
    }

    /// Slice form of [`AxOperator::apply`]: `nel` contiguous elements in
    /// `Field` layout. The unit the hybrid worker pool chunks over — the
    /// per-element arithmetic is identical for any chunking, so the
    /// result is bitwise independent of the chunk grain.
    pub fn apply_slices(
        &self,
        nel: usize,
        u: &[f64],
        w: &mut [f64],
        t1: &mut [f64],
        t2: &mut [f64],
    ) {
        let n = self.basis.n;
        let n3 = n * n * n;
        assert_eq!(u.len(), n3 * nel, "u length");
        assert_eq!(w.len(), n3 * nel, "w length");
        assert_eq!(t1.len(), n3 * nel, "t1 length");
        assert_eq!(t2.len(), n3 * nel, "t2 length");
        let stiff_coef = self.h / 2.0;
        let mass_coef = self.lambda * (self.h / 2.0).powi(3);
        // Fused accumulation: the first direction *assigns* `0.0 + t2`
        // (the explicit `0.0 +` keeps the zero-fill-then-add value
        // sequence bitwise — `-0.0` round-trips and LLVM may not fold
        // `0.0 + x`), removing the upfront `w.fill(0.0)` pass; the mass
        // term rides the last direction's accumulation loop as a second
        // add per point, the same per-point op sequence as a separate
        // trailing pass.
        let last = DerivDir::ALL.len() - 1;
        for (di, dir) in DerivDir::ALL.into_iter().enumerate() {
            // t1 = D_a u
            deriv(self.variant, dir, n, nel, &self.basis.d, u, t1);
            // t1 *= stiff_coef * W (per-element repeated weight pattern)
            for e in 0..nel {
                let block = &mut t1[e * n3..(e + 1) * n3];
                for (v, &g) in block.iter_mut().zip(&self.gw) {
                    *v *= stiff_coef * g;
                }
            }
            // t2 = D_a^T t1 (adjoint contraction: use the transposed matrix)
            deriv(self.variant, dir, n, nel, &self.basis.dt, t1, t2);
            if di == 0 {
                for (wv, &tv) in w.iter_mut().zip(t2.iter()) {
                    *wv = 0.0 + tv;
                }
            } else if di == last {
                // final direction + mass term:
                // w += t2; w += lambda (h/2)^3 W .* u
                for e in 0..nel {
                    let base = e * n3;
                    for (p, &g) in self.gw.iter().enumerate() {
                        w[base + p] += t2[base + p];
                        w[base + p] += mass_coef * g * u[base + p];
                    }
                }
            } else {
                for (wv, &tv) in w.iter_mut().zip(t2.iter()) {
                    *wv += tv;
                }
            }
        }
    }

    /// [`AxOperator::apply`] with the element loop shared across a
    /// [`WorkerPool`]: elements are split into contiguous chunks, each
    /// chunk applied to disjoint subslices of `w`/`t1`/`t2` by whichever
    /// worker claims (or steals) it. Outputs are written disjointly and
    /// never reduced across chunks, so the result is bitwise identical to
    /// the serial [`AxOperator::apply`] for every worker count.
    pub fn apply_pooled(
        &self,
        pool: &WorkerPool,
        u: &Field,
        w: &mut Field,
        t1: &mut Field,
        t2: &mut Field,
    ) {
        let n = u.n();
        let nel = u.nel();
        assert_eq!(n, self.basis.n, "order mismatch");
        assert_eq!((w.n(), w.nel()), (n, nel), "w shape");
        assert_eq!((t1.n(), t1.nel()), (n, nel), "t1 shape");
        assert_eq!((t2.n(), t2.nel()), (n, nel), "t2 shape");
        let n3 = n * n * n;
        // ~4 chunks per participant: enough slack for stealing without
        // drowning in scheduling overhead.
        let grain = nel.div_ceil(pool.workers() * 4).max(1);
        let n_chunks = chunk_count(nel, grain);
        let us = u.as_slice();
        let w_sh = SharedSliceMut::new(w.as_mut_slice());
        let t1_sh = SharedSliceMut::new(t1.as_mut_slice());
        let t2_sh = SharedSliceMut::new(t2.as_mut_slice());
        pool.run(n_chunks, &|c| {
            let (lo, hi) = chunk_range(nel, grain, c);
            let (a, b) = (lo * n3, hi * n3);
            // SAFETY: chunk ranges partition 0..nel, so every chunk
            // touches a disjoint [a, b) range of each shared buffer.
            let (wv, t1v, t2v) = unsafe {
                (
                    w_sh.range_mut(a, b),
                    t1_sh.range_mut(a, b),
                    t2_sh.range_mut(a, b),
                )
            };
            self.apply_slices(hi - lo, &us[a..b], wv, t1v, t2v);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_field(n: usize, nel: usize, seed: u64) -> Field {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        Field::from_fn(n, nel, |_, _, _, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn operator_is_symmetric() {
        // <A u, v> = <u, A v> with the plain (unweighted) dot product —
        // element-local symmetry of D^T W D + lambda W.
        let op = AxOperator::new(6, 1.0, 0.1, KernelVariant::Optimized);
        let u = pseudo_random_field(6, 2, 1);
        let v = pseudo_random_field(6, 2, 2);
        let mut au = Field::zeros(6, 2);
        let mut av = Field::zeros(6, 2);
        let mut t1 = Field::zeros(6, 2);
        let mut t2 = Field::zeros(6, 2);
        op.apply(&u, &mut au, &mut t1, &mut t2);
        op.apply(&v, &mut av, &mut t1, &mut t2);
        let a = au.dot(&v);
        let b = u.dot(&av);
        assert!((a - b).abs() < 1e-10 * (1.0 + a.abs()), "{a} vs {b}");
    }

    #[test]
    fn operator_is_positive_definite() {
        let op = AxOperator::new(5, 0.7, 0.1, KernelVariant::Specialized);
        for seed in 1..6 {
            let u = pseudo_random_field(5, 3, seed);
            let mut au = Field::zeros(5, 3);
            let mut t1 = Field::zeros(5, 3);
            let mut t2 = Field::zeros(5, 3);
            op.apply(&u, &mut au, &mut t1, &mut t2);
            let quad = u.dot(&au);
            assert!(quad > 0.0, "u^T A u = {quad} for seed {seed}");
        }
    }

    #[test]
    fn constant_field_hits_only_mass_term() {
        // Stiffness annihilates constants: A 1 = lambda (h/2)^3 W.
        let n = 5;
        let h = 2.0;
        let lambda = 0.1;
        let op = AxOperator::new(n, h, lambda, KernelVariant::Basic);
        let u = Field::from_fn(n, 1, |_, _, _, _| 1.0);
        let mut w = Field::zeros(n, 1);
        let mut t1 = Field::zeros(n, 1);
        let mut t2 = Field::zeros(n, 1);
        op.apply(&u, &mut w, &mut t1, &mut t2);
        let wts = &op.basis.weights;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let want = lambda * wts[i] * wts[j] * wts[k]; // (h/2)^3 = 1
                    let got = w.get(0, i, j, k);
                    assert!((got - want).abs() < 1e-11, "{got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn variants_agree() {
        let u = pseudo_random_field(7, 2, 9);
        let mut outs = Vec::new();
        for variant in KernelVariant::ALL {
            let op = AxOperator::new(7, 1.3, 0.1, variant);
            let mut w = Field::zeros(7, 2);
            let mut t1 = Field::zeros(7, 2);
            let mut t2 = Field::zeros(7, 2);
            op.apply(&u, &mut w, &mut t1, &mut t2);
            outs.push(w);
        }
        for w in &outs[1..] {
            for (a, b) in outs[0].as_slice().iter().zip(w.as_slice()) {
                assert!((a - b).abs() < 1e-11 * (1.0 + a.abs()));
            }
        }
    }

    #[test]
    fn pooled_apply_bitwise_matches_serial_for_all_worker_counts() {
        let n = 6;
        let nel = 13;
        let op = AxOperator::new(n, 1.3, 0.1, KernelVariant::Optimized);
        let u = pseudo_random_field(n, nel, 5);
        let mut w_ref = Field::zeros(n, nel);
        let mut t1 = Field::zeros(n, nel);
        let mut t2 = Field::zeros(n, nel);
        op.apply(&u, &mut w_ref, &mut t1, &mut t2);
        for workers in [1, 2, 4] {
            let pool = WorkerPool::new(workers, None);
            let mut w = Field::zeros(n, nel);
            op.apply_pooled(&pool, &u, &mut w, &mut t1, &mut t2);
            assert_eq!(
                w.as_slice(),
                w_ref.as_slice(),
                "pooled apply diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn quadratic_in_one_direction_matches_analytic_stiffness() {
        // u = r^2 on one element, h = 2 (reference element), lambda = 0:
        // (A u)_ijk = (D^T W D u)_ijk with D u = 2 r, so
        // A u = D^T (W .* 2r). Verify against a direct evaluation.
        let n = 6;
        let op = AxOperator::new(n, 2.0, 0.0, KernelVariant::Optimized);
        let x = op.basis.nodes.clone();
        let u = Field::from_fn(n, 1, |_, i, _, _| x[i] * x[i]);
        let mut w = Field::zeros(n, 1);
        let mut t1 = Field::zeros(n, 1);
        let mut t2 = Field::zeros(n, 1);
        op.apply(&u, &mut w, &mut t1, &mut t2);
        // direct: for each (j,k): v_i = sum_m D[m][i] * (w_m w_j w_k * 2 x_m)
        let d = &op.basis.d;
        let wt = &op.basis.weights;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let mut want = 0.0;
                    for m in 0..n {
                        want += d[m * n + i] * wt[m] * wt[j] * wt[k] * 2.0 * x[m];
                    }
                    let got = w.get(0, i, j, k);
                    assert!(
                        (got - want).abs() < 1e-10 * (1.0 + want.abs()),
                        "({i},{j},{k}): {got} vs {want}"
                    );
                }
            }
        }
    }
}
