//! Distributed conjugate gradients with direct-stiffness summation.
//!
//! Nekbone's solver loop: per iteration one `ax` application, one `dssum`
//! (gather-scatter `Add` over the continuous numbering), and two
//! multiplicity-weighted dot products completed by `MPI_Allreduce` — the
//! communication mix the paper's Fig. 7 Nekbone rows measure.
//!
//! Vectors are stored redundantly (each rank holds every value of its own
//! elements; shared interface points are replicated), the Nek convention:
//! a vector is *consistent* when replicated entries agree. `ax` produces
//! inconsistent partial sums, `dssum` restores consistency, and dot
//! products weight each entry by the reciprocal of its sharer count so
//! every mathematical degree of freedom counts once.
//!
//! The iteration's `dssum` runs split-phase: after `ax` the exchange is
//! *started*, the interior portion of the `<p, A p>` dot product — slots
//! whose values no `gs_op` can change, per
//! [`GsHandle::shared_slot_flags`] — accumulates while the face messages
//! are in flight, and only then does the exchange finish and the shared
//! portion complete the reduction.

use cmt_core::Field;
use cmt_gs::{GsHandle, GsMethod, GsOp};
use cmt_perf::Profiler;
use cmt_resilience::{Checkpoint, Resilience};
use simmpi::{Rank, ReduceOp};

use crate::ax::AxOperator;

/// Convergence/progress statistics of one CG solve.
#[derive(Debug, Clone)]
pub struct CgStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Global residual norm `sqrt(<r, r>)` after each iteration
    /// (index 0 = initial residual).
    pub res_history: Vec<f64>,
}

impl CgStats {
    /// Final residual norm.
    pub fn final_residual(&self) -> f64 {
        *self.res_history.last().expect("history never empty")
    }
}

/// Multiplicity-weighted global dot product `<a, b> = sum a_i b_i / mult_i`.
pub fn glsc3(rank: &mut Rank, a: &Field, b: &Field, inv_mult: &[f64]) -> f64 {
    let local: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .zip(inv_mult)
        .map(|((&x, &y), &m)| x * y * m)
        .sum();
    rank.set_context("glsc3");
    let out = rank.allreduce_scalar(local, ReduceOp::Sum);
    rank.set_context("main");
    out
}

/// Solve `A x = b` by CG, where the assembled operator is
/// `mask(dssum(A_local u))`. `b` must be consistent (and masked, for a
/// Dirichlet problem); `x` is used as the initial guess and holds the
/// solution on return.
///
/// `mask` implements homogeneous Dirichlet conditions the Nekbone way: a
/// 0/1 vector zeroing boundary degrees of freedom after every operator
/// application, restricting CG to the interior subspace. `None` solves
/// the unconstrained (periodic/Neumann-free) system.
///
/// `prof` may be shared with an outer driver; the solve opens regions
/// `ax_e`, `dssum`, and CG vector ops under whatever region is current.
#[allow(clippy::too_many_arguments)]
pub fn cg_solve(
    rank: &mut Rank,
    op: &AxOperator,
    handle: &GsHandle,
    method: GsMethod,
    inv_mult: &[f64],
    mask: Option<&[f64]>,
    b: &Field,
    x: &mut Field,
    tol: f64,
    max_iter: usize,
    prof: &mut Profiler,
) -> CgStats {
    let mut rez = Resilience::new(0, None);
    cg_solve_resilient(
        rank, op, handle, method, inv_mult, mask, b, x, tol, max_iter, prof, &mut rez, None,
    )
}

/// [`cg_solve`] with checkpoint/restart: a checkpoint of the iteration
/// state (`x`, `r`, `p`, `rz`, the residual history) is captured through
/// `rez` every `rez.every()` iterations, scheduled rank kills from the
/// world's fault plan trigger the coordinated rollback, and `restart`
/// resumes a previous run's solve from its on-disk checkpoint.
#[allow(clippy::too_many_arguments)]
pub fn cg_solve_resilient(
    rank: &mut Rank,
    op: &AxOperator,
    handle: &GsHandle,
    method: GsMethod,
    inv_mult: &[f64],
    mask: Option<&[f64]>,
    b: &Field,
    x: &mut Field,
    tol: f64,
    max_iter: usize,
    prof: &mut Profiler,
    rez: &mut Resilience,
    restart: Option<&Checkpoint>,
) -> CgStats {
    let (n, nel) = (b.n(), b.nel());
    assert_eq!((x.n(), x.nel()), (n, nel), "x shape");
    assert_eq!(inv_mult.len(), b.len(), "inv_mult length");
    if let Some(m) = mask {
        assert_eq!(m.len(), b.len(), "mask length");
    }
    let mut w = Field::zeros(n, nel);
    let mut t1 = Field::zeros(n, nel);
    let mut t2 = Field::zeros(n, nel);
    // Interior slots are untouched by dssum: their dot-product partial can
    // run inside the split-phase overlap window.
    let shared = handle.shared_slot_flags();

    // r = b - A x (skip the apply when x = 0, the usual Nekbone start)
    let mut r = b.clone();
    if x.as_slice().iter().any(|&v| v != 0.0) {
        apply_assembled(
            rank, op, handle, method, mask, x, &mut w, &mut t1, &mut t2, prof,
        );
        r.axpy(-1.0, &w);
    }
    if let Some(m) = mask {
        apply_mask(&mut r, m);
    }
    let mut p = r.clone();
    let mut rz = glsc3(rank, &r, &r, inv_mult);
    let mut history = vec![rz.max(0.0).sqrt()];
    let mut iters = 0;

    // Disk restart: overwrite the freshly built iteration state with the
    // checkpointed one and resume at its iteration index.
    if let Some(ckpt) = restart {
        restore_cg_state(
            rank,
            ckpt,
            x,
            &mut r,
            &mut p,
            &mut rz,
            &mut history,
            &mut iters,
        );
    }

    while iters < max_iter {
        // Checkpoint at the top of the iteration, before any kill
        // scheduled here fires, so a kill at iteration i rolls back to a
        // capture taken at (or before) i.
        if rez.checkpoint_due(iters as u64) {
            prof.enter(cmt_perf::regions::CHECKPOINT);
            rez.save(
                rank,
                &capture_cg_state(rank, iters, x, &r, &p, rz, &history),
            );
            prof.exit();
        }
        let killed = rez.killed_at(rank, iters as u64);
        if !killed.is_empty() {
            prof.enter(cmt_perf::regions::RECOVERY);
            let back = rez.recover(rank, &killed);
            restore_cg_state(
                rank,
                &back,
                x,
                &mut r,
                &mut p,
                &mut rz,
                &mut history,
                &mut iters,
            );
            prof.exit();
            continue;
        }
        if history.last().copied().unwrap_or(0.0) <= tol {
            break;
        }
        let pap = apply_assembled_dot(
            rank, op, handle, method, mask, inv_mult, &shared, &p, &mut w, &mut t1, &mut t2, prof,
        );
        assert!(
            pap > 0.0,
            "CG breakdown: p^T A p = {pap} (operator not SPD?)"
        );
        let alpha = rz / pap;
        // Fused triple pass: x += alpha p, r -= alpha w, and the local
        // <r, r> partial in one sweep. Each array's per-index update and
        // the ascending-index accumulation match the separate
        // axpy/axpy/glsc3 passes exactly, so the residual history stays
        // bitwise identical (the kill+rollback test pins this).
        let rz_new = {
            let xs = x.as_mut_slice();
            let rs = r.as_mut_slice();
            let ps = p.as_slice();
            let ws = w.as_slice();
            let mut local = 0.0;
            for i in 0..xs.len() {
                xs[i] += alpha * ps[i];
                rs[i] += -alpha * ws[i];
                local += rs[i] * rs[i] * inv_mult[i];
            }
            rank.set_context("glsc3");
            let out = rank.allreduce_scalar(local, ReduceOp::Sum);
            rank.set_context("main");
            out
        };
        let beta = rz_new / rz;
        rz = rz_new;
        // p = r + beta p
        p.axpby(1.0, &r, beta);
        history.push(rz.max(0.0).sqrt());
        iters += 1;
    }

    CgStats {
        iterations: iters,
        res_history: history,
    }
}

/// Capture the CG iteration state at the top of iteration `iters`:
/// fields `x`, `r`, `p`, and `rz` plus the residual history as scalars.
fn capture_cg_state(
    rank: &Rank,
    iters: usize,
    x: &Field,
    r: &Field,
    p: &Field,
    rz: f64,
    history: &[f64],
) -> Checkpoint {
    let mut scalars = Vec::with_capacity(1 + history.len());
    scalars.push(rz);
    scalars.extend_from_slice(history);
    Checkpoint {
        rank: rank.rank() as u64,
        step: iters as u64,
        stage: 0,
        time: 0.0,
        rng_state: rank.fault_rng_state().unwrap_or(0),
        scalars,
        fields: vec![
            x.as_slice().to_vec(),
            r.as_slice().to_vec(),
            p.as_slice().to_vec(),
        ],
    }
}

/// Restore the iteration state captured by [`capture_cg_state`].
#[allow(clippy::too_many_arguments)]
fn restore_cg_state(
    rank: &mut Rank,
    ckpt: &Checkpoint,
    x: &mut Field,
    r: &mut Field,
    p: &mut Field,
    rz: &mut f64,
    history: &mut Vec<f64>,
    iters: &mut usize,
) {
    assert_eq!(ckpt.fields.len(), 3, "CG checkpoint holds x, r, p");
    for (dst, src) in [&mut *x, r, p].into_iter().zip(&ckpt.fields) {
        assert_eq!(
            dst.as_slice().len(),
            src.len(),
            "CG checkpoint field size mismatch"
        );
        dst.as_mut_slice().copy_from_slice(src);
    }
    assert!(
        !ckpt.scalars.is_empty(),
        "CG checkpoint scalars hold rz + residual history"
    );
    *rz = ckpt.scalars[0];
    history.clear();
    history.extend_from_slice(&ckpt.scalars[1..]);
    *iters = ckpt.step as usize;
    rank.set_fault_rng_state(ckpt.rng_state);
}

/// The local `ax` body of an apply: element loop shared across the rank's
/// worker pool when one is configured (`--workers`), serial otherwise.
/// Worker-side heap counters (if any) are charged to the open `ax_e`
/// profiler region, keeping the per-region allocation attribution exact
/// under hybrid runs.
fn apply_ax(
    rank: &Rank,
    op: &AxOperator,
    u: &Field,
    w: &mut Field,
    t1: &mut Field,
    t2: &mut Field,
    prof: &mut Profiler,
) {
    match rank.worker_pool() {
        Some(pool) => {
            op.apply_pooled(&pool, u, w, t1, t2);
            let (allocs, bytes) = pool.drain_worker_allocs();
            prof.charge_allocs(allocs, bytes);
        }
        None => op.apply(u, w, t1, t2),
    }
}

/// Zero the masked (Dirichlet) degrees of freedom.
pub fn apply_mask(v: &mut Field, mask: &[f64]) {
    for (x, &m) in v.as_mut_slice().iter_mut().zip(mask) {
        *x *= m;
    }
}

/// One assembled operator application fused with the weighted dot product:
/// `w = mask(dssum(A_local u))`, returning the global `<u, w>`.
///
/// The split-phase schedule: `ax`, then `gs_op_start` posts the dssum
/// exchange, the interior partial of the dot product (slots no `gs_op`
/// can change) accumulates while the messages are in flight,
/// `gs_op_finish` lands the exchanged sums, and the shared partial plus
/// one `MPI_Allreduce` complete the product. Versus the blocking
/// apply-then-`glsc3` sequence, only the reduction's summation order
/// changes (interior before shared), so results agree to roundoff.
#[allow(clippy::too_many_arguments)]
fn apply_assembled_dot(
    rank: &mut Rank,
    op: &AxOperator,
    handle: &GsHandle,
    method: GsMethod,
    mask: Option<&[f64]>,
    inv_mult: &[f64],
    shared: &[bool],
    u: &Field,
    w: &mut Field,
    t1: &mut Field,
    t2: &mut Field,
    prof: &mut Profiler,
) -> f64 {
    prof.enter("ax_e (local stiffness+mass)");
    apply_ax(rank, op, u, w, t1, t2, prof);
    prof.exit();

    prof.enter("dssum (gs_op)");
    prof.enter("dssum_start (post exchange)");
    rank.set_context("dssum");
    let pending = handle.gs_op_start(rank, &[w.as_slice()], GsOp::Add, method);
    rank.set_context("main");
    prof.exit();
    prof.exit();

    // Overlap window: the interior partial of <u, w>. The mask multiplies
    // w *after* dssum, but interior slots keep their pre-exchange values,
    // so folding it in here is exact.
    prof.enter("glsc3_interior (overlap window)");
    let mut interior = 0.0;
    {
        let us = u.as_slice();
        let ws = w.as_slice();
        for (i, (&sh, &im)) in shared.iter().zip(inv_mult).enumerate() {
            if !sh {
                let mw = mask.map_or(1.0, |m| m[i]);
                interior += us[i] * ws[i] * im * mw;
            }
        }
    }
    prof.exit();

    prof.enter("dssum (gs_op)");
    prof.enter("dssum_finish (wait + combine)");
    rank.set_context("dssum");
    handle.gs_op_finish(rank, pending, &mut [w.as_mut_slice()]);
    rank.set_context("main");
    prof.exit();
    prof.exit();

    if let Some(m) = mask {
        apply_mask(w, m);
    }

    let mut shared_part = 0.0;
    {
        let us = u.as_slice();
        let ws = w.as_slice();
        for (i, (&sh, &im)) in shared.iter().zip(inv_mult).enumerate() {
            if sh {
                shared_part += us[i] * ws[i] * im;
            }
        }
    }
    rank.set_context("glsc3");
    let out = rank.allreduce_scalar(interior + shared_part, ReduceOp::Sum);
    rank.set_context("main");
    out
}

/// One assembled operator application: `w = mask(dssum(A_local u))`.
#[allow(clippy::too_many_arguments)]
fn apply_assembled(
    rank: &mut Rank,
    op: &AxOperator,
    handle: &GsHandle,
    method: GsMethod,
    mask: Option<&[f64]>,
    u: &Field,
    w: &mut Field,
    t1: &mut Field,
    t2: &mut Field,
    prof: &mut Profiler,
) {
    prof.enter("ax_e (local stiffness+mass)");
    apply_ax(rank, op, u, w, t1, t2, prof);
    prof.exit();
    prof.enter("dssum (gs_op)");
    rank.set_context("dssum");
    handle.gs_op(rank, w.as_mut_slice(), GsOp::Add, method);
    rank.set_context("main");
    prof.exit();
    if let Some(m) = mask {
        apply_mask(w, m);
    }
}
