//! # nekbone
//!
//! A Rust implementation of the Nekbone mini-app — the CESAR proxy for
//! Nek5000's spectral-element solver, and the comparison baseline of the
//! CMT-bone paper's Fig. 7.
//!
//! Nekbone solves a standard-Poisson-plus-mass (Helmholtz) system on the
//! spectral-element mesh with unpreconditioned conjugate gradients:
//!
//! * the **`ax` kernel** ([`ax`]) applies the element-local stiffness +
//!   mass operator — the same small-matrix-multiply workload as CMT-bone's
//!   derivative kernel, but six contractions per element (`D` forward and
//!   `D^T` back for each direction);
//! * **`dssum`** — direct-stiffness summation over the *continuous*
//!   (vertex-conforming) global numbering via the gather-scatter library:
//!   every face, edge and corner point (up to 8 sharers) participates, a
//!   denser exchange topology than CMT-bone's face-only DG exchange. This
//!   difference is exactly why the two mini-apps can legitimately choose
//!   different gather-scatter methods in Fig. 7, even on identical
//!   problem parameters;
//! * **dot products** — multiplicity-weighted local sums completed with
//!   `MPI_Allreduce` (the paper's "vector reductions").
//!
//! Entry points: [`Config`] + [`run`] for the instrumented proxy run
//! (autotune table, profile, comm statistics), [`cg::cg_solve`] for the
//! bare solver, and the `nekbone` binary.

#![warn(missing_docs)]

pub mod ax;
pub mod cg;
mod driver;

pub use driver::{run, Config, NekboneReport};
