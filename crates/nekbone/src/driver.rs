//! The Nekbone proxy driver: setup, autotune, instrumented CG run.

use std::path::PathBuf;
use std::time::Instant;

use cmt_core::kernels::autotune::{time_candidates, KernelAutotuneOptions, KernelAutotuneReport};
use cmt_core::{Field, KernelVariant};
use cmt_gs::{autotune, AutotuneOptions, AutotuneReport, GsHandle, GsMethod};
use cmt_mesh::{MeshConfig, RankMesh};
use cmt_perf::{MpipReport, ProfileReport, Profiler};
use cmt_resilience::{hash, load_checkpoint, Resilience};
use cmt_verify::Verifier;
use simmpi::{
    FaultPlan, NetworkModel, Rank, ReduceOp, TransportKind, WireCodec, WireError, WireReader, World,
};
use std::sync::Arc;

use crate::ax::AxOperator;
use crate::cg::{cg_solve_resilient, CgStats};

/// Nekbone run configuration (mirrors `cmt_bone::Config` where the two
/// mini-apps share parameters, so Fig. 7 can run both on identical
/// setups).
#[derive(Debug, Clone)]
pub struct Config {
    /// GLL points per direction per element.
    pub n: usize,
    /// Elements per rank.
    pub elems_per_rank: usize,
    /// Number of ranks.
    pub ranks: usize,
    /// CG iteration budget (Nekbone runs a fixed iteration count).
    pub cg_iters: usize,
    /// Convergence tolerance on the residual norm (set 0 to always run
    /// the full budget, classic-Nekbone style).
    pub tol: f64,
    /// Mass coefficient `lambda` of the Helmholtz operator.
    pub lambda: f64,
    /// Kernel implementation (ignored when `kernel_autotune` is set —
    /// the startup kernel autotune picks it instead).
    pub variant: KernelVariant,
    /// Autotune the `ax` derivative kernel at startup (`--variant
    /// auto`): time every variant × chunk-grain candidate on this run's
    /// `(N, elems)` shape, average across ranks, and run the winner —
    /// the same Fig. 7 protocol CMT-bone applies to compute.
    pub kernel_autotune: bool,
    /// Worker threads per rank for the hybrid MPI+X element loops (1 =
    /// pure MPI; >1 shares the `ax` element loop across a work-stealing
    /// pool while ranks stay the communication unit).
    pub workers: usize,
    /// Periodic domain (`true`, the co-design default) or homogeneous
    /// Dirichlet boundaries enforced through the Nekbone-style 0/1 mask.
    pub periodic: bool,
    /// Force a gather-scatter method; `None` = autotune.
    pub method: Option<GsMethod>,
    /// Autotune options.
    pub autotune: AutotuneOptions,
    /// Optional network model.
    pub net: Option<NetworkModel>,
    /// Checkpoint the CG iteration state every this many iterations
    /// (0 disables). Required non-zero when the fault plan kills ranks.
    pub checkpoint_every: usize,
    /// Mirror every checkpoint to this directory (enables cross-run
    /// `--restart`); `None` keeps checkpoints in memory only.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume the solve from the per-rank checkpoints in this directory.
    pub restart_from: Option<PathBuf>,
    /// Deterministic fault schedule injected into the world.
    pub fault_plan: Option<FaultPlan>,
    /// Run under the `cmt-verify` dynamic checker; findings land in
    /// [`NekboneReport::verify`].
    pub verify: bool,
    /// Seeded schedule perturbation: overlay random message delays to
    /// explore alternative interleavings (composes with `fault_plan`).
    pub chaos_sched: Option<u64>,
    /// Recycle message payload buffers through the per-rank
    /// [`simmpi::BufferPool`]; `false` (`--no-pool`) allocates per message.
    pub pool: bool,
    /// Communication backend: in-process mailboxes (default) or the
    /// multi-process socket transport (`--transport socket`). Results are
    /// bitwise identical between backends.
    pub transport: TransportKind,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: 10,
            elems_per_rank: 27,
            ranks: 8,
            cg_iters: 20,
            tol: 0.0,
            lambda: 0.1,
            variant: KernelVariant::Optimized,
            kernel_autotune: false,
            workers: 1,
            periodic: true,
            method: None,
            autotune: AutotuneOptions::default(),
            net: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
            restart_from: None,
            fault_plan: None,
            verify: false,
            chaos_sched: None,
            pool: true,
            transport: TransportKind::default(),
        }
    }
}

/// The measurement set of one Nekbone run.
#[derive(Debug)]
pub struct NekboneReport {
    /// Mesh/partition configuration.
    pub mesh: MeshConfig,
    /// Paper-style setup block.
    pub mesh_summary: String,
    /// Gather-scatter method used for `dssum`.
    pub chosen_method: GsMethod,
    /// Startup tuning table (the Fig. 7 Nekbone rows), if autotuned.
    pub autotune: Option<AutotuneReport>,
    /// The `ax`-kernel tuning table (`--variant auto`): variant ×
    /// chunk-grain timings averaged across ranks, when the kernel
    /// autotune ran.
    pub kernel_autotune: Option<KernelAutotuneReport>,
    /// The derivative-kernel variant that actually ran: the configured
    /// variant resolved for this `n`, or the autotune winner under
    /// `--variant auto`.
    pub kernel_variant: KernelVariant,
    /// The instruction set the simd kernel tier dispatched to
    /// (`avx2` / `sse2` / `scalar`); `-` when a non-simd variant ran.
    pub kernel_isa: &'static str,
    /// Region profile merged over ranks.
    pub profile: ProfileReport,
    /// Communication statistics.
    pub comm: MpipReport,
    /// CG convergence record (identical on every rank).
    pub cg: CgStats,
    /// Per-rank wall seconds.
    pub rank_wall_s: Vec<f64>,
    /// Deterministic solution checksum.
    pub checksum: f64,
    /// FNV-1a hash over every rank's final solution bytes, combined in
    /// rank order — the bitwise fingerprint the resilience tests compare.
    pub state_hash: u64,
    /// `cmt-verify` findings when the run was checked (`Config::verify`);
    /// `None` when verification was off, `Some(vec![])` for a clean run.
    pub verify: Option<Vec<cmt_verify::Finding>>,
}

impl NekboneReport {
    /// Render the paper-style report.
    pub fn render(&self) -> String {
        let mut out = String::from("Setup:\n");
        out.push_str(&self.mesh_summary);
        out.push_str(&format!(
            "\n\nCG iterations = {}  final residual = {:.3e}  checksum = {:.12e}\n",
            self.cg.iterations,
            self.cg.final_residual(),
            self.checksum
        ));
        out.push_str(&format!("state hash: {:016x}\n", self.state_hash));
        out.push_str(&format!(
            "chosen gs method: {}\n",
            self.chosen_method.name()
        ));
        out.push_str(&format!(
            "kernel variant: {} (effective isa: {})\n",
            self.kernel_variant.name(),
            self.kernel_isa
        ));
        if let Some(findings) = &self.verify {
            out.push_str(&cmt_verify::render_findings(findings));
        }
        if let Some(t) = &self.autotune {
            out.push_str("\nAutotune (Fig. 7):\n");
            out.push_str(
                "mini-app   | method             |      avg (s) |      min (s) |      max (s)\n",
            );
            out.push_str(&t.table("Nekbone"));
        }
        if let Some(t) = &self.kernel_autotune {
            out.push_str("\nKernel autotune (variant x grain, rank-averaged):\n");
            out.push_str(&t.table("Nekbone"));
        }
        out.push_str("\nExecution profile:\n");
        out.push_str(&self.profile.render_flat());
        out.push_str("\nTop MPI call sites:\n");
        out.push_str(&self.comm.render_top_sites(20));
        let net = self.comm.render_net_fit();
        if !net.is_empty() {
            out.push_str("\nMeasured network (socket transport):\n");
            out.push_str(&net);
        }
        out
    }
}

struct RankOutput {
    profiler: Profiler,
    autotune: Option<AutotuneReport>,
    kernel_autotune: Option<KernelAutotuneReport>,
    chosen: GsMethod,
    cg: CgStats,
    checksum: f64,
    state_hash: u64,
    wall_s: f64,
}

// `KernelVariant` and the kernel-autotune report live in `cmt-core`,
// which does not depend on `simmpi` — the orphan rule keeps us from
// implementing `WireCodec` for them there, so they are encoded
// field-by-field with local helpers (as the CMT-bone driver does).

fn encode_variant(v: KernelVariant, buf: &mut Vec<u8>) {
    let idx = KernelVariant::ALL
        .iter()
        .position(|&m| m == v)
        .expect("variant in ALL") as u8;
    idx.encode(buf);
}

fn decode_variant(r: &mut WireReader<'_>) -> Result<KernelVariant, WireError> {
    let idx = u8::decode(r)? as usize;
    KernelVariant::ALL
        .get(idx)
        .copied()
        .ok_or(WireError::Malformed("unknown kernel variant"))
}

fn encode_kernel_tune(t: &KernelAutotuneReport, buf: &mut Vec<u8>) {
    encode_variant(t.chosen.variant, buf);
    t.chosen.grain.encode(buf);
    encode_variant(t.effective, buf);
    t.timings.len().encode(buf);
    for timing in &t.timings {
        encode_variant(timing.candidate.variant, buf);
        timing.candidate.grain.encode(buf);
        timing.avg_s.encode(buf);
    }
}

fn decode_kernel_tune(r: &mut WireReader<'_>) -> Result<KernelAutotuneReport, WireError> {
    use cmt_core::kernels::autotune::{KernelCandidate, KernelTiming};
    let chosen = KernelCandidate {
        variant: decode_variant(r)?,
        grain: usize::decode(r)?,
    };
    let effective = decode_variant(r)?;
    let n = r.count(17)?;
    let mut timings = Vec::with_capacity(n);
    for _ in 0..n {
        timings.push(KernelTiming {
            candidate: KernelCandidate {
                variant: decode_variant(r)?,
                grain: usize::decode(r)?,
            },
            avg_s: f64::decode(r)?,
        });
    }
    Ok(KernelAutotuneReport {
        chosen,
        effective,
        timings,
    })
}

// Wire codecs so the socket transport can ship each rank's measurement
// set back to the launcher (the `Profiler`, `AutotuneReport` and
// `GsMethod` codecs live with their own crates).

impl WireCodec for CgStats {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.iterations.encode(buf);
        self.res_history.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CgStats {
            iterations: usize::decode(r)?,
            res_history: Vec::decode(r)?,
        })
    }
}

impl WireCodec for RankOutput {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.profiler.encode(buf);
        self.autotune.encode(buf);
        match &self.kernel_autotune {
            None => false.encode(buf),
            Some(t) => {
                true.encode(buf);
                encode_kernel_tune(t, buf);
            }
        }
        self.chosen.encode(buf);
        self.cg.encode(buf);
        self.checksum.encode(buf);
        self.state_hash.encode(buf);
        self.wall_s.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RankOutput {
            profiler: Profiler::decode(r)?,
            autotune: Option::decode(r)?,
            kernel_autotune: if bool::decode(r)? {
                Some(decode_kernel_tune(r)?)
            } else {
                None
            },
            chosen: GsMethod::decode(r)?,
            cg: CgStats::decode(r)?,
            checksum: f64::decode(r)?,
            state_hash: u64::decode(r)?,
            wall_s: f64::decode(r)?,
        })
    }
}

fn rank_main(rank: &mut Rank, cfg: &Config, mesh_cfg: &MeshConfig) -> RankOutput {
    let start = Instant::now();
    let mut prof = Profiler::new();

    prof.enter("setup (gs_setup + autotune)");
    let mesh = RankMesh::new(mesh_cfg.clone(), rank.rank());
    // Nekbone gathers over the continuous vertex-conforming numbering.
    let gids = mesh.volume_point_gids();
    // Dirichlet mask for non-periodic domains (1 interior, 0 boundary).
    let mask: Option<Vec<f64>> = (!cfg.periodic).then(|| {
        let n = cfg.n;
        let mut m = Vec::with_capacity(gids.len());
        for le in 0..mesh.nel() {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        m.push(if mesh.is_boundary_point(le, i, j, k) {
                            0.0
                        } else {
                            1.0
                        });
                    }
                }
            }
        }
        m
    });
    let handle = GsHandle::setup(rank, &gids);
    let (chosen, tune_report) = match cfg.method {
        Some(m) => (m, None),
        None => {
            let rep = autotune(rank, &handle, cfg.autotune);
            (rep.chosen, Some(rep))
        }
    };
    // inverse multiplicity weights for the redundant-storage dot products
    let inv_mult: Vec<f64> = handle
        .multiplicities(rank, chosen)
        .into_iter()
        .map(|m| 1.0 / m)
        .collect();
    // Kernel autotune (`--variant auto`): time every variant × chunk
    // grain on this rank's `(N, elems)` shape, average across ranks (the
    // gs-autotune protocol), and let every rank adopt the same winner
    // for the `ax` kernel.
    let kernel_tune = cfg.kernel_autotune.then(|| {
        let basis = cmt_core::poly::Basis::new(cfg.n);
        let (cands, local) = time_candidates(
            cfg.n,
            mesh.nel(),
            &basis.d,
            KernelAutotuneOptions::default(),
        );
        rank.set_context("kernel_autotune");
        let avg: Vec<f64> = local
            .iter()
            .map(|&t| rank.allreduce_scalar(t, ReduceOp::Sum) / rank.size() as f64)
            .collect();
        rank.set_context("main");
        KernelAutotuneReport::from_avg_times(cfg.n, cands, avg)
    });
    prof.exit();

    let n = cfg.n;
    let nel = mesh.nel();
    let variant = kernel_tune
        .as_ref()
        .map(|t| t.effective)
        .unwrap_or(cfg.variant);
    let op = AxOperator::new(n, 1.0, cfg.lambda, variant);

    // Consistent right-hand side: a smooth function of the global point
    // id (identical for every replica of a shared point), mass-weighted
    // implicitly through its smoothness — any consistent b is a valid
    // Nekbone load.
    let mut b = Field::zeros(n, nel);
    {
        let bs = b.as_mut_slice();
        for (v, &gid) in bs.iter_mut().zip(&gids) {
            let t = gid as f64 * 1e-4;
            *v = (t.sin() + 0.5 * (2.7 * t).cos()) * 1e-2;
        }
        if let Some(m) = &mask {
            for (v, &mm) in bs.iter_mut().zip(m) {
                *v *= mm;
            }
        }
    }
    let mut x = Field::zeros(n, nel);

    // Resilience: cadence + vault, and the previous run's checkpoint when
    // restarting from disk.
    let mut rez = Resilience::new(cfg.checkpoint_every as u64, cfg.checkpoint_dir.clone());
    let restart = cfg.restart_from.as_ref().map(|dir| {
        load_checkpoint(dir, rank.rank())
            .unwrap_or_else(|e| panic!("rank {}: restart: {e}", rank.rank()))
    });

    prof.enter("cg_loop");
    let cg = cg_solve_resilient(
        rank,
        &op,
        &handle,
        chosen,
        &inv_mult,
        mask.as_deref(),
        &b,
        &mut x,
        cfg.tol,
        cfg.cg_iters,
        &mut prof,
        &mut rez,
        restart.as_ref(),
    );
    prof.exit();

    let local_sum: f64 = x
        .as_slice()
        .iter()
        .zip(&inv_mult)
        .map(|(&v, &m)| v * m)
        .sum();
    rank.set_context("checksum");
    let checksum = rank.allreduce_scalar(local_sum, simmpi::ReduceOp::Sum);
    rank.set_context("main");

    // Finalize-time verification sweep, timed as its own region (see the
    // CMT-bone driver for rationale).
    if rank.verifying() {
        prof.enter(cmt_perf::regions::VERIFY);
        rank.verify_finalize();
        prof.exit();
    }

    let state_hash = {
        let mut h = hash::FNV_OFFSET;
        hash::fnv1a_f64s(&mut h, x.as_slice());
        h
    };

    RankOutput {
        profiler: prof,
        autotune: tune_report,
        kernel_autotune: kernel_tune,
        chosen,
        cg,
        checksum,
        state_hash,
        wall_s: start.elapsed().as_secs_f64(),
    }
}

impl Config {
    /// Validate parameter sanity; returns a description of the first
    /// problem found. The CLI-reachable failure modes (zero elements or
    /// ranks, `n` outside the paper's supported range, zero workers, a
    /// kill plan without checkpointing) all land here with a message
    /// instead of panicking deep inside a kernel.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 2 {
            return Err(format!("n must be >= 2, got {}", self.n));
        }
        if self.n > 25 {
            return Err(format!(
                "n must be <= 25 (the paper's range), got {}",
                self.n
            ));
        }
        if self.ranks == 0 {
            return Err("ranks must be positive".into());
        }
        if self.elems_per_rank == 0 {
            return Err("elems_per_rank must be positive".into());
        }
        if self.workers == 0 {
            return Err("workers must be positive (1 = pure MPI)".into());
        }
        if !(self.lambda > 0.0) {
            return Err(format!(
                "lambda must be positive for an SPD operator, got {}",
                self.lambda
            ));
        }
        if let Some(dir) = &self.restart_from {
            if !dir.is_dir() {
                return Err(format!(
                    "restart directory {} does not exist",
                    dir.display()
                ));
            }
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate(self.ranks)?;
            if !plan.kills.is_empty() && self.checkpoint_every == 0 {
                return Err("fault plan schedules rank kills but checkpointing is off \
                     (set checkpoint_every)"
                    .into());
            }
        }
        Ok(())
    }
}

/// Execute the Nekbone proxy and collect its measurement set.
pub fn run(cfg: &Config) -> NekboneReport {
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid Nekbone configuration: {e}"));
    let mesh_cfg = MeshConfig::for_ranks(cfg.ranks, cfg.elems_per_rank, cfg.n, cfg.periodic);
    let mut world = match cfg.net {
        Some(net) => World::with_network(net),
        None => World::new(),
    };
    world = world
        .with_pooling(cfg.pool)
        .with_workers(cfg.workers)
        .with_worker_alloc_counters(cmt_perf::alloc::thread_counts);
    if let Some(plan) = &cfg.fault_plan {
        world = world.with_fault_plan(plan.clone());
    }
    if let Some(seed) = cfg.chaos_sched {
        world = world.with_chaos_sched(seed);
    }
    let verifier = cfg.verify.then(|| Arc::new(Verifier::new()));
    if let Some(v) = &verifier {
        world = world.with_verifier(v.clone());
    }
    world = world.with_transport(cfg.transport.clone());
    let result = world.run_dist(cfg.ranks, |rank| rank_main(rank, cfg, &mesh_cfg));

    let mut merged = Profiler::new();
    let mut autotune_rep = None;
    let mut kernel_autotune_rep: Option<KernelAutotuneReport> = None;
    let mut chosen = None;
    let mut cg = None;
    let mut checksum = f64::NAN;
    let mut state_hash = hash::FNV_OFFSET;
    let mut wall = Vec::new();
    for out in result.results {
        merged.merge(&out.profiler);
        if out.autotune.is_some() && autotune_rep.is_none() {
            autotune_rep = out.autotune;
        }
        if out.kernel_autotune.is_some() && kernel_autotune_rep.is_none() {
            kernel_autotune_rep = out.kernel_autotune;
        }
        chosen.get_or_insert(out.chosen);
        cg.get_or_insert(out.cg);
        checksum = out.checksum;
        hash::fnv1a(&mut state_hash, &out.state_hash.to_le_bytes());
        wall.push(out.wall_s);
    }
    let kernel_variant = kernel_autotune_rep
        .as_ref()
        .map(|t| t.effective)
        .unwrap_or_else(|| cfg.variant.resolve(cfg.n));
    let kernel_isa = if kernel_variant == KernelVariant::Simd {
        cmt_core::kernels::simd::active_isa().name()
    } else {
        "-"
    };
    NekboneReport {
        mesh_summary: mesh_cfg.summary(),
        mesh: mesh_cfg,
        chosen_method: chosen.expect("ranks > 0"),
        autotune: autotune_rep,
        kernel_autotune: kernel_autotune_rep,
        kernel_variant,
        kernel_isa,
        profile: merged.report(),
        comm: MpipReport::from_stats(&result.stats),
        cg: cg.expect("ranks > 0"),
        rank_wall_s: wall,
        checksum,
        state_hash,
        verify: verifier.map(|v| v.findings()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Config {
        Config {
            n: 5,
            elems_per_rank: 8,
            ranks: 4,
            cg_iters: 25,
            tol: 1e-10,
            method: Some(GsMethod::PairwiseExchange),
            ..Default::default()
        }
    }

    #[test]
    fn cg_reduces_residual_on_poisson() {
        // The unpreconditioned Poisson system is ill-conditioned; what CG
        // must show in a fixed budget is steady reduction, not machine
        // zero (classic Nekbone runs a fixed iteration count too).
        let rep = run(&Config {
            cg_iters: 40,
            tol: 0.0,
            ..small_cfg()
        });
        let h = &rep.cg.res_history;
        assert_eq!(rep.cg.iterations, 40);
        assert!(
            rep.cg.final_residual() < h[0] * 0.05,
            "insufficient reduction: {h:?}"
        );
        // CG's 2-norm residual is not monotone (only the A-norm of the
        // error is); bound the excursions instead of per-step growth.
        let r0 = h[0];
        for &r in h {
            assert!(r < r0 * 100.0, "wild divergence: {h:?}");
        }
    }

    #[test]
    fn cg_solves_well_conditioned_system_to_tolerance() {
        // Mass-dominated operator: kappa is small, CG must converge hard.
        let rep = run(&Config {
            n: 4,
            elems_per_rank: 4,
            ranks: 2,
            cg_iters: 300,
            tol: 1e-10,
            lambda: 50.0,
            method: Some(GsMethod::PairwiseExchange),
            ..Default::default()
        });
        assert!(
            rep.cg.final_residual() <= 1e-10,
            "residual {} after {} iters",
            rep.cg.final_residual(),
            rep.cg.iterations
        );
        assert!(rep.cg.iterations < 300, "tolerance exit did not trigger");
    }

    #[test]
    fn run_is_deterministic() {
        let a = run(&small_cfg());
        let b = run(&small_cfg());
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.cg.iterations, b.cg.iterations);
    }

    #[test]
    fn rank_counts_do_not_change_the_math() {
        // The same 4x4x4 global element grid arises from (1 rank, 64
        // local = 4x4x4) and (8 ranks = 2x2x2, 8 local = 2x2x2); the CG
        // trajectory must agree up to reduction-order roundoff. (Other
        // rank counts factor into *different* global grids, so they are
        // different problems and not comparable.)
        let mk = |ranks: usize| Config {
            n: 4,
            elems_per_rank: 64 / ranks,
            ranks,
            cg_iters: 15,
            tol: 0.0,
            method: Some(GsMethod::PairwiseExchange),
            ..Default::default()
        };
        let base = run(&mk(1));
        assert_eq!(base.mesh.global_elems(), [4, 4, 4]);
        {
            let ranks = 8usize;
            let rep = run(&mk(ranks));
            assert_eq!(rep.mesh.global_elems(), [4, 4, 4]);
            // Identical global mesh and numbering => identical CG
            // trajectory up to float reassociation in the reductions.
            assert_eq!(rep.cg.iterations, base.cg.iterations);
            let a = rep.cg.final_residual();
            let b = base.cg.final_residual();
            assert!(
                (a - b).abs() < 1e-8 * (1.0 + b.abs()),
                "ranks={ranks}: {a} vs {b}"
            );
            assert!(
                (rep.checksum - base.checksum).abs() < 1e-8 * (1.0 + base.checksum.abs()),
                "ranks={ranks}: checksum {} vs {}",
                rep.checksum,
                base.checksum
            );
        }
    }

    #[test]
    fn gs_methods_agree_numerically() {
        let mut sums = Vec::new();
        for m in GsMethod::ALL {
            let rep = run(&Config {
                method: Some(m),
                ..small_cfg()
            });
            sums.push(rep.checksum);
        }
        for s in &sums[1..] {
            assert!((s - sums[0]).abs() < 1e-8 * (1.0 + sums[0].abs()));
        }
    }

    #[test]
    fn profile_has_ax_and_dssum_regions() {
        let rep = run(&small_cfg());
        assert!(rep.profile.flat.iter().any(|(n, _)| n.starts_with("ax_e")));
        assert!(rep.profile.flat.iter().any(|(n, _)| n.starts_with("dssum")));
        // the local stiffness work dominates dssum's self time in a
        // shared-memory world
        assert!(rep.profile.share("ax_e (local stiffness+mass)") > 0.05);
    }

    #[test]
    fn dssum_runs_split_phase_with_overlap_window() {
        let rep = run(&small_cfg());
        for name in [
            "dssum_start (post exchange)",
            "dssum_finish (wait + combine)",
            "glsc3_interior (overlap window)",
        ] {
            assert!(
                rep.profile.flat.iter().any(|(n, _)| n == name),
                "missing region {name}"
            );
        }
        // exchange wait time stays attributed to the dssum call site
        assert!(rep
            .comm
            .sites
            .iter()
            .any(|s| s.site.op == simmpi::MpiOp::Wait && s.site.context == "dssum/gs:pairwise"));
    }

    #[test]
    fn injected_kill_recovers_to_identical_state() {
        let base = Config {
            cg_iters: 12,
            tol: 0.0,
            checkpoint_every: 3,
            ..small_cfg()
        };
        let clean = run(&base);
        let faulty = run(&Config {
            fault_plan: Some(FaultPlan::parse("kill:rank=1,step=7").unwrap()),
            ..base.clone()
        });
        // rollback + deterministic CG: bitwise-identical final solve
        assert_eq!(clean.checksum, faulty.checksum);
        assert_eq!(
            clean.state_hash, faulty.state_hash,
            "recovered run diverged from the uninterrupted run"
        );
        assert_eq!(clean.cg.res_history, faulty.cg.res_history);
        // recovery is a distinct region and comm context
        for name in [cmt_perf::regions::CHECKPOINT, cmt_perf::regions::RECOVERY] {
            assert!(
                faulty.profile.flat.iter().any(|(n, _)| n == name),
                "missing region {name}"
            );
        }
        for ctx in ["checkpoint", "recovery"] {
            assert!(
                faulty.comm.sites.iter().any(|s| s.site.context == ctx),
                "missing '{ctx}' comm context"
            );
        }
    }

    #[test]
    #[should_panic(expected = "checkpointing is off")]
    fn kills_without_checkpointing_rejected() {
        let _ = run(&Config {
            fault_plan: Some(FaultPlan::parse("kill:rank=1,step=2").unwrap()),
            ..small_cfg()
        });
    }

    #[test]
    fn hybrid_workers_produce_bitwise_identical_solves() {
        let base = small_cfg();
        let reference = run(&base);
        for workers in [2, 4] {
            let rep = run(&Config {
                workers,
                ..base.clone()
            });
            assert_eq!(
                rep.state_hash, reference.state_hash,
                "{workers}-worker solve diverged from the serial one"
            );
            assert_eq!(rep.checksum, reference.checksum);
            assert_eq!(rep.cg.res_history, reference.cg.res_history);
        }
    }

    #[test]
    #[should_panic(expected = "invalid Nekbone configuration")]
    fn zero_workers_rejected() {
        let _ = run(&Config {
            workers: 0,
            ..small_cfg()
        });
    }

    /// The simd tier must not change a single bit of the CG trajectory
    /// relative to the scalar `opt` kernels — on both transports.
    #[test]
    fn simd_variant_is_bitwise_identical_to_opt() {
        let base = small_cfg();
        let opt = run(&base);
        let simd = run(&Config {
            variant: KernelVariant::Simd,
            ..base.clone()
        });
        assert_eq!(opt.state_hash, simd.state_hash, "simd diverged from opt");
        assert_eq!(opt.checksum, simd.checksum);
        assert_eq!(opt.cg.res_history, simd.cg.res_history);
        assert_eq!(simd.kernel_variant, KernelVariant::Simd);
        assert!(["avx2", "sse2", "scalar"].contains(&simd.kernel_isa));
        assert!(simd.render().contains("kernel variant: simd"));

        let socket = run(&Config {
            variant: KernelVariant::Simd,
            transport: TransportKind::Socket(simmpi::SocketConfig {
                addr: None,
                threads: true,
            }),
            ..base
        });
        assert_eq!(opt.state_hash, socket.state_hash, "socket simd diverged");
    }

    /// `--variant auto`: the startup kernel autotune must produce a
    /// report and every rank must adopt its effective winner.
    #[test]
    fn kernel_autotune_runs_and_reports() {
        let rep = run(&Config {
            kernel_autotune: true,
            ..small_cfg()
        });
        let t = rep.kernel_autotune.as_ref().expect("kernel autotune ran");
        assert_eq!(rep.kernel_variant, t.effective);
        assert!(!t.timings.is_empty());
        let text = rep.render();
        assert!(text.contains("Kernel autotune"));
        assert!(text.contains("kernel variant:"));
    }

    #[test]
    fn autotune_produces_fig7_rows() {
        let rep = run(&Config {
            method: None,
            autotune: AutotuneOptions {
                trials: 2,
                ..Default::default()
            },
            ..small_cfg()
        });
        let t = rep.autotune.expect("autotuned");
        assert_eq!(t.timings.len(), 3);
        let table = t.table("Nekbone");
        assert!(table.contains("pairwise exchange"));
        assert!(table.contains("crystal router"));
    }
}
