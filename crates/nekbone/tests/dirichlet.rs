//! Dirichlet-masked CG: manufactured-solution recovery.
//!
//! Build `b = mask(dssum(A u_exact))` for a known interior field
//! `u_exact` that vanishes on the domain boundary, then solve from zero.
//! CG on the same discrete operator must recover `u_exact` to solver
//! tolerance — no discretization error enters, so this pins the masked
//! operator, the dssum assembly, and the CG algebra all at once, across
//! rank counts.

use std::f64::consts::PI;

use cmt_core::{Field, KernelVariant};
use cmt_gs::{GsHandle, GsMethod, GsOp};
use cmt_mesh::{MeshConfig, RankMesh};
use cmt_perf::Profiler;
use nekbone::ax::AxOperator;
use nekbone::cg::{apply_mask, cg_solve};
use simmpi::World;

fn recover_manufactured_solution(ranks: usize, elems_per_rank: usize, n: usize) {
    let mesh_cfg = MeshConfig::for_ranks(ranks, elems_per_rank, n, false);
    let ge = mesh_cfg.global_elems();
    let lengths = [ge[0] as f64, ge[1] as f64, ge[2] as f64];
    let cfg2 = mesh_cfg.clone();
    let res = World::new().run(ranks, move |rank| {
        let mesh = RankMesh::new(cfg2.clone(), rank.rank());
        let gids = mesh.volume_point_gids();
        let handle = GsHandle::setup(rank, &gids);
        let method = GsMethod::PairwiseExchange;
        let inv_mult: Vec<f64> = handle
            .multiplicities(rank, method)
            .into_iter()
            .map(|m| 1.0 / m)
            .collect();
        let op = AxOperator::new(n, 1.0, 0.1, KernelVariant::Optimized);
        let nel = mesh.nel();

        // mask and exact solution (vanishes on the boundary)
        let basis = cmt_core::poly::Basis::new(n);
        let mut mask = Vec::with_capacity(gids.len());
        let mut u_exact = Field::zeros(n, nel);
        for le in 0..nel {
            let gc = mesh.global_elem_coords(le);
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        mask.push(if mesh.is_boundary_point(le, i, j, k) {
                            0.0
                        } else {
                            1.0
                        });
                        let x = gc[0] as f64 + (basis.nodes[i] + 1.0) / 2.0;
                        let y = gc[1] as f64 + (basis.nodes[j] + 1.0) / 2.0;
                        let z = gc[2] as f64 + (basis.nodes[k] + 1.0) / 2.0;
                        u_exact.set(
                            le,
                            i,
                            j,
                            k,
                            (PI * x / lengths[0]).sin()
                                * (PI * y / lengths[1]).sin()
                                * (PI * z / lengths[2]).sin(),
                        );
                    }
                }
            }
        }

        // b = mask(dssum(A u_exact))
        let mut b = Field::zeros(n, nel);
        let mut t1 = Field::zeros(n, nel);
        let mut t2 = Field::zeros(n, nel);
        op.apply(&u_exact, &mut b, &mut t1, &mut t2);
        handle.gs_op(rank, b.as_mut_slice(), GsOp::Add, method);
        apply_mask(&mut b, &mask);

        // solve from zero
        let mut x = Field::zeros(n, nel);
        let mut prof = Profiler::new();
        let stats = cg_solve(
            rank,
            &op,
            &handle,
            method,
            &inv_mult,
            Some(&mask),
            &b,
            &mut x,
            1e-12,
            2000,
            &mut prof,
        );

        // error against the manufactured solution
        let mut max_err = 0.0f64;
        for (a, e) in x.as_slice().iter().zip(u_exact.as_slice()) {
            max_err = max_err.max((a - e).abs());
        }
        (max_err, stats.iterations, stats.final_residual())
    });
    for (r, &(err, iters, res_norm)) in res.results.iter().enumerate() {
        assert!(
            err < 1e-7,
            "ranks={ranks} rank {r}: max error {err} after {iters} iters (res {res_norm})"
        );
    }
}

#[test]
fn manufactured_solution_single_rank() {
    recover_manufactured_solution(1, 8, 5);
}

#[test]
fn manufactured_solution_four_ranks() {
    recover_manufactured_solution(4, 8, 4);
}

#[test]
fn masked_solution_is_zero_on_boundary() {
    let cfg = MeshConfig::for_ranks(2, 4, 4, false);
    let cfg2 = cfg.clone();
    let res = World::new().run(2, move |rank| {
        let rep_cfg = nekbone::Config {
            ranks: 2,
            elems_per_rank: 4,
            n: 4,
            periodic: false,
            cg_iters: 10,
            method: Some(GsMethod::PairwiseExchange),
            ..Default::default()
        };
        let _ = rep_cfg;
        // direct check through the driver-level API instead: build the
        // mask and verify the public run() output stays bounded
        let mesh = RankMesh::new(cfg2.clone(), rank.rank());
        mesh.nel()
    });
    assert!(res.results.iter().all(|&nel| nel == 4));
    // the full driver path with Dirichlet boundaries converges (residual
    // reduction on a masked SPD system)
    let rep = nekbone::run(&nekbone::Config {
        ranks: 2,
        elems_per_rank: 4,
        n: 4,
        periodic: false,
        cg_iters: 60,
        tol: 1e-10,
        method: Some(GsMethod::PairwiseExchange),
        ..Default::default()
    });
    assert!(
        rep.cg.final_residual() < rep.cg.res_history[0],
        "no reduction: {:?}",
        rep.cg.res_history
    );
    let _ = cfg;
}
