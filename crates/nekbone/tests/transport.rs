//! Cross-backend identity for the Nekbone driver: socket and in-process
//! transports must produce bitwise-identical CG results.
//!
//! Drives the installed `nekbone` binary because the socket launcher
//! re-execs the current executable to spawn rank children.

use std::process::Command;

const BASE: &[&str] = &[
    "--ranks", "4", "--n", "5", "--elems", "8", "--iters", "10", "--method", "pairwise", "--quiet",
];

/// Run the nekbone binary with the base config plus `extra` args and
/// return the `state {hex}` fingerprint from its quiet output.
fn state_hash(extra: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_nekbone"))
        .args(BASE)
        .args(extra)
        .output()
        .expect("spawn nekbone");
    assert!(
        out.status.success(),
        "nekbone {extra:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    let line = stdout
        .lines()
        .find(|l| l.contains("state "))
        .unwrap_or_else(|| panic!("no state line in output:\n{stdout}"));
    let hash = line
        .split("state ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("malformed state line: {line}"));
    assert_eq!(hash.len(), 16, "state hash should be 16 hex digits: {line}");
    hash.to_string()
}

#[test]
fn socket_matches_inproc() {
    let inproc = state_hash(&[]);
    let socket = state_hash(&["--transport", "socket"]);
    assert_eq!(inproc, socket, "socket backend diverged from inproc");
}

#[test]
fn socket_matches_inproc_under_verify() {
    let inproc = state_hash(&["--verify"]);
    let socket = state_hash(&["--transport", "socket", "--verify"]);
    assert_eq!(inproc, socket, "verified socket run diverged from inproc");
}
