//! Dynamic element-to-rank assignment.
//!
//! The Cartesian block decomposition baked into [`crate::RankMesh`] is
//! the *initial* partition; the `cmt-lb` load balancer moves elements
//! between ranks at runtime. An [`ElemPartition`] is the shared,
//! SPMD-identical description of who owns what: a dense owner vector
//! indexed by global element id plus each element's local slot within
//! its owner's element list. Every rank holds the same partition object
//! and updates it with the same (deterministic) rebalance decisions, so
//! ownership queries never need communication.
//!
//! Local slot convention: each rank keeps its owned elements sorted
//! ascending by global element id. For the initial Cartesian partition
//! this reproduces the classical `RankMesh` local ordering exactly (the
//! local x-fastest enumeration of a Cartesian block is ascending in the
//! global x-fastest id), so turning the partition machinery on changes
//! nothing until the first migration.

use crate::MeshConfig;

/// A complete element-to-rank assignment, identical on every rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElemPartition {
    ranks: usize,
    /// Owner rank per global element id.
    owner: Vec<u32>,
    /// Position of the element within its owner's ascending-gid list.
    local_index: Vec<u32>,
    /// Every rank's owned gids (ascending), CSR layout: rank `r` owns
    /// `owned_flat[owned_offsets[r]..owned_offsets[r + 1]]`. Built once
    /// at construction so [`ElemPartition::owned_by`] is a borrow, not a
    /// scan-and-collect — it sits on the LB monitor/migrate paths.
    owned_flat: Vec<usize>,
    owned_offsets: Vec<usize>,
}

impl ElemPartition {
    /// The initial Cartesian partition of `cfg` (each rank owns its
    /// `local_elems` block, local slots in `RankMesh` order).
    pub fn initial(cfg: &MeshConfig) -> Self {
        let owner = (0..cfg.total_elems())
            .map(|gid| cfg.cartesian_owner(gid) as u32)
            .collect();
        Self::from_owner(cfg.ranks(), owner)
    }

    /// Build a partition from an explicit owner vector. Local slots are
    /// assigned in ascending-gid order per rank.
    ///
    /// # Panics
    /// Panics if any owner is `>= ranks` or some rank owns no elements
    /// (every rank must keep at least one element so collective plans
    /// and checkpoint partners stay well-formed).
    pub fn from_owner(ranks: usize, owner: Vec<u32>) -> Self {
        let mut next_slot = vec![0u32; ranks];
        let mut local_index = vec![0u32; owner.len()];
        for (gid, &r) in owner.iter().enumerate() {
            assert!((r as usize) < ranks, "element {gid} owned by rank {r}");
            local_index[gid] = next_slot[r as usize];
            next_slot[r as usize] += 1;
        }
        assert!(
            next_slot.iter().all(|&c| c > 0),
            "every rank must own at least one element"
        );
        // CSR owned lists: prefix-sum the per-rank counts, then place
        // each gid at its (rank base + local slot). Ascending gid order
        // per rank falls out of local_index's construction above.
        let mut owned_offsets = vec![0usize; ranks + 1];
        let mut base = 0usize;
        for r in 0..ranks {
            let c = next_slot[r] as usize;
            owned_offsets[r] = base;
            base += c;
        }
        owned_offsets[ranks] = base;
        let mut owned_flat = vec![0usize; owner.len()];
        for (gid, &r) in owner.iter().enumerate() {
            owned_flat[owned_offsets[r as usize] + local_index[gid] as usize] = gid;
        }
        ElemPartition {
            ranks,
            owner,
            local_index,
            owned_flat,
            owned_offsets,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Total elements in the domain.
    pub fn total_elems(&self) -> usize {
        self.owner.len()
    }

    /// Owner rank of global element `gid`.
    #[inline]
    pub fn owner_of(&self, gid: usize) -> usize {
        self.owner[gid] as usize
    }

    /// Owner rank and local slot of global element `gid`.
    #[inline]
    pub fn slot_of(&self, gid: usize) -> (usize, usize) {
        (self.owner[gid] as usize, self.local_index[gid] as usize)
    }

    /// The dense owner vector (indexed by global element id).
    pub fn owner_vec(&self) -> &[u32] {
        &self.owner
    }

    /// Global element ids owned by `rank`, ascending — the rank's local
    /// element order (`owned_by(r)[slot] == gid` iff
    /// `slot_of(gid) == (r, slot)`). A borrow of the precomputed CSR
    /// list: free to call on the LB monitor/migrate paths.
    pub fn owned_by(&self, rank: usize) -> &[usize] {
        &self.owned_flat[self.owned_offsets[rank]..self.owned_offsets[rank + 1]]
    }

    /// Elements owned per rank.
    pub fn counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.ranks];
        for &r in &self.owner {
            c[r as usize] += 1;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RankMesh;

    #[test]
    fn initial_matches_rank_mesh_layout() {
        for (ranks, epr) in [(1usize, 8usize), (4, 8), (6, 4), (8, 1)] {
            let cfg = MeshConfig::for_ranks(ranks, epr, 4, true);
            let part = ElemPartition::initial(&cfg);
            assert_eq!(part.total_elems(), cfg.total_elems());
            for r in 0..ranks {
                let mesh = RankMesh::new(cfg.clone(), r);
                let owned = part.owned_by(r);
                assert_eq!(owned.len(), mesh.nel(), "ranks={ranks} epr={epr}");
                for le in 0..mesh.nel() {
                    let gid = mesh.global_elem_id(le);
                    // Cartesian local order is ascending-gid order, so the
                    // partition's slots reproduce RankMesh's enumeration.
                    assert_eq!(owned[le], gid);
                    assert_eq!(part.slot_of(gid), (r, le));
                    assert_eq!(part.owner_of(gid), r);
                }
            }
        }
    }

    #[test]
    fn from_owner_assigns_ascending_slots() {
        // 6 elements over 3 ranks, interleaved ownership.
        let part = ElemPartition::from_owner(3, vec![2, 0, 1, 0, 2, 1]);
        assert_eq!(part.owned_by(0), vec![1, 3]);
        assert_eq!(part.owned_by(1), vec![2, 5]);
        assert_eq!(part.owned_by(2), vec![0, 4]);
        assert_eq!(part.slot_of(3), (0, 1));
        assert_eq!(part.slot_of(4), (2, 1));
        assert_eq!(part.counts(), vec![2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_rank_is_rejected() {
        let _ = ElemPartition::from_owner(3, vec![0, 0, 1, 1]);
    }

    #[test]
    fn arbitrary_face_gids_match_cartesian_for_initial_partition() {
        let cfg = MeshConfig::for_ranks(4, 8, 5, true);
        let part = ElemPartition::initial(&cfg);
        for r in 0..4 {
            let mesh = RankMesh::new(cfg.clone(), r);
            let via_part = crate::face_exchange_gids_for(&cfg, part.owned_by(r));
            assert_eq!(via_part, mesh.face_exchange_gids());
        }
    }
}
