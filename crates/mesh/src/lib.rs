//! # cmt-mesh
//!
//! Cartesian spectral-element domain decomposition for the CMT-bone and
//! Nekbone mini-apps.
//!
//! The paper's Fig. 7 setup block is the specification this crate
//! implements:
//!
//! ```text
//! Number of processors: 256            Dimensions = 3
//! Number of elements per process = 100 Processor Distribution (x,y,z) = 8, 8, 4
//! Total elements = 25600               Element Distribution (x,y,z) = 40, 40, 16
//! Gridpoints per element = 10          Local Element Distribution (x,y,z) = 5, 5, 4
//! ```
//!
//! A [`MeshConfig`] describes the processor grid, the per-rank local
//! element block, and the element order `n`; [`RankMesh`] is one rank's
//! view: local-to-global element maps, per-face neighbor lookup
//! ([`Neighbor`]), and the two global GLL numbering modes the mini-apps
//! need:
//!
//! * [`RankMesh::volume_point_gids`] — the *continuous* (vertex-conforming)
//!   numbering over all `n^3` points per element, in which every point
//!   shared by adjacent elements carries the same global id. This is what
//!   Nekbone's `dssum` gathers over (points on faces/edges/corners are
//!   shared by up to 8 elements).
//! * [`RankMesh::face_point_gids`] — the same numbering restricted to the
//!   `6 n^2` face points per element in [`cmt_core::face`] ordering, which
//!   is what CMT-bone's DG surface exchange gathers over.
//!
//! Both numberings are what the gather-scatter library's discovery phase
//! (`gs_setup`) consumes — "each processor is given index sets containing
//! the global ids of the elements", as the paper puts it.

#![warn(missing_docs)]

use cmt_core::face::{face_point_volume_index, Face};

mod partition;

pub use partition::ElemPartition;

/// Factor `v` into three factors as close to `v^(1/3)` as possible,
/// largest factor first in x (matching the paper's 256 -> 8 x 8 x 4 and
/// 100 -> 5 x 5 x 4 splits).
pub fn balanced_factor3(v: usize) -> [usize; 3] {
    assert!(v > 0, "cannot factor zero");
    let mut best = [v, 1, 1];
    let mut best_cost = usize::MAX;
    // enumerate a <= b <= c with a*b*c = v, minimize surface-ish cost
    let mut a = 1;
    while a * a * a <= v {
        if v % a == 0 {
            let rest = v / a;
            let mut b = a;
            while b * b <= rest {
                if rest % b == 0 {
                    let c = rest / b;
                    // minimize c - a (spread), i.e. prefer the most cubic split
                    let cost = c - a;
                    if cost < best_cost {
                        best_cost = cost;
                        best = [c, b, a]; // larger factors toward x, like 8,8,4
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// Whether an element face's neighbor is on this rank, another rank, or a
/// (non-periodic) domain boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Neighbor {
    /// Neighbor element lives on the same rank; payload is its local index.
    Local(usize),
    /// Neighbor element lives on another rank.
    Remote {
        /// Owning rank.
        rank: usize,
        /// Local element index on the owning rank.
        elem: usize,
    },
    /// No neighbor: the face lies on a non-periodic domain boundary.
    Boundary,
}

/// Global mesh/partition description, shared by all ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshConfig {
    /// GLL points per direction per element (the paper's `N`).
    pub n: usize,
    /// Processor grid dimensions `(px, py, pz)`.
    pub proc_dims: [usize; 3],
    /// Per-rank local element block `(lx, ly, lz)`.
    pub local_elems: [usize; 3],
    /// Periodic domain (true for the mini-app's interior-physics proxy).
    pub periodic: bool,
}

impl MeshConfig {
    /// Build the canonical configuration from a rank count and an
    /// elements-per-rank budget, factoring both as the mini-app's setup
    /// phase does (256 ranks, 100 elem/rank, n = 10 reproduces the
    /// paper's Fig. 7 block exactly).
    pub fn for_ranks(ranks: usize, elems_per_rank: usize, n: usize, periodic: bool) -> Self {
        MeshConfig {
            n,
            proc_dims: balanced_factor3(ranks),
            local_elems: balanced_factor3(elems_per_rank),
            periodic,
        }
    }

    /// Total rank count `px * py * pz`.
    pub fn ranks(&self) -> usize {
        self.proc_dims.iter().product()
    }

    /// Global element grid `(ex, ey, ez) = proc_dims * local_elems`.
    pub fn global_elems(&self) -> [usize; 3] {
        [
            self.proc_dims[0] * self.local_elems[0],
            self.proc_dims[1] * self.local_elems[1],
            self.proc_dims[2] * self.local_elems[2],
        ]
    }

    /// Elements per rank.
    pub fn elems_per_rank(&self) -> usize {
        self.local_elems.iter().product()
    }

    /// Total elements in the domain.
    pub fn total_elems(&self) -> usize {
        self.ranks() * self.elems_per_rank()
    }

    /// Global coordinates of the element with flattened id `gid`
    /// (x fastest — the inverse of [`MeshConfig::elem_id`]).
    pub fn elem_coords(&self, gid: usize) -> [usize; 3] {
        let ge = self.global_elems();
        debug_assert!(gid < self.total_elems());
        [gid % ge[0], (gid / ge[0]) % ge[1], gid / (ge[0] * ge[1])]
    }

    /// Flattened global element id of the element at global coordinates.
    pub fn elem_id(&self, gc: [usize; 3]) -> usize {
        let ge = self.global_elems();
        (gc[2] * ge[1] + gc[1]) * ge[0] + gc[0]
    }

    /// Owner rank of global element `gid` under the *initial* Cartesian
    /// partition (each rank owns its `local_elems` block). Dynamic
    /// repartitions are described by [`ElemPartition`] instead.
    pub fn cartesian_owner(&self, gid: usize) -> usize {
        let gc = self.elem_coords(gid);
        let [lx, ly, lz] = self.local_elems;
        let [px, py, _pz] = self.proc_dims;
        let pc = [gc[0] / lx, gc[1] / ly, gc[2] / lz];
        (pc[2] * py + pc[1]) * px + pc[0]
    }

    /// Global GLL point-grid dimensions of the continuous numbering.
    ///
    /// Adjacent elements share their interface plane, so direction `d`
    /// has `ex_d * (n-1) + 1` distinct planes non-periodically, and
    /// `ex_d * (n-1)` when the two domain ends are identified.
    pub fn global_point_dims(&self) -> [usize; 3] {
        let ge = self.global_elems();
        let mut out = [0; 3];
        for d in 0..3 {
            out[d] = if self.periodic {
                ge[d] * (self.n - 1)
            } else {
                ge[d] * (self.n - 1) + 1
            };
        }
        out
    }

    /// Total distinct global GLL points.
    pub fn total_points(&self) -> usize {
        self.global_point_dims().iter().product()
    }

    /// The paper-style setup block (Fig. 7 header) as displayable text.
    pub fn summary(&self) -> String {
        let ge = self.global_elems();
        format!(
            "Number of processors: {}            Dimensions = 3\n\
             Number of elements per process = {}  Processor Distribution (x,y,z) = {}, {}, {}\n\
             Total elements = {}                  Element Distribution (x,y,z) = {}, {}, {}\n\
             Number of gridpoints per element = {} Local Element Distribution (x,y,z) = {}, {}, {}",
            self.ranks(),
            self.elems_per_rank(),
            self.proc_dims[0],
            self.proc_dims[1],
            self.proc_dims[2],
            self.total_elems(),
            ge[0],
            ge[1],
            ge[2],
            self.n,
            self.local_elems[0],
            self.local_elems[1],
            self.local_elems[2],
        )
    }
}

/// One rank's view of the partitioned mesh.
#[derive(Debug, Clone)]
pub struct RankMesh {
    cfg: MeshConfig,
    rank: usize,
    proc_coords: [usize; 3],
}

impl RankMesh {
    /// Build rank `rank`'s view.
    ///
    /// # Panics
    /// Panics if `rank >= cfg.ranks()`.
    pub fn new(cfg: MeshConfig, rank: usize) -> Self {
        assert!(rank < cfg.ranks(), "rank {rank} out of {}", cfg.ranks());
        let [px, py, _pz] = cfg.proc_dims;
        let proc_coords = [rank % px, (rank / px) % py, rank / (px * py)];
        RankMesh {
            cfg,
            rank,
            proc_coords,
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// This rank's processor-grid coordinates.
    pub fn proc_coords(&self) -> [usize; 3] {
        self.proc_coords
    }

    /// Number of local elements.
    pub fn nel(&self) -> usize {
        self.cfg.elems_per_rank()
    }

    /// Local element coordinates within this rank's block (x fastest).
    pub fn local_elem_coords(&self, le: usize) -> [usize; 3] {
        let [lx, ly, _lz] = self.cfg.local_elems;
        debug_assert!(le < self.nel());
        [le % lx, (le / lx) % ly, le / (lx * ly)]
    }

    /// Global element coordinates of local element `le`.
    pub fn global_elem_coords(&self, le: usize) -> [usize; 3] {
        let lc = self.local_elem_coords(le);
        let [lx, ly, lz] = self.cfg.local_elems;
        [
            self.proc_coords[0] * lx + lc[0],
            self.proc_coords[1] * ly + lc[1],
            self.proc_coords[2] * lz + lc[2],
        ]
    }

    /// Flattened global element id (x fastest over the global grid).
    pub fn global_elem_id(&self, le: usize) -> usize {
        let g = self.global_elem_coords(le);
        let ge = self.cfg.global_elems();
        (g[2] * ge[1] + g[1]) * ge[0] + g[0]
    }

    /// Owner rank and local index of the element at global coordinates.
    pub fn owner_of(&self, gc: [usize; 3]) -> (usize, usize) {
        let [lx, ly, lz] = self.cfg.local_elems;
        let [px, py, _pz] = self.cfg.proc_dims;
        let pc = [gc[0] / lx, gc[1] / ly, gc[2] / lz];
        let rank = (pc[2] * py + pc[1]) * px + pc[0];
        let lc = [gc[0] % lx, gc[1] % ly, gc[2] % lz];
        let le = (lc[2] * ly + lc[1]) * lx + lc[0];
        (rank, le)
    }

    /// The neighbor across face `f` of local element `le`.
    pub fn neighbor(&self, le: usize, f: Face) -> Neighbor {
        let mut gc = self.global_elem_coords(le);
        let ge = self.cfg.global_elems();
        let axis = f.axis();
        if f.sign() < 0 {
            if gc[axis] == 0 {
                if !self.cfg.periodic {
                    return Neighbor::Boundary;
                }
                gc[axis] = ge[axis] - 1;
            } else {
                gc[axis] -= 1;
            }
        } else if gc[axis] + 1 == ge[axis] {
            if !self.cfg.periodic {
                return Neighbor::Boundary;
            }
            gc[axis] = 0;
        } else {
            gc[axis] += 1;
        }
        let (rank, elem) = self.owner_of(gc);
        if rank == self.rank {
            Neighbor::Local(elem)
        } else {
            Neighbor::Remote { rank, elem }
        }
    }

    /// The set of ranks this rank exchanges faces with (its nearest
    /// neighbors in the processor grid), sorted ascending.
    pub fn neighbor_ranks(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for le in 0..self.nel() {
            for f in Face::ALL {
                if let Neighbor::Remote { rank, .. } = self.neighbor(le, f) {
                    if !out.contains(&rank) {
                        out.push(rank);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Global id of GLL point `(i, j, k)` of local element `le` under the
    /// continuous (vertex-conforming) numbering.
    pub fn point_gid(&self, le: usize, i: usize, j: usize, k: usize) -> u64 {
        let n = self.cfg.n;
        debug_assert!(i < n && j < n && k < n);
        let gc = self.global_elem_coords(le);
        let gp = self.cfg.global_point_dims();
        let mut coord = [0usize; 3];
        for (d, idx) in [(0usize, i), (1, j), (2, k)] {
            let mut c = gc[d] * (n - 1) + idx;
            if self.cfg.periodic {
                c %= gp[d];
            }
            coord[d] = c;
        }
        ((coord[2] as u64 * gp[1] as u64) + coord[1] as u64) * gp[0] as u64 + coord[0] as u64
    }

    /// Continuous global ids of all `n^3 * nel` local volume points, in
    /// [`cmt_core::Field`] layout (`[e][k][j][i]`, `i` fastest). This is
    /// Nekbone's `dssum` index set.
    pub fn volume_point_gids(&self) -> Vec<u64> {
        let n = self.cfg.n;
        let mut out = Vec::with_capacity(n * n * n * self.nel());
        for le in 0..self.nel() {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        out.push(self.point_gid(le, i, j, k));
                    }
                }
            }
        }
        out
    }

    /// Continuous global ids of the `6 n^2 * nel` local face points, in
    /// [`cmt_core::face::full2face`] layout. This is CMT-bone's DG surface
    /// exchange index set: the two sides of every interior face list the
    /// same gids in the same order.
    pub fn face_point_gids(&self) -> Vec<u64> {
        let n = self.cfg.n;
        let n2 = n * n;
        let mut out = Vec::with_capacity(6 * n2 * self.nel());
        for le in 0..self.nel() {
            for f in Face::ALL {
                for p in 0..n2 {
                    let v = face_point_volume_index(n, f, p);
                    let i = v % n;
                    let j = (v / n) % n;
                    let k = v / n2;
                    out.push(self.point_gid(le, i, j, k));
                }
            }
        }
        out
    }

    /// Global ids for the DG surface exchange, one per `(face-plane,
    /// in-plane point, axis)` — the numbering CMT-bone's numerical-flux
    /// proxy gathers over.
    ///
    /// Unlike [`RankMesh::face_point_gids`] (the continuous numbering,
    /// where an element-edge point is shared by up to 4 elements and a
    /// corner by up to 8), this numbering embeds the face *axis* in the
    /// id, so every id is held by exactly the two elements adjacent
    /// across that face (or one, on a non-periodic boundary). That
    /// pairwise property is what lets a `gs_op(Add)` recover the exact
    /// neighbor trace (`neighbor = sum - own`), which the distributed DG
    /// advection check relies on.
    ///
    /// Layout matches [`cmt_core::face::full2face`]: `[e][face][b][a]`.
    pub fn face_exchange_gids(&self) -> Vec<u64> {
        let geids: Vec<usize> = (0..self.nel()).map(|le| self.global_elem_id(le)).collect();
        face_exchange_gids_for(&self.cfg, &geids)
    }

    /// Whether GLL point `(i, j, k)` of local element `le` lies on the
    /// global domain boundary (always false on a periodic mesh). This is
    /// the predicate behind Nekbone's Dirichlet mask.
    pub fn is_boundary_point(&self, le: usize, i: usize, j: usize, k: usize) -> bool {
        if self.cfg.periodic {
            return false;
        }
        let n = self.cfg.n;
        let gc = self.global_elem_coords(le);
        let ge = self.cfg.global_elems();
        for (d, idx) in [(0usize, i), (1, j), (2, k)] {
            if (gc[d] == 0 && idx == 0) || (gc[d] + 1 == ge[d] && idx == n - 1) {
                return true;
            }
        }
        false
    }

    /// Multiplicity of volume point `(i, j, k)` of element `le`: how many
    /// elements share it under the continuous numbering (1 interior, 2 on
    /// a face, 4 on an edge, 8 at a corner — fewer at non-periodic domain
    /// boundaries).
    pub fn point_multiplicity(&self, le: usize, i: usize, j: usize, k: usize) -> usize {
        let n = self.cfg.n;
        let gc = self.global_elem_coords(le);
        let ge = self.cfg.global_elems();
        let mut mult = 1;
        for (d, idx) in [(0usize, i), (1, j), (2, k)] {
            let on_low = idx == 0;
            let on_high = idx == n - 1;
            if !(on_low || on_high) {
                continue;
            }
            let has_nbr = if self.cfg.periodic {
                ge[d] > 1
            } else if on_low {
                gc[d] > 0
            } else {
                gc[d] + 1 < ge[d]
            };
            // A periodic single-element direction wraps onto itself: the
            // low and high planes are the *same* global plane, so the
            // element touches it twice but the sharer count per plane is
            // still 2 (self twice). Treat it as shared.
            if has_nbr {
                mult *= 2;
            }
        }
        mult
    }
}

/// DG surface-exchange gids for an *arbitrary* list of global element
/// ids — the same numbering as [`RankMesh::face_exchange_gids`] (which
/// delegates here with its Cartesian block), usable for any
/// element-to-rank assignment. Because each id depends only on the
/// element's own global coordinates, the exactly-two-sharers property
/// holds under every partition — the basis for the load balancer's
/// claim that migrating elements never changes field results.
///
/// Layout matches [`cmt_core::face::full2face`]: `[e][face][b][a]`,
/// elements in the order given.
pub fn face_exchange_gids_for(cfg: &MeshConfig, geids: &[usize]) -> Vec<u64> {
    let n = cfg.n;
    let n2 = n * n;
    let ge = cfg.global_elems();
    // planes per axis: ex+1 interfaces non-periodically, ex when the
    // ends are identified
    let planes = |d: usize| {
        if cfg.periodic {
            ge[d] as u64
        } else {
            ge[d] as u64 + 1
        }
    };
    // In-plane point grid: *element-local* tangential numbering
    // (stride n, no endpoint merging). Merging tangential endpoints
    // would make a face-edge point's id appear on the faces of four
    // elements (two across the face x two along it); keeping each
    // element column's points distinct preserves the exactly-two-
    // sharers property while the two elements across a face still
    // agree (they share the same tangential element coordinates).
    let tang = |d: usize| (ge[d] * n) as u64;
    let mut out = Vec::with_capacity(6 * n2 * geids.len());
    // Per-axis id-space base offsets.
    let mut base = [0u64; 3];
    let mut acc = 0u64;
    for d in 0..3 {
        base[d] = acc;
        let t = [0, 1, 2usize];
        let (t1, t2) = match d {
            0 => (t[1], t[2]),
            1 => (t[0], t[2]),
            _ => (t[0], t[1]),
        };
        acc += planes(d) * tang(t1) * tang(t2);
    }
    for &geid in geids {
        let gc = cfg.elem_coords(geid);
        for f in Face::ALL {
            let axis = f.axis();
            let (t1, t2) = match axis {
                0 => (1usize, 2usize),
                1 => (0, 2),
                _ => (0, 1),
            };
            // global interface plane index along the face axis
            let mut plane = gc[axis] + if f.sign() > 0 { 1 } else { 0 };
            if cfg.periodic {
                plane %= ge[axis];
            }
            for p in 0..n2 {
                let a = p % n;
                let b = p / n;
                // face-local (a, b) map to tangential axes (t1, t2)
                let c1 = gc[t1] * n + a;
                let c2 = gc[t2] * n + b;
                let gid =
                    base[axis] + ((plane as u64) * tang(t1) + c1 as u64) * tang(t2) + c2 as u64;
                out.push(gid);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor3_matches_paper_splits() {
        assert_eq!(balanced_factor3(256), [8, 8, 4]);
        assert_eq!(balanced_factor3(100), [5, 5, 4]);
        assert_eq!(balanced_factor3(1), [1, 1, 1]);
        assert_eq!(balanced_factor3(8), [2, 2, 2]);
        assert_eq!(balanced_factor3(7), [7, 1, 1]);
        assert_eq!(balanced_factor3(12), [3, 2, 2]);
    }

    #[test]
    fn factor3_product_is_input() {
        for v in 1..=200 {
            let f = balanced_factor3(v);
            assert_eq!(f[0] * f[1] * f[2], v, "v={v}");
            assert!(f[0] >= f[1] && f[1] >= f[2], "v={v}: {f:?} not ordered");
        }
    }

    #[test]
    fn paper_fig7_configuration() {
        let cfg = MeshConfig::for_ranks(256, 100, 10, true);
        assert_eq!(cfg.proc_dims, [8, 8, 4]);
        assert_eq!(cfg.local_elems, [5, 5, 4]);
        assert_eq!(cfg.global_elems(), [40, 40, 16]);
        assert_eq!(cfg.total_elems(), 25600);
        let s = cfg.summary();
        assert!(s.contains("Total elements = 25600"));
        assert!(s.contains("8, 8, 4"));
    }

    #[test]
    fn element_ownership_partitions_domain() {
        let cfg = MeshConfig {
            n: 4,
            proc_dims: [2, 2, 1],
            local_elems: [2, 1, 3],
            periodic: true,
        };
        let mut seen = vec![false; cfg.total_elems()];
        for rank in 0..cfg.ranks() {
            let mesh = RankMesh::new(cfg.clone(), rank);
            for le in 0..mesh.nel() {
                let gid = mesh.global_elem_id(le);
                assert!(!seen[gid], "element {gid} owned twice");
                seen[gid] = true;
                // owner_of inverts the mapping
                let (orank, olec) = mesh.owner_of(mesh.global_elem_coords(le));
                assert_eq!((orank, olec), (rank, le));
            }
        }
        assert!(seen.iter().all(|&s| s), "some element unowned");
    }

    #[test]
    fn neighbor_symmetry_periodic() {
        let cfg = MeshConfig {
            n: 3,
            proc_dims: [2, 1, 2],
            local_elems: [1, 3, 2],
            periodic: true,
        };
        let meshes: Vec<RankMesh> = (0..cfg.ranks())
            .map(|r| RankMesh::new(cfg.clone(), r))
            .collect();
        for mesh in &meshes {
            for le in 0..mesh.nel() {
                for f in Face::ALL {
                    let (nrank, nle) = match mesh.neighbor(le, f) {
                        Neighbor::Local(e) => (mesh.rank(), e),
                        Neighbor::Remote { rank, elem } => (rank, elem),
                        Neighbor::Boundary => panic!("no boundaries in periodic mesh"),
                    };
                    // the neighbor's neighbor across the opposite face is us
                    let back = meshes[nrank].neighbor(nle, f.opposite());
                    let (brank, ble) = match back {
                        Neighbor::Local(e) => (nrank, e),
                        Neighbor::Remote { rank, elem } => (rank, elem),
                        Neighbor::Boundary => panic!("asymmetric boundary"),
                    };
                    assert_eq!((brank, ble), (mesh.rank(), le));
                }
            }
        }
    }

    #[test]
    fn nonperiodic_boundaries_detected() {
        let cfg = MeshConfig {
            n: 3,
            proc_dims: [2, 1, 1],
            local_elems: [1, 1, 1],
            periodic: false,
        };
        let m0 = RankMesh::new(cfg.clone(), 0);
        assert_eq!(m0.neighbor(0, Face::RMinus), Neighbor::Boundary);
        assert_eq!(
            m0.neighbor(0, Face::RPlus),
            Neighbor::Remote { rank: 1, elem: 0 }
        );
        assert_eq!(m0.neighbor(0, Face::SMinus), Neighbor::Boundary);
        assert_eq!(m0.neighbor(0, Face::TPlus), Neighbor::Boundary);
    }

    #[test]
    fn shared_face_points_have_equal_gids_across_ranks() {
        let cfg = MeshConfig {
            n: 4,
            proc_dims: [2, 2, 1],
            local_elems: [2, 2, 2],
            periodic: true,
        };
        let meshes: Vec<RankMesh> = (0..cfg.ranks())
            .map(|r| RankMesh::new(cfg.clone(), r))
            .collect();
        let n = cfg.n;
        let n2 = n * n;
        for mesh in &meshes {
            let gids = mesh.face_point_gids();
            for le in 0..mesh.nel() {
                for f in Face::ALL {
                    let (nrank, nle) = match mesh.neighbor(le, f) {
                        Neighbor::Local(e) => (mesh.rank(), e),
                        Neighbor::Remote { rank, elem } => (rank, elem),
                        Neighbor::Boundary => unreachable!(),
                    };
                    let ngids = meshes[nrank].face_point_gids();
                    let nf = f.opposite();
                    for p in 0..n2 {
                        let a = gids[(le * 6 + f.index()) * n2 + p];
                        let b = ngids[(nle * 6 + nf.index()) * n2 + p];
                        assert_eq!(a, b, "face gid mismatch at le={le} f={f:?} p={p}");
                    }
                }
            }
        }
    }

    #[test]
    fn volume_gids_cover_every_global_point_once_per_sharer() {
        let cfg = MeshConfig {
            n: 3,
            proc_dims: [2, 1, 1],
            local_elems: [1, 2, 2],
            periodic: false,
        };
        let mut counts = std::collections::HashMap::<u64, usize>::new();
        for rank in 0..cfg.ranks() {
            let mesh = RankMesh::new(cfg.clone(), rank);
            for gid in mesh.volume_point_gids() {
                *counts.entry(gid).or_insert(0) += 1;
            }
        }
        // every global point appears, and total entries = n^3 * total elems
        assert_eq!(counts.len(), cfg.total_points());
        let total: usize = counts.values().sum();
        assert_eq!(total, 27 * cfg.total_elems());
        // interior-of-element points appear exactly once
        let mesh = RankMesh::new(cfg.clone(), 0);
        let gid_center = mesh.point_gid(0, 1, 1, 1);
        assert_eq!(counts[&gid_center], 1);
    }

    #[test]
    fn multiplicity_matches_global_count() {
        let cfg = MeshConfig {
            n: 3,
            proc_dims: [2, 2, 1],
            local_elems: [1, 1, 2],
            periodic: true,
        };
        let mut counts = std::collections::HashMap::<u64, usize>::new();
        for rank in 0..cfg.ranks() {
            let mesh = RankMesh::new(cfg.clone(), rank);
            for gid in mesh.volume_point_gids() {
                *counts.entry(gid).or_insert(0) += 1;
            }
        }
        let mesh = RankMesh::new(cfg.clone(), 0);
        let n = cfg.n;
        for le in 0..mesh.nel() {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let gid = mesh.point_gid(le, i, j, k);
                        let mult = mesh.point_multiplicity(le, i, j, k);
                        assert_eq!(
                            counts[&gid], mult,
                            "multiplicity mismatch at le={le} ({i},{j},{k})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn face_exchange_gids_are_shared_by_exactly_two_elements() {
        for periodic in [true, false] {
            let cfg = MeshConfig {
                n: 3,
                proc_dims: [2, 1, 2],
                local_elems: [1, 2, 1],
                periodic,
            };
            let mut counts = std::collections::HashMap::<u64, usize>::new();
            for rank in 0..cfg.ranks() {
                let mesh = RankMesh::new(cfg.clone(), rank);
                for gid in mesh.face_exchange_gids() {
                    *counts.entry(gid).or_insert(0) += 1;
                }
            }
            for (&gid, &c) in &counts {
                if periodic {
                    assert_eq!(c, 2, "periodic gid {gid} shared by {c}");
                } else {
                    assert!(c == 1 || c == 2, "gid {gid} shared by {c}");
                }
            }
            if !periodic {
                // boundary face points exist
                assert!(counts.values().any(|&c| c == 1));
            }
        }
    }

    #[test]
    fn face_exchange_gids_match_across_interior_faces() {
        let cfg = MeshConfig {
            n: 4,
            proc_dims: [2, 2, 1],
            local_elems: [1, 1, 2],
            periodic: true,
        };
        let meshes: Vec<RankMesh> = (0..cfg.ranks())
            .map(|r| RankMesh::new(cfg.clone(), r))
            .collect();
        let n2 = cfg.n * cfg.n;
        for mesh in &meshes {
            let gids = mesh.face_exchange_gids();
            for le in 0..mesh.nel() {
                for f in Face::ALL {
                    let (nrank, nle) = match mesh.neighbor(le, f) {
                        Neighbor::Local(e) => (mesh.rank(), e),
                        Neighbor::Remote { rank, elem } => (rank, elem),
                        Neighbor::Boundary => unreachable!(),
                    };
                    let ngids = meshes[nrank].face_exchange_gids();
                    let nf = f.opposite();
                    for p in 0..n2 {
                        assert_eq!(
                            gids[(le * 6 + f.index()) * n2 + p],
                            ngids[(nle * 6 + nf.index()) * n2 + p],
                            "le={le} f={f:?} p={p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn face_exchange_gids_distinct_within_element() {
        // all 6 n^2 ids of a single element are pairwise distinct (the
        // axis encoding prevents edge/corner merging)
        let cfg = MeshConfig {
            n: 3,
            proc_dims: [1, 1, 1],
            local_elems: [2, 2, 2],
            periodic: true,
        };
        let mesh = RankMesh::new(cfg, 0);
        let gids = mesh.face_exchange_gids();
        let per_elem = 6 * 9;
        for le in 0..mesh.nel() {
            let mut seen = std::collections::HashSet::new();
            for p in 0..per_elem {
                assert!(
                    seen.insert(gids[le * per_elem + p]),
                    "duplicate gid within element {le}"
                );
            }
        }
    }

    #[test]
    fn boundary_points_detected_on_nonperiodic_mesh() {
        let cfg = MeshConfig {
            n: 3,
            proc_dims: [2, 1, 1],
            local_elems: [1, 2, 1],
            periodic: false,
        };
        let m0 = RankMesh::new(cfg.clone(), 0);
        let m1 = RankMesh::new(cfg.clone(), 1);
        // rank 0 holds x in [0,1): its i=0 plane is the domain boundary,
        // its i=n-1 plane is the interior interface to rank 1
        assert!(m0.is_boundary_point(0, 0, 1, 1));
        assert!(!m0.is_boundary_point(0, 2, 1, 1));
        assert!(m1.is_boundary_point(0, 2, 1, 1));
        // j/k boundaries
        assert!(m0.is_boundary_point(0, 1, 0, 1));
        assert!(m0.is_boundary_point(0, 1, 1, 2));
        assert!(!m0.is_boundary_point(0, 1, 1, 1));
        // element 1 of rank 0 is at gy=1 (the top): j=n-1 is boundary
        assert!(m0.is_boundary_point(1, 1, 2, 1));
        assert!(!m0.is_boundary_point(1, 1, 0, 1)); // interior interface gy=1 bottom? no: j=0 of gy=1 touches gy=0 -> interior
                                                    // periodic mesh never reports boundaries
        let per = RankMesh::new(
            MeshConfig {
                periodic: true,
                ..cfg
            },
            0,
        );
        for le in 0..per.nel() {
            for k in 0..3 {
                for j in 0..3 {
                    for i in 0..3 {
                        assert!(!per.is_boundary_point(le, i, j, k));
                    }
                }
            }
        }
    }

    #[test]
    fn neighbor_ranks_fig7_interior_rank_has_six() {
        let cfg = MeshConfig::for_ranks(27, 8, 4, true);
        assert_eq!(cfg.proc_dims, [3, 3, 3]);
        let mesh = RankMesh::new(cfg, 13); // center rank of 3x3x3
        assert_eq!(mesh.neighbor_ranks().len(), 6);
    }

    #[test]
    #[should_panic]
    fn rank_out_of_range_rejected() {
        let cfg = MeshConfig::for_ranks(4, 1, 3, true);
        let _ = RankMesh::new(cfg, 4);
    }
}
