//! Deliberately-buggy fixture programs, each asserted to produce the
//! expected `cmt-verify` diagnostic — plus clean and chaos-perturbed
//! programs asserted to produce none.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use cmt_gs::{GsHandle, GsMethod, GsOp};
use cmt_verify::{FindingKind, Verifier};
use simmpi::{Rank, ReduceOp, World};

/// Run `f` on `p` ranks under a fresh checker, tolerating (and
/// swallowing) the world panic a fatal diagnostic triggers.
fn run_checked<F>(p: usize, f: F) -> Arc<Verifier>
where
    F: Fn(&mut Rank) + Send + Sync,
{
    let verifier = Arc::new(Verifier::new().with_grace(Duration::from_millis(150)));
    let world = World::new().with_verifier(verifier.clone());
    let _ = catch_unwind(AssertUnwindSafe(|| world.run(p, |rank| f(rank))));
    verifier
}

/// The two-rank head-to-head deadlock: each rank sends on one tag but
/// blocks receiving on a tag the peer never uses.
#[test]
fn tag_mismatch_deadlock_is_detected() {
    let verifier = run_checked(2, |rank| {
        let peer = 1 - rank.rank();
        rank.send(peer, 10 + rank.rank() as u64, &[1.0f64]);
        // Bug: both ranks wait for tag 99; the sends used tags 10/11.
        let _ = rank.recv::<f64>(peer, 99);
    });
    let deadlocks = verifier.findings_of(FindingKind::Deadlock);
    assert_eq!(deadlocks.len(), 1, "{}", verifier.render());
    let d = &deadlocks[0].detail;
    assert!(d.contains("wait-for cycle"), "diagnostic: {d}");
    assert!(
        d.contains("rank 0: blocked in recv from rank 1 on tag 0x63"),
        "diagnostic must dump rank 0's blocked state: {d}"
    );
    assert!(
        d.contains("rank 1: blocked in recv from rank 0 on tag 0x63"),
        "diagnostic must dump rank 1's blocked state: {d}"
    );
    assert!(d.contains("call site"), "diagnostic: {d}");
}

/// A deadlock through a chain: rank 0 waits on rank 1 which waits on
/// rank 2 which waits on rank 0. The dump must name all three.
#[test]
fn three_rank_cycle_deadlock_is_detected() {
    let verifier = run_checked(3, |rank| {
        let next = (rank.rank() + 1) % rank.size();
        rank.set_context("ring-hang");
        let _ = rank.recv::<u8>(next, 5);
    });
    let deadlocks = verifier.findings_of(FindingKind::Deadlock);
    assert_eq!(deadlocks.len(), 1, "{}", verifier.render());
    let d = &deadlocks[0].detail;
    assert!(d.contains("among 3 rank(s)"), "diagnostic: {d}");
    for r in 0..3 {
        assert!(d.contains(&format!("rank {r}: blocked")), "diagnostic: {d}");
    }
    assert!(
        d.contains("ring-hang"),
        "diagnostic must carry the call site: {d}"
    );
}

/// Ranks disagree on the broadcast root.
#[test]
fn bcast_root_mismatch_is_detected() {
    let verifier = run_checked(2, |rank| {
        // Bug: each rank names itself the root.
        let _ = rank.bcast(rank.rank(), vec![rank.rank() as u64]);
    });
    let mismatches = verifier.findings_of(FindingKind::CollectiveMismatch);
    assert!(!mismatches.is_empty(), "{}", verifier.render());
    let d = &mismatches[0].detail;
    assert!(d.contains("COLLECTIVE MISMATCH"), "diagnostic: {d}");
    assert!(
        d.contains("bcast(root=0,"),
        "diagnostic must show one root: {d}"
    );
    assert!(
        d.contains("bcast(root=1,"),
        "diagnostic must show the other root: {d}"
    );
}

/// Ranks disagree on the allreduce vector length.
#[test]
fn allreduce_length_mismatch_is_detected() {
    let verifier = run_checked(2, |rank| {
        let len = 2 + rank.rank(); // bug: 2 elements on rank 0, 3 on rank 1
        let data = vec![1.0f64; len];
        let _ = rank.allreduce_f64(&data, ReduceOp::Sum);
    });
    let mismatches = verifier.findings_of(FindingKind::CollectiveMismatch);
    assert!(!mismatches.is_empty(), "{}", verifier.render());
    let d = &mismatches[0].detail;
    assert!(d.contains("len=2"), "diagnostic must show one length: {d}");
    assert!(
        d.contains("len=3"),
        "diagnostic must show the other length: {d}"
    );
}

/// A collective-kind divergence: one rank calls barrier where the other
/// calls allreduce.
#[test]
fn collective_kind_mismatch_is_detected() {
    let verifier = run_checked(2, |rank| {
        if rank.rank() == 0 {
            rank.barrier();
        } else {
            let _ = rank.allreduce_f64(&[1.0], ReduceOp::Sum);
        }
    });
    let mismatches = verifier.findings_of(FindingKind::CollectiveMismatch);
    assert!(!mismatches.is_empty(), "{}", verifier.render());
    let d = &mismatches[0].detail;
    assert!(
        d.contains("barrier(") && d.contains("allreduce("),
        "diagnostic must name both kinds: {d}"
    );
}

/// A send nobody receives is reported at finalize, with the send site.
#[test]
fn leaked_send_is_detected() {
    let verifier = run_checked(2, |rank| {
        if rank.rank() == 0 {
            rank.set_context("orphan-send");
            rank.send(1, 7, &[1.0f64, 2.0]); // bug: rank 1 never receives
            rank.set_context("main");
        }
        rank.barrier();
    });
    let leaks = verifier.findings_of(FindingKind::MessageLeak);
    assert_eq!(leaks.len(), 1, "{}", verifier.render());
    let d = &leaks[0].detail;
    assert_eq!(leaks[0].rank, 1, "the leak lands in rank 1's mailbox");
    assert!(d.contains("from rank 0"), "diagnostic: {d}");
    assert!(d.contains("tag 0x7"), "diagnostic: {d}");
    assert!(d.contains("16 bytes"), "diagnostic: {d}");
    assert!(
        d.contains("orphan-send"),
        "diagnostic must carry the send site: {d}"
    );
}

/// A started gather–scatter dropped without `gs_op_finish`: both the
/// silently-discarded in-flight traffic and the never-closed exchange
/// epoch are reported.
#[test]
fn abandoned_gs_pending_is_detected() {
    let verifier = run_checked(2, |rank| {
        // gid 1 is shared between the two ranks.
        let ids: Vec<u64> = if rank.rank() == 0 {
            vec![0, 1]
        } else {
            vec![1, 2]
        };
        let handle = GsHandle::setup(rank, &ids);
        let values = vec![1.0f64; handle.nlocal()];
        let pending = handle.gs_op_start(rank, &[&values], GsOp::Add, GsMethod::PairwiseExchange);
        drop(pending); // bug: never finished
        rank.barrier();
    });
    let abandoned = verifier.findings_of(FindingKind::AbandonedExchange);
    assert!(
        abandoned.len() >= 2,
        "expect discarded traffic and open epochs: {}",
        verifier.render()
    );
    let all = abandoned
        .iter()
        .map(|f| f.detail.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        all.contains("gs_op_start without a matching gs_op_finish"),
        "must report the open epoch: {all}"
    );
    assert!(
        all.contains("silently discarded an in-flight message"),
        "must report the cancelled traffic: {all}"
    );
    // No other defect classes: the drop machinery kept matching sound.
    assert!(verifier.findings_of(FindingKind::MessageLeak).is_empty());
    assert!(verifier.findings_of(FindingKind::Deadlock).is_empty());
}

/// Happens-before-unordered writes to the same shared slot from two
/// ranks (replica divergence) are flagged by the vector-clock detector.
#[test]
fn unordered_cross_rank_writes_are_a_race() {
    let verifier = run_checked(2, |rank| {
        let ids: Vec<u64> = if rank.rank() == 0 {
            vec![0, 7]
        } else {
            vec![7, 2]
        };
        let handle = GsHandle::setup(rank, &ids);
        let shared_slot = if rank.rank() == 0 { 1 } else { 0 };
        // Bug: both ranks update their replica of gid 7 with no ordering
        // exchange or barrier between the writes.
        handle.verify_note_access(rank, shared_slot, true, "unsynced-update");
        rank.barrier();
    });
    let races = verifier.findings_of(FindingKind::Race);
    assert!(!races.is_empty(), "{}", verifier.render());
    let d = &races[0].detail;
    assert!(d.contains("unordered cross-rank access"), "diagnostic: {d}");
    assert!(d.contains("gid 7"), "diagnostic: {d}");
    assert!(d.contains("unsynced-update"), "diagnostic: {d}");
}

/// The same two writes separated by a barrier are happens-before ordered
/// (the piggybacked clocks ride the barrier's messages): no finding.
#[test]
fn barrier_ordered_cross_rank_writes_are_clean() {
    let verifier = run_checked(2, |rank| {
        let ids: Vec<u64> = if rank.rank() == 0 {
            vec![0, 7]
        } else {
            vec![7, 2]
        };
        let handle = GsHandle::setup(rank, &ids);
        let shared_slot = if rank.rank() == 0 { 1 } else { 0 };
        if rank.rank() == 0 {
            handle.verify_note_access(rank, shared_slot, true, "writer-before");
        }
        rank.barrier();
        if rank.rank() == 1 {
            handle.verify_note_access(rank, shared_slot, true, "writer-after");
        }
        rank.barrier();
    });
    assert!(verifier.is_clean(), "{}", verifier.render());
}

/// Touching a shared slot while this rank's own split-phase exchange is
/// in flight is flagged, whichever way the scheduler lands it.
#[test]
fn write_inside_open_exchange_window_is_a_race() {
    let verifier = run_checked(2, |rank| {
        let ids: Vec<u64> = if rank.rank() == 0 {
            vec![0, 7]
        } else {
            vec![7, 2]
        };
        let handle = GsHandle::setup(rank, &ids);
        let shared_slot = if rank.rank() == 0 { 1 } else { 0 };
        let mut values = vec![1.0f64; handle.nlocal()];
        let pending = handle.gs_op_start(rank, &[&values], GsOp::Add, GsMethod::PairwiseExchange);
        // Bug: the exchange is in flight and will scatter over this slot.
        handle.verify_note_access(rank, shared_slot, true, "mid-window-write");
        handle.gs_op_finish(rank, pending, &mut [&mut values]);
    });
    let races = verifier.findings_of(FindingKind::Race);
    assert!(!races.is_empty(), "{}", verifier.render());
    let d = &races[0].detail;
    assert!(d.contains("still in flight"), "diagnostic: {d}");
    assert!(d.contains("mid-window-write"), "diagnostic: {d}");
}

/// A clean gather–scatter workload over every method produces zero
/// findings — including the autotune warm-up phase, whose probe-and-
/// discard pattern is exactly where leaks would hide.
#[test]
fn clean_gs_workload_and_autotune_have_zero_findings() {
    let verifier = Arc::new(Verifier::new());
    let world = World::new().with_verifier(verifier.clone());
    world.run(8, |rank| {
        let p = rank.size() as u64;
        let r = rank.rank() as u64;
        // A ring of shared ids: rank r shares (r) with r-1 and (r+1) with r+1.
        let ids: Vec<u64> = vec![r, 1000 + r, (r + 1) % p];
        let handle = GsHandle::setup(rank, &ids);
        let report = cmt_gs::autotune(rank, &handle, cmt_gs::AutotuneOptions::default());
        assert!(!report.timing(report.chosen).skipped);
        let mut values = vec![r as f64 + 1.0; handle.nlocal()];
        for m in GsMethod::ALL {
            handle.gs_op(rank, &mut values, GsOp::Add, m);
        }
        // Split-phase round with an overlap window.
        let pending = handle.gs_op_start(rank, &[&values], GsOp::Add, GsMethod::PairwiseExchange);
        let _busywork: f64 = values.iter().sum();
        handle.gs_op_finish(rank, pending, &mut [&mut values]);
        rank.barrier();
    });
    assert!(verifier.is_clean(), "{}", verifier.render());
}

/// `--chaos-sched`: seeded delay perturbation explores different message
/// interleavings, but a correct program's results stay bitwise identical
/// to the unperturbed run, under every seed, with zero findings — for
/// the dissemination barrier and the allreduce (the checker's CI mode).
#[test]
fn chaos_sched_runs_are_bitwise_identical_and_clean() {
    let p = 8;
    let program = |rank: &mut Rank| -> Vec<f64> {
        let mut out = Vec::new();
        for i in 0..4u64 {
            rank.barrier();
            let local = vec![
                (rank.rank() as f64 + 1.3) * (i as f64 + 0.7),
                1.0 / (rank.rank() as f64 + 2.0),
            ];
            out.extend(rank.allreduce_f64(&local, ReduceOp::Sum));
            out.push(rank.allreduce_f64(&local, ReduceOp::Max)[1]);
            out.push(rank.exscan_u64(i + rank.rank() as u64) as f64);
        }
        out
    };
    let reference = World::new().run(p, program).results;
    for seed in [1u64, 7, 42, 1234, 0xdead_beef] {
        let verifier = Arc::new(Verifier::new());
        let world = World::new()
            .with_chaos_sched(seed)
            .with_verifier(verifier.clone());
        let perturbed = world.run(p, program);
        assert_eq!(
            perturbed.results, reference,
            "chaos seed {seed} changed results"
        );
        assert!(verifier.is_clean(), "seed {seed}: {}", verifier.render());
        // The perturbation really injected delays (it is not a no-op).
        let injected: u64 = perturbed
            .stats
            .iter()
            .flat_map(|s| s.sites.iter())
            .filter(|(k, _)| k.op.is_fault())
            .map(|(_, s)| s.calls)
            .sum();
        assert!(injected > 0, "seed {seed} perturbed nothing");
    }
}

/// Point-to-point and collective traffic in a clean program leaves the
/// checker silent, and the finalize sweep reports nothing.
#[test]
fn clean_p2p_and_collectives_have_zero_findings() {
    let verifier = run_checked(5, |rank| {
        let next = (rank.rank() + 1) % rank.size();
        let prev = (rank.rank() + rank.size() - 1) % rank.size();
        for round in 0..3u64 {
            rank.send(next, round, &[rank.rank() as f64]);
            let _ = rank.recv::<f64>(prev, round);
            let _ = rank.allreduce_u64(&[round], ReduceOp::Sum);
        }
        let _ = rank.bcast(2, vec![1u8, 2, 3]);
        let _ = rank.gather(0, vec![rank.rank() as u64; rank.rank()]);
        let outgoing = vec![(next, vec![9.0f64])];
        let _ = rank.crystal_router(outgoing);
        rank.barrier();
    });
    assert!(verifier.is_clean(), "{}", verifier.render());
}
