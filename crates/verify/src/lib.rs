//! # cmt-verify
//!
//! A MUST/ISP-style dynamic correctness checker for the [`simmpi`]
//! message-passing runtime. Install a [`Verifier`] on a world
//! ([`simmpi::World::with_verifier`]) and the runtime feeds it every
//! communication event; the checker accumulates [`Finding`]s instead of
//! letting bugs manifest as hangs, silent corruption, or 300-second
//! timeouts:
//!
//! * **Deadlock detection** — blocked receives (point-to-point and
//!   collective-internal) feed a wait-for graph; a cycle that stays
//!   stable for a grace window is a confirmed deadlock, reported with a
//!   rank-by-rank dump (call site, awaited source, tag) instead of a
//!   timeout.
//! * **Collective matching** — every collective entry registers a
//!   fingerprint (kind, root, element type, length, call site) under its
//!   SPMD sequence number; the first cross-rank disagreement aborts the
//!   collective with both call sites named, before its internal messages
//!   can entangle the tag space.
//! * **Message-leak detection** — when a rank's SPMD closure returns,
//!   the runtime barriers and sweeps its mailbox: unreceived sends,
//!   discard credits for messages that never came, and split-phase
//!   exchange epochs never finished are all reported per rank.
//! * **Race detection** — each rank carries a vector clock, ticked on
//!   sends and joined on matched receives (the clock rides piggybacked
//!   on the message envelope). Application-level accesses to
//!   gather–scatter shared slots are checked for happens-before-unordered
//!   cross-rank write conflicts ("replica divergence") and for accesses
//!   made while the owning rank's own split-phase exchange is in flight.
//!
//! Pair with the seeded schedule perturbation
//! ([`simmpi::World::with_chaos_sched`]) to explore interleavings the
//! default schedule never exhibits, under the checker, in CI.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use simmpi::rank::USER_TAG_LIMIT;
use simmpi::{CollFingerprint, CollKind, LeakInfo, Tag, VerifyHooks};

/// What class of defect a [`Finding`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// A stable wait-for cycle among blocked ranks.
    Deadlock,
    /// Ranks disagreed on a collective's fingerprint (or on how many
    /// collectives they executed).
    CollectiveMismatch,
    /// A message was still unmatched in a rank's mailbox at finalize.
    MessageLeak,
    /// Split-phase exchange traffic was abandoned: a started exchange
    /// never finished, its in-flight messages were silently discarded,
    /// or discard credits outlived the run.
    AbandonedExchange,
    /// A happens-before-unordered conflicting access to a gather–scatter
    /// shared slot.
    Race,
}

impl FindingKind {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::Deadlock => "deadlock",
            FindingKind::CollectiveMismatch => "collective-mismatch",
            FindingKind::MessageLeak => "message-leak",
            FindingKind::AbandonedExchange => "abandoned-exchange",
            FindingKind::Race => "race",
        }
    }
}

/// One defect the checker observed.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Defect class.
    pub kind: FindingKind,
    /// The rank the defect was observed on (for cross-rank defects, the
    /// rank that completed the evidence).
    pub rank: usize,
    /// Human-readable diagnostic with call sites, peers, and tags.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] rank {}: {}",
            self.kind.name(),
            self.rank,
            self.detail
        )
    }
}

/// Render a finding list as the standard report block: one line per
/// finding, or a clean bill of health. [`Verifier::render`] and the
/// mini-app run reports share this format.
pub fn render_findings(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return String::from("cmt-verify: clean (0 findings)\n");
    }
    let mut out = format!("cmt-verify: {} finding(s)\n", findings.len());
    for f in findings {
        out.push_str("  ");
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Render a tag for diagnostics: collective-internal tags are decoded
/// into their sequence number and round, user tags print as-is.
fn fmt_tag(tag: Tag) -> String {
    if tag >= USER_TAG_LIMIT {
        let seq = (tag & !USER_TAG_LIMIT) >> 12;
        let round = tag & 0xfff;
        format!("collective #{seq} round {round} (tag {tag:#x})")
    } else {
        format!("tag {tag:#x}")
    }
}

fn fmt_len(len: Option<usize>) -> String {
    match len {
        Some(n) => n.to_string(),
        None => "?".into(),
    }
}

fn fmt_root(root: Option<usize>) -> String {
    match root {
        Some(r) => format!("root={r}, "),
        None => String::new(),
    }
}

/// `a` happens-before-or-equals `b` in vector-clock order.
fn vc_leq(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Neither order holds: the events are concurrent.
fn vc_concurrent(a: &[u64], b: &[u64]) -> bool {
    !vc_leq(a, b) && !vc_leq(b, a)
}

/// A blocked-receive episode, one node of the wait-for graph.
#[derive(Debug, Clone)]
struct Blocked {
    id: u64,
    src: usize,
    tag: Tag,
    context: String,
}

/// The first-registered fingerprint of one collective sequence number.
#[derive(Debug)]
struct CollRecord {
    kind: CollKind,
    root: Option<usize>,
    elem_type: &'static str,
    len: Option<usize>,
    context: String,
    first_rank: usize,
    arrived: usize,
}

impl CollRecord {
    fn describe(&self) -> String {
        format!(
            "{}({}{}, len={})",
            self.kind.name(),
            fmt_root(self.root),
            self.elem_type,
            fmt_len(self.len)
        )
    }
}

fn describe_fp(fp: &CollFingerprint<'_>) -> String {
    format!(
        "{}({}{}, len={})",
        fp.kind.name(),
        fmt_root(fp.root),
        fp.elem_type,
        fmt_len(fp.len)
    )
}

/// An open split-phase exchange on one rank.
#[derive(Debug)]
struct Epoch {
    id: u64,
    gids: HashSet<u64>,
    context: String,
}

/// One application-level access to a shared slot, for the race detector.
#[derive(Debug)]
struct SlotAccess {
    rank: usize,
    write: bool,
    clock: Vec<u64>,
    context: String,
}

/// Per-(gid, rank) history cap: enough to witness any unordered pair in
/// the fixtures while bounding memory on long runs.
const MAX_ACCESSES_PER_GID: usize = 32;

/// Cap on findings recorded per event, so a single buggy sweep over
/// thousands of slots cannot flood the report.
const MAX_FINDINGS_PER_EVENT: usize = 8;

#[derive(Debug, Default)]
struct Inner {
    size: usize,
    /// Per-rank vector clocks. Component `r` counts rank `r`'s events.
    clocks: Vec<Vec<u64>>,
    /// Currently blocked ranks (wait-for graph nodes).
    blocked: HashMap<usize, Blocked>,
    next_block_id: u64,
    /// A wait-for cycle awaiting its stability grace window:
    /// `(normalized cycle of (rank, block id), first seen)`.
    candidate: Option<(Vec<(usize, u64)>, Instant)>,
    deadlock_reported: bool,
    /// In-flight collective fingerprints, keyed by SPMD sequence number;
    /// entries retire once every rank has checked in.
    collectives: HashMap<u64, CollRecord>,
    /// Final collective count per rank, filled at finalize.
    final_seqs: Vec<Option<u64>>,
    final_seq_checked: bool,
    /// Open split-phase exchange epochs, per rank.
    open_epochs: Vec<Vec<Epoch>>,
    next_epoch: u64,
    /// Application-level shared-slot accesses, per gid.
    accesses: HashMap<u64, Vec<SlotAccess>>,
    findings: Vec<Finding>,
}

/// The checker: implement of [`simmpi::VerifyHooks`] that turns runtime
/// events into [`Finding`]s. Share one `Arc<Verifier>` with
/// [`simmpi::World::with_verifier`], run the world, then read
/// [`Verifier::findings`] / [`Verifier::render`].
#[derive(Debug)]
pub struct Verifier {
    /// How long a wait-for cycle must stay unchanged before it is
    /// declared a deadlock. Must cover a few runtime poll intervals so a
    /// message already in flight can dissolve a transient cycle.
    grace: Duration,
    inner: Mutex<Inner>,
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new()
    }
}

impl Verifier {
    /// A checker with the default 250 ms deadlock grace window.
    pub fn new() -> Verifier {
        Verifier {
            grace: Duration::from_millis(250),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Override the deadlock grace window (tests shorten it).
    pub fn with_grace(mut self, grace: Duration) -> Verifier {
        self.grace = grace;
        self
    }

    /// All findings recorded so far, in observation order.
    pub fn findings(&self) -> Vec<Finding> {
        self.inner.lock().unwrap().findings.clone()
    }

    /// Whether the run produced no findings.
    pub fn is_clean(&self) -> bool {
        self.inner.lock().unwrap().findings.is_empty()
    }

    /// Findings of one class.
    pub fn findings_of(&self, kind: FindingKind) -> Vec<Finding> {
        self.inner
            .lock()
            .unwrap()
            .findings
            .iter()
            .filter(|f| f.kind == kind)
            .cloned()
            .collect()
    }

    /// Human-readable report: one line per finding, or a clean bill.
    pub fn render(&self) -> String {
        render_findings(&self.findings())
    }

    fn push_finding(inner: &mut Inner, kind: FindingKind, rank: usize, detail: String) {
        inner.findings.push(Finding { kind, rank, detail });
    }

    /// Walk the wait-for graph from `rank`; if the walk closes a cycle,
    /// return it normalized (rotated so the smallest rank leads), so
    /// every member's poll sees the identical value.
    fn find_cycle(inner: &Inner, rank: usize) -> Option<Vec<(usize, u64)>> {
        let mut path: Vec<(usize, u64)> = Vec::new();
        let mut index: HashMap<usize, usize> = HashMap::new();
        let mut cur = rank;
        loop {
            let b = inner.blocked.get(&cur)?;
            if let Some(&i) = index.get(&cur) {
                let mut cycle = path[i..].to_vec();
                let lead = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(r, _))| r)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                cycle.rotate_left(lead);
                return Some(cycle);
            }
            index.insert(cur, path.len());
            path.push((cur, b.id));
            cur = b.src;
        }
    }

    fn deadlock_dump(inner: &Inner, cycle: &[(usize, u64)], observer: usize) -> String {
        let mut out = format!(
            "cmt-verify: DEADLOCK — wait-for cycle among {} rank(s), stable past the grace window:\n",
            cycle.len()
        );
        for &(r, _) in cycle {
            if let Some(b) = inner.blocked.get(&r) {
                out.push_str(&format!(
                    "  rank {r}: blocked in recv from rank {} on {} at call site {:?}\n",
                    b.src,
                    fmt_tag(b.tag),
                    b.context
                ));
            }
        }
        if !cycle.iter().any(|&(r, _)| r == observer) {
            if let Some(b) = inner.blocked.get(&observer) {
                out.push_str(&format!(
                    "  (observed from rank {observer}, itself blocked on rank {} at call site {:?}, waiting into the cycle)\n",
                    b.src, b.context
                ));
            }
        }
        out
    }
}

impl VerifyHooks for Verifier {
    fn on_start(&self, size: usize) {
        let mut inner = self.inner.lock().unwrap();
        inner.size = size;
        inner.clocks = vec![vec![0; size]; size];
        inner.blocked.clear();
        inner.candidate = None;
        inner.collectives.clear();
        inner.final_seqs = vec![None; size];
        inner.final_seq_checked = false;
        inner.open_epochs = (0..size).map(|_| Vec::new()).collect();
        inner.accesses.clear();
    }

    fn on_send(
        &self,
        from: usize,
        _to: usize,
        _tag: Tag,
        _bytes: u64,
        _context: &str,
    ) -> Option<Vec<u64>> {
        let mut inner = self.inner.lock().unwrap();
        inner.clocks[from][from] += 1;
        Some(inner.clocks[from].clone())
    }

    fn on_recv(&self, rank: usize, _src: usize, _tag: Tag, clock: Option<&[u64]>) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(c) = clock {
            for (mine, theirs) in inner.clocks[rank].iter_mut().zip(c) {
                *mine = (*mine).max(*theirs);
            }
        }
        inner.clocks[rank][rank] += 1;
    }

    fn on_collective(&self, rank: usize, seq: u64, fp: CollFingerprint<'_>) -> Result<(), String> {
        let mut inner = self.inner.lock().unwrap();
        let size = inner.size;
        let rec = match inner.collectives.get_mut(&seq) {
            None => {
                inner.collectives.insert(
                    seq,
                    CollRecord {
                        kind: fp.kind,
                        root: fp.root,
                        elem_type: fp.elem_type,
                        len: fp.len,
                        context: fp.context.to_owned(),
                        first_rank: rank,
                        arrived: 1,
                    },
                );
                return Ok(());
            }
            Some(rec) => rec,
        };
        let mismatch = rec.kind != fp.kind
            || rec.root != fp.root
            || rec.elem_type != fp.elem_type
            || matches!((rec.len, fp.len), (Some(a), Some(b)) if a != b);
        if mismatch {
            let diag = format!(
                "cmt-verify: COLLECTIVE MISMATCH at collective #{seq}: rank {rank} called {} at call site {:?}, but rank {} called {} at call site {:?}",
                describe_fp(&fp),
                fp.context,
                rec.first_rank,
                rec.describe(),
                rec.context,
            );
            Self::push_finding(
                &mut inner,
                FindingKind::CollectiveMismatch,
                rank,
                diag.clone(),
            );
            return Err(diag);
        }
        if rec.len.is_none() {
            // e.g. the bcast root announcing the authoritative length
            // after a non-root rank opened the record.
            rec.len = fp.len;
        }
        rec.arrived += 1;
        if rec.arrived == size {
            inner.collectives.remove(&seq);
        }
        Ok(())
    }

    fn on_block(&self, rank: usize, src: usize, tag: Tag, context: &str) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_block_id;
        inner.next_block_id += 1;
        inner.blocked.insert(
            rank,
            Blocked {
                id,
                src,
                tag,
                context: context.to_owned(),
            },
        );
        id
    }

    fn on_block_poll(&self, rank: usize, _block_id: u64) -> Option<String> {
        let mut inner = self.inner.lock().unwrap();
        if inner.deadlock_reported {
            // First observer already reported; this rank will abort via
            // the world's poison flag on its next poll.
            return None;
        }
        let cycle = Self::find_cycle(&inner, rank)?;
        match &inner.candidate {
            Some((c, first_seen)) if *c == cycle => {
                if first_seen.elapsed() < self.grace {
                    return None;
                }
                // The same blocked episodes closed the same cycle across
                // the whole grace window: every awaited message's sender
                // is itself in the cycle, so no progress is possible.
                let diag = Self::deadlock_dump(&inner, &cycle, rank);
                inner.deadlock_reported = true;
                Self::push_finding(&mut inner, FindingKind::Deadlock, rank, diag.clone());
                Some(diag)
            }
            _ => {
                inner.candidate = Some((cycle, Instant::now()));
                None
            }
        }
    }

    fn on_unblock(&self, rank: usize, block_id: u64) {
        let mut inner = self.inner.lock().unwrap();
        if inner.blocked.get(&rank).is_some_and(|b| b.id == block_id) {
            inner.blocked.remove(&rank);
        }
    }

    fn on_exchange_start(&self, rank: usize, gids: &[u64], context: &str) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_epoch;
        inner.next_epoch += 1;
        inner.open_epochs[rank].push(Epoch {
            id,
            gids: gids.iter().copied().collect(),
            context: context.to_owned(),
        });
        id
    }

    fn on_exchange_finish(&self, rank: usize, epoch: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.open_epochs[rank].retain(|e| e.id != epoch);
    }

    fn on_slot_access(&self, rank: usize, gids: &[u64], write: bool, context: &str) {
        let mut inner = self.inner.lock().unwrap();
        let mut budget = MAX_FINDINGS_PER_EVENT;
        // Rule 1: touching a slot while this rank's own split-phase
        // exchange over it is in flight — the exchange may or may not
        // observe the new value depending on scheduling.
        let mut window_hits: Vec<(u64, String)> = Vec::new();
        for ep in &inner.open_epochs[rank] {
            for g in gids {
                if ep.gids.contains(g) && budget > 0 {
                    window_hits.push((*g, ep.context.clone()));
                    budget -= 1;
                }
            }
        }
        for (g, ep_ctx) in window_hits {
            let verb = if write { "wrote" } else { "read" };
            Self::push_finding(
                &mut inner,
                FindingKind::Race,
                rank,
                format!(
                    "cmt-verify: RACE — rank {rank} {verb} shared slot gid {g} at call site {context:?} while its split-phase exchange (started at {ep_ctx:?}) was still in flight"
                ),
            );
        }
        // Rule 2: cross-rank replica divergence — two application-level
        // accesses to the same shared slot, at least one a write, with no
        // happens-before path (no exchange, barrier, or message chain)
        // ordering them.
        inner.clocks[rank][rank] += 1;
        let clock = inner.clocks[rank].clone();
        let mut race_hits: Vec<(u64, usize, bool, String)> = Vec::new();
        for g in gids {
            if let Some(prior) = inner.accesses.get(g) {
                for pa in prior {
                    if pa.rank != rank
                        && (write || pa.write)
                        && vc_concurrent(&clock, &pa.clock)
                        && budget > 0
                    {
                        race_hits.push((*g, pa.rank, pa.write, pa.context.clone()));
                        budget -= 1;
                    }
                }
            }
        }
        for (g, other_rank, other_write, other_ctx) in race_hits {
            let verb = if write { "write" } else { "read" };
            let other_verb = if other_write { "write" } else { "read" };
            Self::push_finding(
                &mut inner,
                FindingKind::Race,
                rank,
                format!(
                    "cmt-verify: RACE — unordered cross-rank access to shared slot gid {g}: {verb} on rank {rank} at call site {context:?} is concurrent (no happens-before path) with {other_verb} on rank {other_rank} at call site {other_ctx:?}; the replicas can diverge"
                ),
            );
        }
        for g in gids {
            let list = inner.accesses.entry(*g).or_default();
            if list.len() >= MAX_ACCESSES_PER_GID {
                list.remove(0);
            }
            list.push(SlotAccess {
                rank,
                write,
                clock: clock.clone(),
                context: context.to_owned(),
            });
        }
    }

    fn on_discarded(
        &self,
        rank: usize,
        src: usize,
        tag: Tag,
        bytes: u64,
        sender_context: Option<&str>,
    ) {
        let mut inner = self.inner.lock().unwrap();
        let sent_at = match sender_context {
            Some(c) => format!(" sent at call site {c:?}"),
            None => String::new(),
        };
        Self::push_finding(
            &mut inner,
            FindingKind::AbandonedExchange,
            rank,
            format!(
                "cmt-verify: ABANDONED EXCHANGE — rank {rank} silently discarded an in-flight message from rank {src} ({}, {bytes} bytes{sent_at}): its receiver dropped a started gather–scatter without finishing it",
                fmt_tag(tag)
            ),
        );
    }

    fn on_finalize(
        &self,
        rank: usize,
        coll_seq: u64,
        leaked: &[LeakInfo],
        unclaimed: &[(usize, Tag, u64)],
    ) {
        let mut inner = self.inner.lock().unwrap();
        for l in leaked {
            let sent_at = match &l.sender_context {
                Some(c) => format!(" sent at call site {c:?}"),
                None => String::new(),
            };
            Self::push_finding(
                &mut inner,
                FindingKind::MessageLeak,
                rank,
                format!(
                    "cmt-verify: MESSAGE LEAK — rank {rank} finalized with an unreceived message from rank {} ({}, {} bytes{sent_at})",
                    l.src,
                    fmt_tag(l.tag),
                    l.bytes
                ),
            );
        }
        for &(src, tag, count) in unclaimed {
            Self::push_finding(
                &mut inner,
                FindingKind::AbandonedExchange,
                rank,
                format!(
                    "cmt-verify: ABANDONED EXCHANGE — rank {rank} finalized with {count} outstanding discard credit(s) for messages from rank {src} ({}) that never arrived",
                    fmt_tag(tag)
                ),
            );
        }
        let open: Vec<String> = inner.open_epochs[rank]
            .iter()
            .map(|e| e.context.clone())
            .collect();
        for ctx in open {
            Self::push_finding(
                &mut inner,
                FindingKind::AbandonedExchange,
                rank,
                format!(
                    "cmt-verify: ABANDONED EXCHANGE — rank {rank} finalized with a split-phase gather–scatter still open (started at call site {ctx:?}): gs_op_start without a matching gs_op_finish"
                ),
            );
        }
        inner.final_seqs[rank] = Some(coll_seq);
        if !inner.final_seq_checked && inner.final_seqs.iter().all(Option::is_some) {
            inner.final_seq_checked = true;
            let seqs: Vec<u64> = inner.final_seqs.iter().map(|s| s.unwrap()).collect();
            if seqs.iter().any(|&s| s != seqs[0]) {
                let listing = seqs
                    .iter()
                    .enumerate()
                    .map(|(r, s)| format!("rank {r}: {s}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                Self::push_finding(
                    &mut inner,
                    FindingKind::CollectiveMismatch,
                    rank,
                    format!(
                        "cmt-verify: COLLECTIVE MISMATCH — ranks finalized with different collective counts ({listing}): some rank skipped or added a collective"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_clock_order() {
        assert!(vc_leq(&[1, 2], &[1, 2]));
        assert!(vc_leq(&[1, 2], &[2, 2]));
        assert!(!vc_leq(&[3, 0], &[2, 2]));
        assert!(vc_concurrent(&[3, 0], &[0, 3]));
        assert!(!vc_concurrent(&[1, 1], &[2, 2]));
    }

    #[test]
    fn tag_rendering_decodes_collective_tags() {
        assert_eq!(fmt_tag(0x5), "tag 0x5");
        let t = USER_TAG_LIMIT | (7 << 12) | 3;
        assert!(fmt_tag(t).contains("collective #7 round 3"));
    }

    #[test]
    fn render_reports_clean_when_empty() {
        let v = Verifier::new();
        assert!(v.is_clean());
        assert!(v.render().contains("clean"));
    }
}
