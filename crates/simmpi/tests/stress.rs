//! Randomized stress tests of the message-passing runtime: arbitrary
//! tag/source schedules, interleaved collectives, and payload-type mixes.
//! Randomization is seeded (`simmpi::rng::SmallRng`) so every run executes
//! the identical schedule.

use simmpi::rng::SmallRng;
use simmpi::{ReduceOp, World};

/// Every rank sends a random number of messages with random tags to every
/// other rank; receivers pull them in a *different* random order. All
/// payloads must arrive intact (the out-of-order matching path).
#[test]
fn out_of_order_matching_stress() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for _ in 0..5 {
        let p = rng.range_usize(2, 6);
        // plan[src][dst] = vec of (tag, value)
        let plan: Vec<Vec<Vec<(u64, f64)>>> = (0..p)
            .map(|src| {
                (0..p)
                    .map(|dst| {
                        if src == dst {
                            return Vec::new();
                        }
                        let n = rng.range_usize(0, 6);
                        (0..n)
                            .map(|i| (rng.range_u64(0, 3), (src * 100 + dst * 10 + i) as f64))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let shuffle_seed: u64 = rng.next_u64();
        let plan2 = plan.clone();
        let res = World::new().run(p, move |rank| {
            let me = rank.rank();
            // send everything
            for dst in 0..rank.size() {
                for &(tag, v) in &plan2[me][dst] {
                    rank.send(dst, tag, &[v]);
                }
            }
            // receive in shuffled per-(src, tag) order: FIFO holds within
            // one (src, tag) stream, so pull each stream in order but
            // interleave streams randomly.
            let mut streams: Vec<(usize, u64, usize)> = Vec::new(); // (src, tag, remaining)
            for src in 0..rank.size() {
                for tag in 0..3u64 {
                    let cnt = plan2[src][me].iter().filter(|(t, _)| *t == tag).count();
                    if cnt > 0 {
                        streams.push((src, tag, cnt));
                    }
                }
            }
            let mut order = SmallRng::seed_from_u64(shuffle_seed ^ me as u64);
            let mut got: Vec<(usize, u64, f64)> = Vec::new();
            while !streams.is_empty() {
                let pick = order.range_usize(0, streams.len());
                let (src, tag, _) = streams[pick];
                let v = rank.recv::<f64>(src, tag)[0];
                got.push((src, tag, v));
                streams[pick].2 -= 1;
                if streams[pick].2 == 0 {
                    streams.remove(pick);
                }
            }
            got
        });
        // verify: per (src, dst, tag) the value sequence matches the plan
        for dst in 0..p {
            for src in 0..p {
                for tag in 0..3u64 {
                    let sent: Vec<f64> = plan[src][dst]
                        .iter()
                        .filter(|(t, _)| *t == tag)
                        .map(|&(_, v)| v)
                        .collect();
                    let recvd: Vec<f64> = res.results[dst]
                        .iter()
                        .filter(|&&(s, t, _)| s == src && t == tag)
                        .map(|&(_, _, v)| v)
                        .collect();
                    assert_eq!(sent, recvd, "src {src} dst {dst} tag {tag}");
                }
            }
        }
    }
}

/// Mixed payload types through the same mailbox must not confuse the
/// type-erased envelopes.
#[test]
fn mixed_payload_types() {
    let res = World::new().run(2, |rank| {
        if rank.rank() == 0 {
            rank.send(1, 1, &[1.5f64, 2.5]);
            rank.send(1, 2, &[7u64, 8, 9]);
            rank.send(1, 3, &[true, false]);
            rank.send(1, 4, &["hello".to_string()]);
            0
        } else {
            let f = rank.recv::<f64>(0, 1);
            let u = rank.recv::<u64>(0, 2);
            let b = rank.recv::<bool>(0, 3);
            let s = rank.recv::<String>(0, 4);
            assert_eq!(f, vec![1.5, 2.5]);
            assert_eq!(u, vec![7, 8, 9]);
            assert_eq!(b, vec![true, false]);
            assert_eq!(s, vec!["hello".to_string()]);
            1
        }
    });
    assert_eq!(res.results, vec![0, 1]);
}

/// Random interleavings of collectives keep their sequence numbers
/// straight: a mix of barriers, bcasts and allreduces in a random
/// (but SPMD-identical) order produces the right values.
#[test]
fn random_collective_sequences() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_C011);
    for _ in 0..12 {
        let p = rng.range_usize(1, 6);
        let nops = rng.range_usize(1, 12);
        let ops: Vec<u8> = (0..nops).map(|_| rng.range_u64(0, 3) as u8).collect();
        let seed = rng.next_u64();
        let ops2 = ops.clone();
        let res = World::new().run(p, move |rank| {
            let mut acc = Vec::new();
            for (i, &op) in ops2.iter().enumerate() {
                match op {
                    0 => rank.barrier(),
                    1 => {
                        let root = (seed as usize + i) % rank.size();
                        let data = if rank.rank() == root {
                            vec![i as u64, seed % 1000]
                        } else {
                            Vec::new()
                        };
                        let got = rank.bcast(root, data);
                        acc.push(got[0]);
                    }
                    _ => {
                        let v = rank.allreduce_scalar(rank.rank() as f64 + i as f64, ReduceOp::Sum);
                        acc.push(v as u64);
                    }
                }
            }
            acc
        });
        // all ranks observed identical collective results
        for r in &res.results[1..] {
            assert_eq!(r, &res.results[0]);
        }
        // spot-check allreduce values
        let rank_sum: usize = (0..p).sum();
        let mut k = 0;
        for (i, &op) in ops.iter().enumerate() {
            match op {
                0 => {}
                1 => {
                    assert_eq!(res.results[0][k], i as u64);
                    k += 1;
                }
                _ => {
                    let expect = (rank_sum + p * i) as u64;
                    assert_eq!(res.results[0][k], expect);
                    k += 1;
                }
            }
        }
    }
}

/// Gather returns per-rank buffers in rank order for random shapes.
#[test]
fn gather_preserves_rank_order() {
    let mut rng = SmallRng::seed_from_u64(0x6A7 << 12);
    for _ in 0..12 {
        let p = rng.range_usize(1, 6);
        let root = rng.range_usize(0, p);
        let lens: Vec<usize> = (0..6).map(|_| rng.range_usize(0, 7)).collect();
        let lens2 = lens.clone();
        let res = World::new().run(p, move |rank| {
            let len = lens2[rank.rank() % lens2.len()];
            let data: Vec<u64> = (0..len as u64)
                .map(|i| rank.rank() as u64 * 1000 + i)
                .collect();
            rank.gather(root, data)
        });
        for (r, out) in res.results.iter().enumerate() {
            if r == root {
                let all = out.as_ref().unwrap();
                assert_eq!(all.len(), p);
                for (q, buf) in all.iter().enumerate() {
                    assert_eq!(buf.len(), lens[q % lens.len()]);
                    for (i, &v) in buf.iter().enumerate() {
                        assert_eq!(v, q as u64 * 1000 + i as u64);
                    }
                }
            } else {
                assert!(out.is_none());
            }
        }
    }
}
