//! The pluggable transport seam.
//!
//! A [`Rank`](crate::Rank) never touches mailboxes directly; it sends and
//! receives envelopes through a boxed [`Transport`]. Two backends exist:
//!
//! * **inproc** ([`InprocTransport`]) — the original fast path: every
//!   rank is an OS thread in one process, an envelope is a moved `Vec`,
//!   `send` is a mutex-guarded queue push. Zero serialization, zero
//!   steady-state allocation; all determinism, verification, and BENCH
//!   guarantees are native to this path.
//! * **socket** (`crate::socket`) — every rank is a child *process*
//!   connected to a rank-0 launcher hub over Unix-domain sockets (or
//!   TCP), speaking the versioned [`crate::wire`] frame format. This is
//!   the backend that escapes the one-process core count and puts real
//!   wire time behind the [`crate::NetworkModel`].
//!
//! The trait is deliberately narrow — the entire matching machinery
//! (FIFO per source/tag, discard lists, deadlock timers, verifier
//! piggybacking) lives above it in `rank.rs` and is therefore *shared*
//! by both backends, which is what makes cross-backend bitwise identity
//! checkable rather than aspirational.

use std::sync::Arc;
use std::time::Duration;

use crate::envelope::Envelope;
use crate::mailbox::Mailbox;

/// How a rank moves envelopes: the backend seam behind [`crate::Rank`].
///
/// `send` returns the nanoseconds spent *serializing* (0 for in-process
/// moves) so the caller can book wire overhead under `transport_ser`
/// instead of folding it into `MPI_Send`/`MPI_Wait`.
pub(crate) trait Transport: Send {
    /// Deliver `env` to `dest`'s incoming queue. Returns serialization
    /// nanoseconds (0 when no serialization happened).
    fn send(&self, dest: usize, env: Envelope) -> u64;

    /// Dequeue the next incoming envelope without blocking.
    fn try_pop(&self) -> Option<Envelope>;

    /// Dequeue, blocking up to `timeout` for an envelope to arrive.
    fn pop_timeout(&self, timeout: Duration) -> Option<Envelope>;

    /// Drain receive-side accounting accumulated off the rank thread
    /// (a socket backend's reader thread). Called once at rank epilogue;
    /// the default (inproc) has nothing to report.
    fn rx_drain(&mut self) -> RxDrain {
        RxDrain::default()
    }
}

/// Receive-side accounting drained from a transport at rank epilogue.
#[derive(Debug, Default)]
pub(crate) struct RxDrain {
    /// Total deserialization time, seconds.
    pub deser_s: f64,
    /// Data frames decoded.
    pub frames: u64,
    /// On-wire bytes received (frame bodies, headers included).
    pub bytes: u64,
    /// Per-message `(wire_bytes, transfer_seconds)` samples for
    /// [`crate::NetworkModel::fit`].
    pub samples: Vec<(u64, f64)>,
}

/// The in-process backend: a view over the world's shared mailbox array.
pub(crate) struct InprocTransport {
    /// All ranks' mailboxes (shared by every rank thread).
    boxes: Arc<Vec<Mailbox>>,
    /// Which mailbox is ours.
    me: usize,
}

impl InprocTransport {
    pub(crate) fn new(boxes: Arc<Vec<Mailbox>>, me: usize) -> Self {
        InprocTransport { boxes, me }
    }
}

impl Transport for InprocTransport {
    fn send(&self, dest: usize, env: Envelope) -> u64 {
        self.boxes[dest].push(env);
        0
    }

    fn try_pop(&self) -> Option<Envelope> {
        self.boxes[self.me].try_pop()
    }

    fn pop_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.boxes[self.me].pop_timeout(timeout)
    }
}

/// Which transport backend a [`crate::World`] runs on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Ranks are OS threads in this process; envelopes are moved values.
    /// The default, and the only backend usable via [`crate::World::run`].
    #[default]
    Inproc,
    /// Ranks are separate processes (or, in test mode, threads) speaking
    /// the wire format over Unix-domain/TCP sockets via a rank-0 hub.
    /// Usable via [`crate::World::run_dist`].
    Socket(SocketConfig),
}

/// Configuration of the socket backend.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SocketConfig {
    /// Listen/connect address: `"unix:/path/sock"` or `"tcp:host:port"`.
    /// `None` picks a fresh Unix-domain socket under the temp directory.
    pub addr: Option<String>,
    /// Run rank "children" as threads of the launcher process instead of
    /// spawned child processes. Same sockets, same wire format, same hub
    /// — but usable from library tests and benches, where re-executing
    /// the current binary would re-enter the test harness.
    pub threads: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inproc_send_reports_zero_serialization() {
        let boxes = Arc::new(vec![Mailbox::new(), Mailbox::new()]);
        let t0 = InprocTransport::new(Arc::clone(&boxes), 0);
        let t1 = InprocTransport::new(boxes, 1);
        let ser = t0.send(1, Envelope::new(0, 7, vec![1.0f64, 2.0]));
        assert_eq!(ser, 0);
        let env = t1.try_pop().expect("delivered");
        assert_eq!((env.src, env.tag), (0, 7));
        assert_eq!(env.open::<f64>(), vec![1.0, 2.0]);
        assert!(t1.try_pop().is_none());
    }

    #[test]
    fn inproc_rx_drain_is_empty() {
        let boxes = Arc::new(vec![Mailbox::new()]);
        let mut t = InprocTransport::new(boxes, 0);
        let d = t.rx_drain();
        assert_eq!(d.frames, 0);
        assert!(d.samples.is_empty());
    }

    #[test]
    fn transport_kind_defaults_to_inproc() {
        assert_eq!(TransportKind::default(), TransportKind::Inproc);
        let s = SocketConfig::default();
        assert!(s.addr.is_none());
        assert!(!s.threads);
    }
}
