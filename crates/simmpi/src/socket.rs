//! The multi-process socket backend.
//!
//! Topology is a star: the launcher (the process the user started) binds
//! a Unix-domain or TCP listener and acts as a **hub**; every rank is a
//! **child** — a re-executed copy of the current binary in process mode,
//! or a thread of the launcher in [`crate::SocketConfig::threads`] test
//! mode — holding exactly one connection to the hub. The hub forwards
//! data frames between children by peeking the destination rank at a
//! fixed offset ([`crate::wire::peek_data_dest`]), serves verifier-hook
//! RPCs against the launcher's single [`VerifyHooks`] instance (checker
//! state must be global across ranks), collects each child's encoded
//! return value + [`CommStats`], and broadcasts a poison frame when a
//! child dies so blocked peers abort instead of deadlocking — the same
//! guarantee the in-process backend gets from its shared poison flag.
//!
//! Each child runs a detached **reader thread** that decodes incoming
//! data frames (staging payload buffers through the rank's shared
//! [`BufferPool`]) into an in-memory [`Mailbox`], so the rank thread's
//! receive path above the transport seam is byte-for-byte the same code
//! as inproc. The reader also timestamps every frame against the
//! sender's embedded send time, accumulating the measured
//! `(wire_bytes, seconds)` samples that [`crate::NetworkModel::fit`]
//! consumes.
//!
//! Process-mode children are spawned as `current_exe()` with the
//! launcher's own arguments plus three environment variables
//! (`SIMMPI_SOCKET_RANK`/`_SIZE`/`_ADDR`); the child re-parses the
//! identical argv, rebuilds the identical `World` (fault plans, network
//! model, pooling, workers), and [`crate::World::run_dist`] diverts it
//! into [`child_env`]-guided [`run_child_process`], which never returns.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::envelope::Envelope;
use crate::mailbox::Mailbox;
use crate::pool::BufferPool;
use crate::rank::{Rank, Tag};
use crate::stats::CommStats;
use crate::transport::{RxDrain, SocketConfig, Transport};
use crate::verify::{CollFingerprint, CollKind, LeakInfo, VerifyHooks};
use crate::wire::{
    self, put_str, put_u32, put_u64, put_u8, FrameKind, WireCodec, WireError, WireReader,
};
use crate::world::{World, WorldResult};

const ENV_RANK: &str = "SIMMPI_SOCKET_RANK";
const ENV_SIZE: &str = "SIMMPI_SOCKET_SIZE";
const ENV_ADDR: &str = "SIMMPI_SOCKET_ADDR";

/// Most latency/bandwidth samples retained per rank.
const SAMPLE_CAP: usize = 4096;

/// How long the hub waits for all ranks to connect at startup.
const CONNECT_DEADLINE: Duration = Duration::from_secs(60);

// ---------------------------------------------------------------------
// connections and addressing
// ---------------------------------------------------------------------

/// One duplex connection, Unix-domain or TCP.
pub(crate) enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }

    fn set_nonblocking(&self, v: bool) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_nonblocking(v),
            Conn::Tcp(s) => s.set_nonblocking(v),
        }
    }

    fn shutdown_write(&self) {
        let _ = match self {
            Conn::Unix(s) => s.shutdown(Shutdown::Write),
            Conn::Tcp(s) => s.shutdown(Shutdown::Write),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self, v: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(v),
            Listener::Tcp(l) => l.set_nonblocking(v),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
        }
    }
}

/// A fresh auto-assigned Unix-domain address under the temp directory.
fn auto_addr() -> String {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    format!(
        "unix:{}/simmpi-{}-{}.sock",
        std::env::temp_dir().display(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// Bind `addr`, returning the listener and the *resolved* address string
/// children must connect to (TCP port 0 resolves to the assigned port).
fn bind(addr: &str) -> io::Result<(Listener, String)> {
    if let Some(path) = addr.strip_prefix("unix:") {
        let _ = std::fs::remove_file(path);
        Ok((Listener::Unix(UnixListener::bind(path)?), addr.to_owned()))
    } else if let Some(hp) = addr.strip_prefix("tcp:") {
        let l = TcpListener::bind(hp)?;
        let actual = format!("tcp:{}", l.local_addr()?);
        Ok((Listener::Tcp(l), actual))
    } else {
        Err(io::Error::other(format!(
            "bad transport address {addr:?} (want unix:<path> or tcp:<host>:<port>)"
        )))
    }
}

/// Connect to the hub, retrying briefly (a process-mode child can win the
/// race against the launcher finishing its spawn loop).
fn connect(addr: &str) -> io::Result<Conn> {
    let mut last = io::Error::other("no connection attempt made");
    for _ in 0..500 {
        let res = if let Some(path) = addr.strip_prefix("unix:") {
            UnixStream::connect(path).map(Conn::Unix)
        } else if let Some(hp) = addr.strip_prefix("tcp:") {
            TcpStream::connect(hp).map(|s| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            })
        } else {
            return Err(io::Error::other(format!(
                "bad transport address {addr:?} (want unix:<path> or tcp:<host>:<port>)"
            )));
        };
        match res {
            Ok(c) => return Ok(c),
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Err(last)
}

/// Read one length-prefixed frame body into `buf`. `Ok(false)` is a clean
/// EOF at a frame boundary; EOF mid-frame is an error.
fn read_frame(r: &mut Conn, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut len4 = [0u8; 4];
    match r.read_exact(&mut len4) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(false),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len4) as usize;
    if len > wire::MAX_FRAME {
        return Err(io::Error::other(format!("oversized frame ({len} bytes)")));
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

/// Write one length-prefixed frame.
fn write_frame(w: &mut Conn, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

fn control_frame(kind: FrameKind) -> Vec<u8> {
    let mut body = Vec::with_capacity(16);
    wire::begin_frame(&mut body, kind);
    wire::end_frame(&mut body);
    body
}

// ---------------------------------------------------------------------
// child endpoint
// ---------------------------------------------------------------------

/// Single-slot blocking reply channel for verifier RPCs. At most one
/// reply-bearing call is outstanding per child (guarded by
/// [`VerifyClient::call`]), so one slot suffices.
#[derive(Default)]
struct RpcSlot {
    slot: Mutex<Option<Vec<u8>>>,
    dead: AtomicBool,
    cv: Condvar,
}

impl RpcSlot {
    fn put(&self, v: Vec<u8>) {
        *self.slot.lock().unwrap() = Some(v);
        self.cv.notify_all();
    }

    /// Permanently wake waiters with failure (the hub went away).
    fn fail(&self) {
        self.dead.store(true, Ordering::Relaxed);
        self.cv.notify_all();
    }

    fn wait(&self) -> Vec<u8> {
        let mut g = self.slot.lock().unwrap();
        loop {
            if let Some(v) = g.take() {
                return v;
            }
            if self.dead.load(Ordering::Relaxed) {
                panic!("verify channel lost: the launcher hub went away");
            }
            let (g2, _) = self.cv.wait_timeout(g, Duration::from_millis(50)).unwrap();
            g = g2;
        }
    }
}

/// A child rank's shared connection state: the write half (under a lock,
/// shared by the rank thread and the verify client), the inbox the
/// reader thread fills, and the receive-side accounting the transport
/// drains at rank epilogue.
struct Endpoint {
    me: usize,
    writer: Mutex<Conn>,
    /// Reused serialization scratch buffer — steady-state sends reuse its
    /// capacity instead of allocating per message.
    tx: Mutex<Vec<u8>>,
    inbox: Mailbox,
    pool: BufferPool,
    poisoned: Arc<AtomicBool>,
    rx_deser_nanos: AtomicU64,
    rx_frames: AtomicU64,
    rx_bytes: AtomicU64,
    samples: Mutex<Vec<(u64, f64)>>,
    rpc: RpcSlot,
}

impl Endpoint {
    fn send_frame(&self, body: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer.lock().unwrap(), body)
    }
}

/// The child's receive loop, run on a detached thread: decode data
/// frames into the inbox, hand verify replies to the waiting RPC slot,
/// and raise the poison flag on a poison frame or on any disconnect.
fn reader_loop(ep: Arc<Endpoint>, mut conn: Conn) {
    let mut buf = Vec::new();
    while let Ok(true) = read_frame(&mut conn, &mut buf) {
        match wire::open_frame(&buf) {
            Ok((FrameKind::Data, mut r)) => {
                let t0 = Instant::now();
                match wire::decode_data(&mut r, &ep.pool) {
                    Ok(d) => {
                        let dt = t0.elapsed().as_nanos() as u64;
                        ep.rx_deser_nanos.fetch_add(dt, Ordering::Relaxed);
                        ep.rx_frames.fetch_add(1, Ordering::Relaxed);
                        ep.rx_bytes.fetch_add(d.wire_bytes, Ordering::Relaxed);
                        let lat = wire::now_nanos().saturating_sub(d.stamp_nanos) as f64 * 1e-9;
                        {
                            let mut s = ep.samples.lock().unwrap();
                            if s.len() < SAMPLE_CAP {
                                s.push((d.wire_bytes, lat));
                            }
                        }
                        ep.inbox.push(d.env);
                    }
                    Err(_) => break,
                }
            }
            Ok((FrameKind::VerifyRep, mut r)) => ep.rpc.put(r.rest().to_vec()),
            Ok((FrameKind::Poison, _)) => {
                ep.poisoned.store(true, Ordering::Relaxed);
            }
            _ => break,
        }
    }
    // Disconnect (clean or not): a blocked rank must not wait out the
    // deadlock timer for a hub that is gone. By the time the hub closes
    // a *healthy* child's connection, that child's closure has already
    // returned, so the late poison is unobserved.
    ep.poisoned.store(true, Ordering::Relaxed);
    ep.rpc.fail();
}

/// The [`Transport`] over a child endpoint.
pub(crate) struct SocketTransport {
    ep: Arc<Endpoint>,
}

impl Transport for SocketTransport {
    fn send(&self, dest: usize, env: Envelope) -> u64 {
        if dest == self.ep.me {
            // Self-sends never leave the process: no serialization, and
            // bitwise-identical payload delivery, exactly as inproc.
            self.ep.inbox.push(env);
            return 0;
        }
        let mut tx = self.ep.tx.lock().unwrap();
        let t0 = Instant::now();
        wire::encode_data(&mut tx, dest, &env);
        let ser = (t0.elapsed().as_nanos() as u64).max(1);
        if let Err(e) = self.ep.send_frame(&tx) {
            if self.ep.poisoned.load(Ordering::Relaxed) {
                panic!(
                    "rank {}: aborting send to rank {dest}: a peer rank failed",
                    self.ep.me
                );
            }
            panic!(
                "rank {}: socket send to rank {dest} failed: {e}",
                self.ep.me
            );
        }
        ser
    }

    fn try_pop(&self) -> Option<Envelope> {
        self.ep.inbox.try_pop()
    }

    fn pop_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.ep.inbox.pop_timeout(timeout)
    }

    fn rx_drain(&mut self) -> RxDrain {
        RxDrain {
            deser_s: self.ep.rx_deser_nanos.swap(0, Ordering::Relaxed) as f64 * 1e-9,
            frames: self.ep.rx_frames.swap(0, Ordering::Relaxed),
            bytes: self.ep.rx_bytes.swap(0, Ordering::Relaxed),
            samples: std::mem::take(&mut *self.ep.samples.lock().unwrap()),
        }
    }
}

// ---------------------------------------------------------------------
// verifier RPC
// ---------------------------------------------------------------------

const M_SEND: u8 = 1;
const M_RECV: u8 = 2;
const M_COLLECTIVE: u8 = 3;
const M_BLOCK: u8 = 4;
const M_BLOCK_POLL: u8 = 5;
const M_UNBLOCK: u8 = 6;
const M_EXCHANGE_START: u8 = 7;
const M_EXCHANGE_FINISH: u8 = 8;
const M_SLOT_ACCESS: u8 = 9;
const M_DISCARDED: u8 = 10;
const M_FINALIZE: u8 = 11;

fn coll_kind_to_u8(k: CollKind) -> u8 {
    match k {
        CollKind::Barrier => 0,
        CollKind::Bcast => 1,
        CollKind::Reduce => 2,
        CollKind::Allreduce => 3,
        CollKind::Exscan => 4,
        CollKind::Gather => 5,
        CollKind::Alltoallv => 6,
        CollKind::CrystalRouter => 7,
    }
}

fn coll_kind_from_u8(v: u8) -> Result<CollKind, WireError> {
    Ok(match v {
        0 => CollKind::Barrier,
        1 => CollKind::Bcast,
        2 => CollKind::Reduce,
        3 => CollKind::Allreduce,
        4 => CollKind::Exscan,
        5 => CollKind::Gather,
        6 => CollKind::Alltoallv,
        7 => CollKind::CrystalRouter,
        _ => return Err(WireError::Malformed("collective kind")),
    })
}

fn put_u64_slice(buf: &mut Vec<u8>, s: &[u64]) {
    put_u64(buf, s.len() as u64);
    for &x in s {
        put_u64(buf, x);
    }
}

fn put_opt_u64_slice(buf: &mut Vec<u8>, s: Option<&[u64]>) {
    match s {
        None => put_u8(buf, 0),
        Some(s) => {
            put_u8(buf, 1);
            put_u64_slice(buf, s);
        }
    }
}

fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => put_u8(buf, 0),
        Some(s) => {
            put_u8(buf, 1);
            put_str(buf, s);
        }
    }
}

/// Intern a decoded element-type name: [`CollFingerprint::elem_type`]
/// wants `&'static str`. The distinct type names per program are a
/// handful, so the leak is bounded.
fn intern(s: &str) -> &'static str {
    static CACHE: OnceLock<Mutex<std::collections::HashMap<String, &'static str>>> =
        OnceLock::new();
    let mut map = CACHE
        .get_or_init(|| Mutex::new(std::collections::HashMap::new()))
        .lock()
        .unwrap();
    if let Some(&v) = map.get(s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    map.insert(s.to_owned(), leaked);
    leaked
}

/// A child-side [`VerifyHooks`] proxy: every hook call is serialized to
/// the hub, where the launcher's real checker runs with global state.
/// Reply-bearing hooks block on the RPC slot; notification-only hooks
/// are fire-and-forget (per-stream FIFO keeps them ordered ahead of the
/// child's result frame). Not an allocation-free path — the verifier is
/// a debugging mode on every backend.
struct VerifyClient {
    ep: Arc<Endpoint>,
    /// Serializes reply-bearing calls so replies match requests.
    call: Mutex<()>,
}

impl std::fmt::Debug for VerifyClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyClient")
            .field("rank", &self.ep.me)
            .finish()
    }
}

impl VerifyClient {
    /// Fire-and-forget notification.
    fn notify(&self, build: impl FnOnce(&mut Vec<u8>)) {
        let mut body = Vec::new();
        wire::begin_frame(&mut body, FrameKind::VerifyReq);
        build(&mut body);
        wire::end_frame(&mut body);
        if self.ep.send_frame(&body).is_err() {
            self.ep.poisoned.store(true, Ordering::Relaxed);
        }
    }

    /// Reply-bearing call: send the request and block for the hub's reply.
    fn rpc(&self, build: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
        let _g = self.call.lock().unwrap();
        let mut body = Vec::new();
        wire::begin_frame(&mut body, FrameKind::VerifyReq);
        build(&mut body);
        wire::end_frame(&mut body);
        if self.ep.send_frame(&body).is_err() {
            panic!("verify channel lost: the launcher hub went away");
        }
        self.ep.rpc.wait()
    }
}

impl VerifyHooks for VerifyClient {
    fn on_start(&self, _size: usize) {
        // The hub announces the world before spawning children.
    }

    fn on_send(
        &self,
        from: usize,
        to: usize,
        tag: Tag,
        bytes: u64,
        context: &str,
    ) -> Option<Vec<u64>> {
        let rep = self.rpc(|b| {
            put_u8(b, M_SEND);
            put_u32(b, from as u32);
            put_u32(b, to as u32);
            put_u64(b, tag);
            put_u64(b, bytes);
            put_str(b, context);
        });
        let mut r = WireReader::new(&rep);
        Option::<Vec<u64>>::decode(&mut r).expect("on_send reply")
    }

    fn on_recv(&self, rank: usize, src: usize, tag: Tag, clock: Option<&[u64]>) {
        self.notify(|b| {
            put_u8(b, M_RECV);
            put_u32(b, rank as u32);
            put_u32(b, src as u32);
            put_u64(b, tag);
            put_opt_u64_slice(b, clock);
        });
    }

    fn on_collective(&self, rank: usize, seq: u64, fp: CollFingerprint<'_>) -> Result<(), String> {
        let rep = self.rpc(|b| {
            put_u8(b, M_COLLECTIVE);
            put_u32(b, rank as u32);
            put_u64(b, seq);
            put_u8(b, coll_kind_to_u8(fp.kind));
            fp.root.map(|v| v as u64).encode(b);
            put_str(b, fp.elem_type);
            fp.len.map(|v| v as u64).encode(b);
            put_str(b, fp.context);
        });
        let mut r = WireReader::new(&rep);
        match Option::<String>::decode(&mut r).expect("on_collective reply") {
            None => Ok(()),
            Some(diag) => Err(diag),
        }
    }

    fn on_block(&self, rank: usize, src: usize, tag: Tag, context: &str) -> u64 {
        let rep = self.rpc(|b| {
            put_u8(b, M_BLOCK);
            put_u32(b, rank as u32);
            put_u32(b, src as u32);
            put_u64(b, tag);
            put_str(b, context);
        });
        let mut r = WireReader::new(&rep);
        u64::decode(&mut r).expect("on_block reply")
    }

    fn on_block_poll(&self, rank: usize, block_id: u64) -> Option<String> {
        let rep = self.rpc(|b| {
            put_u8(b, M_BLOCK_POLL);
            put_u32(b, rank as u32);
            put_u64(b, block_id);
        });
        let mut r = WireReader::new(&rep);
        Option::<String>::decode(&mut r).expect("on_block_poll reply")
    }

    fn on_unblock(&self, rank: usize, block_id: u64) {
        self.notify(|b| {
            put_u8(b, M_UNBLOCK);
            put_u32(b, rank as u32);
            put_u64(b, block_id);
        });
    }

    fn on_exchange_start(&self, rank: usize, gids: &[u64], context: &str) -> u64 {
        let rep = self.rpc(|b| {
            put_u8(b, M_EXCHANGE_START);
            put_u32(b, rank as u32);
            put_u64_slice(b, gids);
            put_str(b, context);
        });
        let mut r = WireReader::new(&rep);
        u64::decode(&mut r).expect("on_exchange_start reply")
    }

    fn on_exchange_finish(&self, rank: usize, epoch: u64) {
        self.notify(|b| {
            put_u8(b, M_EXCHANGE_FINISH);
            put_u32(b, rank as u32);
            put_u64(b, epoch);
        });
    }

    fn on_slot_access(&self, rank: usize, gids: &[u64], write: bool, context: &str) {
        self.notify(|b| {
            put_u8(b, M_SLOT_ACCESS);
            put_u32(b, rank as u32);
            put_u64_slice(b, gids);
            put_u8(b, write as u8);
            put_str(b, context);
        });
    }

    fn on_discarded(
        &self,
        rank: usize,
        src: usize,
        tag: Tag,
        bytes: u64,
        sender_context: Option<&str>,
    ) {
        self.notify(|b| {
            put_u8(b, M_DISCARDED);
            put_u32(b, rank as u32);
            put_u32(b, src as u32);
            put_u64(b, tag);
            put_u64(b, bytes);
            put_opt_str(b, sender_context);
        });
    }

    fn on_finalize(
        &self,
        rank: usize,
        coll_seq: u64,
        leaked: &[LeakInfo],
        unclaimed: &[(usize, Tag, u64)],
    ) {
        self.notify(|b| {
            put_u8(b, M_FINALIZE);
            put_u32(b, rank as u32);
            put_u64(b, coll_seq);
            put_u64(b, leaked.len() as u64);
            for l in leaked {
                l.encode(b);
            }
            put_u64(b, unclaimed.len() as u64);
            for &(src, tag, n) in unclaimed {
                put_u64(b, src as u64);
                put_u64(b, tag);
                put_u64(b, n);
            }
        });
    }
}

/// Hub side: decode one verify-hook request and dispatch it to the real
/// checker. Returns the encoded reply for reply-bearing methods.
fn serve_verify(
    hooks: &dyn VerifyHooks,
    r: &mut WireReader<'_>,
) -> Result<Option<Vec<u8>>, WireError> {
    match r.u8()? {
        M_SEND => {
            let from = r.u32()? as usize;
            let to = r.u32()? as usize;
            let tag = r.u64()?;
            let bytes = r.u64()?;
            let ctx = r.str()?;
            let clock = hooks.on_send(from, to, tag, bytes, ctx);
            let mut out = Vec::new();
            clock.encode(&mut out);
            Ok(Some(out))
        }
        M_RECV => {
            let rank = r.u32()? as usize;
            let src = r.u32()? as usize;
            let tag = r.u64()?;
            let clock = Option::<Vec<u64>>::decode(r)?;
            hooks.on_recv(rank, src, tag, clock.as_deref());
            Ok(None)
        }
        M_COLLECTIVE => {
            let rank = r.u32()? as usize;
            let seq = r.u64()?;
            let kind = coll_kind_from_u8(r.u8()?)?;
            let root = Option::<u64>::decode(r)?.map(|v| v as usize);
            let elem_type = intern(r.str()?);
            let len = Option::<u64>::decode(r)?.map(|v| v as usize);
            let context = r.str()?;
            let fp = CollFingerprint {
                kind,
                root,
                elem_type,
                len,
                context,
            };
            let reply: Option<String> = hooks.on_collective(rank, seq, fp).err();
            let mut out = Vec::new();
            reply.encode(&mut out);
            Ok(Some(out))
        }
        M_BLOCK => {
            let rank = r.u32()? as usize;
            let src = r.u32()? as usize;
            let tag = r.u64()?;
            let ctx = r.str()?;
            let id = hooks.on_block(rank, src, tag, ctx);
            let mut out = Vec::new();
            id.encode(&mut out);
            Ok(Some(out))
        }
        M_BLOCK_POLL => {
            let rank = r.u32()? as usize;
            let block_id = r.u64()?;
            let diag = hooks.on_block_poll(rank, block_id);
            let mut out = Vec::new();
            diag.encode(&mut out);
            Ok(Some(out))
        }
        M_UNBLOCK => {
            let rank = r.u32()? as usize;
            let block_id = r.u64()?;
            hooks.on_unblock(rank, block_id);
            Ok(None)
        }
        M_EXCHANGE_START => {
            let rank = r.u32()? as usize;
            let gids = Vec::<u64>::decode(r)?;
            let ctx = r.str()?;
            let epoch = hooks.on_exchange_start(rank, &gids, ctx);
            let mut out = Vec::new();
            epoch.encode(&mut out);
            Ok(Some(out))
        }
        M_EXCHANGE_FINISH => {
            let rank = r.u32()? as usize;
            let epoch = r.u64()?;
            hooks.on_exchange_finish(rank, epoch);
            Ok(None)
        }
        M_SLOT_ACCESS => {
            let rank = r.u32()? as usize;
            let gids = Vec::<u64>::decode(r)?;
            let write = r.u8()? != 0;
            let ctx = r.str()?;
            hooks.on_slot_access(rank, &gids, write, ctx);
            Ok(None)
        }
        M_DISCARDED => {
            let rank = r.u32()? as usize;
            let src = r.u32()? as usize;
            let tag = r.u64()?;
            let bytes = r.u64()?;
            let sender_ctx = Option::<String>::decode(r)?;
            hooks.on_discarded(rank, src, tag, bytes, sender_ctx.as_deref());
            Ok(None)
        }
        M_FINALIZE => {
            let rank = r.u32()? as usize;
            let coll_seq = r.u64()?;
            let leaked = Vec::<LeakInfo>::decode(r)?;
            let n = r.count(24)?;
            let mut unclaimed = Vec::with_capacity(n);
            for _ in 0..n {
                let src = r.u64()? as usize;
                let tag = r.u64()?;
                let count = r.u64()?;
                unclaimed.push((src, tag, count));
            }
            hooks.on_finalize(rank, coll_seq, &leaked, &unclaimed);
            Ok(None)
        }
        _ => Err(WireError::Malformed("verify method")),
    }
}

// ---------------------------------------------------------------------
// child session
// ---------------------------------------------------------------------

/// `(rank, size, addr)` when this process is a spawned socket-backend
/// child, from the environment the launcher set.
pub(crate) fn child_env() -> Option<(usize, usize, String)> {
    let rank = std::env::var(ENV_RANK).ok()?.parse().ok()?;
    let size = std::env::var(ENV_SIZE).ok()?.parse().ok()?;
    let addr = std::env::var(ENV_ADDR).ok()?;
    Some((rank, size, addr))
}

/// Entry point for a process-mode child: run the rank session, then exit
/// without returning to the driver (the launcher prints reports; a child
/// that "returned" would re-run the driver's post-world code).
pub(crate) fn run_child_process<T, F>(
    world: &World,
    rank: usize,
    size: usize,
    addr: &str,
    f: &F,
) -> !
where
    T: Send + WireCodec,
    F: Fn(&mut Rank) -> T + Send + Sync,
{
    let conn = connect(addr)
        .unwrap_or_else(|e| panic!("rank {rank}: cannot reach launcher at {addr}: {e}"));
    child_session(world, rank, size, conn, f);
    std::process::exit(0);
}

/// One rank's life on the socket backend: handshake, run the SPMD
/// closure over a [`SocketTransport`], ship the encoded result. Shared
/// verbatim by process-mode children and thread-mode child threads.
fn child_session<T, F>(world: &World, rank: usize, size: usize, mut conn: Conn, f: &F)
where
    T: Send + WireCodec,
    F: Fn(&mut Rank) -> T + Send + Sync,
{
    let mut buf = Vec::new();
    wire::begin_frame(&mut buf, FrameKind::Hello);
    put_u32(&mut buf, rank as u32);
    put_u32(&mut buf, size as u32);
    wire::end_frame(&mut buf);
    write_frame(&mut conn, &buf).unwrap_or_else(|e| panic!("rank {rank}: hello failed: {e}"));
    let got =
        read_frame(&mut conn, &mut buf).unwrap_or_else(|e| panic!("rank {rank}: lost hub: {e}"));
    assert!(got, "rank {rank}: hub closed before go");
    match wire::open_frame(&buf) {
        Ok((FrameKind::Go, _)) => {}
        other => panic!("rank {rank}: expected go frame, got {other:?}"),
    }

    let writer = conn.try_clone().expect("connection clone");
    let poisoned = Arc::new(AtomicBool::new(false));
    let ep = Arc::new(Endpoint {
        me: rank,
        writer: Mutex::new(writer),
        tx: Mutex::new(Vec::new()),
        inbox: Mailbox::new(),
        pool: BufferPool::new(world.pooling),
        poisoned: Arc::clone(&poisoned),
        rx_deser_nanos: AtomicU64::new(0),
        rx_frames: AtomicU64::new(0),
        rx_bytes: AtomicU64::new(0),
        samples: Mutex::new(Vec::new()),
        rpc: RpcSlot::default(),
    });
    let ep_r = Arc::clone(&ep);
    // Detached: exits on hub disconnect, which the launcher triggers by
    // closing its connections once every rank has delivered its result.
    std::thread::spawn(move || reader_loop(ep_r, conn));

    // A dying *process* closes its socket and the hub sees EOF; a dying
    // *thread* (thread mode, or any panic that unwinds through here)
    // must close it explicitly, or the hub never learns and every peer
    // blocks until its deadlock timer.
    struct ShutdownOnPanic(Arc<Endpoint>);
    impl Drop for ShutdownOnPanic {
        fn drop(&mut self) {
            if std::thread::panicking() {
                if let Ok(w) = self.0.writer.lock() {
                    w.shutdown_write();
                }
            }
        }
    }
    let _guard = ShutdownOnPanic(Arc::clone(&ep));

    // Hook calls must reach the *launcher's* checker — verifier state
    // (wait-for graphs, collective fingerprints) spans ranks, and with
    // process isolation a local checker instance would see one rank only.
    let verify: Option<Arc<dyn VerifyHooks>> = world.verify.as_ref().map(|_| {
        Arc::new(VerifyClient {
            ep: Arc::clone(&ep),
            call: Mutex::new(()),
        }) as Arc<dyn VerifyHooks>
    });
    let transport = Box::new(SocketTransport {
        ep: Arc::clone(&ep),
    });
    let (out, stats) = crate::world::execute_rank(
        world,
        rank,
        size,
        transport,
        ep.pool.clone(),
        poisoned,
        verify,
        f,
    );

    let mut body = Vec::new();
    wire::begin_frame(&mut body, FrameKind::Result);
    out.encode(&mut body);
    stats.encode(&mut body);
    wire::end_frame(&mut body);
    ep.send_frame(&body)
        .unwrap_or_else(|e| panic!("rank {rank}: result delivery failed: {e}"));
    // Clean-EOF the hub's reader; the write half going down is the
    // "this rank is done" signal, the read half stays open for late
    // traffic until the launcher tears the world down.
    ep.writer.lock().unwrap().shutdown_write();
}

// ---------------------------------------------------------------------
// launcher hub
// ---------------------------------------------------------------------

/// Per-child hub loop: forward data frames to their destination writer,
/// serve verify RPCs, capture the result frame. Returns the child's
/// encoded result, or `None` if it disconnected without one (died) —
/// in which case every other child has been sent a poison frame.
fn hub_reader(
    r: usize,
    p: usize,
    mut conn: Conn,
    writers: Arc<Vec<Mutex<Conn>>>,
    verify: Option<Arc<dyn VerifyHooks>>,
) -> Option<Vec<u8>> {
    let mut buf = Vec::new();
    let mut result: Option<Vec<u8>> = None;
    while let Ok(true) = read_frame(&mut conn, &mut buf) {
        if let Some(dest) = wire::peek_data_dest(&buf) {
            if dest >= p {
                break; // corrupt destination
            }
            // Forwarded verbatim — the destination child validates the
            // checksum. Write errors are ignored: the destination may
            // have finished and exited (its unreceived messages are the
            // same app-level leak the inproc backend tolerates); genuine
            // deaths are caught by that child's own EOF.
            let _ = write_frame(&mut writers[dest].lock().unwrap(), &buf);
            continue;
        }
        match wire::open_frame(&buf) {
            Ok((FrameKind::VerifyReq, mut rd)) => {
                let Some(v) = verify.as_deref() else { break };
                match serve_verify(v, &mut rd) {
                    Ok(Some(reply)) => {
                        let mut body = Vec::new();
                        wire::begin_frame(&mut body, FrameKind::VerifyRep);
                        body.extend_from_slice(&reply);
                        wire::end_frame(&mut body);
                        let _ = write_frame(&mut writers[r].lock().unwrap(), &body);
                    }
                    Ok(None) => {}
                    Err(_) => break,
                }
            }
            Ok((FrameKind::Result, mut rd)) => result = Some(rd.rest().to_vec()),
            _ => break,
        }
    }
    if result.is_none() {
        let poison = control_frame(FrameKind::Poison);
        for (q, w) in writers.iter().enumerate() {
            if q != r {
                let _ = write_frame(&mut w.lock().unwrap(), &poison);
            }
        }
    }
    result
}

/// Launcher entry: bind, spawn the ranks (processes or threads), route
/// traffic until every rank delivers a result or dies, and decode the
/// per-rank results and statistics into a [`WorldResult`].
pub(crate) fn run_launcher<T, F>(
    world: &World,
    p: usize,
    cfg: &SocketConfig,
    f: &F,
) -> WorldResult<T>
where
    T: Send + WireCodec,
    F: Fn(&mut Rank) -> T + Send + Sync,
{
    let requested = cfg.addr.clone().unwrap_or_else(auto_addr);
    let (listener, addr) = bind(&requested)
        .unwrap_or_else(|e| panic!("socket transport cannot bind {requested}: {e}"));
    if let Some(v) = &world.verify {
        v.on_start(p);
    }

    let mut procs: Vec<Child> = Vec::new();
    if !cfg.threads {
        let exe = std::env::current_exe().expect("current_exe for child re-exec");
        for r in 0..p {
            // The child re-parses the identical argv, rebuilds the
            // identical World (fault plan, net model, pooling, workers),
            // and diverts into child_session via the env triple.
            let child = Command::new(&exe)
                .args(std::env::args_os().skip(1))
                .env(ENV_RANK, r.to_string())
                .env(ENV_SIZE, p.to_string())
                .env(ENV_ADDR, &addr)
                .spawn()
                .unwrap_or_else(|e| panic!("cannot spawn rank {r}: {e}"));
            procs.push(child);
        }
    }

    let mut result_bytes: Vec<Option<Vec<u8>>> = (0..p).map(|_| None).collect();
    let mut failed: Vec<usize> = Vec::new();
    let mut child_panic: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        let mut kids = Vec::new();
        if cfg.threads {
            for r in 0..p {
                let addr = addr.clone();
                kids.push(scope.spawn(move || {
                    let conn = connect(&addr)
                        .unwrap_or_else(|e| panic!("rank {r}: cannot reach hub: {e}"));
                    child_session(world, r, p, conn, f);
                }));
            }
        }

        // Accept all ranks' hellos (non-blocking so a child that died
        // before connecting fails the launch instead of hanging it).
        listener.set_nonblocking(true).expect("listener mode");
        let deadline = Instant::now() + CONNECT_DEADLINE;
        let mut conns: Vec<Option<Conn>> = (0..p).map(|_| None).collect();
        let mut accepted = 0usize;
        let mut startup_err: Option<String> = None;
        while accepted < p {
            match listener.accept() {
                Ok(conn) => {
                    conn.set_nonblocking(false).expect("conn mode");
                    let mut conn = conn;
                    let mut buf = Vec::new();
                    let hello = (|| -> Result<usize, String> {
                        if !read_frame(&mut conn, &mut buf).map_err(|e| e.to_string())? {
                            return Err("closed before hello".into());
                        }
                        let (kind, mut rd) = wire::open_frame(&buf).map_err(|e| e.to_string())?;
                        if kind != FrameKind::Hello {
                            return Err(format!("expected hello, got {kind:?}"));
                        }
                        let rank = rd.u32().map_err(|e| e.to_string())? as usize;
                        let size = rd.u32().map_err(|e| e.to_string())? as usize;
                        if size != p || rank >= p {
                            return Err(format!(
                                "rank {rank}/{size} does not fit a {p}-rank world"
                            ));
                        }
                        Ok(rank)
                    })();
                    match hello {
                        Ok(rank) if conns[rank].is_none() => {
                            conns[rank] = Some(conn);
                            accepted += 1;
                        }
                        Ok(rank) => {
                            startup_err = Some(format!("rank {rank} connected twice"));
                            break;
                        }
                        Err(e) => {
                            startup_err = Some(e);
                            break;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if let Some(dead) = procs
                        .iter_mut()
                        .position(|c| matches!(c.try_wait(), Ok(Some(_))))
                    {
                        startup_err = Some(format!("rank {dead} exited before connecting"));
                        break;
                    }
                    if Instant::now() > deadline {
                        startup_err = Some(format!("only {accepted}/{p} ranks connected"));
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    startup_err = Some(e.to_string());
                    break;
                }
            }
        }
        if let Some(e) = startup_err {
            for c in &mut procs {
                let _ = c.kill();
            }
            // Thread-mode kids fail on their own (connect retry window
            // expires / hub conns drop) and their panics surface below.
            panic!("socket transport startup failed: {e}");
        }

        let writers: Arc<Vec<Mutex<Conn>>> = Arc::new(
            conns
                .iter()
                .map(|c| Mutex::new(c.as_ref().unwrap().try_clone().expect("connection clone")))
                .collect(),
        );
        let go = control_frame(FrameKind::Go);
        for w in writers.iter() {
            write_frame(&mut w.lock().unwrap(), &go).expect("go frame");
        }

        let mut readers = Vec::with_capacity(p);
        for (r, slot) in conns.iter_mut().enumerate() {
            let conn = slot.take().unwrap();
            let writers = Arc::clone(&writers);
            let verify = world.verify.clone();
            readers.push(scope.spawn(move || hub_reader(r, p, conn, writers, verify)));
        }
        for (r, h) in readers.into_iter().enumerate() {
            match h.join() {
                Ok(Some(bytes)) => result_bytes[r] = Some(bytes),
                Ok(None) => failed.push(r),
                Err(_) => failed.push(r),
            }
        }
        for h in kids {
            if let Err(payload) = h.join() {
                if child_panic.is_none() {
                    child_panic = Some(payload);
                }
            }
        }
    });

    for (r, mut c) in procs.into_iter().enumerate() {
        match c.wait() {
            Ok(status) if status.success() => {}
            _ => failed.push(r),
        }
    }
    if let Some(path) = addr.strip_prefix("unix:") {
        let _ = std::fs::remove_file(path);
    }
    // Thread-mode parity with inproc: re-raise the original panic payload.
    if let Some(payload) = child_panic {
        std::panic::resume_unwind(payload);
    }
    failed.sort_unstable();
    failed.dedup();
    if let Some(&r) = failed.first() {
        panic!("rank {r} failed on the socket transport");
    }

    let mut results = Vec::with_capacity(p);
    let mut stats = Vec::with_capacity(p);
    for (r, bytes) in result_bytes.into_iter().enumerate() {
        let bytes = bytes.expect("every rank delivered or failed");
        let mut rd = WireReader::new(&bytes);
        let out = T::decode(&mut rd)
            .unwrap_or_else(|e| panic!("rank {r}: result frame does not decode: {e}"));
        let st = CommStats::decode(&mut rd)
            .unwrap_or_else(|e| panic!("rank {r}: stats frame does not decode: {e}"));
        results.push(out);
        stats.push(st);
    }
    WorldResult { results, stats }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use crate::rank::{Rank, Tag};
    use crate::stats::MpiOp;
    use crate::transport::{SocketConfig, TransportKind};
    use crate::verify::{CollFingerprint, LeakInfo, VerifyHooks};
    use crate::{ReduceOp, World};

    /// A socket-backend world in thread mode (children as threads of the
    /// test process; process mode would re-exec the test harness).
    fn socket_world() -> World {
        World::new().with_transport(TransportKind::Socket(SocketConfig {
            addr: None,
            threads: true,
        }))
    }

    #[test]
    fn socket_ring_matches_inproc() {
        let program = |rank: &mut Rank| {
            let next = (rank.rank() + 1) % rank.size();
            let prev = (rank.rank() + rank.size() - 1) % rank.size();
            rank.send(next, 7, &[rank.rank() as u64 * 3 + 1]);
            rank.recv::<u64>(prev, 7)[0]
        };
        for p in [2usize, 3, 5] {
            let inproc = World::new().run(p, program);
            let socket = socket_world().run_dist(p, program);
            assert_eq!(inproc.results, socket.results, "p={p}");
        }
    }

    #[test]
    fn socket_collectives_and_crystal_match_inproc() {
        let program = |rank: &mut Rank| {
            rank.set_context("smoke");
            let sum = rank.allreduce_f64(&[rank.rank() as f64 + 0.25], ReduceOp::Sum)[0];
            let bc = rank.bcast(
                0,
                if rank.rank() == 0 {
                    vec![41u64, 7]
                } else {
                    Vec::new()
                },
            );
            let outgoing: Vec<(usize, Vec<u64>)> = (0..rank.size())
                .map(|q| (q, vec![(rank.rank() * 100 + q) as u64; 40]))
                .collect();
            let arrived = rank.crystal_router(outgoing);
            let routed: u64 = arrived.iter().flat_map(|(_, d)| d.iter()).sum();
            (sum, bc[0] + routed, arrived.len())
        };
        let p = 5;
        let inproc = World::new().run(p, program);
        let socket = socket_world().run_dist(p, program);
        for r in 0..p {
            assert_eq!(inproc.results[r].0.to_bits(), socket.results[r].0.to_bits());
            assert_eq!(inproc.results[r].1, socket.results[r].1);
            assert_eq!(inproc.results[r].2, socket.results[r].2);
        }
    }

    #[test]
    fn socket_stats_carry_wire_overhead_and_samples() {
        let program = |rank: &mut Rank| {
            let next = (rank.rank() + 1) % rank.size();
            let prev = (rank.rank() + rank.size() - 1) % rank.size();
            for i in 0..4u64 {
                rank.send(next, i, &[1.0f64; 512]);
                let _ = rank.recv::<f64>(prev, i);
            }
            0u64
        };
        let res = socket_world().run_dist(3, program);
        for st in &res.stats {
            let tx = st
                .sites
                .iter()
                .any(|(k, _)| k.op == MpiOp::TransportSer && k.context != "transport:rx");
            assert!(tx, "rank {} recorded no serialization site", st.rank);
            let rx = st.site(MpiOp::TransportSer, "transport:rx").unwrap();
            assert_eq!(rx.calls, 4, "rank {} decoded frames", st.rank);
            assert!(
                !st.net_samples.is_empty(),
                "rank {} has no samples",
                st.rank
            );
            for &(bytes, secs) in &st.net_samples {
                assert!(bytes > 4096, "wire bytes {bytes} below payload size");
                assert!(secs >= 0.0);
            }
        }
        // inproc books on the same program carry neither
        let inproc = World::new().run(3, program);
        for st in &inproc.stats {
            assert!(st.sites.iter().all(|(k, _)| k.op != MpiOp::TransportSer));
            assert!(st.net_samples.is_empty());
        }
    }

    #[test]
    #[should_panic]
    fn socket_peer_failure_poisons_blocked_ranks() {
        let _ = socket_world().run_dist(3, |rank: &mut Rank| {
            match rank.rank() {
                1 => panic!("rank 1 exploded"),
                _ => {
                    let from = (rank.rank() + 1) % rank.size();
                    let _ = rank.recv::<f64>(from, 99);
                }
            }
            0u64
        });
    }

    #[derive(Debug, Default)]
    struct CountingHooks {
        starts: AtomicU64,
        sends: AtomicU64,
        recvs: AtomicU64,
        clocked_recvs: AtomicU64,
        colls: AtomicU64,
        finals: AtomicU64,
    }

    impl VerifyHooks for CountingHooks {
        fn on_start(&self, _size: usize) {
            self.starts.fetch_add(1, Ordering::Relaxed);
        }
        fn on_send(
            &self,
            from: usize,
            _to: usize,
            _tag: Tag,
            _bytes: u64,
            _ctx: &str,
        ) -> Option<Vec<u64>> {
            self.sends.fetch_add(1, Ordering::Relaxed);
            Some(vec![from as u64, 7])
        }
        fn on_recv(&self, _rank: usize, src: usize, _tag: Tag, clock: Option<&[u64]>) {
            self.recvs.fetch_add(1, Ordering::Relaxed);
            if clock == Some(&[src as u64, 7]) {
                self.clocked_recvs.fetch_add(1, Ordering::Relaxed);
            }
        }
        fn on_collective(
            &self,
            _rank: usize,
            _seq: u64,
            _fp: CollFingerprint<'_>,
        ) -> Result<(), String> {
            self.colls.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn on_block(&self, _rank: usize, _src: usize, _tag: Tag, _ctx: &str) -> u64 {
            11
        }
        fn on_block_poll(&self, _rank: usize, _block_id: u64) -> Option<String> {
            None
        }
        fn on_unblock(&self, _rank: usize, _block_id: u64) {}
        fn on_exchange_start(&self, _rank: usize, _gids: &[u64], _ctx: &str) -> u64 {
            0
        }
        fn on_exchange_finish(&self, _rank: usize, _epoch: u64) {}
        fn on_slot_access(&self, _rank: usize, _gids: &[u64], _write: bool, _ctx: &str) {}
        fn on_discarded(
            &self,
            _rank: usize,
            _src: usize,
            _tag: Tag,
            _bytes: u64,
            _ctx: Option<&str>,
        ) {
        }
        fn on_finalize(
            &self,
            _rank: usize,
            _seq: u64,
            leaked: &[LeakInfo],
            unclaimed: &[(usize, Tag, u64)],
        ) {
            assert!(leaked.is_empty() && unclaimed.is_empty());
            self.finals.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn socket_verify_hooks_reach_the_hub_checker() {
        let hooks = Arc::new(CountingHooks::default());
        let res = socket_world()
            .with_verifier(hooks.clone())
            .run_dist(3, |rank: &mut Rank| {
                let next = (rank.rank() + 1) % rank.size();
                let prev = (rank.rank() + rank.size() - 1) % rank.size();
                rank.send(next, 3, &[rank.rank() as f64; 32]);
                let got = rank.recv::<f64>(prev, 3);
                rank.allreduce_u64(&[got.len() as u64], ReduceOp::Sum)[0]
            });
        assert_eq!(res.results, vec![96, 96, 96]);
        assert_eq!(hooks.starts.load(Ordering::Relaxed), 1);
        // 3 user sends plus collective-internal traffic, all via RPC
        assert!(hooks.sends.load(Ordering::Relaxed) >= 3);
        assert!(hooks.recvs.load(Ordering::Relaxed) >= 3);
        assert_eq!(
            hooks.clocked_recvs.load(Ordering::Relaxed),
            hooks.recvs.load(Ordering::Relaxed),
            "piggybacked clocks must survive the wire"
        );
        // allreduce + the finalize barrier, fingerprinted on each rank
        assert!(hooks.colls.load(Ordering::Relaxed) >= 6);
        assert_eq!(hooks.finals.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn socket_transport_works_over_tcp() {
        let world = World::new().with_transport(TransportKind::Socket(SocketConfig {
            addr: Some("tcp:127.0.0.1:0".into()),
            threads: true,
        }));
        let res = world.run_dist(3, |rank: &mut Rank| {
            rank.allreduce_u64(&[rank.rank() as u64 + 1], ReduceOp::Sum)[0]
        });
        assert_eq!(res.results, vec![6, 6, 6]);
    }
}
