//! World construction: spawning ranks and collecting results.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::faults::{FaultPlan, FaultState};
use crate::mailbox::Mailbox;
use crate::netmodel::NetworkModel;
use crate::pool::BufferPool;
use crate::rank::{DiscardList, Rank};
use crate::stats::{CommRecorder, CommStats, MpiOp};
use crate::transport::{InprocTransport, Transport, TransportKind};
use crate::verify::VerifyHooks;
use crate::wire::WireCodec;

/// A world of `P` simulated MPI ranks. Construct once, then [`World::run`]
/// an SPMD closure on it.
///
/// ```
/// use simmpi::{World, ReduceOp};
///
/// let res = World::new().run(4, |rank| {
///     // every rank contributes its id; everyone receives the sum
///     rank.allreduce_scalar(rank.rank() as f64, ReduceOp::Sum)
/// });
/// assert_eq!(res.results, vec![6.0; 4]);
/// // per-rank mpiP-style statistics come back alongside the results
/// assert_eq!(res.stats.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct World {
    pub(crate) net: Option<NetworkModel>,
    pub(crate) faults: Option<Arc<FaultPlan>>,
    pub(crate) verify: Option<Arc<dyn VerifyHooks>>,
    pub(crate) pooling: bool,
    pub(crate) workers: usize,
    pub(crate) worker_counters: Option<crate::workers::AllocCounterFn>,
    pub(crate) transport: TransportKind,
}

impl Default for World {
    fn default() -> Self {
        World {
            net: None,
            faults: None,
            verify: None,
            pooling: true,
            workers: 1,
            worker_counters: None,
            transport: TransportKind::Inproc,
        }
    }
}

/// Everything a [`World::run`] produces: the per-rank return values and
/// the per-rank communication statistics, both indexed by rank.
#[derive(Debug)]
pub struct WorldResult<T> {
    /// Per-rank return values of the SPMD closure.
    pub results: Vec<T>,
    /// Per-rank communication statistics (the mpiP books).
    pub stats: Vec<CommStats>,
}

impl World {
    /// A world without a network model (only real time is recorded).
    pub fn new() -> Self {
        World::default()
    }

    /// A world that additionally accumulates modelled network time.
    pub fn with_network(net: NetworkModel) -> Self {
        World {
            net: Some(net),
            ..World::default()
        }
    }

    /// Install a deterministic [`FaultPlan`]. Message-level hazards
    /// (delays, drop/retransmit) are injected by the runtime on every
    /// point-to-point and collective-internal send; scheduled rank kills
    /// are surfaced to drivers via [`Rank::fault_plan`].
    ///
    /// # Panics
    /// Panics if the plan fails [`FaultPlan::validate`] at `run` time
    /// (e.g. a kill targets a rank outside the world).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Install a dynamic verifier (the `cmt-verify` checker, or any
    /// [`VerifyHooks`] implementation). The runtime then feeds it every
    /// send, matched receive, blocked-receive episode, collective
    /// fingerprint, and shared-slot access, piggybacks vector clocks on
    /// message envelopes, and runs a finalize-time message-leak sweep as
    /// each rank's closure returns.
    pub fn with_verifier(mut self, hooks: Arc<dyn VerifyHooks>) -> Self {
        self.verify = Some(hooks);
        self
    }

    /// Seeded schedule perturbation: install a [`FaultPlan`] whose delay
    /// hazard jitters a random-but-deterministic subset of sends
    /// ([`FaultPlan::chaos`]), exploring message interleavings the normal
    /// schedule never exhibits — pointed at CI runs under the checker.
    /// Overlays the delay hazard and seed onto any fault plan already
    /// installed, keeping its kills and drop hazard.
    pub fn with_chaos_sched(mut self, seed: u64) -> Self {
        let base = self
            .faults
            .as_ref()
            .map(|p| (**p).clone())
            .unwrap_or_default();
        self.faults = Some(Arc::new(FaultPlan::chaos_over(base, seed)));
        self
    }

    /// Give every rank a [`crate::WorkerPool`] of `workers` participants
    /// (the rank thread plus `workers - 1` spawned threads) for intra-rank
    /// element-loop parallelism — the MPI+X hybrid mode. `workers <= 1`
    /// (the default) creates no pool and spawns nothing.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Install a thread-local heap-counter function (shaped like
    /// `cmt_perf::alloc::thread_counts`) that worker pools snapshot
    /// around each job, so worker-thread allocations can be charged back
    /// to the dispatching rank's profiler regions.
    pub fn with_worker_alloc_counters(mut self, f: crate::workers::AllocCounterFn) -> Self {
        self.worker_counters = Some(f);
        self
    }

    /// Enable or disable per-rank payload-buffer recycling (the
    /// [`BufferPool`]); on by default. With pooling off, every receive
    /// allocates and every returned buffer is freed — the `--no-pool`
    /// escape hatch for isolating pool bugs or measuring its benefit.
    pub fn with_pooling(mut self, on: bool) -> Self {
        self.pooling = on;
        self
    }

    /// Select the transport backend for [`World::run_dist`]:
    /// [`TransportKind::Inproc`] (the default — ranks as threads of this
    /// process) or [`TransportKind::Socket`] (ranks as child processes
    /// over Unix-domain/TCP sockets). [`World::run`] always uses the
    /// in-process backend regardless of this setting, because it cannot
    /// ship arbitrary `T` results across a process boundary.
    pub fn with_transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Run `f` as an SPMD program on `p` ranks (one OS thread each) and
    /// wait for completion.
    ///
    /// # Panics
    /// Panics if `p == 0`, or if any rank panics (after poisoning the
    /// remaining ranks so they abort instead of deadlocking).
    pub fn run<T, F>(&self, p: usize, f: F) -> WorldResult<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Send + Sync,
    {
        assert!(p > 0, "world needs at least one rank");
        if let Some(plan) = &self.faults {
            if let Err(e) = plan.validate(p) {
                panic!("invalid fault plan: {e}");
            }
        }
        let mailboxes: Arc<Vec<Mailbox>> = Arc::new((0..p).map(|_| Mailbox::new()).collect());
        let poisoned = Arc::new(AtomicBool::new(false));
        if let Some(v) = &self.verify {
            v.on_start(p);
        }
        let f = &f;
        let world = self;

        let mut slots: Vec<Option<(T, CommStats)>> = Vec::with_capacity(p);
        for _ in 0..p {
            slots.push(None);
        }

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for r in 0..p {
                let mailboxes = Arc::clone(&mailboxes);
                let poisoned = Arc::clone(&poisoned);
                let verify = self.verify.clone();
                handles.push(scope.spawn(move || {
                    let transport = Box::new(InprocTransport::new(mailboxes, r));
                    let pool = BufferPool::new(world.pooling);
                    execute_rank(world, r, p, transport, pool, poisoned, verify, f)
                }));
            }
            for (r, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(pair) => slots[r] = Some(pair),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        let mut results = Vec::with_capacity(p);
        let mut stats = Vec::with_capacity(p);
        for s in slots {
            let (out, st) = s.expect("rank finished without result");
            results.push(out);
            stats.push(st);
        }
        WorldResult { results, stats }
    }

    /// Run `f` as an SPMD program on `p` ranks over the configured
    /// transport backend ([`World::with_transport`]).
    ///
    /// On [`TransportKind::Inproc`] this is exactly [`World::run`]. On
    /// [`TransportKind::Socket`] this process becomes the launcher hub:
    /// it spawns `p` copies of the current executable (one per rank,
    /// re-invoked with the same arguments), routes their wire-format
    /// frames, and decodes their [`WireCodec`]-encoded results — which is
    /// why `T` needs the extra bound. When the current process *is* one
    /// of those spawned children (detected from the environment the
    /// launcher set), this call runs that single rank against the hub
    /// and exits the process without returning; driver code after
    /// `run_dist` therefore executes on the launcher only.
    ///
    /// # Panics
    /// Panics if `p == 0`, the fault plan is invalid, any rank fails, or
    /// the socket handshake cannot be established.
    pub fn run_dist<T, F>(&self, p: usize, f: F) -> WorldResult<T>
    where
        T: Send + WireCodec,
        F: Fn(&mut Rank) -> T + Send + Sync,
    {
        match &self.transport {
            TransportKind::Inproc => self.run(p, f),
            TransportKind::Socket(cfg) => {
                if let Some((rank, size, addr)) = crate::socket::child_env() {
                    crate::socket::run_child_process(self, rank, size, &addr, &f)
                } else {
                    assert!(p > 0, "world needs at least one rank");
                    if let Some(plan) = &self.faults {
                        if let Err(e) = plan.validate(p) {
                            panic!("invalid fault plan: {e}");
                        }
                    }
                    crate::socket::run_launcher(self, p, cfg, &f)
                }
            }
        }
    }
}

/// Run one rank to completion over `transport`: build the [`Rank`],
/// execute the SPMD closure, run the finalize-time leak check, drain the
/// transport's receive-side accounting into the mpiP books, and finish
/// the statistics. Shared by the in-process backend (one call per rank
/// thread) and the socket backend (one call per rank process).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_rank<T, F>(
    world: &World,
    r: usize,
    p: usize,
    transport: Box<dyn Transport>,
    pool: BufferPool,
    poisoned: Arc<AtomicBool>,
    verify: Option<Arc<dyn VerifyHooks>>,
    f: &F,
) -> (T, CommStats)
where
    F: Fn(&mut Rank) -> T,
{
    // Poison the world if this rank unwinds, so blocked peers abort
    // promptly instead of deadlocking.
    struct PoisonOnPanic(Arc<AtomicBool>);
    impl Drop for PoisonOnPanic {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::Relaxed);
            }
        }
    }
    let _guard = PoisonOnPanic(Arc::clone(&poisoned));
    let faults = world
        .faults
        .as_ref()
        .map(|plan| FaultState::for_rank(Arc::clone(plan), r));
    let mut rank = Rank {
        rank: r,
        size: p,
        pending: VecDeque::with_capacity(128),
        transport,
        pool,
        ctx_spares: Vec::with_capacity(8),
        poisoned,
        recorder: CommRecorder::default(),
        context: String::from("main"),
        net: world.net,
        modeled_time_s: 0.0,
        coll_seq: 0,
        user_seq: 0,
        faults,
        injected_delay_us: 0,
        op_badge: None,
        discards: DiscardList::default(),
        verify,
        finalized: false,
        workers: if world.workers > 1 {
            Some(Arc::new(crate::workers::WorkerPool::new(
                world.workers,
                world.worker_counters,
            )))
        } else {
            None
        },
    };
    let start = Instant::now();
    let out = f(&mut rank);
    // Finalize-time leak check (idempotent; drivers may have run it
    // already under a profiler region).
    rank.verify_finalize();
    let app_time = start.elapsed().as_secs_f64();
    let drain = rank.transport.rx_drain();
    if drain.frames > 0 {
        rank.recorder.record_bulk(
            MpiOp::TransportSer,
            "transport:rx",
            drain.frames,
            drain.deser_s,
            drain.bytes,
        );
    }
    let mut stats = rank.recorder.finish(r, app_time);
    stats.net_samples = drain.samples;
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MpiOp, ReduceOp};

    #[test]
    fn single_rank_world_runs() {
        let res = World::new().run(1, |rank| rank.rank() + rank.size());
        assert_eq!(res.results, vec![1]);
        assert_eq!(res.stats.len(), 1);
    }

    #[test]
    fn ring_send_recv() {
        for p in [2usize, 3, 5, 8] {
            let res = World::new().run(p, |rank| {
                let next = (rank.rank() + 1) % rank.size();
                let prev = (rank.rank() + rank.size() - 1) % rank.size();
                rank.send(next, 7, &[rank.rank() as u64]);
                rank.recv::<u64>(prev, 7)[0]
            });
            for (r, &got) in res.results.iter().enumerate() {
                assert_eq!(got as usize, (r + p - 1) % p, "p={p}");
            }
        }
    }

    #[test]
    fn tag_matching_is_fifo_per_source_tag() {
        let res = World::new().run(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 1, &[10.0f64]);
                rank.send(1, 2, &[20.0f64]);
                rank.send(1, 1, &[11.0f64]);
                Vec::new()
            } else {
                // receive out of posting order: tag 2 first
                let a = rank.recv::<f64>(0, 2);
                let b = rank.recv::<f64>(0, 1);
                let c = rank.recv::<f64>(0, 1);
                vec![a[0], b[0], c[0]]
            }
        });
        assert_eq!(res.results[1], vec![20.0, 10.0, 11.0]);
    }

    #[test]
    fn isend_wait_recv_records_wait_time() {
        let res = World::new().run(2, |rank| {
            if rank.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
                rank.isend(1, 5, &[1.0f64; 100]);
            } else {
                let req = rank.irecv(1 - 1, 5);
                let data = rank.wait_recv::<f64>(req);
                assert_eq!(data.len(), 100);
            }
        });
        let wait = res.stats[1].site(MpiOp::Wait, "main").expect("wait site");
        assert_eq!(wait.calls, 1);
        assert_eq!(wait.bytes, 800);
        assert!(wait.time_s > 0.02, "wait time {} too small", wait.time_s);
    }

    #[test]
    fn barrier_completes_for_odd_and_even_worlds() {
        for p in [1usize, 2, 3, 4, 7, 16] {
            let res = World::new().run(p, |rank| {
                for _ in 0..3 {
                    rank.barrier();
                }
                true
            });
            assert!(res.results.iter().all(|&b| b), "p={p}");
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for p in [2usize, 3, 5, 8, 13] {
            let res = World::new().run(p, |rank| {
                let mut got = Vec::new();
                for root in 0..rank.size() {
                    let data = if rank.rank() == root {
                        vec![root as u64 * 100, 42]
                    } else {
                        Vec::new()
                    };
                    got.push(rank.bcast(root, data));
                }
                got
            });
            for r in 0..p {
                for root in 0..p {
                    assert_eq!(res.results[r][root], vec![root as u64 * 100, 42], "p={p}");
                }
            }
        }
    }

    #[test]
    fn allreduce_sum_matches_serial() {
        for p in [1usize, 2, 3, 6, 8, 11] {
            let res = World::new().run(p, |rank| {
                let local = vec![rank.rank() as f64, 1.0, -(rank.rank() as f64)];
                rank.allreduce_f64(&local, ReduceOp::Sum)
            });
            let sum_ranks: f64 = (0..p).map(|r| r as f64).sum();
            for r in 0..p {
                assert_eq!(res.results[r][0], sum_ranks, "p={p} rank {r}");
                assert_eq!(res.results[r][1], p as f64);
                assert_eq!(res.results[r][2], -sum_ranks);
            }
        }
    }

    #[test]
    fn allreduce_min_max() {
        let res = World::new().run(5, |rank| {
            let v = rank.rank() as u64 + 10;
            (
                rank.allreduce_u64(&[v], ReduceOp::Min)[0],
                rank.allreduce_u64(&[v], ReduceOp::Max)[0],
            )
        });
        for &(mn, mx) in &res.results {
            assert_eq!(mn, 10);
            assert_eq!(mx, 14);
        }
    }

    #[test]
    fn reduce_to_nonzero_root() {
        let res = World::new().run(6, |rank| {
            rank.reduce_with(4, &[1.0f64, rank.rank() as f64], |a, b| *a += b)
        });
        for (r, out) in res.results.iter().enumerate() {
            if r == 4 {
                let v = out.as_ref().expect("root gets result");
                assert_eq!(v[0], 6.0);
                assert_eq!(v[1], 15.0);
            } else {
                assert!(out.is_none());
            }
        }
    }

    #[test]
    fn exscan_matches_serial_prefix_sums() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            let res = World::new().run(p, |rank| {
                let v = (rank.rank() as u64 + 1) * 10;
                rank.exscan_u64(v)
            });
            let mut expect = 0u64;
            for (r, &got) in res.results.iter().enumerate() {
                assert_eq!(got, expect, "p={p} rank {r}");
                expect += (r as u64 + 1) * 10;
            }
        }
    }

    #[test]
    fn exscan_of_zeros_is_zero() {
        let res = World::new().run(4, |rank| rank.exscan_u64(0));
        assert!(res.results.iter().all(|&v| v == 0));
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let res = World::new().run(4, |rank| {
            rank.gather(2, vec![rank.rank() as u64; rank.rank()])
        });
        for (r, out) in res.results.iter().enumerate() {
            if r == 2 {
                let all = out.as_ref().unwrap();
                for (q, buf) in all.iter().enumerate() {
                    assert_eq!(buf.len(), q);
                    assert!(buf.iter().all(|&v| v as usize == q));
                }
            } else {
                assert!(out.is_none());
            }
        }
    }

    #[test]
    fn alltoallv_exchanges_everything() {
        for p in [1usize, 2, 3, 4, 7] {
            let res = World::new().run(p, |rank| {
                let sends: Vec<Vec<u64>> = (0..rank.size())
                    .map(|q| vec![(rank.rank() * 100 + q) as u64; q + 1])
                    .collect();
                rank.alltoallv(sends)
            });
            for r in 0..p {
                for q in 0..p {
                    let buf = &res.results[r][q];
                    assert_eq!(buf.len(), r + 1, "p={p}");
                    assert!(buf.iter().all(|&v| v == (q * 100 + r) as u64));
                }
            }
        }
    }

    #[test]
    fn crystal_router_delivers_all_messages() {
        for p in [1usize, 2, 3, 5, 6, 8, 12, 16] {
            let res = World::new().run(p, |rank| {
                // every rank sends one message to every rank (incl. self)
                let outgoing: Vec<(usize, Vec<u64>)> = (0..rank.size())
                    .map(|q| (q, vec![(rank.rank() * 1000 + q) as u64]))
                    .collect();
                rank.crystal_router(outgoing)
            });
            for r in 0..p {
                let arrived = &res.results[r];
                assert_eq!(arrived.len(), p, "p={p} rank {r}");
                for (src, data) in arrived {
                    assert_eq!(data, &vec![(src * 1000 + r) as u64], "p={p}");
                }
            }
        }
    }

    #[test]
    fn crystal_router_sparse_pattern() {
        // only rank 0 sends, to the highest rank
        let p = 6;
        let res = World::new().run(p, |rank| {
            let outgoing = if rank.rank() == 0 {
                vec![(p - 1, vec![9.0f64, 8.0])]
            } else {
                Vec::new()
            };
            rank.crystal_router(outgoing)
        });
        for r in 0..p - 1 {
            assert!(res.results[r].is_empty());
        }
        assert_eq!(res.results[p - 1], vec![(0, vec![9.0, 8.0])]);
    }

    #[test]
    fn stats_account_send_bytes() {
        let res = World::new().run(2, |rank| {
            rank.set_context("exchange");
            if rank.rank() == 0 {
                rank.send(1, 3, &[0u64; 16]);
            } else {
                let _ = rank.recv::<u64>(0, 3);
            }
        });
        let s = res.stats[0].site(MpiOp::Send, "exchange").unwrap();
        assert_eq!(s.calls, 1);
        assert_eq!(s.bytes, 128);
        let r = res.stats[1].site(MpiOp::Recv, "exchange").unwrap();
        assert_eq!(r.bytes, 128);
        assert!(res.stats[0].mpi_fraction() <= 1.0 + 1e-9);
    }

    #[test]
    fn network_model_accumulates_modeled_time() {
        let net = NetworkModel {
            latency_s: 1e-3,
            bandwidth_bps: 1e9,
        };
        let res = World::with_network(net).run(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 1, &[0u8; 1000]);
            } else {
                let _ = rank.recv::<u8>(0, 1);
            }
            rank.modeled_time_s()
        });
        // sender modelled one 1000-byte message
        let expect = 1e-3 + 1000.0 / 1e9;
        assert!((res.results[0] - expect).abs() < 1e-12);
        assert_eq!(res.results[1], 0.0);
    }

    #[test]
    fn iprobe_sees_arrived_message() {
        let res = World::new().run(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 9, &[1.0f64]);
                rank.recv::<u8>(1, 10); // ack to keep world alive
                false
            } else {
                // spin until probe sees it
                let mut seen = false;
                for _ in 0..10_000 {
                    if rank.iprobe(0, 9) {
                        seen = true;
                        break;
                    }
                    std::thread::yield_now();
                }
                let _ = rank.recv::<f64>(0, 9);
                rank.send(0, 10, &[1u8]);
                seen
            }
        });
        assert!(res.results[1]);
    }

    #[test]
    #[should_panic]
    fn zero_rank_world_rejected() {
        let _ = World::new().run(0, |_| ());
    }

    /// Failure injection: when one rank dies, peers blocked in receives
    /// must abort promptly (poisoned world) instead of deadlocking, and
    /// a panic must propagate to the caller (whichever rank's panic is
    /// joined first — the injected one or a poisoned receiver's abort).
    #[test]
    #[should_panic]
    fn peer_failure_poisons_blocked_ranks() {
        let _ = World::new().run(3, |rank| match rank.rank() {
            1 => panic!("rank 1 exploded"),
            // ranks 0 and 2 wait for messages that will never arrive;
            // they must abort via the poison flag, not hang the test
            _ => {
                let from = (rank.rank() + 1) % rank.size();
                let _ = rank.recv::<f64>(from, 99);
            }
        });
    }

    /// Injected message faults (delay and drop/retransmit) perturb timing
    /// only: results are identical to a fault-free run, and every injected
    /// event appears in the mpiP-style books under its own operation.
    #[test]
    fn message_faults_preserve_results_and_are_recorded() {
        let p = 4;
        let program = |rank: &mut Rank| {
            let mut acc = Vec::new();
            for round in 0..3u64 {
                let next = (rank.rank() + 1) % rank.size();
                let prev = (rank.rank() + rank.size() - 1) % rank.size();
                rank.send(next, round, &[(rank.rank() as u64) << round]);
                acc.push(rank.recv::<u64>(prev, round)[0]);
                acc.push(rank.allreduce_u64(&[acc[acc.len() - 1]], ReduceOp::Sum)[0]);
            }
            acc
        };
        let clean = World::new().run(p, program);
        let plan =
            crate::FaultPlan::parse("delay:prob=0.5,us=300;drop:prob=0.5,us=100;seed=3").unwrap();
        let faulty = World::new().with_fault_plan(plan).run(p, program);
        assert_eq!(clean.results, faulty.results);
        let injected: u64 = faulty
            .stats
            .iter()
            .flat_map(|s| s.sites.iter())
            .filter(|(k, _)| k.op.is_fault())
            .map(|(_, s)| s.calls)
            .sum();
        assert!(injected > 0, "hazards with prob=0.5 injected nothing");
        // fault-free run has no fault entries at all
        assert!(clean
            .stats
            .iter()
            .flat_map(|s| s.sites.iter())
            .all(|(k, _)| !k.op.is_fault()));
    }

    /// Fault schedules are deterministic: same plan, same world, same
    /// injected event counts.
    #[test]
    fn fault_schedule_is_deterministic() {
        let plan = crate::FaultPlan::parse("drop:prob=0.4,us=50,retries=3;seed=11").unwrap();
        let count = |res: &WorldResult<()>| -> Vec<u64> {
            res.stats
                .iter()
                .map(|s| {
                    s.sites
                        .iter()
                        .filter(|(k, _)| k.op.is_fault())
                        .map(|(_, st)| st.calls)
                        .sum()
                })
                .collect()
        };
        let run = || {
            World::new().with_fault_plan(plan.clone()).run(3, |rank| {
                for i in 0..5u64 {
                    let next = (rank.rank() + 1) % rank.size();
                    let prev = (rank.rank() + rank.size() - 1) % rank.size();
                    rank.send(next, i, &[i]);
                    let _ = rank.recv::<u64>(prev, i);
                }
            })
        };
        let a = run();
        let b = run();
        assert_eq!(count(&a), count(&b));
        assert!(count(&a).iter().sum::<u64>() > 0);
    }

    /// A rank-selected delay hazard stalls only the targeted rank, and
    /// the stall total is exposed deterministically via
    /// [`Rank::injected_delay_us`] — the load balancer's straggler
    /// signal.
    #[test]
    fn rank_selected_delay_targets_one_rank() {
        let plan = crate::FaultPlan::parse("delay:prob=1,us=100,rank=1;seed=2").unwrap();
        let run = || {
            World::new().with_fault_plan(plan.clone()).run(3, |rank| {
                for i in 0..4u64 {
                    let next = (rank.rank() + 1) % rank.size();
                    let prev = (rank.rank() + rank.size() - 1) % rank.size();
                    rank.send(next, i, &[i]);
                    let _ = rank.recv::<u64>(prev, i);
                }
                rank.injected_delay_us()
            })
        };
        let res = run();
        assert_eq!(res.results[0], 0);
        assert_eq!(res.results[1], 400, "prob=1: every send of rank 1 stalls");
        assert_eq!(res.results[2], 0);
        assert_eq!(run().results, res.results, "stall totals are deterministic");
    }

    /// `with_op_badge` relabels the underlying collective's statistics
    /// row — the badged op appears *instead of* the collective, never in
    /// addition, so total MPI time still sums cleanly.
    #[test]
    fn op_badge_replaces_underlying_row() {
        let res = World::new().run(2, |rank| {
            rank.with_context("lb", |rank| {
                rank.with_op_badge(MpiOp::LbGather, |rank| {
                    rank.allreduce_u64(&[rank.rank() as u64], ReduceOp::Sum)
                })
            });
            // Outside the badge, the same collective books normally.
            rank.allreduce_u64(&[1], ReduceOp::Sum);
        });
        for s in &res.stats {
            let badged = s.site(MpiOp::LbGather, "lb").expect("lb_gather row");
            assert_eq!(badged.calls, 1);
            assert!(s.site(MpiOp::Allreduce, "lb").is_none(), "double-booked");
            assert_eq!(s.site(MpiOp::Allreduce, "main").unwrap().calls, 1);
        }
    }

    /// An invalid fault plan is rejected at `run` time.
    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn out_of_range_kill_is_rejected() {
        let plan = crate::FaultPlan::parse("kill:rank=9,step=1").unwrap();
        let _ = World::new().with_fault_plan(plan).run(2, |_| ());
    }

    /// The discard list silently consumes cancelled in-flight messages so
    /// they cannot cross-match a later receive on the same (src, tag).
    #[test]
    fn discard_list_consumes_cancelled_messages() {
        let res = World::new().run(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 5, &[111.0f64]); // will be cancelled
                rank.send(1, 5, &[222.0f64]); // second message, same lane
                Vec::new()
            } else {
                // Cancel the first in-flight (0, tag 5) message, then
                // receive: we must get the *second* payload.
                rank.discard_list().cancel(0, 5, 1);
                rank.recv::<f64>(0, 5)
            }
        });
        assert_eq!(res.results[1], vec![222.0]);
    }

    /// Failure injection mid-collective: a death during a barrier must
    /// not hang the remaining ranks.
    #[test]
    #[should_panic]
    fn failure_inside_collective_does_not_deadlock() {
        let _ = World::new().run(4, |rank| {
            if rank.rank() == 2 {
                panic!("boom");
            }
            for _ in 0..10 {
                rank.barrier();
            }
        });
    }
}
