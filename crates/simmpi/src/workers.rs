//! A hand-rolled work-stealing worker pool, owned by each rank — the
//! intra-rank "X" of the MPI+X hybrid schedule.
//!
//! Ranks stay the communication unit; the pool's workers share a rank's
//! *element loop*. Each [`WorkerPool`] owns `workers - 1` persistent OS
//! threads (the calling rank thread itself is participant 0), dispatches
//! one job at a time, and partitions the job's chunk index space evenly
//! across participants. A participant that drains its own range *steals*
//! from the back of a victim's range, so imbalanced chunks (boundary
//! elements, cache effects) cannot idle half the pool.
//!
//! Design constraints, in order:
//!
//! * **Determinism.** The pool never reduces anything: a job writes
//!   disjoint per-chunk outputs (slices of the rank's arrays, or a
//!   per-chunk partials array the *caller* folds sequentially in chunk
//!   order afterwards). Which worker executes a chunk is scheduling-
//!   dependent; what the chunk computes is not — so results are bitwise
//!   identical for every worker count, which the drivers' identity tests
//!   assert.
//! * **Zero steady-state allocations.** Jobs cross to the workers as a
//!   raw wide pointer to a caller-stack closure (valid for the duration
//!   of [`WorkerPool::run`], which does not return until every
//!   participant is done); ranges live in preallocated atomics; dispatch
//!   is a mutex/condvar epoch bump. After the pool's threads are up, a
//!   `run` touches the heap zero times.
//! * **Visible allocation accounting.** Heap counters are thread-local
//!   (see `cmt-perf::alloc`), so anything a *worker* allocates would
//!   vanish from the rank profiler's books. The pool therefore snapshots
//!   a caller-supplied counter function around each worker's share of a
//!   job and accumulates the deltas; drivers drain them with
//!   [`WorkerPool::drain_worker_allocs`] and charge them to the open
//!   profiler region.
//!
//! Stealing protocol: participant `p`'s remaining range is one packed
//! `AtomicU64` (`lo` in the high half, `hi` in the low half). The owner
//! pops from the front (`lo + 1`) and thieves pop from the back
//! (`hi - 1`), both by compare-and-swap on the whole word, so every chunk
//! index is claimed exactly once. A participant retires when its own
//! range and every victim's range are empty.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A function returning this thread's `(allocations, bytes)` counters —
/// shaped to accept `cmt_perf::alloc::thread_counts` without `simmpi`
/// depending on that crate.
pub type AllocCounterFn = fn() -> (u64, u64);

/// Number of grain-sized chunks covering `nel` elements.
#[inline]
pub fn chunk_count(nel: usize, grain: usize) -> usize {
    let g = grain.max(1);
    nel.div_ceil(g)
}

/// Element range `[lo, hi)` of chunk `c` at the given grain.
#[inline]
pub fn chunk_range(nel: usize, grain: usize, c: usize) -> (usize, usize) {
    let g = grain.max(1);
    let lo = c * g;
    (lo, (lo + g).min(nel))
}

/// A mutable slice shareable across pool participants that write
/// *disjoint* ranges — the element-chunked output arrays of the kernels.
///
/// The aliasing contract is the caller's: two concurrently-executing
/// chunks must never receive overlapping ranges. The chunked element
/// loops guarantee that structurally (chunk `c` owns elements
/// `[c*grain, (c+1)*grain)` and nothing else).
pub struct SharedSliceMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the wrapper owns an exclusive (&mut) borrow of the slice for
// 'a, and hands out sub-slices only through `range_mut`, whose contract
// requires disjoint ranges across threads — so sending or sharing the
// handle itself cannot create aliased access that the borrow checker
// would have rejected on the original `&mut [T]`.
unsafe impl<T: Send> Send for SharedSliceMut<'_, T> {}
// SAFETY: as above — `&SharedSliceMut` exposes no `&T` access at all,
// only the range-disjoint `range_mut`, so cross-thread sharing is as
// safe as the caller's disjointness contract.
unsafe impl<T: Send> Sync for SharedSliceMut<'_, T> {}

impl<'a, T> SharedSliceMut<'a, T> {
    /// Wrap a slice for disjoint multi-participant writing.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSliceMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to `[lo, hi)`.
    ///
    /// # Safety
    /// The caller must ensure no two live borrows overlap — i.e. calls
    /// from concurrent chunks use disjoint ranges.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [T] {
        assert!(lo <= hi && hi <= self.len, "range out of bounds");
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

/// Type-erased pointer to the caller-stack job closure. Only dereferenced
/// while the owning [`WorkerPool::run`] frame is alive.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for JobPtr {}

struct JobState {
    job: Option<JobPtr>,
    /// Bumped once per dispatched job; workers key their wait on it.
    epoch: u64,
    /// Worker threads still executing the current job.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<JobState>,
    start: Condvar,
    done: Condvar,
    /// Per-participant packed `(lo << 32) | hi` chunk ranges.
    ranges: Vec<AtomicU64>,
    /// Set when a worker's job chunk panicked.
    poisoned: AtomicBool,
    /// Worker-side heap-allocation deltas awaiting attribution.
    worker_allocs: AtomicU64,
    worker_bytes: AtomicU64,
    counters: Option<AllocCounterFn>,
}

#[inline]
fn pack(lo: usize, hi: usize) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

#[inline]
fn unpack(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xFFFF_FFFF) as usize)
}

impl Shared {
    /// Claim-and-run loop for participant `idx`: drain own range from the
    /// front, then steal from the back of every victim until all empty.
    fn participate(&self, idx: usize, job: &(dyn Fn(usize) + Sync)) {
        loop {
            let cur = self.ranges[idx].load(Ordering::Acquire);
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                break;
            }
            if self.ranges[idx]
                .compare_exchange_weak(cur, pack(lo + 1, hi), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                job(lo);
            }
        }
        loop {
            let mut claimed_any = false;
            for victim in 0..self.ranges.len() {
                if victim == idx {
                    continue;
                }
                loop {
                    let cur = self.ranges[victim].load(Ordering::Acquire);
                    let (lo, hi) = unpack(cur);
                    if lo >= hi {
                        break;
                    }
                    if self.ranges[victim]
                        .compare_exchange_weak(
                            cur,
                            pack(lo, hi - 1),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        job(hi - 1);
                        claimed_any = true;
                    }
                }
            }
            if !claimed_any {
                break;
            }
        }
    }

    fn guarded_participate(&self, idx: usize, job: &(dyn Fn(usize) + Sync)) {
        if catch_unwind(AssertUnwindSafe(|| self.participate(idx, job))).is_err() {
            self.poisoned.store(true, Ordering::Release);
        }
    }
}

fn worker_main(shared: Arc<Shared>, idx: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    break;
                }
                st = shared.start.wait(st).unwrap();
            }
            seen_epoch = st.epoch;
            st.job.expect("job set for new epoch")
        };
        let before = shared.counters.map(|f| f());
        // SAFETY: the dispatching `run` does not return until `active`
        // reaches zero, so the pointee outlives this use.
        shared.guarded_participate(idx, unsafe { &*job.0 });
        if let (Some(f), Some((a0, b0))) = (shared.counters, before) {
            let (a1, b1) = f();
            shared.worker_allocs.fetch_add(a1 - a0, Ordering::Relaxed);
            shared.worker_bytes.fetch_add(b1 - b0, Ordering::Relaxed);
        }
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_one();
        }
    }
}

/// The per-rank worker pool. See the module docs for the protocol.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    participants: usize,
}

impl WorkerPool {
    /// A pool of `workers` participants total — the calling rank thread
    /// plus `workers - 1` spawned threads. `workers <= 1` spawns nothing
    /// (jobs run inline on the caller). `counters` enables worker-side
    /// heap-allocation accounting (pass `cmt_perf::alloc::thread_counts`).
    pub fn new(workers: usize, counters: Option<AllocCounterFn>) -> Self {
        let participants = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState {
                job: None,
                epoch: 0,
                active: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            ranges: (0..participants).map(|_| AtomicU64::new(0)).collect(),
            poisoned: AtomicBool::new(false),
            worker_allocs: AtomicU64::new(0),
            worker_bytes: AtomicU64::new(0),
            counters,
        });
        let handles = (1..participants)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("simmpi-worker-{idx}"))
                    .spawn(move || worker_main(shared, idx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            participants,
        }
    }

    /// Total participant count (caller included).
    pub fn workers(&self) -> usize {
        self.participants
    }

    /// Execute `job(c)` for every chunk index `c in 0..n_chunks`, exactly
    /// once each, across all participants; returns when every chunk has
    /// completed. The caller participates (index 0), so a 1-participant
    /// pool is simply a serial loop.
    ///
    /// # Panics
    /// Panics if any chunk panicked (after all participants retired, so
    /// no chunk is left half-running).
    pub fn run(&self, n_chunks: usize, job: &(dyn Fn(usize) + Sync)) {
        if n_chunks == 0 {
            return;
        }
        if self.participants == 1 || n_chunks == 1 {
            for c in 0..n_chunks {
                job(c);
            }
            return;
        }
        let p = self.participants;
        // Even partition: participant i owns [i*per + min(i, extra) ..).
        let per = n_chunks / p;
        let extra = n_chunks % p;
        let mut lo = 0;
        for (i, range) in self.shared.ranges.iter().enumerate() {
            let hi = lo + per + usize::from(i < extra);
            range.store(pack(lo, hi), Ordering::Release);
            lo = hi;
        }
        debug_assert_eq!(lo, n_chunks);
        // SAFETY: lifetime erasure only — the pointer is consumed strictly
        // within this call (we wait for `active == 0` below and clear the
        // slot before returning), so the non-'static pointee outlives
        // every dereference.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(JobPtr(erased as *const _));
            st.epoch += 1;
            st.active = p - 1;
            self.shared.start.notify_all();
        }
        self.shared.guarded_participate(0, job);
        let mut st = self.shared.state.lock().unwrap();
        while st.active > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        drop(st);
        if self.shared.poisoned.swap(false, Ordering::AcqRel) {
            panic!("worker-pool job panicked");
        }
    }

    /// Drain the accumulated worker-side heap-allocation deltas
    /// (`allocations, bytes`) since the last drain. The caller charges
    /// them to whatever profiler region the pooled work ran under.
    pub fn drain_worker_allocs(&self) -> (u64, u64) {
        (
            self.shared.worker_allocs.swap(0, Ordering::Relaxed),
            self.shared.worker_bytes.swap(0, Ordering::Relaxed),
        )
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn chunk_helpers_cover_everything() {
        assert_eq!(chunk_count(10, 4), 3);
        assert_eq!(chunk_range(10, 4, 0), (0, 4));
        assert_eq!(chunk_range(10, 4, 2), (8, 10));
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_count(5, 0), 5, "grain 0 clamps to 1");
    }

    #[test]
    fn every_chunk_runs_exactly_once() {
        for workers in [1usize, 2, 3, 4, 8] {
            let pool = WorkerPool::new(workers, None);
            for n_chunks in [1usize, 2, 5, 17, 64, 101] {
                let hits: Vec<AtomicUsize> = (0..n_chunks).map(|_| AtomicUsize::new(0)).collect();
                pool.run(n_chunks, &|c| {
                    hits[c].fetch_add(1, Ordering::Relaxed);
                });
                for (c, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::Relaxed),
                        1,
                        "chunk {c} of {n_chunks} with {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn stealing_balances_imbalanced_chunks() {
        // Front chunks are 100x slower; with stealing, a 4-way pool must
        // still complete (and complete every chunk exactly once).
        let pool = WorkerPool::new(4, None);
        let n = 32;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run(n, &|c| {
            let spin = if c < 4 { 200_000 } else { 2_000 };
            let mut acc = c as u64;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            hits[c].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn disjoint_writes_are_bitwise_deterministic() {
        // The pooled element loop must produce the identical buffer for
        // every worker count: disjoint writes, no reductions.
        let nel = 37;
        let grain = 3;
        let reference: Vec<f64> = (0..nel * 8).map(|i| (i as f64).sin()).collect();
        let mut first: Option<Vec<f64>> = None;
        for workers in [1usize, 2, 4] {
            let pool = WorkerPool::new(workers, None);
            let mut out = vec![0.0f64; nel * 8];
            let shared = SharedSliceMut::new(&mut out);
            let refd = &reference;
            pool.run(chunk_count(nel, grain), &|c| {
                let (lo, hi) = chunk_range(nel, grain, c);
                // SAFETY: chunk ranges are disjoint by construction.
                let dst = unsafe { shared.range_mut(lo * 8, hi * 8) };
                dst.copy_from_slice(&refd[lo * 8..hi * 8]);
            });
            match &first {
                None => first = Some(out),
                Some(f) => assert_eq!(f, &out, "workers={workers}"),
            }
        }
    }

    #[test]
    fn per_chunk_partials_fold_deterministically() {
        // The deterministic-reduction pattern: workers fill a partials
        // array, the caller folds it sequentially in chunk order.
        let n_chunks = 23;
        let serial: f64 = (0..n_chunks).map(|c| 1.0 / (c as f64 + 1.0)).sum();
        for workers in [1usize, 3, 4] {
            let pool = WorkerPool::new(workers, None);
            let mut partials = vec![0.0f64; n_chunks];
            let shared = SharedSliceMut::new(&mut partials);
            pool.run(n_chunks, &|c| {
                let dst = unsafe { shared.range_mut(c, c + 1) };
                dst[0] = 1.0 / (c as f64 + 1.0);
            });
            let folded: f64 = partials.iter().sum();
            assert_eq!(folded.to_bits(), serial.to_bits(), "workers={workers}");
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = WorkerPool::new(3, None);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(16, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2, None);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|c| {
                if c == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        }));
        assert!(res.is_err(), "panic must propagate");
        // pool must remain usable
        let counter = AtomicUsize::new(0);
        pool.run(4, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn drain_worker_allocs_reports_and_resets() {
        // A counter function the test controls: pretend each call sees a
        // growing counter, so each worker job accrues a delta.
        fn fake_counts() -> (u64, u64) {
            use std::cell::Cell;
            thread_local! {
                static TICKS: Cell<u64> = const { Cell::new(0) };
            }
            TICKS.with(|t| {
                let v = t.get();
                t.set(v + 1);
                (v, v * 10)
            })
        }
        let pool = WorkerPool::new(2, Some(fake_counts));
        pool.run(8, &|_| {});
        let (a, b) = pool.drain_worker_allocs();
        // each worker-side job ticks the fake counter once between the
        // before/after snapshots -> delta 1 per dispatched job per worker
        assert!(a >= 1, "worker delta recorded ({a})");
        assert_eq!(b, a * 10);
        assert_eq!(pool.drain_worker_allocs(), (0, 0), "drain resets");
    }
}
