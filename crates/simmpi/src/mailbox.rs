//! Allocation-free inter-rank mailboxes.
//!
//! `std::sync::mpsc` channels allocate internal blocks as messages flow
//! (roughly one per 31 sends), which would show up as steady-state heap
//! traffic in the zero-allocation accounting. Each rank instead owns a
//! `Mutex<VecDeque<Envelope>> + Condvar` mailbox whose ring buffer is
//! pre-reserved: once warmed, pushes and pops touch no allocator.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::envelope::Envelope;

/// Queue capacity reserved up front; deep enough that realistic in-flight
/// message counts never force a (scheduling-dependent) regrowth.
const RESERVE: usize = 128;

/// A single rank's incoming-message queue.
pub(crate) struct Mailbox {
    q: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
}

impl Mailbox {
    pub(crate) fn new() -> Self {
        Mailbox {
            q: Mutex::new(VecDeque::with_capacity(RESERVE)),
            cv: Condvar::new(),
        }
    }

    /// Enqueue a message and wake the owning rank if it is blocked.
    pub(crate) fn push(&self, env: Envelope) {
        self.q.lock().unwrap().push_back(env);
        self.cv.notify_one();
    }

    /// Dequeue without blocking.
    pub(crate) fn try_pop(&self) -> Option<Envelope> {
        self.q.lock().unwrap().pop_front()
    }

    /// Dequeue, blocking up to `timeout` for a message to arrive.
    pub(crate) fn pop_timeout(&self, timeout: Duration) -> Option<Envelope> {
        let mut q = self.q.lock().unwrap();
        if let Some(env) = q.pop_front() {
            return Some(env);
        }
        // One bounded wait; spurious wakeups surface as None and the
        // caller's poll loop (which also checks deadlock timers) retries.
        let (mut q, _) = self.cv.wait_timeout(q, timeout).unwrap();
        q.pop_front()
    }
}

impl std::fmt::Debug for Mailbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.q.lock().map(|q| q.len()).unwrap_or(0);
        f.debug_struct("Mailbox").field("queued", &len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(0, 1, vec![1.0f64]));
        mb.push(Envelope::new(0, 2, vec![2.0f64]));
        assert_eq!(mb.try_pop().unwrap().tag, 1);
        assert_eq!(mb.pop_timeout(Duration::from_millis(1)).unwrap().tag, 2);
        assert!(mb.try_pop().is_none());
    }

    #[test]
    fn pop_timeout_expires_empty() {
        let mb = Mailbox::new();
        assert!(mb.pop_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn pop_timeout_wakes_on_push() {
        let mb = std::sync::Arc::new(Mailbox::new());
        let mb2 = std::sync::Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        mb.push(Envelope::new(3, 9, vec![1u8]));
        let got = t.join().unwrap().expect("woken by push");
        assert_eq!((got.src, got.tag), (3, 9));
    }
}
