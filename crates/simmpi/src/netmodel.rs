//! Parametric network performance model.
//!
//! Section VI of the paper motivates exactly this: "To perform network
//! simulations we also need appropriate latency and bandwidth models for
//! the machines and data transfer characteristics for the application."
//! The runtime measures the *real* (shared-memory) time of every
//! operation; the network model additionally accumulates what each message
//! *would* cost on a machine with the given latency/bandwidth, enabling
//! what-if studies of notional future systems without changing the
//! application.

/// First-order LogP-style cost model: `t(msg) = latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency in seconds.
    pub latency_s: f64,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl NetworkModel {
    /// Mellanox Infiniscale IV QDR InfiniBand, the fabric of the paper's
    /// Sandia "Compton" testbed: ~1.3 us latency, ~3.2 GB/s effective
    /// per-link bandwidth.
    pub fn qdr_infiniband() -> Self {
        NetworkModel {
            latency_s: 1.3e-6,
            bandwidth_bps: 3.2e9,
        }
    }

    /// A notional exascale-era fabric: 0.5 us latency, 25 GB/s.
    pub fn notional_exascale() -> Self {
        NetworkModel {
            latency_s: 0.5e-6,
            bandwidth_bps: 25e9,
        }
    }

    /// Gigabit Ethernet-class commodity network: 50 us, 118 MB/s.
    pub fn gigabit_ethernet() -> Self {
        NetworkModel {
            latency_s: 50e-6,
            bandwidth_bps: 118e6,
        }
    }

    /// Fit latency/bandwidth from measured `(bytes, seconds)` message
    /// samples by least squares on the affine cost model
    /// `t = latency + bytes / bandwidth`.
    ///
    /// Returns `None` when the samples cannot identify both parameters:
    /// fewer than two samples, or all samples the same size (the slope —
    /// hence the bandwidth — is then unconstrained). A non-positive
    /// fitted slope (noise dominating: big messages measured no slower
    /// than small ones) yields infinite bandwidth, i.e. a pure-latency
    /// model; a negative fitted intercept clamps to zero latency.
    pub fn fit(samples: &[(u64, f64)]) -> Option<NetworkModel> {
        if samples.len() < 2 {
            return None;
        }
        let first = samples[0].0;
        if samples.iter().all(|&(b, _)| b == first) {
            return None;
        }
        let n = samples.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for &(b, t) in samples {
            let x = b as f64;
            sx += x;
            sy += t;
            sxx += x * x;
            sxy += x * t;
        }
        let denom = sxx - sx * sx / n;
        if !(denom > 0.0) {
            return None;
        }
        let slope = (sxy - sx * sy / n) / denom;
        let intercept = (sy - slope * sx) / n;
        Some(NetworkModel {
            latency_s: intercept.max(0.0),
            bandwidth_bps: if slope > 0.0 {
                1.0 / slope
            } else {
                f64::INFINITY
            },
        })
    }

    /// Modelled one-way transfer time of a message of `bytes` bytes.
    #[inline]
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }

    /// Bytes at which bandwidth cost equals latency cost (the classic
    /// half-power point `n_1/2`), useful to reason about eager/rendezvous
    /// style crossovers.
    pub fn half_power_bytes(&self) -> f64 {
        self.latency_s * self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_is_affine_in_bytes() {
        let m = NetworkModel {
            latency_s: 1e-6,
            bandwidth_bps: 1e9,
        };
        let t0 = m.message_time(0);
        let t1 = m.message_time(1000);
        let t2 = m.message_time(2000);
        assert!((t0 - 1e-6).abs() < 1e-15);
        assert!((t2 - t1 - (t1 - t0)).abs() < 1e-15, "not affine");
    }

    #[test]
    fn half_power_point() {
        let m = NetworkModel {
            latency_s: 2e-6,
            bandwidth_bps: 5e8,
        };
        assert!((m.half_power_bytes() - 1000.0).abs() < 1e-9);
        // At n_1/2 the two cost terms are equal.
        let t = m.message_time(1000);
        assert!((t - 2.0 * m.latency_s).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_known_model() {
        let truth = NetworkModel {
            latency_s: 20e-6,
            bandwidth_bps: 1e8,
        };
        let samples: Vec<(u64, f64)> = [64u64, 512, 4096, 65536, 1 << 20]
            .iter()
            .map(|&b| (b, truth.message_time(b)))
            .collect();
        let fitted = NetworkModel::fit(&samples).expect("identifiable");
        assert!((fitted.latency_s - truth.latency_s).abs() < 1e-9);
        assert!((fitted.bandwidth_bps - truth.bandwidth_bps).abs() / truth.bandwidth_bps < 1e-6);
    }

    #[test]
    fn fit_rejects_degenerate_samples() {
        assert!(NetworkModel::fit(&[]).is_none());
        assert!(NetworkModel::fit(&[(100, 1e-6)]).is_none());
        // same size everywhere: slope unconstrained
        assert!(NetworkModel::fit(&[(100, 1e-6), (100, 2e-6), (100, 3e-6)]).is_none());
    }

    #[test]
    fn fit_clamps_noise_to_physical_values() {
        // Bigger message measured *faster*: slope <= 0 => infinite bandwidth.
        let m = NetworkModel::fit(&[(100, 2e-6), (10_000, 1e-6)]).unwrap();
        assert!(m.bandwidth_bps.is_infinite());
        assert!(m.latency_s >= 0.0);
        assert!(m.message_time(1 << 20).is_finite());
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let qdr = NetworkModel::qdr_infiniband();
        let exa = NetworkModel::notional_exascale();
        let gbe = NetworkModel::gigabit_ethernet();
        let big = 1 << 20;
        assert!(exa.message_time(big) < qdr.message_time(big));
        assert!(qdr.message_time(big) < gbe.message_time(big));
    }
}
