//! Parametric network performance model.
//!
//! Section VI of the paper motivates exactly this: "To perform network
//! simulations we also need appropriate latency and bandwidth models for
//! the machines and data transfer characteristics for the application."
//! The runtime measures the *real* (shared-memory) time of every
//! operation; the network model additionally accumulates what each message
//! *would* cost on a machine with the given latency/bandwidth, enabling
//! what-if studies of notional future systems without changing the
//! application.

/// First-order LogP-style cost model: `t(msg) = latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency in seconds.
    pub latency_s: f64,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl NetworkModel {
    /// Mellanox Infiniscale IV QDR InfiniBand, the fabric of the paper's
    /// Sandia "Compton" testbed: ~1.3 us latency, ~3.2 GB/s effective
    /// per-link bandwidth.
    pub fn qdr_infiniband() -> Self {
        NetworkModel {
            latency_s: 1.3e-6,
            bandwidth_bps: 3.2e9,
        }
    }

    /// A notional exascale-era fabric: 0.5 us latency, 25 GB/s.
    pub fn notional_exascale() -> Self {
        NetworkModel {
            latency_s: 0.5e-6,
            bandwidth_bps: 25e9,
        }
    }

    /// Gigabit Ethernet-class commodity network: 50 us, 118 MB/s.
    pub fn gigabit_ethernet() -> Self {
        NetworkModel {
            latency_s: 50e-6,
            bandwidth_bps: 118e6,
        }
    }

    /// Modelled one-way transfer time of a message of `bytes` bytes.
    #[inline]
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }

    /// Bytes at which bandwidth cost equals latency cost (the classic
    /// half-power point `n_1/2`), useful to reason about eager/rendezvous
    /// style crossovers.
    pub fn half_power_bytes(&self) -> f64 {
        self.latency_s * self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_is_affine_in_bytes() {
        let m = NetworkModel {
            latency_s: 1e-6,
            bandwidth_bps: 1e9,
        };
        let t0 = m.message_time(0);
        let t1 = m.message_time(1000);
        let t2 = m.message_time(2000);
        assert!((t0 - 1e-6).abs() < 1e-15);
        assert!((t2 - t1 - (t1 - t0)).abs() < 1e-15, "not affine");
    }

    #[test]
    fn half_power_point() {
        let m = NetworkModel {
            latency_s: 2e-6,
            bandwidth_bps: 5e8,
        };
        assert!((m.half_power_bytes() - 1000.0).abs() < 1e-9);
        // At n_1/2 the two cost terms are equal.
        let t = m.message_time(1000);
        assert!((t - 2.0 * m.latency_s).abs() < 1e-12);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let qdr = NetworkModel::qdr_infiniband();
        let exa = NetworkModel::notional_exascale();
        let gbe = NetworkModel::gigabit_ethernet();
        let big = 1 << 20;
        assert!(exa.message_time(big) < qdr.message_time(big));
        assert!(qdr.message_time(big) < gbe.message_time(big));
    }
}
