//! The per-rank handle: point-to-point messaging and instrumentation.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::envelope::{Envelope, Msg};
use crate::faults::{FaultPlan, FaultState};
use crate::netmodel::NetworkModel;
use crate::pool::{BufferPool, PooledVec};
use crate::stats::{CommRecorder, MpiOp};
use crate::transport::Transport;
use crate::verify::{CollFingerprint, CollKind, LeakInfo, VerifyHooks};

/// Message tag. User tags must be below [`USER_TAG_LIMIT`]; the space above
/// is reserved for collective-internal traffic.
pub type Tag = u64;

/// Exclusive upper bound on user-visible tags.
pub const USER_TAG_LIMIT: Tag = 1 << 48;

/// How long a blocking receive waits between checks of the poison flag.
const POLL: Duration = Duration::from_millis(25);

/// How long a blocking receive may go without progress before the runtime
/// declares a deadlock. Generous: collective algorithms on oversubscribed
/// machines can stall for scheduler quanta, not minutes.
const DEADLOCK: Duration = Duration::from_secs(300);

/// Handle to one simulated MPI rank. Created by [`crate::World::run`];
/// every communication method both performs the operation and records it
/// in the rank's task-local statistics.
pub struct Rank {
    pub(crate) rank: usize,
    pub(crate) size: usize,
    pub(crate) pending: VecDeque<Envelope>,
    pub(crate) transport: Box<dyn Transport>,
    pub(crate) pool: BufferPool,
    pub(crate) ctx_spares: Vec<String>,
    pub(crate) poisoned: Arc<AtomicBool>,
    pub(crate) recorder: CommRecorder,
    pub(crate) context: String,
    pub(crate) net: Option<NetworkModel>,
    pub(crate) modeled_time_s: f64,
    pub(crate) coll_seq: u64,
    pub(crate) user_seq: u64,
    pub(crate) faults: Option<FaultState>,
    pub(crate) injected_delay_us: u64,
    pub(crate) op_badge: Option<MpiOp>,
    pub(crate) discards: DiscardList,
    pub(crate) verify: Option<Arc<dyn VerifyHooks>>,
    pub(crate) finalized: bool,
    pub(crate) workers: Option<Arc<crate::workers::WorkerPool>>,
}

/// A cancellation list for in-flight messages whose receiver abandoned
/// them — e.g. a dropped, never-finished split-phase gather–scatter
/// handle. Registering `(src, tag, count)` makes the rank's matching
/// engine silently consume (rather than enqueue) the next `count`
/// arrivals from `src` with tag `tag`, so an abandoned exchange cannot
/// leak stale payloads into later receives on the same `(source, tag)`
/// FIFO lane.
///
/// Cloneable so library handles (which cannot hold `&mut Rank`) can
/// register cancellations from their `Drop` impls.
#[derive(Debug, Clone, Default)]
pub struct DiscardList {
    inner: Arc<DiscardInner>,
}

#[derive(Debug, Default)]
struct DiscardInner {
    /// Total messages awaiting discard — lets the receive hot path skip
    /// the mutex entirely in the common (empty) case.
    outstanding: AtomicU64,
    map: Mutex<HashMap<(usize, Tag), u64>>,
}

impl DiscardList {
    /// Register `count` future (or already-pending) messages from
    /// `(src, tag)` for silent discard.
    pub fn cancel(&self, src: usize, tag: Tag, count: u64) {
        if count == 0 {
            return;
        }
        *self
            .inner
            .map
            .lock()
            .unwrap()
            .entry((src, tag))
            .or_insert(0) += count;
        self.inner.outstanding.fetch_add(count, Ordering::Release);
    }

    /// Whether no discards are outstanding (lock-free).
    fn is_empty(&self) -> bool {
        self.inner.outstanding.load(Ordering::Acquire) == 0
    }

    /// Discard credits still outstanding, as `(src, tag, count)` — the
    /// cancelled messages that never arrived. Consumed by the verifier's
    /// finalize-time leak check.
    pub(crate) fn snapshot(&self) -> Vec<(usize, Tag, u64)> {
        let mut v: Vec<(usize, Tag, u64)> = self
            .inner
            .map
            .lock()
            .unwrap()
            .iter()
            .map(|(&(src, tag), &n)| (src, tag, n))
            .collect();
        v.sort_unstable();
        v
    }

    /// If `(src, tag)` is registered, consume one discard credit and
    /// return true (the caller drops the envelope).
    fn consume(&self, src: usize, tag: Tag) -> bool {
        if self.is_empty() {
            return false;
        }
        let mut map = self.inner.map.lock().unwrap();
        match map.get_mut(&(src, tag)) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    map.remove(&(src, tag));
                }
                self.inner.outstanding.fetch_sub(1, Ordering::Release);
                true
            }
            None => false,
        }
    }
}

/// A pending non-blocking receive (the analogue of an `MPI_Request` from
/// `MPI_Irecv`). Completed — and its blocking time attributed to
/// `MPI_Wait` — by [`Rank::wait_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvRequest {
    /// Source rank the request matches.
    pub src: usize,
    /// Tag the request matches.
    pub tag: Tag,
}

impl Rank {
    /// This rank's id, `0 .. size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// This rank's worker pool, if the world was built
    /// [`crate::World::with_workers`] `> 1`. Cheap to clone; drivers hold
    /// the `Arc` across a pooled region so the borrow of `self` ends.
    #[inline]
    pub fn worker_pool(&self) -> Option<Arc<crate::workers::WorkerPool>> {
        // cmt-lint: allow(CMT-L003) — Arc refcount bump, not a heap
        // allocation.
        self.workers.clone()
    }

    /// Intra-rank worker count (1 when no pool is attached).
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers.as_ref().map_or(1, |p| p.workers())
    }

    /// Set the context label under which subsequent operations are
    /// recorded (the mpiP "call site" analogue).
    pub fn set_context(&mut self, label: &str) {
        // Reuse the string's capacity: steady-state relabelling with
        // already-seen labels never touches the allocator.
        self.context.clear();
        self.context.push_str(label);
    }

    /// Current context label.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// Swap in a context string built from `label` (optionally composed
    /// onto the current context) using a recycled spare string, returning
    /// the displaced outer context. Paired with [`Rank::pop_context`].
    fn push_context(&mut self, label: &str, compose: bool) -> String {
        let mut s = self.ctx_spares.pop().unwrap_or_default();
        s.clear();
        if compose && !(self.context == "main" || self.context.is_empty()) {
            s.push_str(&self.context);
            s.push('/');
        }
        s.push_str(label);
        std::mem::replace(&mut self.context, s)
    }

    /// Restore `saved` as the context and park the displaced scratch
    /// string for reuse by the next [`Rank::push_context`].
    fn pop_context(&mut self, saved: String) {
        let used = std::mem::replace(&mut self.context, saved);
        self.ctx_spares.push(used);
    }

    /// Run `f` with the context label temporarily set to `label`.
    pub fn with_context<R>(&mut self, label: &str, f: impl FnOnce(&mut Rank) -> R) -> R {
        let saved = self.push_context(label, false);
        let out = f(self);
        self.pop_context(saved);
        out
    }

    /// Run `f` with `label` *composed onto* the current context
    /// (`outer/label`), so library-internal operations remain attributable
    /// to the application site that triggered them — e.g. a gather-scatter
    /// call from the viscous pass records as `faces_visc/gs:pairwise`.
    /// A default (`"main"`) outer context is dropped from the composition.
    pub fn with_subcontext<R>(&mut self, label: &str, f: impl FnOnce(&mut Rank) -> R) -> R {
        let saved = self.push_context(label, true);
        let out = f(self);
        self.pop_context(saved);
        out
    }

    /// Total *modelled* network time accumulated so far (seconds); zero if
    /// the world has no [`NetworkModel`].
    pub fn modeled_time_s(&self) -> f64 {
        self.modeled_time_s
    }

    /// The world's fault plan, if one was installed with
    /// [`crate::World::with_fault_plan`]. Drivers consult it for
    /// scheduled rank kills; message-level hazards are injected by the
    /// runtime itself.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &*f.plan)
    }

    /// Current state of this rank's fault-hazard RNG stream, for
    /// checkpointing. `None` when no fault plan is installed.
    pub fn fault_rng_state(&self) -> Option<u64> {
        self.faults.as_ref().map(|f| f.rng.state())
    }

    /// Restore the fault-hazard RNG stream to a state captured with
    /// [`Rank::fault_rng_state`], so a rollback replays the identical
    /// injected-fault schedule. No-op when no fault plan is installed.
    pub fn set_fault_rng_state(&mut self, state: u64) {
        if let Some(f) = self.faults.as_mut() {
            f.rng.set_state(state);
        }
    }

    /// A clone of this rank's [`DiscardList`], for library handles that
    /// must cancel in-flight messages from a `Drop` impl.
    pub fn discard_list(&self) -> DiscardList {
        // cmt-lint: allow(CMT-L003) — DiscardList is an Arc handle; the
        // clone is a refcount bump, not a heap allocation.
        self.discards.clone()
    }

    /// Total injected-fault stall served by this rank so far, in
    /// microseconds (delay hazards plus drop-retransmit backoff). The
    /// hazards are drawn from seeded per-rank streams, so this counter is
    /// bitwise deterministic — the load balancer's straggler signal,
    /// usable in SPMD decisions where wall-clock time is not.
    pub fn injected_delay_us(&self) -> u64 {
        self.injected_delay_us
    }

    /// Run `f` with every collective/crystal-router statistics row
    /// recorded under `op` instead of the operation's own kind. Library
    /// layers with a first-class identity in the mpiP report — the
    /// `cmt-lb` cost gather (`lb_gather`) and migration traffic
    /// (`lb_migrate`) — badge their communication so it shows up as its
    /// own line item *instead of* (never in addition to) the underlying
    /// `MPI_Allreduce`/`crystal_router` row; total MPI time still sums
    /// cleanly. Fault and wire-serialization rows keep their own kinds.
    pub fn with_op_badge<R>(&mut self, op: MpiOp, f: impl FnOnce(&mut Rank) -> R) -> R {
        let saved = self.op_badge.replace(op);
        let out = f(self);
        self.op_badge = saved;
        out
    }

    /// The operation kind a statistics row should be recorded under:
    /// the active badge if one is installed, else the operation itself.
    #[inline]
    pub(crate) fn badged(&self, op: MpiOp) -> MpiOp {
        self.op_badge.unwrap_or(op)
    }

    /// Inject configured message-level hazards for one outbound send of
    /// `bytes` bytes. Called before the operation's own timer starts, so
    /// the regular `MPI_Send`/`MPI_Isend` rows stay comparable across
    /// faulty and fault-free runs and the injected cost shows up only
    /// under its own `fault_*` entries.
    fn inject_send_faults(&mut self, bytes: u64) {
        let Some(fs) = self.faults.as_mut() else {
            return;
        };
        if let Some(d) = fs.plan.delay {
            if d.rank.is_none_or(|r| r == self.rank) && fs.rng.unit_f64() < d.prob {
                std::thread::sleep(d.delay);
                self.injected_delay_us += d.delay.as_micros() as u64;
                let ctx = std::mem::take(&mut self.context);
                self.recorder
                    .record(MpiOp::FaultDelay, &ctx, d.delay, bytes, 0.0);
                self.context = ctx;
            }
        }
        if let Some(dr) = fs.plan.drop {
            let mut attempt = 0u32;
            while attempt < dr.max_retries && fs.rng.unit_f64() < dr.prob {
                // The attempt was lost: serve the retransmit timeout
                // (doubling per attempt), then try again. The payload is
                // only ever handed to the transport once, after this
                // loop, so drops cost time but never corrupt delivery.
                let backoff = dr.timeout.saturating_mul(1u32 << attempt.min(20));
                std::thread::sleep(backoff);
                self.injected_delay_us += backoff.as_micros() as u64;
                let ctx = std::mem::take(&mut self.context);
                self.recorder
                    .record(MpiOp::FaultRetransmit, &ctx, backoff, bytes, 0.0);
                self.context = ctx;
                attempt += 1;
            }
        }
    }

    // ---------------------------------------------------------------
    // raw transport (shared with collectives and the crystal router)
    // ---------------------------------------------------------------

    /// Returns the nanoseconds the transport spent serializing (0 on the
    /// in-process backend); callers book it via [`Rank::note_ser`].
    pub(crate) fn raw_send(&self, dest: usize, mut env: Envelope) -> u64 {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        if let Some(v) = &self.verify {
            env.clock = v
                .on_send(self.rank, dest, env.tag, env.bytes as u64, &self.context)
                .map(Vec::into_boxed_slice);
            env.sender_ctx = Some(self.context.as_str().into());
        }
        // Incoming queues are unbounded: a send never blocks, matching
        // MPI's buffered/eager regime for the small-to-medium messages
        // the mini-apps exchange.
        self.transport.send(dest, env)
    }

    /// Book wire-serialization time under its own `transport_ser` row, so
    /// it never folds into the regular `MPI_Send`/`MPI_Wait` books. Zero
    /// nanoseconds (the in-process backend, socket self-sends) records
    /// nothing at all, keeping inproc profiles identical to a runtime
    /// without the transport seam.
    fn note_ser(&mut self, bytes: u64, nanos: u64) {
        if nanos == 0 {
            return;
        }
        let ctx = std::mem::take(&mut self.context);
        self.recorder.record(
            MpiOp::TransportSer,
            &ctx,
            Duration::from_nanos(nanos),
            bytes,
            0.0,
        );
        self.context = ctx;
    }

    /// Tell the verifier (if any) that a receive matched `env`.
    fn note_recv(&self, env: &Envelope) {
        if let Some(v) = &self.verify {
            v.on_recv(self.rank, env.src, env.tag, env.clock.as_deref());
        }
    }

    /// Tell the verifier (if any) that `env` was silently consumed as
    /// cancelled exchange traffic.
    fn note_discarded(&self, env: &Envelope) {
        if let Some(v) = &self.verify {
            v.on_discarded(
                self.rank,
                env.src,
                env.tag,
                env.bytes as u64,
                env.sender_ctx.as_deref(),
            );
        }
    }

    /// Remove pending-queue entries cancelled via the [`DiscardList`].
    /// Cheap when nothing is cancelled (one relaxed atomic load).
    fn purge_discarded(&mut self) {
        if self.discards.is_empty() {
            return;
        }
        // cmt-lint: allow(CMT-L003) — both are Arc handles cloned (one
        // refcount bump each) to end the `&self` borrows before the
        // `retain` below takes `&mut self.pending`.
        let (discards, verify) = (self.discards.clone(), self.verify.clone());
        let rank = self.rank;
        self.pending.retain(|e| {
            if discards.consume(e.src, e.tag) {
                if let Some(v) = &verify {
                    v.on_discarded(rank, e.src, e.tag, e.bytes as u64, e.sender_ctx.as_deref());
                }
                false
            } else {
                true
            }
        });
    }

    pub(crate) fn raw_recv(&mut self, src: usize, tag: Tag) -> Envelope {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        self.purge_discarded();
        // First, search messages that already arrived but didn't match an
        // earlier receive.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.src == src && e.tag == tag)
        {
            let env = self.pending.remove(pos).unwrap();
            self.note_recv(&env);
            return env;
        }
        let start = Instant::now();
        // Registered with the verifier's wait-for graph after the first
        // empty poll, so the fast path (message already en route) never
        // touches the checker.
        let mut block_id: Option<u64> = None;
        loop {
            match self.transport.pop_timeout(POLL) {
                Some(env) => {
                    if self.discards.consume(env.src, env.tag) {
                        self.note_discarded(&env);
                        continue;
                    }
                    if env.src == src && env.tag == tag {
                        if let (Some(v), Some(id)) = (&self.verify, block_id) {
                            v.on_unblock(self.rank, id);
                        }
                        self.note_recv(&env);
                        return env;
                    }
                    self.pending.push_back(env);
                }
                None => {
                    if self.poisoned.load(Ordering::Relaxed) {
                        panic!(
                            "rank {}: aborting receive (src {src}, tag {tag:#x}): a peer rank failed",
                            self.rank
                        );
                    }
                    if let Some(v) = &self.verify {
                        let id = *block_id
                            .get_or_insert_with(|| v.on_block(self.rank, src, tag, &self.context));
                        if let Some(diag) = v.on_block_poll(self.rank, id) {
                            self.poisoned.store(true, Ordering::Relaxed);
                            panic!("{diag}");
                        }
                    }
                    if start.elapsed() > DEADLOCK {
                        panic!(
                            "rank {}: probable deadlock waiting for (src {src}, tag {tag:#x})",
                            self.rank
                        );
                    }
                }
            }
        }
    }

    /// Model the cost of one message of `bytes` and accumulate it.
    pub(crate) fn model_message(&mut self, bytes: u64) -> f64 {
        match self.net {
            Some(m) => {
                let t = m.message_time(bytes);
                self.modeled_time_s += t;
                t
            }
            None => 0.0,
        }
    }

    fn assert_user_tag(tag: Tag) {
        assert!(
            tag < USER_TAG_LIMIT,
            "user tags must be < 2^48, got {tag:#x}"
        );
    }

    // ---------------------------------------------------------------
    // point-to-point
    // ---------------------------------------------------------------

    /// Inject faults, push `env`, and record the operation as `op` —
    /// the shared tail of every timed send variant.
    fn send_env_timed(&mut self, dest: usize, env: Envelope, op: MpiOp) {
        self.inject_send_faults(env.bytes as u64);
        let start = Instant::now();
        let bytes = env.bytes as u64;
        let ser = self.raw_send(dest, env);
        let modeled = self.model_message(bytes);
        // Serialization cost is booked under transport_ser, not the op.
        let elapsed = start.elapsed().saturating_sub(Duration::from_nanos(ser));
        let ctx = std::mem::take(&mut self.context);
        self.recorder.record(op, &ctx, elapsed, bytes, modeled);
        self.context = ctx;
        self.note_ser(bytes, ser);
    }

    /// Blocking send of a typed slice (internally buffered; completes
    /// locally, like an eager-protocol `MPI_Send`). Payloads of at most
    /// [`crate::INLINE_ELEMS`] `f64`/`u64`/`u8` elements travel inline in
    /// the envelope — the eager path, free of heap traffic.
    pub fn send<T: Msg>(&mut self, dest: usize, tag: Tag, data: &[T]) {
        Self::assert_user_tag(tag);
        match Envelope::inline_from(self.rank, tag, data) {
            Some(env) => self.send_env_timed(dest, env, MpiOp::Send),
            None => self.send_vec(dest, tag, data.to_vec()),
        }
    }

    /// Blocking send that takes ownership of the buffer (no copy).
    pub fn send_vec<T: Msg>(&mut self, dest: usize, tag: Tag, data: Vec<T>) {
        Self::assert_user_tag(tag);
        let env = Envelope::new(self.rank, tag, data);
        self.send_env_timed(dest, env, MpiOp::Send);
    }

    /// Blocking receive of a typed message from `(src, tag)`.
    pub fn recv<T: Msg>(&mut self, src: usize, tag: Tag) -> Vec<T> {
        Self::assert_user_tag(tag);
        let start = Instant::now();
        let env = self.raw_recv(src, tag);
        let bytes = env.bytes as u64;
        let data = env.open();
        let ctx = std::mem::take(&mut self.context);
        self.recorder
            .record(MpiOp::Recv, &ctx, start.elapsed(), bytes, 0.0);
        self.context = ctx;
        data
    }

    /// Non-blocking send (recorded as `MPI_Isend`; completes immediately —
    /// the eager regime). Small `f64`/`u64`/`u8` payloads travel inline,
    /// as with [`Rank::send`].
    pub fn isend<T: Msg>(&mut self, dest: usize, tag: Tag, data: &[T]) {
        Self::assert_user_tag(tag);
        match Envelope::inline_from(self.rank, tag, data) {
            Some(env) => self.send_env_timed(dest, env, MpiOp::Isend),
            None => self.isend_vec(dest, tag, data.to_vec()),
        }
    }

    /// Non-blocking send taking ownership of the buffer.
    pub fn isend_vec<T: Msg>(&mut self, dest: usize, tag: Tag, data: Vec<T>) {
        Self::assert_user_tag(tag);
        let env = Envelope::new(self.rank, tag, data);
        self.send_env_timed(dest, env, MpiOp::Isend);
    }

    /// Non-blocking send of a pool-guarded buffer: the box moves into the
    /// envelope without copying, and the *receiver* parks it in its own
    /// pool after opening — the zero-allocation steady-state send path.
    pub fn isend_pooled<T: Msg>(&mut self, dest: usize, tag: Tag, data: PooledVec<T>) {
        Self::assert_user_tag(tag);
        let env = Envelope::from_box(self.rank, tag, data.detach());
        self.send_env_timed(dest, env, MpiOp::Isend);
    }

    /// Post a non-blocking receive. The returned request is completed by
    /// [`Rank::wait_recv`] / [`Rank::waitall_recv`], where any blocking
    /// time is attributed to `MPI_Wait` — the attribution behind the
    /// paper's Fig. 9, in which `MPI_Wait` dominates.
    pub fn irecv(&mut self, src: usize, tag: Tag) -> RecvRequest {
        Self::assert_user_tag(tag);
        let start = Instant::now();
        let ctx = std::mem::take(&mut self.context);
        self.recorder
            .record(MpiOp::Irecv, &ctx, start.elapsed(), 0, 0.0);
        self.context = ctx;
        RecvRequest { src, tag }
    }

    /// Complete a posted receive, blocking if the message has not arrived.
    pub fn wait_recv<T: Msg>(&mut self, req: RecvRequest) -> Vec<T> {
        let start = Instant::now();
        let env = self.raw_recv(req.src, req.tag);
        let bytes = env.bytes as u64;
        let data = env.open();
        let ctx = std::mem::take(&mut self.context);
        self.recorder
            .record(MpiOp::Wait, &ctx, start.elapsed(), bytes, 0.0);
        self.context = ctx;
        data
    }

    /// Complete a set of posted receives in order.
    pub fn waitall_recv<T: Msg>(&mut self, reqs: &[RecvRequest]) -> Vec<Vec<T>> {
        reqs.iter().map(|&r| self.wait_recv(r)).collect()
    }

    /// Complete a posted receive into a pool-guarded buffer. Boxed
    /// payloads are adopted wholesale (zero copies, zero allocations);
    /// the guard parks the buffer in this rank's [`BufferPool`] when
    /// dropped, ready for the next [`Rank::pooled_vec`] take.
    pub fn wait_recv_pooled<T: Msg>(&mut self, req: RecvRequest) -> PooledVec<T> {
        let start = Instant::now();
        let env = self.raw_recv(req.src, req.tag);
        let bytes = env.bytes as u64;
        let data = env.open_pooled(&self.pool);
        let ctx = std::mem::take(&mut self.context);
        self.recorder
            .record(MpiOp::Wait, &ctx, start.elapsed(), bytes, 0.0);
        self.context = ctx;
        data
    }

    /// This rank's payload-buffer recycling pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Take a recycled, empty buffer from this rank's pool (fresh if the
    /// pool is cold or disabled). Fill it and hand it to
    /// [`Rank::isend_pooled`] for an allocation-free send.
    pub fn pooled_vec<T: Msg>(&self) -> PooledVec<T> {
        self.pool.take()
    }

    /// Probe (non-blocking) whether a matching message has arrived.
    pub fn iprobe(&mut self, src: usize, tag: Tag) -> bool {
        Self::assert_user_tag(tag);
        // Drain arrived messages into the pending queue, then search it.
        while let Some(env) = self.transport.try_pop() {
            self.pending.push_back(env);
        }
        self.purge_discarded();
        self.pending.iter().any(|e| e.src == src && e.tag == tag)
    }

    /// Allocate a fresh user-level sequence number. Like the collective
    /// sequence, every rank advances it identically in SPMD code, so it
    /// lets libraries derive per-operation tags that keep *overlapping*
    /// non-blocking exchanges (split-phase gather–scatter, say) from
    /// cross-matching under the FIFO `(source, tag)` matching rule, even
    /// when they complete out of start order.
    pub fn next_user_seq(&mut self) -> u64 {
        let s = self.user_seq;
        self.user_seq += 1;
        s
    }

    // ---------------------------------------------------------------
    // internals for collectives
    // ---------------------------------------------------------------

    /// Allocate a fresh collective sequence number. All ranks execute the
    /// same collective sequence (SPMD), so equal sequence numbers identify
    /// the same logical collective across ranks and keep successive
    /// collectives' internal messages from cross-matching.
    pub(crate) fn next_coll_seq(&mut self) -> u64 {
        let s = self.coll_seq;
        self.coll_seq += 1;
        s
    }

    /// Internal tag for collective `seq`, round `round`.
    pub(crate) fn coll_tag(seq: u64, round: u64) -> Tag {
        USER_TAG_LIMIT | (seq << 12) | round
    }

    /// Internal untimed send used inside collective algorithms.
    pub(crate) fn send_internal<T: Msg>(&mut self, dest: usize, tag: Tag, data: Vec<T>) -> u64 {
        let env = Envelope::new(self.rank, tag, data);
        let bytes = env.bytes as u64;
        self.inject_send_faults(bytes);
        let ser = self.raw_send(dest, env);
        self.note_ser(bytes, ser);
        bytes
    }

    /// Internal untimed send of a slice: inline when small, through a
    /// pooled buffer otherwise — never a fresh allocation once warm.
    pub(crate) fn send_internal_slice<T: Msg>(&mut self, dest: usize, tag: Tag, data: &[T]) -> u64 {
        if let Some(env) = Envelope::inline_from(self.rank, tag, data) {
            let bytes = env.bytes as u64;
            self.inject_send_faults(bytes);
            let ser = self.raw_send(dest, env);
            self.note_ser(bytes, ser);
            return bytes;
        }
        let mut buf = self.pool.take::<T>();
        buf.extend_from_slice(data);
        self.send_internal_box(dest, tag, buf.detach())
    }

    /// Internal untimed send of an already-boxed payload (pool path; the
    /// box shell is the recyclable unit, hence no flattening to `Vec`).
    #[allow(clippy::box_collection)]
    pub(crate) fn send_internal_box<T: Msg>(
        &mut self,
        dest: usize,
        tag: Tag,
        data: Box<Vec<T>>,
    ) -> u64 {
        let env = Envelope::from_box(self.rank, tag, data);
        let bytes = env.bytes as u64;
        self.inject_send_faults(bytes);
        let ser = self.raw_send(dest, env);
        self.note_ser(bytes, ser);
        bytes
    }

    /// Internal untimed send of an `Arc`-shared payload (one-to-many
    /// fan-out: the clones are reference bumps, and the last opener moves
    /// the buffer out).
    pub(crate) fn send_internal_shared<T: Msg>(
        &mut self,
        dest: usize,
        tag: Tag,
        data: Arc<Vec<T>>,
    ) -> u64 {
        let env = Envelope::from_shared(self.rank, tag, data);
        let bytes = env.bytes as u64;
        self.inject_send_faults(bytes);
        let ser = self.raw_send(dest, env);
        self.note_ser(bytes, ser);
        bytes
    }

    /// Internal untimed receive used inside collective algorithms.
    pub(crate) fn recv_internal<T: Msg>(&mut self, src: usize, tag: Tag) -> (Vec<T>, u64) {
        let env = self.raw_recv(src, tag);
        let bytes = env.bytes as u64;
        (env.open(), bytes)
    }

    /// Internal untimed receive into a pool-guarded buffer.
    pub(crate) fn recv_internal_pooled<T: Msg>(
        &mut self,
        src: usize,
        tag: Tag,
    ) -> (PooledVec<T>, u64) {
        let env = self.raw_recv(src, tag);
        let bytes = env.bytes as u64;
        let data = env.open_pooled(&self.pool);
        (data, bytes)
    }

    // ---------------------------------------------------------------
    // verifier hooks (see crate::verify)
    // ---------------------------------------------------------------

    /// Whether a verifier is installed on this world
    /// ([`crate::World::with_verifier`]).
    #[inline]
    pub fn verifying(&self) -> bool {
        self.verify.is_some()
    }

    /// Register collective `seq`'s fingerprint with the verifier and
    /// abort (poison + panic) on a cross-rank mismatch. No-op without a
    /// verifier.
    pub(crate) fn verify_collective(
        &self,
        seq: u64,
        kind: CollKind,
        root: Option<usize>,
        elem_type: &'static str,
        len: Option<usize>,
    ) {
        let Some(v) = &self.verify else { return };
        let fp = CollFingerprint {
            kind,
            root,
            elem_type,
            len,
            context: &self.context,
        };
        if let Err(diag) = v.on_collective(self.rank, seq, fp) {
            self.poisoned.store(true, Ordering::Relaxed);
            panic!("{diag}");
        }
    }

    /// Report the start of a split-phase exchange over the shared slots
    /// `gids` to the verifier; the returned epoch id must be closed with
    /// [`Rank::verify_exchange_finish`]. `None` without a verifier.
    pub fn verify_exchange_start(&self, gids: &[u64], label: &str) -> Option<u64> {
        self.verify
            .as_ref()
            .map(|v| v.on_exchange_start(self.rank, gids, label))
    }

    /// Close a split-phase exchange epoch opened by
    /// [`Rank::verify_exchange_start`]. No-op for `None`.
    pub fn verify_exchange_finish(&self, epoch: Option<u64>) {
        if let (Some(v), Some(e)) = (&self.verify, epoch) {
            v.on_exchange_finish(self.rank, e);
        }
    }

    /// Report an application-level read (`write == false`) or write of
    /// the shared slots `gids` to the verifier's happens-before race
    /// detector. No-op without a verifier.
    pub fn verify_slot_access(&self, gids: &[u64], write: bool, label: &str) {
        if let Some(v) = &self.verify {
            v.on_slot_access(self.rank, gids, write, label);
        }
    }

    /// Run the verifier's finalize-time leak check: a runtime barrier (so
    /// every peer's pre-finalize sends are already delivered), then a
    /// sweep of this rank's mailbox for unmatched messages and of its
    /// [`DiscardList`] for cancelled messages that never arrived.
    ///
    /// Called automatically by [`crate::World::run`] when the SPMD
    /// closure returns; drivers may call it earlier (it is idempotent) to
    /// attribute the cost to a profiler region. No-op without a verifier
    /// or on a poisoned world.
    pub fn verify_finalize(&mut self) {
        let Some(v) = self.verify.clone() else { return };
        if self.finalized || self.poisoned.load(Ordering::Relaxed) {
            return;
        }
        self.finalized = true;
        // The barrier orders every peer's pre-finalize sends before this
        // rank's mailbox sweep (channel pushes are immediate, and the
        // dissemination barrier's exit happens-after every entry), so a
        // message from a slow-but-correct peer is never misreported.
        let saved = self.push_context("verify:finalize", false);
        self.barrier();
        self.pop_context(saved);
        while let Some(env) = self.transport.try_pop() {
            self.pending.push_back(env);
        }
        self.purge_discarded(); // reports cancelled arrivals via on_discarded
        let leaked: Vec<LeakInfo> = self
            .pending
            .iter()
            .map(|e| LeakInfo {
                src: e.src,
                tag: e.tag,
                bytes: e.bytes as u64,
                sender_context: e.sender_ctx.as_deref().map(str::to_owned),
            })
            .collect();
        self.pending.clear();
        let unclaimed = self.discards.snapshot();
        v.on_finalize(self.rank, self.coll_seq, &leaked, &unclaimed);
    }
}
