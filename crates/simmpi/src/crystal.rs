//! The crystal router: Nek5000's generalized all-to-all.
//!
//! The paper (§VI): "All-to-all communication using the crystal router
//! exchange is guaranteed to complete in `log2 P` stages", originally
//! developed for hypercubes. Each rank starts with an arbitrary set of
//! `(destination, payload)` messages; at hypercube stage `d` every rank
//! exchanges with its dimension-`d` partner all held messages whose
//! destination lies in the partner's half, bundling them into one
//! transfer. After `log2 P` stages every message is home.
//!
//! Non-power-of-two rank counts use the standard fold/unfold extension:
//! the ranks above the largest power of two `m <= P` first fold their
//! traffic into their `r - m` partner, the hypercube runs on `m` ranks,
//! and a final unfold step delivers messages destined to the folded ranks.
//!
//! The staging vectors (the held set and each stage's outbound bundle)
//! cycle through the rank's [`crate::BufferPool`], and
//! [`Rank::crystal_router_into`] lets callers keep the outgoing/arrived
//! vectors across calls, so a warm steady-state routing step performs no
//! heap allocation.

use std::time::Instant;

use crate::envelope::Msg;
use crate::rank::Rank;
use crate::stats::MpiOp;

/// One routed message: originating rank, final destination, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedMsg<T> {
    /// Rank that injected the message.
    pub src: usize,
    /// Final destination rank.
    pub dest: usize,
    /// Payload values.
    pub data: Vec<T>,
}

/// Wire-equivalent size of a bundle of routed messages: 16 header bytes
/// (src + dest ids) plus the payload per message. `Envelope`'s own byte
/// count cannot see through the nested `Vec`s, so the router accounts for
/// its traffic with this function instead.
fn bundle_bytes<T>(msgs: &[RoutedMsg<T>]) -> u64 {
    msgs.iter()
        .map(|m| 16 + (m.data.len() * std::mem::size_of::<T>()) as u64)
        .sum()
}

impl Rank {
    /// Route every `(dest, payload)` in `outgoing` to its destination via
    /// the crystal-router algorithm; returns all messages that arrived at
    /// this rank as `(src, payload)` pairs, sorted by source rank for
    /// determinism.
    pub fn crystal_router<T: Msg>(
        &mut self,
        mut outgoing: Vec<(usize, Vec<T>)>,
    ) -> Vec<(usize, Vec<T>)> {
        // cmt-lint: allow(CMT-L003) — the allocating convenience form;
        // steady-state callers reuse staging via `crystal_router_into`.
        let mut arrived = Vec::new();
        self.crystal_router_into(&mut outgoing, &mut arrived);
        arrived
    }

    /// [`Rank::crystal_router`] with caller-owned staging: drains
    /// `outgoing`, clears `arrived`, and fills it with the `(src,
    /// payload)` pairs delivered to this rank, sorted by source rank (the
    /// sort is deterministic, but the relative order of two messages from
    /// the *same* source is unspecified). Reusing both vectors across
    /// calls — together with the pooled internal staging — makes the
    /// steady-state routing step allocation-free.
    pub fn crystal_router_into<T: Msg>(
        &mut self,
        outgoing: &mut Vec<(usize, Vec<T>)>,
        arrived: &mut Vec<(usize, Vec<T>)>,
    ) {
        let p = self.size();
        let rank = self.rank();
        for (dest, _) in outgoing.iter() {
            assert!(*dest < p, "crystal router destination {dest} out of range");
        }
        let start = Instant::now();
        let seq = self.next_coll_seq();
        // Message sets legitimately differ per rank; only kind and
        // element type are part of the cross-rank contract.
        self.verify_collective(
            seq,
            crate::verify::CollKind::CrystalRouter,
            None,
            std::any::type_name::<T>(),
            None,
        );
        let mut held = self.pool.take::<RoutedMsg<T>>();
        for (dest, data) in outgoing.drain(..) {
            held.push(RoutedMsg {
                src: rank,
                dest,
                data,
            });
        }
        let mut bytes = 0u64;
        let mut modeled = 0.0f64;

        // Largest power of two <= p.
        let m = if p.is_power_of_two() {
            p
        } else {
            p.next_power_of_two() >> 1
        };
        let dims = m.trailing_zeros() as u64;
        // Map a destination into the folded hypercube.
        let fold = |d: usize| if d >= m { d - m } else { d };
        // Placeholder a message is swapped with when it moves to an
        // outbound bundle (no heap behind it).
        let hollow = || RoutedMsg {
            src: 0,
            dest: 0,
            // cmt-lint: allow(CMT-L003) — an empty Vec has no heap
            // behind it; this placeholder never allocates.
            data: Vec::new(),
        };

        // Phase A (fold): excess ranks hand everything to rank - m.
        if rank >= m {
            let sent = bundle_bytes(&held);
            let boxed = held.detach();
            self.send_internal_box(rank - m, Rank::coll_tag(seq, 100), boxed);
            held = self.pool.take();
            bytes += sent;
            modeled += self.model_message(sent);
        } else if rank + m < p {
            let (mut got, _) =
                self.recv_internal_pooled::<RoutedMsg<T>>(rank + m, Rank::coll_tag(seq, 100));
            bytes += bundle_bytes(&got);
            held.append(&mut got);
        }

        // Hypercube phase among ranks < m: log2(m) stages. Each stage's
        // outbound bundle comes from the pool, travels boxed, and parks in
        // the partner's pool; the partner's bundle arrives the same way.
        if rank < m {
            for d in 0..dims {
                let bit = 1usize << d;
                let partner = rank ^ bit;
                let mut theirs = self.pool.take::<RoutedMsg<T>>();
                held.retain_mut(|msg| {
                    if (fold(msg.dest) & bit) == (rank & bit) {
                        true
                    } else {
                        theirs.push(std::mem::replace(msg, hollow()));
                        false
                    }
                });
                let sent = bundle_bytes(&theirs);
                self.send_internal_box(partner, Rank::coll_tag(seq, d), theirs.detach());
                bytes += sent;
                modeled += self.model_message(sent);
                let (mut got, _) =
                    self.recv_internal_pooled::<RoutedMsg<T>>(partner, Rank::coll_tag(seq, d));
                bytes += bundle_bytes(&got);
                held.append(&mut got);
            }
        }

        // Phase C (unfold): deliver messages destined to folded ranks.
        if rank < m && rank + m < p {
            let mut theirs = self.pool.take::<RoutedMsg<T>>();
            held.retain_mut(|msg| {
                if msg.dest == rank {
                    true
                } else {
                    theirs.push(std::mem::replace(msg, hollow()));
                    false
                }
            });
            let sent = bundle_bytes(&theirs);
            self.send_internal_box(rank + m, Rank::coll_tag(seq, 101), theirs.detach());
            bytes += sent;
            modeled += self.model_message(sent);
        } else if rank >= m {
            let (mut got, _) =
                self.recv_internal_pooled::<RoutedMsg<T>>(rank - m, Rank::coll_tag(seq, 101));
            bytes += bundle_bytes(&got);
            held.append(&mut got);
        }

        debug_assert!(held.iter().all(|msg| msg.dest == rank));
        held.sort_unstable_by_key(|msg| msg.src);
        arrived.clear();
        for msg in held.drain(..) {
            arrived.push((msg.src, msg.data));
        }
        let ctx = std::mem::take(&mut self.context);
        self.recorder.record(
            self.badged(MpiOp::CrystalRouter),
            &ctx,
            start.elapsed(),
            bytes,
            modeled,
        );
        self.context = ctx;
    }
}
