//! The crystal router: Nek5000's generalized all-to-all.
//!
//! The paper (§VI): "All-to-all communication using the crystal router
//! exchange is guaranteed to complete in `log2 P` stages", originally
//! developed for hypercubes. Each rank starts with an arbitrary set of
//! `(destination, payload)` messages; at hypercube stage `d` every rank
//! exchanges with its dimension-`d` partner all held messages whose
//! destination lies in the partner's half, bundling them into one
//! transfer. After `log2 P` stages every message is home.
//!
//! Non-power-of-two rank counts use the standard fold/unfold extension:
//! the ranks above the largest power of two `m <= P` first fold their
//! traffic into their `r - m` partner, the hypercube runs on `m` ranks,
//! and a final unfold step delivers messages destined to the folded ranks.

use std::time::Instant;

use crate::envelope::Msg;
use crate::rank::Rank;
use crate::stats::MpiOp;

/// One routed message: originating rank, final destination, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedMsg<T> {
    /// Rank that injected the message.
    pub src: usize,
    /// Final destination rank.
    pub dest: usize,
    /// Payload values.
    pub data: Vec<T>,
}

/// Wire-equivalent size of a bundle of routed messages: 16 header bytes
/// (src + dest ids) plus the payload per message. `Envelope`'s own byte
/// count cannot see through the nested `Vec`s, so the router accounts for
/// its traffic with this function instead.
fn bundle_bytes<T>(msgs: &[RoutedMsg<T>]) -> u64 {
    msgs.iter()
        .map(|m| 16 + (m.data.len() * std::mem::size_of::<T>()) as u64)
        .sum()
}

impl Rank {
    /// Route every `(dest, payload)` in `outgoing` to its destination via
    /// the crystal-router algorithm; returns all messages that arrived at
    /// this rank as `(src, payload)` pairs, sorted by source rank (ties by
    /// arrival order) for determinism.
    pub fn crystal_router<T: Msg>(
        &mut self,
        outgoing: Vec<(usize, Vec<T>)>,
    ) -> Vec<(usize, Vec<T>)> {
        let p = self.size();
        let rank = self.rank();
        for (dest, _) in &outgoing {
            assert!(*dest < p, "crystal router destination {dest} out of range");
        }
        let start = Instant::now();
        let seq = self.next_coll_seq();
        // Message sets legitimately differ per rank; only kind and
        // element type are part of the cross-rank contract.
        self.verify_collective(
            seq,
            crate::verify::CollKind::CrystalRouter,
            None,
            std::any::type_name::<T>(),
            None,
        );
        let mut held: Vec<RoutedMsg<T>> = outgoing
            .into_iter()
            .map(|(dest, data)| RoutedMsg {
                src: rank,
                dest,
                data,
            })
            .collect();
        let mut bytes = 0u64;
        let mut modeled = 0.0f64;

        // Largest power of two <= p.
        let m = if p.is_power_of_two() {
            p
        } else {
            p.next_power_of_two() >> 1
        };
        let dims = m.trailing_zeros() as u64;
        // Map a destination into the folded hypercube.
        let fold = |d: usize| if d >= m { d - m } else { d };

        // Phase A (fold): excess ranks hand everything to rank - m.
        if rank >= m {
            let sent = bundle_bytes(&held);
            self.send_internal(
                rank - m,
                Rank::coll_tag(seq, 100),
                std::mem::take(&mut held),
            );
            bytes += sent;
            modeled += self.model_message(sent);
        } else if rank + m < p {
            let (mut got, _) =
                self.recv_internal::<RoutedMsg<T>>(rank + m, Rank::coll_tag(seq, 100));
            bytes += bundle_bytes(&got);
            held.append(&mut got);
        }

        // Hypercube phase among ranks < m: log2(m) stages.
        if rank < m {
            for d in 0..dims {
                let bit = 1usize << d;
                let partner = rank ^ bit;
                let (mine, theirs): (Vec<_>, Vec<_>) = held
                    .into_iter()
                    .partition(|msg| (fold(msg.dest) & bit) == (rank & bit));
                held = mine;
                let sent = bundle_bytes(&theirs);
                self.send_internal(partner, Rank::coll_tag(seq, d), theirs);
                bytes += sent;
                modeled += self.model_message(sent);
                let (mut got, _) =
                    self.recv_internal::<RoutedMsg<T>>(partner, Rank::coll_tag(seq, d));
                bytes += bundle_bytes(&got);
                held.append(&mut got);
            }
        }

        // Phase C (unfold): deliver messages destined to folded ranks.
        if rank < m && rank + m < p {
            let (mine, theirs): (Vec<_>, Vec<_>) =
                held.into_iter().partition(|msg| msg.dest == rank);
            held = mine;
            let sent = bundle_bytes(&theirs);
            self.send_internal(rank + m, Rank::coll_tag(seq, 101), theirs);
            bytes += sent;
            modeled += self.model_message(sent);
        } else if rank >= m {
            let (got, _) = self.recv_internal::<RoutedMsg<T>>(rank - m, Rank::coll_tag(seq, 101));
            bytes += bundle_bytes(&got);
            held = got;
        }

        debug_assert!(held.iter().all(|msg| msg.dest == rank));
        held.sort_by_key(|msg| msg.src);
        let out: Vec<(usize, Vec<T>)> = held.into_iter().map(|msg| (msg.src, msg.data)).collect();
        let ctx = std::mem::take(&mut self.context);
        self.recorder
            .record(MpiOp::CrystalRouter, &ctx, start.elapsed(), bytes, modeled);
        self.context = ctx;
        out
    }
}
