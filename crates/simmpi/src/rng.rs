//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace's randomized tests and benchmark harnesses need
//! reproducible pseudo-randomness but nothing cryptographic; this module
//! provides a self-contained SplitMix64 generator so the build carries no
//! external RNG dependency. SplitMix64 passes BigCrush, has a full 2^64
//! period over its state increment, and is the standard seeder of the
//! xoshiro family.

/// A SplitMix64 pseudo-random number generator.
///
/// Deterministic for a given seed, `Send`, and cheap to construct —
/// intended for seeded tests, randomized stress schedules, and synthetic
/// benchmark data.
///
/// ```
/// use simmpi::rng::SmallRng;
/// let mut a = SmallRng::seed_from_u64(42);
/// let mut b = SmallRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Construct from a seed; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// The current internal state. Together with [`SmallRng::set_state`]
    /// this lets a checkpoint capture the generator mid-stream and a
    /// restart resume the identical sequence — required for bitwise
    /// replay after a rollback.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Restore a state previously read with [`SmallRng::state`].
    pub fn set_state(&mut self, state: u64) {
        self.state = state;
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` in the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 mantissa bits of a double
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(123);
        for _ in 0..1000 {
            let v = r.range_usize(2, 6);
            assert!((2..6).contains(&v));
            let u = r.range_u64(10, 11);
            assert_eq!(u, 10);
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn output_is_reasonably_spread() {
        let mut r = SmallRng::seed_from_u64(999);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[r.range_usize(0, 8)] += 1;
        }
        for &b in &buckets {
            assert!(b > 700 && b < 1300, "skewed bucket: {buckets:?}");
        }
    }
}
