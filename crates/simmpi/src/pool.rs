//! Per-rank recycling pool for typed payload buffers.
//!
//! The steady-state communication path never allocates: a send takes a
//! recycled `Box<Vec<T>>` from the pool, fills it, and moves the box into
//! the [`crate::Envelope`]; the receiver adopts the same box out of the
//! envelope behind a [`PooledVec`] guard and, when the guard drops, the
//! box (shell *and* vector capacity) parks back in the receiver's pool
//! ready for the next take. After warm-up every rank's pool is balanced —
//! each communication pattern parks exactly as many buffers as it takes —
//! so no allocation ever happens on the hot path again.
//!
//! Buffers are keyed by their concrete `Vec<T>` type, so an `f64` field
//! payload never collides with a `u64` id list. A pool constructed
//! disabled ([`BufferPool::new(false)`]) degrades to plain allocation:
//! takes allocate, parks drop — the `--no-pool` escape hatch.

// The double indirection of `Box<Vec<T>>` is deliberate: the *box shell*
// is what travels behind `dyn Any` and recycles along with the vector's
// capacity, so the type-erased envelope/pool hand-off costs no allocation.
#![allow(clippy::box_collection)]

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::envelope::Msg;

/// Most parked buffers retained per payload type (see [`BufferPool`]).
const PARK_CAP: usize = 64;

struct PoolInner {
    enabled: bool,
    /// Free buffers, keyed by `TypeId::of::<Vec<T>>()`.
    slots: Mutex<HashMap<TypeId, Vec<Box<dyn Any + Send>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A per-rank buffer recycling pool (cheaply clonable handle).
///
/// See the module docs for the ownership protocol. The pool is
/// thread-safe only because guards may migrate with payload boxes across
/// ranks conceptually; in practice each pool is owned by one rank thread.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (hits, misses) = self.counters();
        f.debug_struct("BufferPool")
            .field("enabled", &self.inner.enabled)
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

impl BufferPool {
    /// Create a pool; a disabled pool degrades to plain allocation.
    pub fn new(enabled: bool) -> Self {
        BufferPool {
            inner: Arc::new(PoolInner {
                enabled,
                slots: Mutex::new(HashMap::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    /// Whether recycling is on.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Take an empty buffer (recycled if one is parked, fresh otherwise).
    pub fn take<T: Msg>(&self) -> PooledVec<T> {
        if self.inner.enabled {
            let tid = TypeId::of::<Vec<T>>();
            let recycled = self
                .inner
                .slots
                .lock()
                .unwrap()
                .get_mut(&tid)
                .and_then(Vec::pop);
            if let Some(b) = recycled {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                let buf = b.downcast::<Vec<T>>().expect("pool slot holds keyed type");
                debug_assert!(buf.is_empty());
                return PooledVec {
                    buf: Some(buf),
                    pool: self.clone(),
                };
            }
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        PooledVec {
            buf: Some(Box::new(Vec::new())),
            pool: self.clone(),
        }
    }

    /// Wrap an existing box in a guard so it parks here when dropped
    /// (the receive path: the box arrived inside an envelope).
    pub fn adopt<T: Msg>(&self, buf: Box<Vec<T>>) -> PooledVec<T> {
        PooledVec {
            buf: Some(buf),
            pool: self.clone(),
        }
    }

    fn park(&self, tid: TypeId, buf: Box<dyn Any + Send>) {
        if self.inner.enabled {
            let mut slots = self.inner.slots.lock().unwrap();
            let slot = slots.entry(tid).or_default();
            // Cap the parked stock per type. Balanced patterns (gather–
            // scatter, allreduce) park exactly what they take, staying far
            // below the cap; asymmetric ones (a root that only receives)
            // would otherwise accumulate buffers without bound.
            if slot.len() < PARK_CAP {
                slot.push(buf);
            }
        }
    }

    /// `(hits, misses)` of [`BufferPool::take`] so far: a warm steady
    /// state shows hits growing and misses frozen.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.inner.hits.load(Ordering::Relaxed),
            self.inner.misses.load(Ordering::Relaxed),
        )
    }
}

/// Guard over a recyclable `Box<Vec<T>>`: dereferences to the vector, and
/// parks the cleared buffer back in its pool on drop.
pub struct PooledVec<T: Msg> {
    buf: Option<Box<Vec<T>>>,
    pool: BufferPool,
}

impl<T: Msg> PooledVec<T> {
    /// Surrender the box (nothing returns to the pool): the send path,
    /// which moves the box into an [`crate::Envelope`] so the *receiver*
    /// parks it.
    pub fn detach(mut self) -> Box<Vec<T>> {
        self.buf.take().expect("detach on live guard")
    }

    /// Move the contents out as a plain `Vec`, parking the emptied shell.
    ///
    /// This steals the vector's capacity from the pool, so the steady
    /// state should prefer borrowing (`&*guard`) or copying out; `take`
    /// is for hand-off points that must produce an owned `Vec`.
    pub fn take(mut self) -> Vec<T> {
        std::mem::take(self.buf.as_mut().expect("take on live guard"))
    }
}

impl<T: Msg> Deref for PooledVec<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        self.buf.as_ref().expect("deref on live guard")
    }
}

impl<T: Msg> DerefMut for PooledVec<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        self.buf.as_mut().expect("deref on live guard")
    }
}

impl<T: Msg> Drop for PooledVec<T> {
    fn drop(&mut self) {
        if let Some(mut buf) = self.buf.take() {
            buf.clear();
            self.pool.park(TypeId::of::<Vec<T>>(), buf);
        }
    }
}

impl<T: Msg + fmt::Debug> fmt::Debug for PooledVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_park_recycles_capacity() {
        let pool = BufferPool::new(true);
        let mut a = pool.take::<f64>();
        a.extend_from_slice(&[1.0; 100]);
        let cap = a.capacity();
        drop(a); // parks
        let b = pool.take::<f64>();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "recycled buffer keeps its capacity");
        assert_eq!(pool.counters(), (1, 1));
    }

    #[test]
    fn types_do_not_collide() {
        let pool = BufferPool::new(true);
        let mut a = pool.take::<f64>();
        a.push(1.0);
        drop(a);
        let b = pool.take::<u64>(); // must not hand back the f64 buffer
        assert!(b.is_empty());
        assert_eq!(pool.counters(), (0, 2));
        drop(b);
        let c = pool.take::<u64>();
        assert_eq!(pool.counters(), (1, 2));
        drop(c);
    }

    #[test]
    fn disabled_pool_never_recycles() {
        let pool = BufferPool::new(false);
        let mut a = pool.take::<f64>();
        a.push(1.0);
        drop(a);
        drop(pool.take::<f64>());
        assert_eq!(pool.counters(), (0, 2));
    }

    #[test]
    fn detach_then_adopt_round_trip() {
        let pool = BufferPool::new(true);
        let mut a = pool.take::<u64>();
        a.extend_from_slice(&[7, 8, 9]);
        let boxed = a.detach(); // nothing parked
        let b = pool.adopt(boxed);
        assert_eq!(&**b, &[7, 8, 9]);
        drop(b); // parks the (cleared) buffer
        let c = pool.take::<u64>();
        assert_eq!(pool.counters(), (1, 1));
        drop(c);
    }

    #[test]
    fn take_contents_parks_empty_shell() {
        let pool = BufferPool::new(true);
        let mut a = pool.take::<f64>();
        a.extend_from_slice(&[1.0, 2.0]);
        let v = a.take();
        assert_eq!(v, vec![1.0, 2.0]);
        let b = pool.take::<f64>();
        assert_eq!(pool.counters(), (1, 1), "emptied shell was parked");
        assert_eq!(b.capacity(), 0, "contents (and capacity) moved out");
    }
}
