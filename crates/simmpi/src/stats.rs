//! Per-rank communication statistics — the mpiP analogue.
//!
//! The paper instruments CMT-bone with mpiP, "a lightweight, task-local,
//! and scalable profiling library for MPI applications", and reports
//! (Figs. 8-10) per-rank MPI time fractions, the most expensive call
//! sites, and per-call-site message volumes. `simmpi` keeps the same
//! task-local books: every operation appends to its rank's
//! [`CommRecorder`] under a key of `(operation, context)`, where the
//! context string is set by the application ([`crate::Rank::set_context`])
//! and plays the role of mpiP's call-site stack signature.

use std::collections::HashMap;
use std::time::Duration;

/// The MPI operation kinds distinguished by the recorder (the union of
/// everything CMT-bone/Nekbone call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MpiOp {
    /// Blocking send.
    Send,
    /// Non-blocking send initiation.
    Isend,
    /// Blocking receive.
    Recv,
    /// Non-blocking receive initiation.
    Irecv,
    /// Completion wait on a non-blocking request.
    Wait,
    /// Barrier.
    Barrier,
    /// Broadcast.
    Bcast,
    /// Reduce-to-root.
    Reduce,
    /// Allreduce.
    Allreduce,
    /// Gather-to-root.
    Gather,
    /// Prefix scan.
    Scan,
    /// All-to-all with per-peer counts.
    Alltoallv,
    /// Crystal-router generalized all-to-all.
    CrystalRouter,
    /// Injected message delay (fault injection; time is the delay served).
    FaultDelay,
    /// Injected drop + retransmit (fault injection; time is the
    /// timeout/backoff served before the retransmission got through).
    FaultRetransmit,
    /// Wire serialization/deserialization performed by a non-in-process
    /// transport (the socket backend). Recorded as its own row so wire
    /// overhead never silently folds into `MPI_Send`/`MPI_Wait`.
    TransportSer,
    /// Load-balancer cost-vector gather (the `cmt-lb` allgather of
    /// per-element and per-rank cost samples). Recorded *instead of* the
    /// underlying collective row via [`crate::Rank::with_op_badge`], so
    /// LB monitoring traffic is a first-class mpiP line item and never
    /// double-counts against `MPI_Allreduce`.
    LbGather,
    /// Load-balancer migration traffic: element state blocks and resident
    /// particles shipped to their new owners over the crystal router.
    /// Badged over the underlying `crystal_router` row, same rule as
    /// [`MpiOp::LbGather`].
    LbMigrate,
}

impl MpiOp {
    /// Display name styled after the MPI profiling literature.
    pub fn mpi_name(self) -> &'static str {
        match self {
            MpiOp::Send => "MPI_Send",
            MpiOp::Isend => "MPI_Isend",
            MpiOp::Recv => "MPI_Recv",
            MpiOp::Irecv => "MPI_Irecv",
            MpiOp::Wait => "MPI_Wait",
            MpiOp::Barrier => "MPI_Barrier",
            MpiOp::Bcast => "MPI_Bcast",
            MpiOp::Reduce => "MPI_Reduce",
            MpiOp::Allreduce => "MPI_Allreduce",
            MpiOp::Gather => "MPI_Gather",
            MpiOp::Scan => "MPI_Scan",
            MpiOp::Alltoallv => "MPI_Alltoallv",
            MpiOp::CrystalRouter => "crystal_router",
            MpiOp::FaultDelay => "fault_delay",
            MpiOp::FaultRetransmit => "fault_retransmit",
            MpiOp::TransportSer => "transport_ser",
            MpiOp::LbGather => "lb_gather",
            MpiOp::LbMigrate => "lb_migrate",
        }
    }

    /// Whether this entry is an injected-fault record rather than a real
    /// communication operation.
    pub fn is_fault(self) -> bool {
        matches!(self, MpiOp::FaultDelay | MpiOp::FaultRetransmit)
    }
}

/// Identity of a profiled call site: operation + application context label.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteKey {
    /// Which operation.
    pub op: MpiOp,
    /// Application-provided context (e.g. `"gs:pairwise"`).
    pub context: String,
}

/// Accumulated statistics of one call site on one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteStats {
    /// Number of invocations.
    pub calls: u64,
    /// Total wall time spent inside the operation, seconds.
    pub time_s: f64,
    /// Total bytes sent and received by the operation.
    pub bytes: u64,
    /// Largest single-call byte count.
    pub max_bytes: u64,
    /// Total *modelled* network time (latency/bandwidth model), seconds.
    pub modeled_s: f64,
}

/// Task-local recorder owned by each [`crate::Rank`].
///
/// Keyed two-level (op, then context) so the hot path — recording into an
/// existing site — is a borrowed-`&str` lookup with no allocation; the
/// context string is only cloned the first time a site appears.
#[derive(Debug, Default)]
pub struct CommRecorder {
    sites: HashMap<MpiOp, HashMap<String, SiteStats>>,
}

impl CommRecorder {
    /// Record one completed operation.
    pub fn record(
        &mut self,
        op: MpiOp,
        context: &str,
        elapsed: Duration,
        bytes: u64,
        modeled_s: f64,
    ) {
        let by_ctx = self.sites.entry(op).or_default();
        let entry = match by_ctx.get_mut(context) {
            Some(e) => e,
            None => by_ctx.entry(context.to_owned()).or_default(),
        };
        entry.calls += 1;
        entry.time_s += elapsed.as_secs_f64();
        entry.bytes += bytes;
        entry.max_bytes = entry.max_bytes.max(bytes);
        entry.modeled_s += modeled_s;
    }

    /// Record many completed operations in one shot — the drain path for
    /// work performed off the rank thread (a socket transport's rx
    /// deserialization, say), where per-event timing was accumulated
    /// elsewhere and only the totals reach the recorder.
    pub fn record_bulk(&mut self, op: MpiOp, context: &str, calls: u64, time_s: f64, bytes: u64) {
        if calls == 0 {
            return;
        }
        let by_ctx = self.sites.entry(op).or_default();
        let entry = match by_ctx.get_mut(context) {
            Some(e) => e,
            None => by_ctx.entry(context.to_owned()).or_default(),
        };
        entry.calls += calls;
        entry.time_s += time_s;
        entry.bytes += bytes;
        entry.max_bytes = entry.max_bytes.max(bytes / calls.max(1));
    }

    /// Finish recording, producing the immutable per-rank stats.
    pub fn finish(self, rank: usize, app_time_s: f64) -> CommStats {
        let mut sites: Vec<(SiteKey, SiteStats)> = self
            .sites
            .into_iter()
            .flat_map(|(op, by_ctx)| {
                by_ctx
                    .into_iter()
                    .map(move |(context, s)| (SiteKey { op, context }, s))
            })
            .collect();
        sites.sort_by(|a, b| a.0.cmp(&b.0));
        CommStats {
            rank,
            app_time_s,
            sites,
            net_samples: Vec::new(),
        }
    }
}

/// Immutable communication statistics of one rank over one [`crate::World`]
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct CommStats {
    /// The rank these statistics belong to.
    pub rank: usize,
    /// Total wall time the rank spent in the application closure, seconds.
    pub app_time_s: f64,
    /// Per-call-site statistics, sorted by key for determinism.
    pub sites: Vec<(SiteKey, SiteStats)>,
    /// Measured per-message `(wire_bytes, transfer_seconds)` samples
    /// collected by a real transport (the socket backend's rx path);
    /// empty for the in-process backend. Feed to
    /// [`crate::NetworkModel::fit`] to replace the synthetic
    /// latency/bandwidth parameters with measured ones.
    pub net_samples: Vec<(u64, f64)>,
}

impl CommStats {
    /// Total time spent in communication operations, seconds.
    pub fn mpi_time_s(&self) -> f64 {
        self.sites.iter().map(|(_, s)| s.time_s).sum()
    }

    /// Fraction of application time spent in communication (the paper's
    /// Fig. 8 quantity), in `[0, 1]` barring clock skew.
    pub fn mpi_fraction(&self) -> f64 {
        if self.app_time_s > 0.0 {
            self.mpi_time_s() / self.app_time_s
        } else {
            0.0
        }
    }

    /// Total bytes moved by this rank.
    pub fn total_bytes(&self) -> u64 {
        self.sites.iter().map(|(_, s)| s.bytes).sum()
    }

    /// Look up one site's stats.
    pub fn site(&self, op: MpiOp, context: &str) -> Option<&SiteStats> {
        self.sites
            .iter()
            .find(|(k, _)| k.op == op && k.context == context)
            .map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_per_site() {
        let mut r = CommRecorder::default();
        r.record(MpiOp::Send, "a", Duration::from_millis(10), 100, 0.0);
        r.record(MpiOp::Send, "a", Duration::from_millis(20), 300, 0.0);
        r.record(MpiOp::Recv, "a", Duration::from_millis(5), 50, 0.0);
        r.record(MpiOp::Send, "b", Duration::from_millis(1), 7, 0.0);
        let stats = r.finish(2, 1.0);
        assert_eq!(stats.rank, 2);
        assert_eq!(stats.sites.len(), 3);
        let send_a = stats.site(MpiOp::Send, "a").unwrap();
        assert_eq!(send_a.calls, 2);
        assert_eq!(send_a.bytes, 400);
        assert_eq!(send_a.max_bytes, 300);
        assert!((send_a.time_s - 0.030).abs() < 1e-9);
        assert_eq!(stats.total_bytes(), 457);
        assert!((stats.mpi_time_s() - 0.036).abs() < 1e-9);
        assert!((stats.mpi_fraction() - 0.036).abs() < 1e-9);
    }

    #[test]
    fn zero_app_time_gives_zero_fraction() {
        let stats = CommRecorder::default().finish(0, 0.0);
        assert_eq!(stats.mpi_fraction(), 0.0);
        assert_eq!(stats.mpi_time_s(), 0.0);
    }

    #[test]
    fn mpi_names_are_stable() {
        assert_eq!(MpiOp::Wait.mpi_name(), "MPI_Wait");
        assert_eq!(MpiOp::Alltoallv.mpi_name(), "MPI_Alltoallv");
    }
}
