//! Verifier hook interface: the runtime side of the `cmt-verify` checker.
//!
//! The runtime stays checker-agnostic: it defines the [`VerifyHooks`]
//! trait and calls it at every event a dynamic MPI verifier cares about —
//! sends (where a vector clock may be piggybacked on the envelope),
//! matched receives, blocking-receive entry/poll/exit (the wait-for-graph
//! feed), collective entry (fingerprint matching), gather–scatter
//! shared-slot accesses, and rank finalization (message-leak detection).
//! The `cmt-verify` crate supplies the implementation; a world without a
//! verifier pays one `Option` check per event.
//!
//! Two hook results steer the runtime:
//!
//! * [`VerifyHooks::on_block_poll`] may return a deadlock diagnostic, in
//!   which case the blocked rank poisons the world and panics with it —
//!   turning a 300-second timeout into a sub-second, fully explained
//!   abort;
//! * [`VerifyHooks::on_collective`] may return a mismatch diagnostic,
//!   aborting the offending collective *before* its internal messages can
//!   entangle the tag space.

use crate::rank::Tag;

/// Which collective a fingerprint describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    /// Dissemination barrier.
    Barrier,
    /// Binomial-tree broadcast.
    Bcast,
    /// Binomial-tree reduce-to-root.
    Reduce,
    /// Allreduce (reduce-to-0 + broadcast).
    Allreduce,
    /// Hillis–Steele exclusive scan.
    Exscan,
    /// Gather-to-root.
    Gather,
    /// Pairwise-exchange alltoallv.
    Alltoallv,
    /// Crystal-router generalized all-to-all.
    CrystalRouter,
}

impl CollKind {
    /// Display name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            CollKind::Barrier => "barrier",
            CollKind::Bcast => "bcast",
            CollKind::Reduce => "reduce",
            CollKind::Allreduce => "allreduce",
            CollKind::Exscan => "exscan",
            CollKind::Gather => "gather",
            CollKind::Alltoallv => "alltoallv",
            CollKind::CrystalRouter => "crystal_router",
        }
    }
}

/// One rank's view of one collective call, checked against its peers'.
///
/// `len` is `None` where the call carries no length contract for this
/// rank (a non-root `bcast` buffer is ignored; `gather` contributions and
/// crystal-router payloads may legitimately differ per rank).
#[derive(Debug, Clone, Copy)]
pub struct CollFingerprint<'a> {
    /// The collective's kind.
    pub kind: CollKind,
    /// Root rank, for rooted collectives.
    pub root: Option<usize>,
    /// Element type name (`std::any::type_name`), empty for barriers.
    pub elem_type: &'static str,
    /// Element count this rank contributed, where the algorithm requires
    /// rank agreement.
    pub len: Option<usize>,
    /// The caller's context label (the mpiP call-site analogue).
    pub context: &'a str,
}

/// One message found unreceived (or consumed as cancelled exchange
/// traffic) when a rank finalized.
#[derive(Debug, Clone)]
pub struct LeakInfo {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Wire-equivalent payload size.
    pub bytes: u64,
    /// The sender's context label at send time, when the runtime
    /// recorded one.
    pub sender_context: Option<String>,
}

/// Checker callbacks invoked by the runtime. All methods take `&self`:
/// implementations are shared across the world's rank threads.
pub trait VerifyHooks: Send + Sync + std::fmt::Debug {
    /// The world is about to spawn `size` ranks.
    fn on_start(&self, size: usize);

    /// `from` is sending `bytes` bytes to `to` under `tag`. The returned
    /// vector clock (if any) is piggybacked on the envelope and handed to
    /// [`VerifyHooks::on_recv`] when the message is matched.
    fn on_send(
        &self,
        from: usize,
        to: usize,
        tag: Tag,
        bytes: u64,
        context: &str,
    ) -> Option<Vec<u64>>;

    /// A receive on `rank` matched a message from `src` carrying `clock`.
    fn on_recv(&self, rank: usize, src: usize, tag: Tag, clock: Option<&[u64]>);

    /// `rank` entered collective `seq` with fingerprint `fp`. An `Err`
    /// diagnostic makes the rank poison the world and panic before the
    /// collective exchanges anything.
    fn on_collective(&self, rank: usize, seq: u64, fp: CollFingerprint<'_>) -> Result<(), String>;

    /// `rank` has been blocked in a receive for at least one poll
    /// interval. Returns an id identifying this blocked episode in
    /// subsequent [`VerifyHooks::on_block_poll`] / `on_unblock` calls.
    fn on_block(&self, rank: usize, src: usize, tag: Tag, context: &str) -> u64;

    /// Periodic progress poll while `rank` stays blocked. A `Some`
    /// diagnostic reports a confirmed deadlock: the rank poisons the
    /// world and panics with it.
    fn on_block_poll(&self, rank: usize, block_id: u64) -> Option<String>;

    /// The blocked receive `block_id` on `rank` matched a message.
    fn on_unblock(&self, rank: usize, block_id: u64);

    /// `rank` started a split-phase exchange covering the shared slots
    /// `gids`. Returns an epoch id the matching
    /// [`VerifyHooks::on_exchange_finish`] closes; epochs still open at
    /// finalize are abandoned exchanges.
    fn on_exchange_start(&self, rank: usize, gids: &[u64], context: &str) -> u64;

    /// `rank` finished (drained and scattered) exchange `epoch`.
    fn on_exchange_finish(&self, rank: usize, epoch: u64);

    /// Application code on `rank` read (`write == false`) or wrote the
    /// shared slots `gids` outside the exchange protocol. Fed to the
    /// happens-before race detector.
    fn on_slot_access(&self, rank: usize, gids: &[u64], write: bool, context: &str);

    /// The matching engine on `rank` silently consumed a message whose
    /// receiver had cancelled it (an abandoned split-phase exchange).
    fn on_discarded(
        &self,
        rank: usize,
        src: usize,
        tag: Tag,
        bytes: u64,
        sender_context: Option<&str>,
    );

    /// `rank`'s SPMD closure returned. `coll_seq` is its final collective
    /// count; `leaked` are messages still sitting unmatched in its
    /// mailbox after a finalize barrier; `unclaimed` are discard credits
    /// `(src, tag, count)` registered for messages that never arrived.
    fn on_finalize(
        &self,
        rank: usize,
        coll_seq: u64,
        leaked: &[LeakInfo],
        unclaimed: &[(usize, Tag, u64)],
    );
}
