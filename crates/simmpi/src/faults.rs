//! Deterministic fault injection for the rank runtime.
//!
//! Production Nek-family solvers run at scales where component faults are
//! routine, and resilience studies on CMT (dynamic load balancing,
//! checkpoint/restart) need a way to *provoke* faults reproducibly. A
//! [`FaultPlan`] is a seeded, deterministic description of the faults one
//! world run should experience:
//!
//! * **message delays** — with probability `prob`, a point-to-point send
//!   is held for a fixed time before delivery (a congested or degraded
//!   link);
//! * **message drops with retransmit** — with probability `prob`, the
//!   first transmission attempt of a send is lost; the sender times out
//!   and retransmits with exponential backoff until an attempt succeeds
//!   (the delivered payload is always intact, so drops perturb *timing*
//!   and *cost*, never results);
//! * **rank kills** — at a chosen application step, a chosen rank loses
//!   its in-memory state. The runtime does not act on kill events itself:
//!   drivers consult the plan ([`FaultPlan::kills`]) and run their
//!   checkpoint/restart recovery (see the `resilience` crate).
//!
//! Every injected delay and retransmit is recorded in the rank's
//! mpiP-style statistics under its own operation kind
//! ([`crate::MpiOp::FaultDelay`], [`crate::MpiOp::FaultRetransmit`]), so
//! the cost of running through faults is measurable per call site, not
//! anecdotal.
//!
//! Determinism: each rank derives its own [`crate::rng::SmallRng`] stream
//! from the plan seed and its rank id, and draws from it once per
//! configured hazard per send. SPMD code performs the same send sequence
//! on every run, so the injected schedule is bitwise reproducible. The
//! RNG state can be captured and restored ([`crate::Rank::fault_rng_state`])
//! so a rollback replays the same decisions.

use std::sync::Arc;
use std::time::Duration;

use crate::rng::SmallRng;

/// Per-rank fault-injection state: the shared plan plus this rank's own
/// deterministic hazard stream.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pub(crate) plan: Arc<FaultPlan>,
    pub(crate) rng: SmallRng,
}

impl FaultState {
    /// Derive rank `r`'s hazard stream from the plan seed. The golden-ratio
    /// multiplier decorrelates adjacent ranks' streams.
    pub(crate) fn for_rank(plan: Arc<FaultPlan>, r: usize) -> FaultState {
        let seed = plan
            .seed
            .wrapping_add((r as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        FaultState {
            plan,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

/// Message-delay hazard: each send is delayed with probability `prob`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayFault {
    /// Per-send probability of injecting the delay, in `[0, 1]`.
    pub prob: f64,
    /// The injected delay.
    pub delay: Duration,
    /// Restrict the hazard to one rank's sends (`delay:...,rank=R`).
    /// `None` delays every rank. A single-rank delay turns that rank
    /// into a deterministic straggler — the load-balancer test rig.
    pub rank: Option<usize>,
}

/// Drop-and-retransmit hazard: each transmission attempt of a send is
/// lost with probability `prob`; the sender waits one timeout (doubling
/// per attempt) and retransmits, up to `max_retries` forced attempts —
/// after which the transmission is treated as delivered, modelling a
/// reliable link layer that eventually gets through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropFault {
    /// Per-attempt probability of losing the transmission, in `[0, 1]`.
    pub prob: f64,
    /// Retransmit timeout of the first attempt; attempt `k` waits
    /// `timeout * 2^k` (exponential backoff).
    pub timeout: Duration,
    /// Maximum number of retransmissions per send.
    pub max_retries: u32,
}

/// A scheduled rank kill: at the top of application step `step`, rank
/// `rank` loses its in-memory state. Fires once (drivers mark events
/// consumed so a post-recovery replay of the same step does not re-kill).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillEvent {
    /// The rank that dies.
    pub rank: usize,
    /// The application step (timestep / CG iteration) at which it dies.
    pub step: u64,
}

/// A deterministic, seeded fault schedule for one world run.
///
/// Parse one from the `--fault-plan` command-line grammar with
/// [`FaultPlan::parse`]:
///
/// ```
/// use simmpi::FaultPlan;
///
/// let plan = FaultPlan::parse("kill:rank=2,step=5;drop:prob=0.1;seed=7").unwrap();
/// assert_eq!(plan.kills.len(), 1);
/// assert_eq!(plan.kills[0].rank, 2);
/// assert_eq!(plan.seed, 7);
/// assert!(plan.delay.is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the per-rank hazard RNG streams.
    pub seed: u64,
    /// Optional message-delay hazard.
    pub delay: Option<DelayFault>,
    /// Optional drop-and-retransmit hazard.
    pub drop: Option<DropFault>,
    /// Scheduled rank kills, in the order given.
    pub kills: Vec<KillEvent>,
}

impl FaultPlan {
    /// The `--chaos-sched` schedule-perturbation plan: a delay hazard
    /// that holds a random (but seed-deterministic) quarter of all sends
    /// for 150 µs. Nothing is dropped or killed, so a correct SPMD
    /// program must produce bitwise-identical results under every seed —
    /// the perturbation only explores message *interleavings* the
    /// default schedule never exhibits, which is exactly what the
    /// `cmt-verify` checker wants to run under in CI.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan::chaos_over(FaultPlan::default(), seed)
    }

    /// Overlay the chaos delay hazard and seed onto `base`, keeping its
    /// kills and drop hazard (so `--chaos-sched` composes with an
    /// explicit `--fault-plan`).
    pub fn chaos_over(base: FaultPlan, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay: Some(DelayFault {
                prob: 0.25,
                delay: Duration::from_micros(150),
                rank: None,
            }),
            ..base
        }
    }

    /// Whether the plan injects any message-level hazard (delay or drop).
    pub fn has_message_faults(&self) -> bool {
        self.delay.is_some() || self.drop.is_some()
    }

    /// Kill events scheduled for `step`, in plan order.
    pub fn kills_at(&self, step: u64) -> impl Iterator<Item = &KillEvent> {
        self.kills.iter().filter(move |k| k.step == step)
    }

    /// Parse the `--fault-plan` grammar: semicolon-separated clauses
    ///
    /// * `kill:rank=R,step=S` — schedule a rank kill (repeatable);
    /// * `delay:prob=P,us=U[,rank=R]` — delay each send with probability
    ///   `P` by `U` microseconds; `rank=R` restricts the hazard to rank
    ///   `R`'s sends (a deterministic straggler);
    /// * `drop:prob=P[,us=U][,retries=K]` — lose each transmission
    ///   attempt with probability `P`, retransmit after `U` microseconds
    ///   (default 200) with backoff, at most `K` retries (default 4);
    /// * `seed=N` — RNG seed (default 0).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            if let Some(v) = clause.strip_prefix("seed=") {
                plan.seed = v
                    .parse()
                    .map_err(|_| format!("bad seed in fault plan: {clause:?}"))?;
                continue;
            }
            let (kind, args) = clause
                .split_once(':')
                .ok_or_else(|| format!("bad fault clause (want kind:k=v,...): {clause:?}"))?;
            let kv = parse_kv(args)?;
            let get = |key: &str| -> Result<f64, String> {
                kv.iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| format!("fault clause {clause:?} missing {key}="))
            };
            let opt = |key: &str| kv.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
            match kind {
                "kill" => plan.kills.push(KillEvent {
                    rank: get("rank")? as usize,
                    step: get("step")? as u64,
                }),
                "delay" => {
                    plan.delay = Some(DelayFault {
                        prob: check_prob(get("prob")?, clause)?,
                        delay: Duration::from_micros(get("us")? as u64),
                        rank: opt("rank").map(|r| r as usize),
                    })
                }
                "drop" => {
                    plan.drop = Some(DropFault {
                        prob: check_prob(get("prob")?, clause)?,
                        timeout: Duration::from_micros(opt("us").unwrap_or(200.0) as u64),
                        max_retries: opt("retries").unwrap_or(4.0) as u32,
                    })
                }
                other => return Err(format!("unknown fault kind {other:?} in {clause:?}")),
            }
        }
        Ok(plan)
    }

    /// Validate the plan against a world of `size` ranks: kill targets
    /// must exist, and a killed rank needs a distinct partner to restore
    /// from, so worlds of one rank cannot host kills.
    pub fn validate(&self, size: usize) -> Result<(), String> {
        for k in &self.kills {
            if k.rank >= size {
                return Err(format!(
                    "fault plan kills rank {} but the world has {size} ranks",
                    k.rank
                ));
            }
        }
        if let Some(r) = self.delay.as_ref().and_then(|d| d.rank) {
            if r >= size {
                return Err(format!(
                    "fault plan delays rank {r} but the world has {size} ranks"
                ));
            }
        }
        if !self.kills.is_empty() && size < 2 {
            return Err("rank kills need at least 2 ranks (partner redundancy)".into());
        }
        Ok(())
    }
}

fn parse_kv(args: &str) -> Result<Vec<(String, f64)>, String> {
    args.split(',')
        .filter(|a| !a.trim().is_empty())
        .map(|a| {
            let (k, v) = a
                .split_once('=')
                .ok_or_else(|| format!("bad fault argument (want k=v): {a:?}"))?;
            let v: f64 = v
                .trim()
                .parse()
                .map_err(|_| format!("bad fault value in {a:?}"))?;
            Ok((k.trim().to_string(), v))
        })
        .collect()
}

fn check_prob(p: f64, clause: &str) -> Result<f64, String> {
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(format!("probability out of [0,1] in {clause:?}: {p}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan = FaultPlan::parse(
            "kill:rank=2,step=5;kill:rank=0,step=9;delay:prob=0.5,us=100;drop:prob=0.25,us=50,retries=2;seed=99",
        )
        .unwrap();
        assert_eq!(
            plan.kills,
            vec![
                KillEvent { rank: 2, step: 5 },
                KillEvent { rank: 0, step: 9 }
            ]
        );
        let d = plan.delay.unwrap();
        assert_eq!(d.prob, 0.5);
        assert_eq!(d.delay, Duration::from_micros(100));
        let dr = plan.drop.unwrap();
        assert_eq!(dr.prob, 0.25);
        assert_eq!(dr.timeout, Duration::from_micros(50));
        assert_eq!(dr.max_retries, 2);
        assert_eq!(plan.seed, 99);
        assert!(plan.has_message_faults());
    }

    #[test]
    fn drop_defaults_apply() {
        let plan = FaultPlan::parse("drop:prob=0.1").unwrap();
        let dr = plan.drop.unwrap();
        assert_eq!(dr.timeout, Duration::from_micros(200));
        assert_eq!(dr.max_retries, 4);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "kill:rank=2",          // missing step
            "explode:rank=1",       // unknown kind
            "delay:prob=1.5,us=10", // probability out of range
            "drop:prob=x",          // unparseable value
            "seed=abc",             // bad seed
            "justtext",             // no kind separator
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert_eq!(plan, FaultPlan::default());
        assert!(!plan.has_message_faults());
    }

    #[test]
    fn kills_at_filters_by_step() {
        let plan =
            FaultPlan::parse("kill:rank=1,step=3;kill:rank=2,step=3;kill:rank=0,step=7").unwrap();
        let at3: Vec<usize> = plan.kills_at(3).map(|k| k.rank).collect();
        assert_eq!(at3, vec![1, 2]);
        assert_eq!(plan.kills_at(4).count(), 0);
    }

    #[test]
    fn delay_rank_selector_parses_and_validates() {
        let plan = FaultPlan::parse("delay:prob=1,us=300,rank=2;seed=5").unwrap();
        let d = plan.delay.unwrap();
        assert_eq!(d.rank, Some(2));
        assert_eq!(d.delay, Duration::from_micros(300));
        assert!(plan.validate(3).is_ok());
        assert!(plan.validate(2).is_err(), "rank 2 needs a 3-rank world");
        // No selector: delays everyone, validates anywhere.
        let plan = FaultPlan::parse("delay:prob=0.5,us=10").unwrap();
        assert_eq!(plan.delay.unwrap().rank, None);
        assert!(plan.validate(1).is_ok());
    }

    #[test]
    fn validate_checks_rank_bounds_and_world_size() {
        let plan = FaultPlan::parse("kill:rank=4,step=1").unwrap();
        assert!(plan.validate(4).is_err());
        assert!(plan.validate(5).is_ok());
        let plan = FaultPlan::parse("kill:rank=0,step=1").unwrap();
        assert!(plan.validate(1).is_err());
        assert!(FaultPlan::default().validate(1).is_ok());
    }
}
