//! # simmpi
//!
//! A thread-based message-passing runtime with MPI-like semantics, built as
//! the communication substrate for the CMT-bone reproduction.
//!
//! The CMT-bone paper (CLUSTER 2015) characterizes its mini-app's MPI
//! behaviour — which gather-scatter algorithm wins (Fig. 7), the fraction
//! of time each rank spends in MPI (Fig. 8), the most expensive call sites
//! (Fig. 9, dominated by `MPI_Wait`), and per-call-site message sizes
//! (Fig. 10). Reproducing those experiments needs an MPI whose *schedule*
//! is faithful (who sends what to whom, with which algorithm, in which
//! order) and whose operations can be timed and byte-counted per call
//! site. It does not need InfiniBand. `simmpi` therefore runs each MPI
//! rank as an OS thread and moves messages over channels:
//!
//! * [`World::run`] spawns `P` ranks and hands each a [`Rank`] handle;
//! * point-to-point: [`Rank::send`] / [`Rank::recv`] with `(source, tag)`
//!   matching, plus non-blocking [`Rank::isend`] / [`Rank::irecv`] and
//!   [`Rank::wait_recv`] (time blocked in wait is attributed to a `Wait`
//!   op, exactly how mpiP attributes it in the paper's Fig. 9);
//! * collectives implemented with the textbook distributed algorithms over
//!   the same p2p layer: dissemination barrier, binomial-tree
//!   broadcast/reduce, allreduce, pairwise-exchange alltoall(v);
//! * the [`crystal`] module implements Nek5000's crystal-router
//!   generalized all-to-all (hypercube staging, `log2 P` rounds, with the
//!   fold/unfold extension for non-power-of-two rank counts);
//! * every operation records `(op, context, duration, bytes)` into a
//!   per-rank [`stats::CommStats`], where `context` is a user-set label
//!   ([`Rank::set_context`]) standing in for mpiP's call-site stacks;
//! * a parametric [`netmodel::NetworkModel`] additionally accumulates
//!   *modelled* transfer time (latency + size/bandwidth) so notional
//!   future machines can be explored, as the paper's Section VI
//!   co-design discussion anticipates.
//!
//! Determinism: message *matching* is deterministic (FIFO per
//! source/tag); completion *order* across ranks is scheduled by the OS, as
//! with real MPI. All collectives produce bitwise-deterministic results
//! because their reduction trees are fixed by rank arithmetic.

#![warn(missing_docs)]

pub mod collectives;
pub mod crystal;
pub mod envelope;
pub mod faults;
pub(crate) mod mailbox;
pub mod netmodel;
pub mod pool;
pub mod rank;
pub mod rng;
pub(crate) mod socket;
pub mod stats;
pub mod transport;
pub mod verify;
pub mod wire;
pub mod workers;
pub mod world;

pub use envelope::{Msg, INLINE_ELEMS};
pub use faults::{DelayFault, DropFault, FaultPlan, KillEvent};
pub use netmodel::NetworkModel;
pub use pool::{BufferPool, PooledVec};
pub use rank::{DiscardList, Rank, RecvRequest, Tag};
pub use stats::{CommStats, MpiOp, SiteKey, SiteStats};
pub use transport::{SocketConfig, TransportKind};
pub use verify::{CollFingerprint, CollKind, LeakInfo, VerifyHooks};
pub use wire::{WireCodec, WireError, WireReader};
pub use workers::{chunk_count, chunk_range, AllocCounterFn, SharedSliceMut, WorkerPool};
pub use world::{World, WorldResult};

/// Elementwise reduction operators for the typed collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

impl ReduceOp {
    /// Apply the operator to a pair of `f64` values.
    #[inline]
    pub fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// Apply the operator to a pair of `u64` values.
    #[inline]
    pub fn apply_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}
