//! Versioned wire format for non-in-process transports.
//!
//! The in-process backend moves `Vec`s between threads and never touches
//! this module. The socket backend serializes every [`Envelope`] into a
//! length-prefixed, checksummed frame:
//!
//! ```text
//! [u32 body_len] [body]
//! body = magic "SMPW" (u32) | version (u16) | kind (u8) | payload ... | fnv1a64 checksum (u64)
//! ```
//!
//! All integers are little-endian. The checksum covers everything before
//! it (magic included), so a torn or corrupted frame is rejected rather
//! than mis-decoded; decoding returns [`WireError`], never panics, and
//! refuses trailing bytes so a frame cannot smuggle data past the codec.
//!
//! **Data frames** carry one envelope: source, destination, tag, the
//! wire-equivalent byte count (kept verbatim so mpiP books and the
//! network model agree bitwise with the in-process backend), a send
//! timestamp (feeding measured latency/bandwidth samples to
//! [`crate::NetworkModel::fit`]), the payload element type as a small
//! registry id, the elements, and — when a verifier is installed — the
//! piggybacked vector clock and sender context.
//!
//! **Payload registry.** Payloads are typed `Vec<T>`s behind `dyn Any`;
//! the wire cannot ship a `TypeId`, so every element type that may cross
//! a process boundary has a stable numeric id here: the primitive types
//! the mini-apps exchange (`f64`/`u64`/`u8`/`u32`/`usize`) and the
//! crystal router's [`RoutedMsg`] bundles. Sending an unregistered type
//! over a socket transport panics with instructions; receiving an
//! unknown id is a [`WireError::UnknownPayloadType`].
//!
//! Decoded primitive payloads stage through the receiving rank's
//! [`BufferPool`] (the box shell and capacity recycle exactly as on the
//! in-process path), so the zero-allocation steady state survives the
//! serialization boundary. Inline (eager) payloads are re-materialized
//! as inline on the receiver, preserving the sender's representation.
//!
//! The [`WireCodec`] trait is the public composition layer: driver
//! crates implement it for their per-rank result structs so
//! [`crate::World::run_dist`] can ship results from rank processes back
//! to the launcher.

use std::any::Any;
use std::time::SystemTime;

use crate::crystal::RoutedMsg;
use crate::envelope::{Envelope, Msg, Payload, INLINE_ELEMS};
use crate::pool::BufferPool;
use crate::stats::{CommStats, MpiOp, SiteKey, SiteStats};
use crate::verify::LeakInfo;

/// Frame magic: `"SMPW"` (simmpi wire).
pub(crate) const MAGIC: u32 = 0x534D_5057;
/// Wire-format version; bumped on any incompatible layout change.
pub(crate) const VERSION: u16 = 1;
/// Upper bound on one frame body, to reject absurd lengths from a
/// corrupt or hostile peer before allocating.
pub(crate) const MAX_FRAME: usize = 1 << 30;

pub(crate) const FLAG_INLINE: u8 = 1;
pub(crate) const FLAG_CLOCK: u8 = 2;
pub(crate) const FLAG_CTX: u8 = 4;

/// Frame kinds exchanged between rank processes and the launcher hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameKind {
    /// Child -> hub: `rank`, `size` — identifies the connection.
    Hello = 1,
    /// Hub -> child: all ranks connected, start the program.
    Go = 2,
    /// An envelope in flight (child -> hub -> destination child).
    Data = 3,
    /// Child -> hub: a verifier hook invocation.
    VerifyReq = 4,
    /// Hub -> child: the hook's return value.
    VerifyRep = 5,
    /// Child -> hub: the rank's encoded return value and CommStats.
    Result = 6,
    /// Hub -> children: a peer failed; abort instead of deadlocking.
    Poison = 7,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Hello,
            2 => FrameKind::Go,
            3 => FrameKind::Data,
            4 => FrameKind::VerifyReq,
            5 => FrameKind::VerifyRep,
            6 => FrameKind::Result,
            7 => FrameKind::Poison,
            _ => return None,
        })
    }
}

/// Why a frame or value failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// Frame does not start with the `SMPW` magic.
    BadMagic(u32),
    /// Peer speaks a different wire-format version.
    BadVersion(u16),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Payload element type id not in the registry.
    UnknownPayloadType(u16),
    /// FNV-1a checksum mismatch: the frame was corrupted in flight.
    ChecksumMismatch,
    /// Bytes left over after the value was fully decoded.
    TrailingBytes(usize),
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A declared length exceeds the bytes actually present.
    Oversized(u64),
    /// Structurally invalid value (context in the message).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::UnknownPayloadType(t) => write!(f, "unknown payload type id {t}"),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            WireError::Oversized(n) => write!(f, "declared length {n} exceeds frame"),
            WireError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over `bytes` (the frame checksum).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// primitive put/get helpers
// ---------------------------------------------------------------------

/// Append a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a little-endian `u16`.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `f64` (IEEE-754 bits — bitwise exact).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Cursor over a received frame body; every read is bounds-checked.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from `buf`, starting at the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume everything left.
    pub fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `f64` (bitwise exact).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.bytes(n)?).map_err(|_| WireError::BadUtf8)
    }

    /// Read a declared element count, rejecting counts that cannot fit in
    /// the remaining bytes at `min_elem_bytes` per element (corruption
    /// guard: never reserve memory a torn frame merely claims to carry).
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u64()?;
        if (n as usize).saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::Oversized(n));
        }
        Ok(n as usize)
    }
}

// ---------------------------------------------------------------------
// frame envelope
// ---------------------------------------------------------------------

/// Start a frame body in `buf` (clears it first).
pub(crate) fn begin_frame(buf: &mut Vec<u8>, kind: FrameKind) {
    buf.clear();
    put_u32(buf, MAGIC);
    put_u16(buf, VERSION);
    put_u8(buf, kind as u8);
}

/// Finish a frame body: append the checksum over everything so far.
pub(crate) fn end_frame(buf: &mut Vec<u8>) {
    let sum = fnv1a(buf);
    put_u64(buf, sum);
}

/// Validate a frame body (magic, version, kind, checksum) and return its
/// kind plus a reader positioned after the header, covering everything
/// up to (not including) the checksum.
pub(crate) fn open_frame(body: &[u8]) -> Result<(FrameKind, WireReader<'_>), WireError> {
    const HEADER: usize = 4 + 2 + 1;
    if body.len() < HEADER + 8 {
        return Err(WireError::Truncated);
    }
    let (head, sum_bytes) = body.split_at(body.len() - 8);
    let sum = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if fnv1a(head) != sum {
        return Err(WireError::ChecksumMismatch);
    }
    let mut r = WireReader::new(head);
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind_byte = r.u8()?;
    let kind = FrameKind::from_u8(kind_byte).ok_or(WireError::BadKind(kind_byte))?;
    Ok((kind, r))
}

/// Destination rank of a data frame, read without decoding the payload —
/// the hub's routing peek. `None` if the body is too short or not Data.
pub(crate) fn peek_data_dest(body: &[u8]) -> Option<usize> {
    // magic(4) version(2) kind(1) src(4) dest(4)
    if body.len() < 15 || body[6] != FrameKind::Data as u8 {
        return None;
    }
    Some(u32::from_le_bytes(body[11..15].try_into().unwrap()) as usize)
}

/// Nanoseconds since the UNIX epoch (the data-frame send timestamp).
pub(crate) fn now_nanos() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------
// envelope (data frame) codec
// ---------------------------------------------------------------------

/// Serialize `env` (headed for `dest`) as a complete data frame in `buf`.
pub(crate) fn encode_data(buf: &mut Vec<u8>, dest: usize, env: &Envelope) {
    begin_frame(buf, FrameKind::Data);
    put_u32(buf, env.src as u32);
    put_u32(buf, dest as u32);
    put_u64(buf, env.tag);
    put_u64(buf, env.bytes as u64);
    put_u64(buf, now_nanos());
    let flags_at = buf.len();
    put_u8(buf, 0);
    let inline = encode_payload(&env.payload, buf);
    let mut flags = 0u8;
    if inline {
        flags |= FLAG_INLINE;
    }
    if let Some(clock) = &env.clock {
        flags |= FLAG_CLOCK;
        put_u32(buf, clock.len() as u32);
        for &c in clock.iter() {
            put_u64(buf, c);
        }
    }
    if let Some(ctx) = &env.sender_ctx {
        flags |= FLAG_CTX;
        put_str(buf, ctx);
    }
    buf[flags_at] = flags;
    end_frame(buf);
}

/// A decoded data frame: the reconstructed envelope plus the send
/// timestamp and on-wire size used for latency/bandwidth sampling.
pub(crate) struct DecodedData {
    pub env: Envelope,
    pub stamp_nanos: u64,
    pub wire_bytes: u64,
}

/// Decode a data frame body (reader positioned after the frame header).
/// Primitive payloads stage through `pool`.
pub(crate) fn decode_data(
    r: &mut WireReader<'_>,
    pool: &BufferPool,
) -> Result<DecodedData, WireError> {
    let wire_bytes = (r.remaining() + 7 + 8) as u64; // header + checksum included
    let src = r.u32()? as usize;
    let _dest = r.u32()?;
    let tag = r.u64()?;
    let bytes = r.u64()? as usize;
    let stamp_nanos = r.u64()?;
    let flags = r.u8()?;
    let payload = decode_payload(r, flags & FLAG_INLINE != 0, pool)?;
    let clock = if flags & FLAG_CLOCK != 0 {
        let n = r.u32()? as usize;
        if n.saturating_mul(8) > r.remaining() {
            return Err(WireError::Oversized(n as u64));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(r.u64()?);
        }
        Some(v.into_boxed_slice())
    } else {
        None
    };
    let sender_ctx = if flags & FLAG_CTX != 0 {
        Some(r.str()?.into())
    } else {
        None
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(DecodedData {
        env: Envelope {
            src,
            tag,
            payload,
            bytes,
            clock,
            sender_ctx,
        },
        stamp_nanos,
        wire_bytes,
    })
}

// ---------------------------------------------------------------------
// payload registry
// ---------------------------------------------------------------------

const WIRE_F64: u16 = 1;
const WIRE_U64: u16 = 2;
const WIRE_U8: u16 = 3;
const WIRE_U32: u16 = 4;
const WIRE_USIZE: u16 = 5;
const WIRE_ROUTED_F64: u16 = 6;
const WIRE_ROUTED_U64: u16 = 7;
const WIRE_ROUTED_U8: u16 = 8;
const WIRE_ROUTED_USIZE: u16 = 9;

/// Borrow a boxed/shared payload as a typed slice, if it holds `Vec<T>`.
fn payload_slice<T: Msg>(p: &Payload) -> Option<&[T]> {
    match p {
        Payload::Boxed(b) => (&**b as &dyn Any).downcast_ref::<Vec<T>>(),
        Payload::Shared(a) => (&**a as &dyn Any).downcast_ref::<Vec<T>>(),
        _ => None,
    }
    .map(Vec::as_slice)
}

fn put_routed<T: Msg>(buf: &mut Vec<u8>, msgs: &[RoutedMsg<T>], put: fn(&mut Vec<u8>, &T)) {
    put_u64(buf, msgs.len() as u64);
    for m in msgs {
        put_u64(buf, m.src as u64);
        put_u64(buf, m.dest as u64);
        put_u64(buf, m.data.len() as u64);
        for v in &m.data {
            put(buf, v);
        }
    }
}

/// Serialize the payload section: registry id (u16), element count
/// (u64), elements. Returns whether the payload was inline (eager).
///
/// # Panics
/// Panics when the element type is not in the registry — sending it over
/// a socket transport is a programming error the in-process backend
/// cannot catch for us.
fn encode_payload(p: &Payload, buf: &mut Vec<u8>) -> bool {
    match p {
        Payload::InlineF64(n, arr) => {
            put_u16(buf, WIRE_F64);
            put_u64(buf, *n as u64);
            for v in &arr[..*n as usize] {
                put_f64(buf, *v);
            }
            return true;
        }
        Payload::InlineU64(n, arr) => {
            put_u16(buf, WIRE_U64);
            put_u64(buf, *n as u64);
            for v in &arr[..*n as usize] {
                put_u64(buf, *v);
            }
            return true;
        }
        Payload::InlineU8(n, arr) => {
            put_u16(buf, WIRE_U8);
            put_u64(buf, *n as u64);
            buf.extend_from_slice(&arr[..*n as usize]);
            return true;
        }
        _ => {}
    }
    if let Some(v) = payload_slice::<f64>(p) {
        put_u16(buf, WIRE_F64);
        put_u64(buf, v.len() as u64);
        for &x in v {
            put_f64(buf, x);
        }
    } else if let Some(v) = payload_slice::<u64>(p) {
        put_u16(buf, WIRE_U64);
        put_u64(buf, v.len() as u64);
        for &x in v {
            put_u64(buf, x);
        }
    } else if let Some(v) = payload_slice::<u8>(p) {
        put_u16(buf, WIRE_U8);
        put_u64(buf, v.len() as u64);
        buf.extend_from_slice(v);
    } else if let Some(v) = payload_slice::<u32>(p) {
        put_u16(buf, WIRE_U32);
        put_u64(buf, v.len() as u64);
        for &x in v {
            put_u32(buf, x);
        }
    } else if let Some(v) = payload_slice::<usize>(p) {
        put_u16(buf, WIRE_USIZE);
        put_u64(buf, v.len() as u64);
        for &x in v {
            put_u64(buf, x as u64);
        }
    } else if let Some(v) = payload_slice::<RoutedMsg<f64>>(p) {
        put_u16(buf, WIRE_ROUTED_F64);
        put_routed(buf, v, |b, x| put_f64(b, *x));
    } else if let Some(v) = payload_slice::<RoutedMsg<u64>>(p) {
        put_u16(buf, WIRE_ROUTED_U64);
        put_routed(buf, v, |b, x| put_u64(b, *x));
    } else if let Some(v) = payload_slice::<RoutedMsg<u8>>(p) {
        put_u16(buf, WIRE_ROUTED_U8);
        put_routed(buf, v, |b, x| put_u8(b, *x));
    } else if let Some(v) = payload_slice::<RoutedMsg<usize>>(p) {
        put_u16(buf, WIRE_ROUTED_USIZE);
        put_routed(buf, v, |b, x| put_u64(b, *x as u64));
    } else {
        panic!(
            "socket transport cannot serialize this payload element type; \
             register it in simmpi::wire's payload registry"
        );
    }
    false
}

/// Decode a flat primitive payload into a pool-staged `Box<Vec<T>>`.
fn decode_flat<T: Msg>(
    r: &mut WireReader<'_>,
    pool: &BufferPool,
    elem_bytes: usize,
    get: impl Fn(&mut WireReader<'_>) -> Result<T, WireError>,
) -> Result<Payload, WireError> {
    let n = r.count(elem_bytes)?;
    let mut v = pool.take::<T>().detach();
    v.reserve(n);
    for _ in 0..n {
        v.push(get(r)?);
    }
    Ok(Payload::Boxed(v))
}

fn decode_routed<T: Msg>(
    r: &mut WireReader<'_>,
    pool: &BufferPool,
    elem_bytes: usize,
    get: impl Fn(&mut WireReader<'_>) -> Result<T, WireError>,
) -> Result<Payload, WireError> {
    let n = r.count(24)?;
    let mut msgs = pool.take::<RoutedMsg<T>>().detach();
    msgs.reserve(n);
    for _ in 0..n {
        let src = r.u64()? as usize;
        let dest = r.u64()? as usize;
        let len = r.count(elem_bytes)?;
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(get(r)?);
        }
        msgs.push(RoutedMsg { src, dest, data });
    }
    Ok(Payload::Boxed(msgs))
}

/// Decode the payload section written by [`encode_payload`]. An inline
/// payload is rebuilt inline, preserving the sender's representation.
fn decode_payload(
    r: &mut WireReader<'_>,
    inline: bool,
    pool: &BufferPool,
) -> Result<Payload, WireError> {
    let wire_id = r.u16()?;
    if inline {
        let n = r.count(1)?;
        if n > INLINE_ELEMS {
            return Err(WireError::Malformed("inline payload too long"));
        }
        return Ok(match wire_id {
            WIRE_F64 => {
                let mut arr = [0.0f64; INLINE_ELEMS];
                for slot in arr.iter_mut().take(n) {
                    *slot = r.f64()?;
                }
                Payload::InlineF64(n as u8, arr)
            }
            WIRE_U64 => {
                let mut arr = [0u64; INLINE_ELEMS];
                for slot in arr.iter_mut().take(n) {
                    *slot = r.u64()?;
                }
                Payload::InlineU64(n as u8, arr)
            }
            WIRE_U8 => {
                let mut arr = [0u8; INLINE_ELEMS];
                arr[..n].copy_from_slice(r.bytes(n)?);
                Payload::InlineU8(n as u8, arr)
            }
            _ => return Err(WireError::Malformed("inline flag on non-inline type")),
        });
    }
    match wire_id {
        WIRE_F64 => decode_flat(r, pool, 8, |r| r.f64()),
        WIRE_U64 => decode_flat(r, pool, 8, |r| r.u64()),
        WIRE_U8 => decode_flat(r, pool, 1, |r| r.u8()),
        WIRE_U32 => decode_flat(r, pool, 4, |r| r.u32()),
        WIRE_USIZE => decode_flat(r, pool, 8, |r| r.u64().map(|v| v as usize)),
        WIRE_ROUTED_F64 => decode_routed(r, pool, 8, |r| r.f64()),
        WIRE_ROUTED_U64 => decode_routed(r, pool, 8, |r| r.u64()),
        WIRE_ROUTED_U8 => decode_routed(r, pool, 1, |r| r.u8()),
        WIRE_ROUTED_USIZE => decode_routed(r, pool, 8, |r| r.u64().map(|v| v as usize)),
        other => Err(WireError::UnknownPayloadType(other)),
    }
}

// ---------------------------------------------------------------------
// WireCodec: the public composition layer
// ---------------------------------------------------------------------

/// Bidirectional byte codec for values that cross a process boundary —
/// per-rank results shipped from rank processes back to the
/// [`crate::World::run_dist`] launcher.
///
/// Driver crates implement this for their per-rank output structs,
/// composing the blanket impls for primitives, `String`, `Option`,
/// `Vec`, and small tuples with the [`put_u64`]-family helpers.
/// Encoding must be deterministic; decoding must consume exactly what
/// encoding produced.
pub trait WireCodec: Sized {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode one value, advancing the reader past it.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

macro_rules! codec_prim {
    ($t:ty, $put:ident, $get:ident) => {
        impl WireCodec for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                $put(buf, *self);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                r.$get()
            }
        }
    };
}

codec_prim!(u8, put_u8, u8);
codec_prim!(u32, put_u32, u32);
codec_prim!(u64, put_u64, u64);
codec_prim!(f64, put_f64, f64);

impl WireCodec for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, *self as u64);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(r.u64()? as usize)
    }
}

impl WireCodec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u8(buf, *self as u8);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool")),
        }
    }
}

impl WireCodec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_str(buf, self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(r.str()?.to_owned())
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => put_u8(buf, 0),
            Some(v) => {
                put_u8(buf, 1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::Malformed("option tag")),
        }
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.len() as u64);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.count(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: WireCodec, B: WireCodec, C: WireCodec> WireCodec for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl WireCodec for MpiOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        let code: u8 = match self {
            MpiOp::Send => 0,
            MpiOp::Isend => 1,
            MpiOp::Recv => 2,
            MpiOp::Irecv => 3,
            MpiOp::Wait => 4,
            MpiOp::Barrier => 5,
            MpiOp::Bcast => 6,
            MpiOp::Reduce => 7,
            MpiOp::Allreduce => 8,
            MpiOp::Gather => 9,
            MpiOp::Scan => 10,
            MpiOp::Alltoallv => 11,
            MpiOp::CrystalRouter => 12,
            MpiOp::FaultDelay => 13,
            MpiOp::FaultRetransmit => 14,
            MpiOp::TransportSer => 15,
            MpiOp::LbGather => 16,
            MpiOp::LbMigrate => 17,
        };
        put_u8(buf, code);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => MpiOp::Send,
            1 => MpiOp::Isend,
            2 => MpiOp::Recv,
            3 => MpiOp::Irecv,
            4 => MpiOp::Wait,
            5 => MpiOp::Barrier,
            6 => MpiOp::Bcast,
            7 => MpiOp::Reduce,
            8 => MpiOp::Allreduce,
            9 => MpiOp::Gather,
            10 => MpiOp::Scan,
            11 => MpiOp::Alltoallv,
            12 => MpiOp::CrystalRouter,
            13 => MpiOp::FaultDelay,
            14 => MpiOp::FaultRetransmit,
            15 => MpiOp::TransportSer,
            16 => MpiOp::LbGather,
            17 => MpiOp::LbMigrate,
            _ => return Err(WireError::Malformed("mpi op")),
        })
    }
}

impl WireCodec for SiteStats {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.calls);
        put_f64(buf, self.time_s);
        put_u64(buf, self.bytes);
        put_u64(buf, self.max_bytes);
        put_f64(buf, self.modeled_s);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SiteStats {
            calls: r.u64()?,
            time_s: r.f64()?,
            bytes: r.u64()?,
            max_bytes: r.u64()?,
            modeled_s: r.f64()?,
        })
    }
}

impl WireCodec for SiteKey {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.op.encode(buf);
        put_str(buf, &self.context);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SiteKey {
            op: MpiOp::decode(r)?,
            context: r.str()?.to_owned(),
        })
    }
}

impl WireCodec for CommStats {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.rank as u64);
        put_f64(buf, self.app_time_s);
        self.sites.encode(buf);
        self.net_samples.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(CommStats {
            rank: r.u64()? as usize,
            app_time_s: r.f64()?,
            sites: Vec::decode(r)?,
            net_samples: Vec::decode(r)?,
        })
    }
}

impl WireCodec for LeakInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.src as u64);
        put_u64(buf, self.tag);
        put_u64(buf, self.bytes);
        self.sender_context.encode(buf);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(LeakInfo {
            src: r.u64()? as usize,
            tag: r.u64()?,
            bytes: r.u64()?,
            sender_context: Option::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn round_trip(env: Envelope) -> (DecodedData, BufferPool) {
        let pool = BufferPool::new(true);
        let mut buf = Vec::new();
        encode_data(&mut buf, 1, &env);
        let (kind, mut r) = open_frame(&buf).expect("frame opens");
        assert_eq!(kind, FrameKind::Data);
        let d = decode_data(&mut r, &pool).expect("decodes");
        (d, pool)
    }

    #[test]
    fn data_round_trip_f64_boxed() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 * 0.25 - 3.0).collect();
        let env = Envelope::new(2, 0x77, data.clone());
        let (d, _) = round_trip(env);
        assert_eq!(d.env.src, 2);
        assert_eq!(d.env.tag, 0x77);
        assert_eq!(d.env.bytes, 800);
        assert_eq!(d.env.open::<f64>(), data);
    }

    #[test]
    fn data_round_trip_every_flat_type() {
        let e = Envelope::new(0, 1, vec![1u64, u64::MAX, 42]);
        assert_eq!(round_trip(e).0.env.open::<u64>(), vec![1, u64::MAX, 42]);
        let e = Envelope::new(0, 1, (0u8..=255).collect::<Vec<u8>>());
        assert_eq!(
            round_trip(e).0.env.open::<u8>(),
            (0u8..=255).collect::<Vec<u8>>()
        );
        let e = Envelope::new(0, 1, vec![7u32, u32::MAX]);
        assert_eq!(round_trip(e).0.env.open::<u32>(), vec![7, u32::MAX]);
        let e = Envelope::new(0, 1, vec![3usize, usize::MAX]);
        assert_eq!(round_trip(e).0.env.open::<usize>(), vec![3, usize::MAX]);
    }

    #[test]
    fn data_round_trip_preserves_nan_and_negzero_bits() {
        let vals = vec![f64::NAN, -0.0, f64::INFINITY, f64::MIN_POSITIVE];
        let env = Envelope::new(0, 1, vals.clone());
        let got = round_trip(env).0.env.open::<f64>();
        for (a, b) in got.iter().zip(&vals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn inline_payloads_stay_inline_across_the_wire() {
        for n in 0..=INLINE_ELEMS {
            let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let env = Envelope::inline_from(0, 5, &vals).unwrap();
            let (d, _) = round_trip(env);
            assert!(matches!(d.env.payload, Payload::InlineF64(k, _) if k as usize == n));
            assert_eq!(d.env.open::<f64>(), vals);
        }
        let env = Envelope::inline_from(0, 5, &[9u64, 8]).unwrap();
        let (d, _) = round_trip(env);
        assert!(matches!(d.env.payload, Payload::InlineU64(2, _)));
        let env = Envelope::inline_from(0, 5, &[1u8]).unwrap();
        let (d, _) = round_trip(env);
        assert!(matches!(d.env.payload, Payload::InlineU8(1, _)));
    }

    #[test]
    fn shared_payload_crosses_as_boxed() {
        let arc = Arc::new(vec![5.0f64, 6.0]);
        let env = Envelope::from_shared(3, 9, arc);
        let (d, _) = round_trip(env);
        assert!(matches!(d.env.payload, Payload::Boxed(_)));
        assert_eq!(d.env.open::<f64>(), vec![5.0, 6.0]);
    }

    #[test]
    fn routed_msg_round_trip() {
        let msgs = vec![
            RoutedMsg {
                src: 0,
                dest: 3,
                data: vec![1.5f64, 2.5],
            },
            RoutedMsg {
                src: 2,
                dest: 1,
                data: Vec::new(),
            },
        ];
        let env = Envelope::new(0, 2, msgs.clone());
        assert_eq!(round_trip(env).0.env.open::<RoutedMsg<f64>>(), msgs);
        let msgs = vec![RoutedMsg {
            src: 7,
            dest: 0,
            data: vec![u64::MAX],
        }];
        let env = Envelope::new(7, 2, msgs.clone());
        assert_eq!(round_trip(env).0.env.open::<RoutedMsg<u64>>(), msgs);
        let msgs = vec![RoutedMsg {
            src: 1,
            dest: 2,
            data: vec![0u8, 255],
        }];
        let env = Envelope::new(1, 2, msgs.clone());
        assert_eq!(round_trip(env).0.env.open::<RoutedMsg<u8>>(), msgs);
    }

    #[test]
    fn pooled_decode_recycles_buffers() {
        let pool = BufferPool::new(true);
        let mut buf = Vec::new();
        encode_data(&mut buf, 1, &Envelope::new(0, 1, vec![1.0f64; 64]));
        for _ in 0..3 {
            let (_, mut r) = open_frame(&buf).unwrap();
            let d = decode_data(&mut r, &pool).unwrap();
            drop(d.env.open_pooled::<f64>(&pool)); // parks the buffer
        }
        let (hits, misses) = pool.counters();
        assert!(
            hits >= 2,
            "decode did not recycle: {hits} hits {misses} misses"
        );
    }

    #[test]
    fn clock_and_ctx_piggyback_round_trip() {
        let mut env = Envelope::new(4, 8, vec![1u64]);
        env.clock = Some(vec![1, 2, 3].into_boxed_slice());
        env.sender_ctx = Some("faces/gs:pairwise".into());
        let (d, _) = round_trip(env);
        assert_eq!(d.env.clock.as_deref(), Some(&[1u64, 2, 3][..]));
        assert_eq!(d.env.sender_ctx.as_deref(), Some("faces/gs:pairwise"));
    }

    #[test]
    fn truncated_frames_are_rejected_at_every_length() {
        let mut buf = Vec::new();
        encode_data(&mut buf, 1, &Envelope::new(0, 1, vec![1.0f64, 2.0]));
        let pool = BufferPool::new(true);
        for cut in 0..buf.len() {
            let body = &buf[..cut];
            let ok = open_frame(body).and_then(|(_, mut r)| decode_data(&mut r, &pool));
            assert!(ok.is_err(), "truncation to {cut} bytes was accepted");
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let mut buf = Vec::new();
        encode_data(&mut buf, 1, &Envelope::new(0, 1, vec![42u64; 4]));
        // flip one bit anywhere: the checksum must catch it
        for i in [0usize, 5, 8, 20, buf.len() - 1] {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(open_frame(&bad).is_err(), "bit flip at {i} accepted");
        }
        // bad magic specifically
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        let head_len = bad.len() - 8;
        let sum = fnv1a(&bad[..head_len]);
        bad[head_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(open_frame(&bad), Err(WireError::BadMagic(_))));
        // future version
        let mut bad = buf.clone();
        bad[4] = 0xee;
        let sum = fnv1a(&bad[..head_len]);
        bad[head_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(open_frame(&bad), Err(WireError::BadVersion(_))));
    }

    #[test]
    fn unknown_payload_type_is_rejected() {
        let mut buf = Vec::new();
        encode_data(&mut buf, 1, &Envelope::new(0, 1, vec![1u64]));
        // the wire id sits right after src/dest/tag/bytes/stamp/flags
        let id_at = 7 + 4 + 4 + 8 + 8 + 8 + 1;
        let mut bad = buf.clone();
        bad[id_at] = 0x99;
        let head_len = bad.len() - 8;
        let sum = fnv1a(&bad[..head_len]);
        bad[head_len..].copy_from_slice(&sum.to_le_bytes());
        let pool = BufferPool::new(true);
        let (_, mut r) = open_frame(&bad).unwrap();
        assert!(matches!(
            decode_data(&mut r, &pool),
            Err(WireError::UnknownPayloadType(0x99))
        ));
    }

    #[test]
    fn oversized_count_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        encode_data(&mut buf, 1, &Envelope::new(0, 1, vec![1.0f64]));
        // corrupt the element count to something enormous
        let count_at = 7 + 4 + 4 + 8 + 8 + 8 + 1 + 2;
        let mut bad = buf.clone();
        bad[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let head_len = bad.len() - 8;
        let sum = fnv1a(&bad[..head_len]);
        bad[head_len..].copy_from_slice(&sum.to_le_bytes());
        let pool = BufferPool::new(true);
        let (_, mut r) = open_frame(&bad).unwrap();
        assert!(matches!(
            decode_data(&mut r, &pool),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn peek_dest_matches_encoded_dest() {
        let mut buf = Vec::new();
        encode_data(&mut buf, 13, &Envelope::new(0, 1, vec![1u8]));
        assert_eq!(peek_data_dest(&buf), Some(13));
        assert_eq!(peek_data_dest(&buf[..10]), None);
    }

    #[test]
    fn wire_codec_composes() {
        #[derive(Debug, PartialEq)]
        struct Sample {
            name: String,
            vals: Vec<f64>,
            flag: Option<u64>,
        }
        impl WireCodec for Sample {
            fn encode(&self, buf: &mut Vec<u8>) {
                self.name.encode(buf);
                self.vals.encode(buf);
                self.flag.encode(buf);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(Sample {
                    name: String::decode(r)?,
                    vals: Vec::decode(r)?,
                    flag: Option::decode(r)?,
                })
            }
        }
        let s = Sample {
            name: "hi".into(),
            vals: vec![1.0, -2.0],
            flag: Some(9),
        };
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(Sample::decode(&mut r).unwrap(), s);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn comm_stats_codec_round_trip() {
        let mut rec = crate::stats::CommRecorder::default();
        rec.record(
            MpiOp::Send,
            "gs:pairwise",
            std::time::Duration::from_millis(3),
            128,
            1e-6,
        );
        rec.record_bulk(MpiOp::TransportSer, "transport:rx", 10, 0.5e-3, 4096);
        let mut stats = rec.finish(3, 1.25);
        stats.net_samples = vec![(128, 1e-5), (4096, 4e-5)];
        let mut buf = Vec::new();
        stats.encode(&mut buf);
        let mut r = WireReader::new(&buf);
        let back = CommStats::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back, stats);
    }
}
