//! Typed message envelopes.
//!
//! Messages travel between ranks as type-erased `Box<dyn Any + Send>`
//! payloads carrying a `Vec<T>`; no serialization happens (the ranks share
//! an address space), but each envelope records the byte size the payload
//! *would* occupy on a wire, which is what the mpiP-style statistics and
//! the network model consume.

use std::any::Any;

/// Marker trait for element types that may cross ranks.
///
/// Blanket-implemented for every `Clone + Send + 'static` type; in
/// practice the mini-apps move `f64` field data and `u64`/`usize` id
/// lists.
pub trait Msg: Clone + Send + 'static {}
impl<T: Clone + Send + 'static> Msg for T {}

/// A message in flight: source rank, tag, type-erased payload, and its
/// wire-equivalent size in bytes.
///
/// When a verifier is installed ([`crate::World::with_verifier`]) the
/// envelope additionally piggybacks the sender's vector clock — the
/// happens-before edge the race detector rides on — and the sender's
/// context label, so message-leak diagnostics can name the send site.
/// Both stay `None` (zero cost beyond the option) in unverified worlds.
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// User or internal tag (see [`crate::rank::Tag`]).
    pub tag: u64,
    /// `Vec<T>` behind `dyn Any`.
    pub payload: Box<dyn Any + Send>,
    /// Wire-equivalent payload size in bytes.
    pub bytes: usize,
    /// Piggybacked sender vector clock (verifier installed only).
    pub clock: Option<Box<[u64]>>,
    /// Sender's context label at send time (verifier installed only).
    pub sender_ctx: Option<Box<str>>,
}

impl Envelope {
    /// Wrap a typed payload.
    pub fn new<T: Msg>(src: usize, tag: u64, data: Vec<T>) -> Self {
        let bytes = data.len() * std::mem::size_of::<T>();
        Envelope {
            src,
            tag,
            payload: Box::new(data),
            bytes,
            clock: None,
            sender_ctx: None,
        }
    }

    /// Recover the typed payload.
    ///
    /// # Panics
    /// Panics if the stored type differs from `T` — that is a programming
    /// error equivalent to an MPI datatype mismatch.
    pub fn open<T: Msg>(self) -> Vec<T> {
        match self.payload.downcast::<Vec<T>>() {
            Ok(v) => *v,
            Err(_) => panic!(
                "message type mismatch: rank {} tag {:#x} does not hold Vec<{}>",
                self.src,
                self.tag,
                std::any::type_name::<T>()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_byte_count() {
        let env = Envelope::new(3, 7, vec![1.0f64, 2.0, 3.0]);
        assert_eq!(env.src, 3);
        assert_eq!(env.bytes, 24);
        assert_eq!(env.open::<f64>(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_payload_is_zero_bytes() {
        let env = Envelope::new(0, 0, Vec::<u64>::new());
        assert_eq!(env.bytes, 0);
        assert!(env.open::<u64>().is_empty());
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let env = Envelope::new(0, 0, vec![1.0f64]);
        let _ = env.open::<u32>();
    }
}
