//! Typed message envelopes.
//!
//! Messages travel between ranks as type-erased payloads carrying a
//! `Vec<T>`; no serialization happens (the ranks share an address space),
//! but each envelope records the byte size the payload *would* occupy on
//! a wire, which is what the mpiP-style statistics and the network model
//! consume.
//!
//! Three payload representations keep the steady state allocation-free:
//!
//! * **Boxed** — the general case: a `Box<Vec<T>>` whose box shell *and*
//!   vector capacity both recycle through the receiving rank's
//!   [`crate::BufferPool`].
//! * **Shared** — an `Arc<Vec<T>>` for one-to-many fan-outs (broadcast
//!   trees): `N` children cost zero payload clones, and the last opener
//!   moves the buffer out instead of cloning it.
//! * **Inline** — small payloads of the workhorse element types
//!   (`f64`/`u64`/`u8`, up to [`INLINE_ELEMS`] elements) ride inside the
//!   envelope itself: the eager path that skips the heap entirely.

use std::any::{Any, TypeId};
use std::sync::Arc;

use crate::pool::{BufferPool, PooledVec};

/// Marker trait for element types that may cross ranks.
///
/// Blanket-implemented for every `Clone + Send + Sync + 'static` type; in
/// practice the mini-apps move `f64` field data and `u64`/`usize` id
/// lists. (`Sync` is required so a payload can be `Arc`-shared across a
/// broadcast fan-out.)
pub trait Msg: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Msg for T {}

/// Maximum element count of the inline (eager) payload representation.
pub const INLINE_ELEMS: usize = 8;

/// The type-erased payload representations (see module docs).
pub(crate) enum Payload {
    /// `Box<Vec<T>>` behind `dyn Any`; shell and capacity are recyclable.
    Boxed(Box<dyn Any + Send>),
    /// `Arc<Vec<T>>` shared by a one-to-many fan-out.
    Shared(Arc<dyn Any + Send + Sync>),
    /// Small `f64` payload carried inline (length, storage).
    InlineF64(u8, [f64; INLINE_ELEMS]),
    /// Small `u64` payload carried inline.
    InlineU64(u8, [u64; INLINE_ELEMS]),
    /// Small `u8` payload carried inline.
    InlineU8(u8, [u8; INLINE_ELEMS]),
}

/// A message in flight: source rank, tag, type-erased payload, and its
/// wire-equivalent size in bytes.
///
/// When a verifier is installed ([`crate::World::with_verifier`]) the
/// envelope additionally piggybacks the sender's vector clock — the
/// happens-before edge the race detector rides on — and the sender's
/// context label, so message-leak diagnostics can name the send site.
/// Both stay `None` (zero cost beyond the option) in unverified worlds.
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// User or internal tag (see [`crate::rank::Tag`]).
    pub tag: u64,
    /// The type-erased payload.
    pub(crate) payload: Payload,
    /// Wire-equivalent payload size in bytes.
    pub bytes: usize,
    /// Piggybacked sender vector clock (verifier installed only).
    pub clock: Option<Box<[u64]>>,
    /// Sender's context label at send time (verifier installed only).
    pub sender_ctx: Option<Box<str>>,
}

/// Copy a small slice into an inline payload, if the element type has an
/// inline form. The per-element `dyn Any` downcast is how a generic `T`
/// is matched against the concrete inline types without `unsafe`.
fn to_inline<T: Msg>(data: &[T]) -> Option<Payload> {
    if data.len() > INLINE_ELEMS {
        return None;
    }
    let tid = TypeId::of::<T>();
    if tid == TypeId::of::<f64>() {
        let mut arr = [0.0f64; INLINE_ELEMS];
        for (slot, v) in arr.iter_mut().zip(data) {
            *slot = *(v as &dyn Any).downcast_ref::<f64>().unwrap();
        }
        Some(Payload::InlineF64(data.len() as u8, arr))
    } else if tid == TypeId::of::<u64>() {
        let mut arr = [0u64; INLINE_ELEMS];
        for (slot, v) in arr.iter_mut().zip(data) {
            *slot = *(v as &dyn Any).downcast_ref::<u64>().unwrap();
        }
        Some(Payload::InlineU64(data.len() as u8, arr))
    } else if tid == TypeId::of::<u8>() {
        let mut arr = [0u8; INLINE_ELEMS];
        for (slot, v) in arr.iter_mut().zip(data) {
            *slot = *(v as &dyn Any).downcast_ref::<u8>().unwrap();
        }
        Some(Payload::InlineU8(data.len() as u8, arr))
    } else {
        None
    }
}

/// Copy inline elements of concrete type `E` out as `Vec<T>`; panics with
/// the datatype-mismatch diagnostic if `T != E`.
fn open_inline<T: Msg, E: Msg>(src: usize, tag: u64, vals: &[E], out: &mut Vec<T>) {
    if TypeId::of::<T>() != TypeId::of::<E>() {
        mismatch::<T>(src, tag);
    }
    out.extend(
        vals.iter()
            // cmt-lint: allow(CMT-L003) — `T` is an inline-eligible
            // scalar (f64/u64/u8); this clone is a register copy.
            .map(|v| (v as &dyn Any).downcast_ref::<T>().unwrap().clone()),
    );
}

fn mismatch<T>(src: usize, tag: u64) -> ! {
    panic!(
        "message type mismatch: rank {} tag {:#x} does not hold Vec<{}>",
        src,
        tag,
        std::any::type_name::<T>()
    )
}

impl Envelope {
    /// Wrap a typed payload.
    pub fn new<T: Msg>(src: usize, tag: u64, data: Vec<T>) -> Self {
        Envelope::from_box(src, tag, Box::new(data))
    }

    /// Wrap an already-boxed payload (the pooled zero-alloc send path:
    /// the box shell came out of a [`BufferPool`] and will return to the
    /// receiver's — the shell, not the vector, is the recyclable unit).
    #[allow(clippy::box_collection)]
    pub(crate) fn from_box<T: Msg>(src: usize, tag: u64, data: Box<Vec<T>>) -> Self {
        let bytes = data.len() * std::mem::size_of::<T>();
        Envelope {
            src,
            tag,
            payload: Payload::Boxed(data),
            bytes,
            clock: None,
            sender_ctx: None,
        }
    }

    /// Wrap a shared payload for a one-to-many fan-out.
    pub(crate) fn from_shared<T: Msg>(src: usize, tag: u64, data: Arc<Vec<T>>) -> Self {
        let bytes = data.len() * std::mem::size_of::<T>();
        Envelope {
            src,
            tag,
            payload: Payload::Shared(data),
            bytes,
            clock: None,
            sender_ctx: None,
        }
    }

    /// Build an inline (eager, heap-free) envelope for a small payload of
    /// a supported element type; `None` if the payload is too large or
    /// the type has no inline form.
    pub(crate) fn inline_from<T: Msg>(src: usize, tag: u64, data: &[T]) -> Option<Self> {
        let payload = to_inline(data)?;
        Some(Envelope {
            src,
            tag,
            payload,
            bytes: data.len() * std::mem::size_of::<T>(),
            clock: None,
            sender_ctx: None,
        })
    }

    /// Recover the typed payload.
    ///
    /// For a shared payload the last opener moves the buffer out; earlier
    /// openers clone it.
    ///
    /// # Panics
    /// Panics if the stored type differs from `T` — that is a programming
    /// error equivalent to an MPI datatype mismatch.
    pub fn open<T: Msg>(self) -> Vec<T> {
        let Envelope {
            src, tag, payload, ..
        } = self;
        match payload {
            Payload::Boxed(b) => match b.downcast::<Vec<T>>() {
                Ok(v) => *v,
                Err(_) => mismatch::<T>(src, tag),
            },
            Payload::Shared(a) => match a.downcast::<Vec<T>>() {
                Ok(arc) => Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone()),
                Err(_) => mismatch::<T>(src, tag),
            },
            inline => {
                let mut out = Vec::new();
                open_inline_payload(src, tag, inline, &mut out);
                out
            }
        }
    }

    /// Recover the typed payload into a pool-guarded buffer: the general
    /// (boxed) case adopts the sender's box wholesale — zero copies, zero
    /// allocations — and the guard parks it in `pool` when the receiver
    /// is done. Inline and still-shared payloads copy into a recycled
    /// buffer taken from `pool`.
    ///
    /// # Panics
    /// Panics on a datatype mismatch, as [`Envelope::open`] does.
    pub(crate) fn open_pooled<T: Msg>(self, pool: &BufferPool) -> PooledVec<T> {
        let Envelope {
            src, tag, payload, ..
        } = self;
        match payload {
            Payload::Boxed(b) => match b.downcast::<Vec<T>>() {
                Ok(v) => pool.adopt(v),
                Err(_) => mismatch::<T>(src, tag),
            },
            Payload::Shared(a) => match a.downcast::<Vec<T>>() {
                Ok(arc) => match Arc::try_unwrap(arc) {
                    // cmt-lint: allow(CMT-L003) — one box *shell* (not a
                    // payload copy) so the uniquely-held broadcast buffer
                    // can adopt into the pool; the shell itself recycles.
                    Ok(v) => pool.adopt(Box::new(v)),
                    Err(arc) => {
                        let mut buf = pool.take::<T>();
                        buf.extend_from_slice(&arc);
                        buf
                    }
                },
                Err(_) => mismatch::<T>(src, tag),
            },
            inline => {
                let mut buf = pool.take::<T>();
                open_inline_payload(src, tag, inline, &mut buf);
                buf
            }
        }
    }
}

/// Dispatch an inline payload variant into `out` (panics on mismatch, or
/// if called with a non-inline variant — the callers matched those away).
fn open_inline_payload<T: Msg>(src: usize, tag: u64, payload: Payload, out: &mut Vec<T>) {
    match payload {
        Payload::InlineF64(len, arr) => open_inline::<T, f64>(src, tag, &arr[..len as usize], out),
        Payload::InlineU64(len, arr) => open_inline::<T, u64>(src, tag, &arr[..len as usize], out),
        Payload::InlineU8(len, arr) => open_inline::<T, u8>(src, tag, &arr[..len as usize], out),
        _ => unreachable!("boxed/shared payloads are handled by the caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_byte_count() {
        let env = Envelope::new(3, 7, vec![1.0f64, 2.0, 3.0]);
        assert_eq!(env.src, 3);
        assert_eq!(env.bytes, 24);
        assert_eq!(env.open::<f64>(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_payload_is_zero_bytes() {
        let env = Envelope::new(0, 0, Vec::<u64>::new());
        assert_eq!(env.bytes, 0);
        assert!(env.open::<u64>().is_empty());
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let env = Envelope::new(0, 0, vec![1.0f64]);
        let _ = env.open::<u32>();
    }

    #[test]
    fn inline_round_trip_all_types() {
        let env = Envelope::inline_from(1, 2, &[1.5f64, -2.5]).expect("f64 inlines");
        assert_eq!(env.bytes, 16);
        assert_eq!(env.open::<f64>(), vec![1.5, -2.5]);
        let env = Envelope::inline_from(1, 2, &[7u64; 8]).expect("u64 inlines");
        assert_eq!(env.open::<u64>(), vec![7; 8]);
        let env = Envelope::inline_from(1, 2, &[9u8]).expect("u8 inlines");
        assert_eq!(env.open::<u8>(), vec![9]);
    }

    #[test]
    fn oversized_or_unsupported_does_not_inline() {
        assert!(Envelope::inline_from(0, 0, &[0.0f64; 9]).is_none());
        assert!(Envelope::inline_from(0, 0, &[0u32; 2]).is_none());
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn inline_type_mismatch_panics() {
        let env = Envelope::inline_from(0, 0, &[1u64]).unwrap();
        let _ = env.open::<f64>();
    }

    #[test]
    fn shared_payload_last_opener_moves() {
        let arc = Arc::new(vec![4.0f64, 5.0]);
        let a = Envelope::from_shared(0, 1, Arc::clone(&arc));
        let b = Envelope::from_shared(0, 1, Arc::clone(&arc));
        drop(arc);
        assert_eq!(a.bytes, 16);
        assert_eq!(a.open::<f64>(), vec![4.0, 5.0]); // clones (b still holds it)
        assert_eq!(b.open::<f64>(), vec![4.0, 5.0]); // moves (last reference)
    }
}
