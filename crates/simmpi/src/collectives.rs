//! Collective operations, implemented with the textbook distributed
//! algorithms over the point-to-point layer.
//!
//! Every collective:
//! * is tagged with a per-call sequence number so back-to-back collectives
//!   cannot cross-match (all ranks must call collectives in the same
//!   order, the usual SPMD contract);
//! * is recorded as a single operation of its own kind (time measured
//!   around the whole algorithm, bytes = what this rank sent), matching
//!   how an MPI profiler attributes collective time;
//! * uses a fixed reduction/broadcast tree, so results are bitwise
//!   deterministic across runs for any rank count.

use std::sync::Arc;
use std::time::Instant;

use crate::envelope::{Msg, INLINE_ELEMS};
use crate::rank::Rank;
use crate::stats::MpiOp;
use crate::verify::CollKind;
use crate::ReduceOp;

impl Rank {
    /// Barrier: dissemination algorithm, `ceil(log2 P)` rounds.
    pub fn barrier(&mut self) {
        let start = Instant::now();
        let seq = self.next_coll_seq();
        self.verify_collective(seq, CollKind::Barrier, None, "", None);
        let p = self.size();
        let mut bytes = 0;
        let mut k = 1usize;
        let mut round = 0u64;
        while k < p {
            let to = (self.rank() + k) % p;
            let from = (self.rank() + p - k) % p;
            bytes += self.send_internal_slice::<u8>(to, Rank::coll_tag(seq, round), &[1]);
            let _ = self.recv_internal_pooled::<u8>(from, Rank::coll_tag(seq, round));
            k <<= 1;
            round += 1;
        }
        let modeled = self.model_message(1) * round as f64;
        let ctx = std::mem::take(&mut self.context);
        self.recorder.record(
            self.badged(MpiOp::Barrier),
            &ctx,
            start.elapsed(),
            bytes,
            modeled,
        );
        self.context = ctx;
    }

    /// Broadcast `data` from `root` to every rank (binomial tree).
    ///
    /// Non-root ranks pass their (ignored) local buffer and receive the
    /// root's; the broadcast value is returned on every rank.
    pub fn bcast<T: Msg>(&mut self, root: usize, data: Vec<T>) -> Vec<T> {
        assert!(root < self.size(), "bcast root out of range");
        let start = Instant::now();
        let seq = self.next_coll_seq();
        // Only the root's buffer length is part of the contract; other
        // ranks pass an ignored placeholder.
        let len = (self.rank() == root).then_some(data.len());
        self.verify_collective(
            seq,
            CollKind::Bcast,
            Some(root),
            std::any::type_name::<T>(),
            len,
        );
        let p = self.size();
        let vrank = (self.rank() + p - root) % p; // root-relative rank
        let mut bytes = 0u64;
        let mut buf = data;
        // Receive once from the parent (unless root), then forward down
        // the binomial tree.
        let mut mask = 1usize;
        while mask < p {
            mask <<= 1;
        }
        // find receive step: lowest set bit structure — walk masks upward
        if vrank != 0 {
            let lsb = vrank & vrank.wrapping_neg();
            let parent_v = vrank - lsb;
            let parent = (parent_v + root) % p;
            let round = lsb.trailing_zeros() as u64;
            let (got, b) = self.recv_internal::<T>(parent, Rank::coll_tag(seq, round));
            bytes += b;
            buf = got;
        }
        // forward to children: bits above my lowest set bit (or all bits
        // for root)
        let my_lsb = if vrank == 0 {
            mask // effectively infinity
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut nchildren = 0u64;
        {
            let mut k = my_lsb >> 1;
            while k >= 1 {
                if vrank + k < p {
                    nchildren += 1;
                }
                k >>= 1;
            }
        }
        let mut nmsgs = 0u64;
        if nchildren > 0 && buf.len() > INLINE_ELEMS {
            // Share one Arc-backed payload across the whole fan-out: the
            // sends are reference bumps, and whichever consumer opens the
            // envelope last (or this rank, reclaiming below) moves the
            // buffer instead of cloning it.
            let shared = Arc::new(buf);
            let mut k = my_lsb >> 1;
            while k >= 1 {
                let child_v = vrank + k;
                if child_v < p {
                    let child = (child_v + root) % p;
                    let round = k.trailing_zeros() as u64;
                    bytes += self.send_internal_shared(
                        child,
                        Rank::coll_tag(seq, round),
                        Arc::clone(&shared),
                    );
                    nmsgs += 1;
                }
                k >>= 1;
            }
            buf = Arc::try_unwrap(shared).unwrap_or_else(|a| (*a).clone());
        } else {
            let mut k = my_lsb >> 1;
            while k >= 1 {
                let child_v = vrank + k;
                if child_v < p {
                    let child = (child_v + root) % p;
                    let round = k.trailing_zeros() as u64;
                    bytes += self.send_internal_slice(child, Rank::coll_tag(seq, round), &buf);
                    nmsgs += 1;
                }
                k >>= 1;
            }
        }
        let per_msg = (buf.len() * std::mem::size_of::<T>()) as u64;
        let modeled = (0..nmsgs).map(|_| self.model_message(per_msg)).sum();
        let ctx = std::mem::take(&mut self.context);
        self.recorder.record(
            self.badged(MpiOp::Bcast),
            &ctx,
            start.elapsed(),
            bytes,
            modeled,
        );
        self.context = ctx;
        buf
    }

    /// Generic elementwise reduce-to-root over a fixed binomial tree.
    /// Returns `Some(result)` on `root`, `None` elsewhere.
    pub fn reduce_with<T: Msg>(
        &mut self,
        root: usize,
        data: &[T],
        combine: impl Fn(&mut T, &T),
    ) -> Option<Vec<T>> {
        assert!(root < self.size(), "reduce root out of range");
        let start = Instant::now();
        let seq = self.next_coll_seq();
        self.verify_collective(
            seq,
            CollKind::Reduce,
            Some(root),
            std::any::type_name::<T>(),
            Some(data.len()),
        );
        let p = self.size();
        let vrank = (self.rank() + p - root) % p;
        let mut acc = data.to_vec();
        let mut bytes = 0u64;
        let mut nmsgs = 0u64;
        // Binomial-tree reduce: at round r (mask = 1 << r), ranks with the
        // mask bit set send to (vrank - mask) and retire; others receive
        // from (vrank + mask) if it exists.
        let mut mask = 1usize;
        let mut retired = false;
        let mut round = 0u64;
        while mask < p {
            if !retired {
                if vrank & mask != 0 {
                    let dst_v = vrank - mask;
                    let dst = (dst_v + root) % p;
                    // The retiring send is this rank's last use of the
                    // accumulator: move it instead of cloning.
                    bytes += self.send_internal(
                        dst,
                        Rank::coll_tag(seq, round),
                        std::mem::take(&mut acc),
                    );
                    nmsgs += 1;
                    retired = true;
                } else {
                    let src_v = vrank + mask;
                    if src_v < p {
                        let src = (src_v + root) % p;
                        let (other, b) =
                            self.recv_internal_pooled::<T>(src, Rank::coll_tag(seq, round));
                        bytes += b;
                        assert_eq!(
                            other.len(),
                            acc.len(),
                            "reduce length mismatch across ranks"
                        );
                        for (a, o) in acc.iter_mut().zip(other.iter()) {
                            combine(a, o);
                        }
                    }
                }
            }
            mask <<= 1;
            round += 1;
        }
        let per_msg = (data.len() * std::mem::size_of::<T>()) as u64;
        let modeled = (0..nmsgs).map(|_| self.model_message(per_msg)).sum();
        let ctx = std::mem::take(&mut self.context);
        self.recorder.record(
            self.badged(MpiOp::Reduce),
            &ctx,
            start.elapsed(),
            bytes,
            modeled,
        );
        self.context = ctx;
        if self.rank() == root {
            Some(acc)
        } else {
            None
        }
    }

    /// Generic elementwise allreduce: reduce to rank 0, then broadcast.
    pub fn allreduce_with<T: Msg>(&mut self, data: &[T], combine: impl Fn(&mut T, &T)) -> Vec<T> {
        // Recorded as one Allreduce op; the constituent reduce/bcast run
        // untimed inside it.
        let start = Instant::now();
        let seq = self.next_coll_seq();
        self.verify_collective(
            seq,
            CollKind::Allreduce,
            None,
            std::any::type_name::<T>(),
            Some(data.len()),
        );
        let p = self.size();
        let rank = self.rank();
        // cmt-lint: allow(CMT-L003) — the accumulator IS the owned
        // result this API returns; per-element reuse belongs to callers
        // that keep the returned vector alive across calls.
        let mut acc = data.to_vec();
        let mut bytes = 0u64;
        let mut nmsgs = 0u64;
        // reduce to 0
        let mut mask = 1usize;
        let mut retired = false;
        let mut round = 0u64;
        while mask < p {
            if !retired {
                if rank & mask != 0 {
                    let dst = rank - mask;
                    // Retiring rank: the accumulator is dead after this
                    // send (the broadcast phase overwrites it), so move.
                    bytes += self.send_internal(
                        dst,
                        Rank::coll_tag(seq, round),
                        std::mem::take(&mut acc),
                    );
                    nmsgs += 1;
                    retired = true;
                } else if rank + mask < p {
                    let (other, b) =
                        self.recv_internal_pooled::<T>(rank + mask, Rank::coll_tag(seq, round));
                    bytes += b;
                    assert_eq!(other.len(), acc.len(), "allreduce length mismatch");
                    for (a, o) in acc.iter_mut().zip(other.iter()) {
                        combine(a, o);
                    }
                }
            }
            mask <<= 1;
            round += 1;
        }
        // broadcast from 0 (binomial, reversed masks), reusing rounds
        // offset by 32 to stay distinct from the reduce phase.
        let mut k = {
            let mut m = 1usize;
            while m < p {
                m <<= 1;
            }
            m >> 1
        };
        if rank != 0 {
            let lsb = rank & rank.wrapping_neg();
            let parent = rank - lsb;
            let round = 32 + lsb.trailing_zeros() as u64;
            let (got, b) = self.recv_internal_pooled::<T>(parent, Rank::coll_tag(seq, round));
            bytes += b;
            // acc was moved away by the retiring send; refill it from the
            // pooled receive (the pooled buffer itself stays recyclable).
            acc.clear();
            acc.extend_from_slice(&got);
        }
        let my_lsb = if rank == 0 {
            usize::MAX
        } else {
            rank & rank.wrapping_neg()
        };
        let mut nchildren = 0u64;
        {
            let mut kk = k;
            while kk >= 1 {
                if (rank == 0 || kk < my_lsb) && rank + kk < p {
                    nchildren += 1;
                }
                kk >>= 1;
            }
        }
        if nchildren > 0 && acc.len() > INLINE_ELEMS {
            // Arc-shared fan-out: N children cost zero clones; the last
            // opener (or this rank, reclaiming below) moves the buffer.
            // cmt-lint: allow(CMT-L003) — one Arc shell replaces N
            // payload copies; strictly fewer allocations than cloning.
            let shared = Arc::new(acc);
            while k >= 1 {
                if (rank == 0 || k < my_lsb) && rank + k < p {
                    let round = 32 + k.trailing_zeros() as u64;
                    bytes += self.send_internal_shared(
                        rank + k,
                        Rank::coll_tag(seq, round),
                        Arc::clone(&shared),
                    );
                    nmsgs += 1;
                }
                k >>= 1;
            }
            // cmt-lint: allow(CMT-L003) — the clone runs only when a
            // child still holds the Arc (lost race), never on the common
            // path where this rank is the last holder.
            acc = Arc::try_unwrap(shared).unwrap_or_else(|a| (*a).clone());
        } else {
            while k >= 1 {
                if (rank == 0 || k < my_lsb) && rank + k < p {
                    let round = 32 + k.trailing_zeros() as u64;
                    bytes += self.send_internal_slice(rank + k, Rank::coll_tag(seq, round), &acc);
                    nmsgs += 1;
                }
                k >>= 1;
            }
        }
        let per_msg = (data.len() * std::mem::size_of::<T>()) as u64;
        let modeled = (0..nmsgs).map(|_| self.model_message(per_msg)).sum();
        let ctx = std::mem::take(&mut self.context);
        self.recorder.record(
            self.badged(MpiOp::Allreduce),
            &ctx,
            start.elapsed(),
            bytes,
            modeled,
        );
        self.context = ctx;
        acc
    }

    /// Elementwise allreduce performed *in place* on `acc`: the
    /// allocation-free variant for steady-state use (the gather–scatter
    /// dense method and scalar dot products). Identical algorithm, tree,
    /// and verifier fingerprint as [`Rank::allreduce_with`]; payloads move
    /// inline (small) or through pooled buffers (large), so a warm rank
    /// performs no heap allocation here.
    pub fn allreduce_in_place<T: Msg>(&mut self, acc: &mut [T], combine: impl Fn(&mut T, &T)) {
        let start = Instant::now();
        let seq = self.next_coll_seq();
        self.verify_collective(
            seq,
            CollKind::Allreduce,
            None,
            std::any::type_name::<T>(),
            Some(acc.len()),
        );
        let p = self.size();
        let rank = self.rank();
        let mut bytes = 0u64;
        let mut nmsgs = 0u64;
        // reduce to 0 (same binomial schedule as allreduce_with)
        let mut mask = 1usize;
        let mut retired = false;
        let mut round = 0u64;
        while mask < p {
            if !retired {
                if rank & mask != 0 {
                    bytes += self.send_internal_slice(rank - mask, Rank::coll_tag(seq, round), acc);
                    nmsgs += 1;
                    retired = true;
                } else if rank + mask < p {
                    let (other, b) =
                        self.recv_internal_pooled::<T>(rank + mask, Rank::coll_tag(seq, round));
                    bytes += b;
                    assert_eq!(other.len(), acc.len(), "allreduce length mismatch");
                    for (a, o) in acc.iter_mut().zip(other.iter()) {
                        combine(a, o);
                    }
                }
            }
            mask <<= 1;
            round += 1;
        }
        // broadcast from 0, rounds offset by 32
        if rank != 0 {
            let lsb = rank & rank.wrapping_neg();
            let parent = rank - lsb;
            let round = 32 + lsb.trailing_zeros() as u64;
            let (got, b) = self.recv_internal_pooled::<T>(parent, Rank::coll_tag(seq, round));
            bytes += b;
            acc.clone_from_slice(&got);
        }
        let my_lsb = if rank == 0 {
            usize::MAX
        } else {
            rank & rank.wrapping_neg()
        };
        let mut k = {
            let mut m = 1usize;
            while m < p {
                m <<= 1;
            }
            m >> 1
        };
        while k >= 1 {
            if (rank == 0 || k < my_lsb) && rank + k < p {
                let round = 32 + k.trailing_zeros() as u64;
                bytes += self.send_internal_slice(rank + k, Rank::coll_tag(seq, round), acc);
                nmsgs += 1;
            }
            k >>= 1;
        }
        let per_msg = (acc.len() * std::mem::size_of::<T>()) as u64;
        let modeled = (0..nmsgs).map(|_| self.model_message(per_msg)).sum();
        let ctx = std::mem::take(&mut self.context);
        self.recorder.record(
            self.badged(MpiOp::Allreduce),
            &ctx,
            start.elapsed(),
            bytes,
            modeled,
        );
        self.context = ctx;
    }

    /// Elementwise `f64` allreduce with a named operator.
    pub fn allreduce_f64(&mut self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        self.allreduce_with(data, |a, b| *a = op.apply_f64(*a, *b))
    }

    /// Elementwise `u64` allreduce with a named operator.
    pub fn allreduce_u64(&mut self, data: &[u64], op: ReduceOp) -> Vec<u64> {
        self.allreduce_with(data, |a, b| *a = op.apply_u64(*a, *b))
    }

    /// Scalar allreduce convenience (the CG dot-product workhorse).
    /// Runs in place on a stack cell — allocation-free.
    pub fn allreduce_scalar(&mut self, v: f64, op: ReduceOp) -> f64 {
        let mut a = [v];
        self.allreduce_in_place(&mut a, |x, y| *x = op.apply_f64(*x, *y));
        a[0]
    }

    /// Exclusive prefix sum of a `u64` across ranks: rank `r` receives
    /// `sum of values on ranks 0..r` (0 on rank 0). Hillis–Steele
    /// doubling, `ceil(log2 P)` rounds.
    ///
    /// The gather-scatter setup uses this to hand out the bases of the
    /// globally consistent compact id numbering.
    pub fn exscan_u64(&mut self, v: u64) -> u64 {
        let start = Instant::now();
        let seq = self.next_coll_seq();
        self.verify_collective(seq, CollKind::Exscan, None, "u64", Some(1));
        let p = self.size();
        let rank = self.rank();
        let mut bytes = 0u64;
        let mut nmsgs = 0u64;
        let mut inclusive = v; // sum over (rank - 2^d + 1 ..= rank) grows each round
        let mut k = 1usize;
        let mut round = 0u64;
        while k < p {
            if rank + k < p {
                bytes +=
                    self.send_internal_slice(rank + k, Rank::coll_tag(seq, round), &[inclusive]);
                nmsgs += 1;
            }
            if rank >= k {
                let (got, b) =
                    self.recv_internal_pooled::<u64>(rank - k, Rank::coll_tag(seq, round));
                bytes += b;
                inclusive += got[0];
            }
            k <<= 1;
            round += 1;
        }
        let modeled = (0..nmsgs).map(|_| self.model_message(8)).sum();
        let ctx = std::mem::take(&mut self.context);
        self.recorder.record(
            self.badged(MpiOp::Scan),
            &ctx,
            start.elapsed(),
            bytes,
            modeled,
        );
        self.context = ctx;
        inclusive - v
    }

    /// Gather each rank's buffer to `root`. Returns `Some(vec of per-rank
    /// buffers)` on root, `None` elsewhere.
    pub fn gather<T: Msg>(&mut self, root: usize, mut data: Vec<T>) -> Option<Vec<Vec<T>>> {
        assert!(root < self.size(), "gather root out of range");
        let start = Instant::now();
        let seq = self.next_coll_seq();
        // Contributions legitimately differ in length per rank.
        self.verify_collective(
            seq,
            CollKind::Gather,
            Some(root),
            std::any::type_name::<T>(),
            None,
        );
        let p = self.size();
        let mut bytes = 0u64;
        let out = if self.rank() == root {
            let mut all: Vec<Vec<T>> = Vec::with_capacity(p);
            for src in 0..p {
                if src == root {
                    // Root's own contribution: move, don't clone.
                    all.push(std::mem::take(&mut data));
                } else {
                    let (got, b) = self.recv_internal::<T>(src, Rank::coll_tag(seq, 0));
                    bytes += b;
                    all.push(got);
                }
            }
            Some(all)
        } else {
            bytes += self.send_internal(root, Rank::coll_tag(seq, 0), data);
            None
        };
        let modeled = if self.rank() == root {
            0.0
        } else {
            self.model_message(bytes)
        };
        let ctx = std::mem::take(&mut self.context);
        self.recorder.record(
            self.badged(MpiOp::Gather),
            &ctx,
            start.elapsed(),
            bytes,
            modeled,
        );
        self.context = ctx;
        out
    }

    /// All-to-all exchange with per-peer buffers (`MPI_Alltoallv`):
    /// `sends[q]` goes to rank `q`; returns `recvs` with `recvs[q]` from
    /// rank `q`. Implemented with the pairwise-exchange schedule
    /// (`P-1` steps, step `s` pairs rank `r` with `r±s`).
    pub fn alltoallv<T: Msg>(&mut self, mut sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let p = self.size();
        assert_eq!(sends.len(), p, "alltoallv needs one send buffer per rank");
        let start = Instant::now();
        let seq = self.next_coll_seq();
        // Per-peer buffer lengths legitimately differ; the contract is
        // one buffer per rank, already asserted above.
        self.verify_collective(
            seq,
            CollKind::Alltoallv,
            None,
            std::any::type_name::<T>(),
            None,
        );
        let rank = self.rank();
        let mut recvs: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        recvs[rank] = std::mem::take(&mut sends[rank]);
        let mut bytes = 0u64;
        let mut nmsgs = 0u64;
        let mut msg_bytes_total = 0u64;
        for step in 1..p {
            let to = (rank + step) % p;
            let from = (rank + p - step) % p;
            let payload = std::mem::take(&mut sends[to]);
            let sent = self.send_internal(to, Rank::coll_tag(seq, step as u64), payload);
            bytes += sent;
            msg_bytes_total += sent;
            nmsgs += 1;
            let (got, b) = self.recv_internal::<T>(from, Rank::coll_tag(seq, step as u64));
            bytes += b;
            recvs[from] = got;
        }
        let modeled = if nmsgs > 0 {
            let avg = msg_bytes_total / nmsgs.max(1);
            (0..nmsgs).map(|_| self.model_message(avg)).sum()
        } else {
            0.0
        };
        let ctx = std::mem::take(&mut self.context);
        self.recorder.record(
            self.badged(MpiOp::Alltoallv),
            &ctx,
            start.elapsed(),
            bytes,
            modeled,
        );
        self.context = ctx;
        recvs
    }
}
