//! A single-process compressible Euler DG solver — the physics step from
//! the advection proxy toward CMT-nek itself.
//!
//! The paper (§III): "The current version of CMT-nek is an explicit
//! solver for compressible Navier-Stokes equations". This module
//! implements the inviscid (Euler) core of that solver with exactly the
//! mini-app's computational ingredients: tensor-product GLL elements, the
//! derivative kernels for the flux divergence, `full2face` extraction
//! with a conforming surface exchange for the numerical flux (Rusanov /
//! local Lax–Friedrichs), and SSP-RK3 time stepping, for all five
//! conserved variables `U = (rho, rho u, rho v, rho w, E)`.
//!
//! Strong-form DG-SEM:
//!
//! ```text
//! U_t = -div F(U)  -  L( (F* - F) . n_hat )
//! ```
//!
//! with the same endpoint lifting as the advection solver. No shock
//! capturing is included (the paper lists it as CMT-nek future work); the
//! solver is validated on smooth flows: exact preservation of uniform
//! states, spectral convergence on traveling density waves, and discrete
//! conservation of all five invariants.

use crate::eos::{IdealGas, Primitive, NVARS};
use crate::face::{self, Face};
use crate::field::Field;
use crate::kernels::{self, DerivDir, KernelVariant};
use crate::ops::ElementGeom;
use crate::poly::Basis;
use crate::rk;

/// Configuration of the periodic-box Euler solver.
#[derive(Debug, Clone)]
pub struct EulerConfig {
    /// GLL points per direction per element.
    pub n: usize,
    /// Elements per direction.
    pub elems: [usize; 3],
    /// Box extents.
    pub lengths: [f64; 3],
    /// The gas model.
    pub gas: IdealGas,
    /// Derivative-kernel implementation.
    pub variant: KernelVariant,
    /// Artificial viscosity `nu >= 0` applied as a Laplacian on every
    /// conserved variable (BR1 discretization) — the simplest
    /// shock-capturing regularization, the first feature on the paper's
    /// CMT-nek roadmap ("in the following years ... shock capturing ...
    /// will be added"). Zero disables it; smooth-flow accuracy tests run
    /// with it off.
    pub artificial_viscosity: f64,
}

impl Default for EulerConfig {
    fn default() -> Self {
        EulerConfig {
            n: 8,
            elems: [2, 2, 2],
            lengths: [1.0, 1.0, 1.0],
            gas: IdealGas::default(),
            variant: KernelVariant::Optimized,
            artificial_viscosity: 0.0,
        }
    }
}

/// Periodic compressible Euler DG solver.
pub struct EulerSolver {
    cfg: EulerConfig,
    basis: Basis,
    geom: ElementGeom,
    /// The five conserved fields.
    u: Vec<Field>,
    u0: Vec<Field>,
    rhs: Vec<Field>,
    /// All five flux components of the current axis, filled by one fused
    /// pointwise pass per axis (each point's conserved state is loaded and
    /// its full flux vector computed once, not once per component).
    flux: Vec<Field>,
    scratch: Field,
    faces_own: Vec<Vec<f64>>,
    faces_nbr: Vec<Vec<f64>>,
    qfaces_own: Vec<f64>,
    qfaces_nbr: Vec<f64>,
    time: f64,
}

impl EulerSolver {
    /// Build the solver with a vacuum (all-zero) state; call
    /// [`EulerSolver::init`] before stepping.
    pub fn new(cfg: EulerConfig) -> Self {
        assert!(
            cfg.elems.iter().all(|&e| e > 0),
            "element counts must be positive"
        );
        assert!(
            cfg.artificial_viscosity >= 0.0,
            "artificial viscosity must be non-negative"
        );
        let nel = cfg.elems[0] * cfg.elems[1] * cfg.elems[2];
        let basis = Basis::new(cfg.n);
        let geom = ElementGeom {
            hx: cfg.lengths[0] / cfg.elems[0] as f64,
            hy: cfg.lengths[1] / cfg.elems[1] as f64,
            hz: cfg.lengths[2] / cfg.elems[2] as f64,
        };
        let fpe = face::face_values_per_element(cfg.n);
        EulerSolver {
            basis,
            geom,
            u: (0..NVARS).map(|_| Field::zeros(cfg.n, nel)).collect(),
            u0: (0..NVARS).map(|_| Field::zeros(cfg.n, nel)).collect(),
            rhs: (0..NVARS).map(|_| Field::zeros(cfg.n, nel)).collect(),
            flux: (0..NVARS).map(|_| Field::zeros(cfg.n, nel)).collect(),
            scratch: Field::zeros(cfg.n, nel),
            faces_own: (0..NVARS).map(|_| vec![0.0; fpe * nel]).collect(),
            faces_nbr: (0..NVARS).map(|_| vec![0.0; fpe * nel]).collect(),
            qfaces_own: vec![0.0; fpe * nel],
            qfaces_nbr: vec![0.0; fpe * nel],
            time: 0.0,
            cfg,
        }
    }

    /// Total elements.
    pub fn nel(&self) -> usize {
        self.cfg.elems.iter().product()
    }

    /// Simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The conserved fields (rho, rho u, rho v, rho w, E).
    pub fn state(&self) -> &[Field] {
        &self.u
    }

    /// Physical coordinates of a GLL point.
    pub fn point_coords(&self, e: usize, i: usize, j: usize, k: usize) -> [f64; 3] {
        let [ex, ey, _] = self.cfg.elems;
        let exi = e % ex;
        let eyi = (e / ex) % ey;
        let ezi = e / (ex * ey);
        let map = |idx: usize, cell: usize, h: f64| {
            (cell as f64 + (self.basis.nodes[idx] + 1.0) / 2.0) * h
        };
        [
            map(i, exi, self.geom.hx),
            map(j, eyi, self.geom.hy),
            map(k, ezi, self.geom.hz),
        ]
    }

    /// Initialize from a primitive-state function of physical coordinates
    /// and reset the clock.
    pub fn init(&mut self, f: impl Fn(f64, f64, f64) -> Primitive) {
        let n = self.cfg.n;
        for e in 0..self.nel() {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let [x, y, z] = self.point_coords(e, i, j, k);
                        let cons = self.cfg.gas.conserved(f(x, y, z));
                        for (c, &v) in cons.iter().enumerate() {
                            self.u[c].set(e, i, j, k, v);
                        }
                    }
                }
            }
        }
        self.time = 0.0;
    }

    /// Conserved state at one point.
    pub fn conserved_at(&self, e: usize, i: usize, j: usize, k: usize) -> [f64; NVARS] {
        let mut out = [0.0; NVARS];
        for (c, o) in out.iter_mut().enumerate() {
            *o = self.u[c].get(e, i, j, k);
        }
        out
    }

    /// Primitive state at one point.
    pub fn primitive_at(&self, e: usize, i: usize, j: usize, k: usize) -> Primitive {
        self.cfg.gas.primitive(&self.conserved_at(e, i, j, k))
    }

    /// Largest wave speed anywhere in the domain (CFL driver).
    pub fn max_wave_speed(&self) -> f64 {
        let n = self.cfg.n;
        let mut s = 0.0f64;
        for e in 0..self.nel() {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let u = self.conserved_at(e, i, j, k);
                        for axis in 0..3 {
                            s = s.max(self.cfg.gas.max_wave_speed(&u, axis));
                        }
                    }
                }
            }
        }
        s
    }

    /// CFL-stable timestep (advective limit, plus the diffusive limit
    /// when artificial viscosity is on).
    pub fn stable_dt(&self, cfl: f64) -> f64 {
        let n2 = (self.cfg.n * self.cfg.n) as f64;
        let hmin = self.geom.hx.min(self.geom.hy).min(self.geom.hz);
        let mut dt = cfl * hmin / (n2 * self.max_wave_speed().max(1e-30));
        let nu = self.cfg.artificial_viscosity;
        if nu > 0.0 {
            dt = dt.min(cfl * hmin * hmin / (n2 * n2 * nu));
        }
        dt
    }

    /// GLL-quadrature integrals of the five conserved fields (the
    /// invariants a periodic run must preserve).
    pub fn totals(&self) -> [f64; NVARS] {
        let n = self.cfg.n;
        let w = &self.basis.weights;
        let jac = self.geom.hx * self.geom.hy * self.geom.hz / 8.0;
        let mut out = [0.0; NVARS];
        for (c, tot) in out.iter_mut().enumerate() {
            for e in 0..self.nel() {
                for k in 0..n {
                    for j in 0..n {
                        for i in 0..n {
                            *tot += w[i] * w[j] * w[k] * jac * self.u[c].get(e, i, j, k);
                        }
                    }
                }
            }
        }
        out
    }

    /// Whether every point is physically admissible.
    pub fn is_admissible(&self) -> bool {
        let n = self.cfg.n;
        for e in 0..self.nel() {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        if !self.cfg.gas.is_admissible(&self.conserved_at(e, i, j, k)) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Periodic neighbor element across a face (same convention as the
    /// advection solver).
    fn neighbor(&self, e: usize, f: Face) -> usize {
        let [ex, ey, ez] = self.cfg.elems;
        let mut exi = e % ex;
        let mut eyi = (e / ex) % ey;
        let mut ezi = e / (ex * ey);
        let step = |v: usize, max: usize, sign: i64| -> usize {
            if sign < 0 {
                (v + max - 1) % max
            } else {
                (v + 1) % max
            }
        };
        match f.axis() {
            0 => exi = step(exi, ex, f.sign()),
            1 => eyi = step(eyi, ey, f.sign()),
            _ => ezi = step(ezi, ez, f.sign()),
        }
        (ezi * ey + eyi) * ex + exi
    }

    /// Copy one surface buffer's neighbor traces (periodic, local).
    fn exchange_single(&self, own: &[f64], nbr: &mut [f64]) {
        let n2 = self.cfg.n * self.cfg.n;
        let fpe = face::face_values_per_element(self.cfg.n);
        for e in 0..self.nel() {
            for f in Face::ALL {
                let ne = self.neighbor(e, f);
                let nf = f.opposite();
                let src = ne * fpe + nf.index() * n2;
                let dst = e * fpe + f.index() * n2;
                nbr[dst..dst + n2].copy_from_slice(&own[src..src + n2]);
            }
        }
    }

    fn exchange_faces(&mut self) {
        for c in 0..NVARS {
            let own = std::mem::take(&mut self.faces_own[c]);
            let mut nbr = std::mem::take(&mut self.faces_nbr[c]);
            self.exchange_single(&own, &mut nbr);
            self.faces_own[c] = own;
            self.faces_nbr[c] = nbr;
        }
    }

    /// Evaluate the DG right-hand side of all five equations.
    fn eval_rhs(&mut self) {
        let n = self.cfg.n;
        let nel = self.nel();
        let n3 = n * n * n;
        let gas = self.cfg.gas;

        // ---- volume term: rhs_c = -sum_a dscale_a * D_a F_a,c ----------
        for r in &mut self.rhs {
            r.fill(0.0);
        }
        for (axis, dir) in [(0, DerivDir::R), (1, DerivDir::S), (2, DerivDir::T)] {
            let scale = self.geom.dscale(axis);
            // fused pointwise pass: evaluate the full five-component flux
            // vector of each point once and scatter it to all component
            // fields (the unfused loop recomputed it per component — five
            // evaluations per point per axis). Per-component values are
            // unchanged, so the derivative/accumulation below is bitwise
            // identical to the unfused form.
            for e in 0..nel {
                for p in 0..n3 {
                    let idx = e * n3 + p;
                    let u = [
                        self.u[0].as_slice()[idx],
                        self.u[1].as_slice()[idx],
                        self.u[2].as_slice()[idx],
                        self.u[3].as_slice()[idx],
                        self.u[4].as_slice()[idx],
                    ];
                    let f = gas.flux(&u, axis);
                    for (c, &fc) in f.iter().enumerate() {
                        self.flux[c].as_mut_slice()[idx] = fc;
                    }
                }
            }
            for c in 0..NVARS {
                kernels::deriv(
                    self.cfg.variant,
                    dir,
                    n,
                    nel,
                    &self.basis.d,
                    self.flux[c].as_slice(),
                    self.scratch.as_mut_slice(),
                );
                self.rhs[c].axpy(-scale, &self.scratch);
            }
        }

        // ---- surface term ------------------------------------------------
        for c in 0..NVARS {
            face::full2face(n, nel, self.u[c].as_slice(), &mut self.faces_own[c]);
        }
        self.exchange_faces();
        let n2 = n * n;
        let fpe = face::face_values_per_element(n);
        let w_end = self.basis.weights[0];
        for e in 0..nel {
            for f in Face::ALL {
                let axis = f.axis();
                let sign = f.sign() as f64;
                let lift = self.geom.dscale(axis) / w_end;
                let off = e * fpe + f.index() * n2;
                for p in 0..n2 {
                    let mut ul = [0.0; NVARS];
                    let mut ur = [0.0; NVARS];
                    for c in 0..NVARS {
                        ul[c] = self.faces_own[c][off + p];
                        ur[c] = self.faces_nbr[c][off + p];
                    }
                    let fstar = gas.rusanov_flux(&ul, &ur, axis, sign);
                    let fown = gas.flux(&ul, axis);
                    let vi = face::face_point_volume_index(n, f, p);
                    let idx = e * n3 + vi;
                    for c in 0..NVARS {
                        self.rhs[c].as_mut_slice()[idx] -= lift * (fstar[c] - sign * fown[c]);
                    }
                }
            }
        }

        // ---- artificial viscosity: rhs_c += nu lap u_c (BR1) -------------
        let nu = self.cfg.artificial_viscosity;
        if nu > 0.0 {
            let w_end = self.basis.weights[0];
            for c in 0..NVARS {
                for (axis, dir) in [(0, DerivDir::R), (1, DerivDir::S), (2, DerivDir::T)] {
                    // q = dscale D_a u_c + lifting with central traces on
                    // the two axis-normal faces
                    kernels::deriv(
                        self.cfg.variant,
                        dir,
                        n,
                        nel,
                        &self.basis.d,
                        self.u[c].as_slice(),
                        self.flux[c].as_mut_slice(),
                    );
                    self.flux[c].scale(self.geom.dscale(axis));
                    for e in 0..nel {
                        for f in Face::ALL {
                            if f.axis() != axis {
                                continue;
                            }
                            let sign = f.sign() as f64;
                            let lift = self.geom.dscale(axis) / w_end;
                            let off = e * fpe + f.index() * n2;
                            for p in 0..n2 {
                                let jump =
                                    0.5 * (self.faces_nbr[c][off + p] - self.faces_own[c][off + p]);
                                let vi = face::face_point_volume_index(n, f, p);
                                self.flux[c].as_mut_slice()[e * n3 + vi] += lift * sign * jump;
                            }
                        }
                    }
                    // divergence of nu q: volume + central surface flux
                    kernels::deriv(
                        self.cfg.variant,
                        dir,
                        n,
                        nel,
                        &self.basis.d,
                        self.flux[c].as_slice(),
                        self.scratch.as_mut_slice(),
                    );
                    self.rhs[c].axpy(nu * self.geom.dscale(axis), &self.scratch);
                    face::full2face(n, nel, self.flux[c].as_slice(), &mut self.qfaces_own);
                    let qown = std::mem::take(&mut self.qfaces_own);
                    let mut qnbr = std::mem::take(&mut self.qfaces_nbr);
                    self.exchange_single(&qown, &mut qnbr);
                    for e in 0..nel {
                        for f in Face::ALL {
                            if f.axis() != axis {
                                continue;
                            }
                            let sign = f.sign() as f64;
                            let lift = self.geom.dscale(axis) / w_end;
                            let off = e * fpe + f.index() * n2;
                            for p in 0..n2 {
                                // F* - F_in = sign nu (q_nbr - q_own)/2
                                let corr = lift * sign * nu * 0.5 * (qnbr[off + p] - qown[off + p]);
                                let vi = face::face_point_volume_index(n, f, p);
                                self.rhs[c].as_mut_slice()[e * n3 + vi] += corr;
                            }
                        }
                    }
                    self.qfaces_own = qown;
                    self.qfaces_nbr = qnbr;
                }
            }
        }
    }

    /// Advance one SSP-RK3 step.
    pub fn step(&mut self, dt: f64) {
        for (u0, u) in self.u0.iter_mut().zip(&self.u) {
            u0.as_mut_slice().copy_from_slice(u.as_slice());
        }
        for s in 0..rk::STAGES {
            self.eval_rhs();
            for c in 0..NVARS {
                rk::stage_update(s, &mut self.u[c], &self.u0[c], &self.rhs[c], dt);
            }
        }
        self.time += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn uniform(rho: f64, vel: [f64; 3], p: f64) -> impl Fn(f64, f64, f64) -> Primitive {
        move |_x, _y, _z| Primitive { rho, vel, p }
    }

    /// Exact smooth solution: a density wave carried by uniform velocity
    /// and pressure (a contact wave — exact for the full nonlinear
    /// equations).
    fn density_wave(u0: f64) -> impl Fn(f64, f64, f64) -> Primitive {
        move |x, _y, _z| Primitive {
            rho: 1.0 + 0.2 * (2.0 * PI * x).sin(),
            vel: [u0, 0.0, 0.0],
            p: 1.0,
        }
    }

    #[test]
    fn uniform_state_is_preserved_exactly() {
        let mut s = EulerSolver::new(EulerConfig {
            n: 5,
            elems: [2, 2, 1],
            ..Default::default()
        });
        s.init(uniform(1.3, [0.4, -0.2, 0.1], 0.9));
        let before: Vec<Vec<f64>> = s.state().iter().map(|f| f.as_slice().to_vec()).collect();
        let dt = s.stable_dt(0.3);
        for _ in 0..10 {
            s.step(dt);
        }
        for (c, b) in before.iter().enumerate() {
            for (x, y) in s.state()[c].as_slice().iter().zip(b) {
                assert!(
                    (x - y).abs() < 1e-11 * (1.0 + y.abs()),
                    "field {c}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn density_wave_advects_with_spectral_accuracy() {
        let u0 = 1.0;
        let mut errs = Vec::new();
        for &n in &[4usize, 6, 8] {
            let mut s = EulerSolver::new(EulerConfig {
                n,
                elems: [2, 1, 1],
                ..Default::default()
            });
            s.init(density_wave(u0));
            let t_end = 0.1;
            let dt = s.stable_dt(0.2).min(2e-4);
            let steps = (t_end / dt).ceil() as usize;
            let dt = t_end / steps as f64;
            for _ in 0..steps {
                s.step(dt);
            }
            // density error vs exact advected profile; u and p unchanged
            let mut err = 0.0f64;
            for e in 0..s.nel() {
                for k in 0..n {
                    for j in 0..n {
                        for i in 0..n {
                            let [x, _, _] = s.point_coords(e, i, j, k);
                            let xe = (x - u0 * s.time()).rem_euclid(1.0);
                            let want = 1.0 + 0.2 * (2.0 * PI * xe).sin();
                            let w = s.primitive_at(e, i, j, k);
                            err = err.max((w.rho - want).abs());
                            assert!((w.p - 1.0).abs() < 2e-2, "pressure disturbed: {}", w.p);
                        }
                    }
                }
            }
            errs.push(err);
        }
        assert!(errs[2] < errs[0] * 0.05, "no spectral decay: {errs:?}");
        assert!(errs[2] < 5e-4, "final error too large: {errs:?}");
    }

    #[test]
    fn conserves_all_five_invariants() {
        let mut s = EulerSolver::new(EulerConfig {
            n: 6,
            elems: [2, 2, 1],
            ..Default::default()
        });
        s.init(|x, y, _z| Primitive {
            rho: 1.0 + 0.1 * (2.0 * PI * x).sin() * (2.0 * PI * y).cos(),
            vel: [0.5, 0.2, 0.0],
            p: 1.0 + 0.05 * (2.0 * PI * y).sin(),
        });
        let before = s.totals();
        let dt = s.stable_dt(0.2);
        for _ in 0..20 {
            s.step(dt);
        }
        let after = s.totals();
        for c in 0..NVARS {
            let scale = before[c].abs().max(1.0);
            assert!(
                (after[c] - before[c]).abs() < 1e-10 * scale,
                "invariant {c} drifted: {} -> {}",
                before[c],
                after[c]
            );
        }
        assert!(s.is_admissible());
    }

    #[test]
    fn axis_symmetry_of_the_discretization() {
        // The same wave along x and along y must produce identical error
        // by the solver's Cartesian symmetry.
        let run_axis = |axis: usize| {
            let mut elems = [1usize, 1, 1];
            elems[axis] = 2;
            let mut s = EulerSolver::new(EulerConfig {
                n: 6,
                elems,
                ..Default::default()
            });
            s.init(move |x, y, z| {
                let c = [x, y, z][axis];
                let mut vel = [0.0; 3];
                vel[axis] = 0.7;
                Primitive {
                    rho: 1.0 + 0.15 * (2.0 * PI * c).sin(),
                    vel,
                    p: 1.0,
                }
            });
            let dt = 1e-3;
            for _ in 0..40 {
                s.step(dt);
            }
            // density max/min fingerprint
            let n = 6;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for e in 0..s.nel() {
                for k in 0..n {
                    for j in 0..n {
                        for i in 0..n {
                            let r = s.primitive_at(e, i, j, k).rho;
                            lo = lo.min(r);
                            hi = hi.max(r);
                        }
                    }
                }
            }
            (lo, hi)
        };
        let (lx, hx) = run_axis(0);
        let (ly, hy) = run_axis(1);
        let (lz, hz) = run_axis(2);
        assert!(
            (lx - ly).abs() < 1e-10 && (hx - hy).abs() < 1e-10,
            "x vs y asymmetric"
        );
        assert!(
            (lx - lz).abs() < 1e-10 && (hx - hz).abs() < 1e-10,
            "x vs z asymmetric"
        );
    }

    /// The classic isentropic-vortex accuracy test: an exact smooth
    /// solution of the full nonlinear 2D Euler equations that translates
    /// with the free stream. Unlike the density wave (a contact), the
    /// vortex exercises the pressure–velocity coupling of all five
    /// equations.
    #[test]
    fn isentropic_vortex_translates_with_the_free_stream() {
        let gamma = 1.4f64;
        let beta = 5.0f64;
        let (u0, v0) = (1.0, 0.5);
        let l = 10.0;
        let center = 5.0;
        let vortex = move |x: f64, y: f64| -> Primitive {
            let (dx, dy) = (x - center, y - center);
            let r2 = dx * dx + dy * dy;
            let e = ((1.0 - r2) / 2.0).exp();
            let du = -beta / (2.0 * PI) * e * dy;
            let dv = beta / (2.0 * PI) * e * dx;
            let t = 1.0 - (gamma - 1.0) * beta * beta / (8.0 * gamma * PI * PI) * (1.0 - r2).exp();
            let rho = t.powf(1.0 / (gamma - 1.0));
            Primitive {
                rho,
                vel: [u0 + du, v0 + dv, 0.0],
                p: rho.powf(gamma),
            }
        };
        let mut s = EulerSolver::new(EulerConfig {
            n: 8,
            elems: [5, 5, 1],
            lengths: [l, l, 2.0],
            ..Default::default()
        });
        s.init(|x, y, _z| vortex(x, y));
        let t_end = 0.5;
        let mut t = 0.0;
        while t < t_end {
            let dt = s.stable_dt(0.25).min(t_end - t);
            s.step(dt);
            t += dt;
        }
        // exact solution: the initial vortex translated by (u0, v0) t
        // (periodic wrap; the vortex decays like e^{-r^2} so the wrap
        // images are negligible at distance 5)
        let n = 8;
        let mut max_err = 0.0f64;
        for e in 0..s.nel() {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let [x, y, _] = s.point_coords(e, i, j, k);
                        let xe = (x - u0 * t).rem_euclid(l);
                        let ye = (y - v0 * t).rem_euclid(l);
                        let want = vortex(xe, ye).rho;
                        let got = s.primitive_at(e, i, j, k).rho;
                        max_err = max_err.max((got - want).abs());
                    }
                }
            }
        }
        assert!(max_err < 0.02, "vortex density error {max_err}");
        assert!(s.is_admissible());
        // isentropy is preserved where the flow is smooth: p / rho^gamma
        // stays near 1 everywhere
        for e in 0..s.nel() {
            let w = s.primitive_at(e, 4, 4, 0);
            let entropy = w.p / w.rho.powf(gamma);
            assert!((entropy - 1.0).abs() < 0.02, "entropy drift {entropy}");
        }
    }

    /// Shock capturing: the Sod shock tube with Laplacian artificial
    /// viscosity, validated against the exact Riemann solution.
    ///
    /// The periodic box [0, 2] holds the Sod discontinuity at x = 1 (and
    /// its mirror at the periodic seam); before the wave families meet,
    /// the window around x = 1 follows the exact self-similar solution.
    #[test]
    fn sod_shock_tube_with_artificial_viscosity() {
        use crate::riemann::{solve, State1d};
        let n = 4;
        let mut s = EulerSolver::new(EulerConfig {
            n,
            elems: [16, 1, 1],
            lengths: [2.0, 1.0, 1.0],
            artificial_viscosity: 0.04,
            ..Default::default()
        });
        let left = State1d {
            rho: 1.0,
            u: 0.0,
            p: 1.0,
        };
        let right = State1d {
            rho: 0.125,
            u: 0.0,
            p: 0.1,
        };
        // smooth the jump over ~half an element so the initial data is
        // representable; the artificial viscosity handles the steepening
        let delta = 0.06;
        s.init(|x, _y, _z| {
            let w = 0.5 * (1.0 + ((x - 1.0) / delta).tanh());
            Primitive {
                rho: left.rho + w * (right.rho - left.rho),
                vel: [0.0; 3],
                p: left.p + w * (right.p - left.p),
            }
        });
        let t_end = 0.15;
        let mut t = 0.0;
        while t < t_end {
            let dt = s.stable_dt(0.3).min(t_end - t);
            s.step(dt);
            t += dt;
        }
        assert!(s.is_admissible(), "negative density/pressure appeared");

        let exact = solve(s.cfg.gas, left, right);
        // compare density in the window the x=1 waves own
        let mut l1 = 0.0;
        let mut count = 0usize;
        let mut max_plateau_err = 0.0f64;
        for e in 0..s.nel() {
            for i in 0..n {
                let [x, _, _] = s.point_coords(e, i, 0, 0);
                if !(0.4..=1.6).contains(&x) {
                    continue;
                }
                let xi = (x - 1.0) / t_end;
                let want = exact.sample(xi).rho;
                let got = s.primitive_at(e, i, 0, 0).rho;
                l1 += (got - want).abs();
                count += 1;
                // plateau regions away from the smeared waves
                let u_star = exact.u_star;
                let in_left_plateau = xi > u_star - 0.55 && xi < u_star - 0.25;
                let in_right_plateau = xi > u_star + 0.15 && xi < u_star + 0.55;
                if in_left_plateau || in_right_plateau {
                    max_plateau_err = max_plateau_err.max((got - want).abs() / want);
                }
            }
        }
        let l1 = l1 / count as f64;
        assert!(l1 < 0.05, "L1 density error {l1}");
        assert!(
            max_plateau_err < 0.15,
            "plateau density error {max_plateau_err}"
        );
        // mass stays conserved through the shock
        let totals = s.totals();
        let exact_mass = 2.0 * 0.5 * (left.rho + right.rho); // box average x area
        assert!((totals[0] - exact_mass).abs() < 0.02, "mass {}", totals[0]);
    }

    #[test]
    fn artificial_viscosity_shrinks_dt_and_preserves_uniform_flow() {
        let mut a = EulerSolver::new(EulerConfig {
            n: 5,
            elems: [2, 1, 1],
            artificial_viscosity: 0.0,
            ..Default::default()
        });
        let mut b = EulerSolver::new(EulerConfig {
            n: 5,
            elems: [2, 1, 1],
            artificial_viscosity: 0.5,
            ..Default::default()
        });
        a.init(uniform(1.0, [0.3, 0.0, 0.0], 1.0));
        b.init(uniform(1.0, [0.3, 0.0, 0.0], 1.0));
        assert!(b.stable_dt(0.3) < a.stable_dt(0.3));
        // viscosity of a constant state is zero: uniform flow unchanged
        let dt = b.stable_dt(0.3);
        for _ in 0..5 {
            b.step(dt);
        }
        for c in 0..NVARS {
            let want = b.cfg.gas.conserved(Primitive {
                rho: 1.0,
                vel: [0.3, 0.0, 0.0],
                p: 1.0,
            })[c];
            for &v in b.state()[c].as_slice() {
                assert!((v - want).abs() < 1e-11 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn stable_dt_shrinks_with_faster_flow() {
        let mk = |mach_u: f64| {
            let mut s = EulerSolver::new(EulerConfig::default());
            s.init(uniform(1.0, [mach_u, 0.0, 0.0], 1.0));
            s.stable_dt(0.3)
        };
        assert!(mk(2.0) < mk(0.1));
    }
}
