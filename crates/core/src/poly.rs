//! Legendre–Gauss–Lobatto (GLL) polynomial machinery.
//!
//! CMT-nek (and hence CMT-bone) approximates the conserved variables inside
//! each hexahedral element by a tensor product of degree-`N-1` polynomials
//! collocated at the `N` GLL points per direction. Everything downstream —
//! the derivative matrix whose small matrix-multiplications dominate the
//! run time, the quadrature weights used by the variational form, and the
//! interpolation operators used for dealiasing — derives from the machinery
//! in this module.
//!
//! All routines are deterministic, allocation-light, and validated in the
//! test suite by exactness properties (spectral differentiation is exact on
//! polynomials of degree `<= N-1`, GLL quadrature is exact on degree
//! `<= 2N-3`, etc.).

/// Evaluate the Legendre polynomial `L_p(x)` and its derivative `L'_p(x)`
/// using the three-term recurrence.
///
/// Returns `(L_p(x), L'_p(x))`. For `|x| == 1` the derivative is computed
/// from the known endpoint values to avoid the `1 - x^2` singularity.
pub fn legendre(p: usize, x: f64) -> (f64, f64) {
    if p == 0 {
        return (1.0, 0.0);
    }
    if p == 1 {
        return (x, 1.0);
    }
    let mut lm1 = 1.0; // L_{k-1}
    let mut l = x; // L_k
    for k in 1..p {
        let kf = k as f64;
        let lp1 = ((2.0 * kf + 1.0) * x * l - kf * lm1) / (kf + 1.0);
        lm1 = l;
        l = lp1;
    }
    // derivative: L'_p = p (x L_p - L_{p-1}) / (x^2 - 1)
    let denom = x * x - 1.0;
    let dl = if denom.abs() < 1e-14 {
        // L'_p(+-1) = (+-1)^{p-1} p (p+1) / 2
        let sign = if x > 0.0 {
            1.0
        } else if p % 2 == 0 {
            -1.0
        } else {
            1.0
        };
        sign * (p as f64) * (p as f64 + 1.0) / 2.0
    } else {
        (p as f64) * (x * l - lm1) / denom
    };
    (l, dl)
}

/// Compute the `n` Legendre–Gauss–Lobatto nodes on `[-1, 1]`, ascending.
///
/// The nodes are `-1`, `+1`, and the roots of `L'_{n-1}`. Interior roots are
/// found by Newton iteration from Chebyshev–Gauss–Lobatto initial guesses,
/// which converges in a handful of iterations for every `n` used in practice
/// (the paper's range is `5 <= n <= 25`; we support any `n >= 2`).
///
/// # Panics
/// Panics if `n < 2` (a Lobatto rule needs both endpoints).
pub fn gll_nodes(n: usize) -> Vec<f64> {
    assert!(n >= 2, "GLL rule requires at least 2 nodes, got {n}");
    let p = n - 1; // polynomial degree
    let mut x = vec![0.0; n];
    x[0] = -1.0;
    x[p] = 1.0;
    let pf = p as f64;
    for i in 1..p {
        // Chebyshev-Gauss-Lobatto initial guess, ascending in i.
        let mut xi = -(std::f64::consts::PI * i as f64 / pf).cos();
        // Newton on q(x) = L'_p(x); q'(x) = L''_p via the Legendre ODE:
        // (1 - x^2) L''_p = 2 x L'_p - p (p+1) L_p.
        for _ in 0..100 {
            let (l, dl) = legendre(p, xi);
            let d2l = (2.0 * xi * dl - pf * (pf + 1.0) * l) / (1.0 - xi * xi);
            let step = dl / d2l;
            xi -= step;
            if step.abs() < 1e-15 {
                break;
            }
        }
        x[i] = xi;
    }
    // Exact symmetry: average with the mirrored node to kill last-ulp drift.
    for i in 0..n / 2 {
        let s = 0.5 * (x[i] - x[n - 1 - i]);
        x[i] = s;
        x[n - 1 - i] = -s;
    }
    if n % 2 == 1 {
        x[n / 2] = 0.0;
    }
    x
}

/// GLL quadrature weights for the given nodes: `w_i = 2 / (p (p+1) L_p(x_i)^2)`.
pub fn gll_weights(nodes: &[f64]) -> Vec<f64> {
    let n = nodes.len();
    let p = n - 1;
    let pf = p as f64;
    nodes
        .iter()
        .map(|&x| {
            let (l, _) = legendre(p, x);
            2.0 / (pf * (pf + 1.0) * l * l)
        })
        .collect()
}

/// The GLL spectral differentiation matrix `D`, row-major `n x n`:
/// `(D u)_i = u'(x_i)` exactly for polynomials of degree `<= n-1`.
///
/// Standard closed form (Kopriva, *Implementing Spectral Methods*):
/// `D_ij = L_p(x_i) / (L_p(x_j) (x_i - x_j))` off-diagonal,
/// `D_00 = -p(p+1)/4`, `D_pp = +p(p+1)/4`, zero elsewhere on the diagonal.
pub fn diff_matrix(nodes: &[f64]) -> Vec<f64> {
    let n = nodes.len();
    let p = n - 1;
    let pf = p as f64;
    let l: Vec<f64> = nodes.iter().map(|&x| legendre(p, x).0).collect();
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                d[i * n + j] = l[i] / (l[j] * (nodes[i] - nodes[j]));
            }
        }
    }
    d[0] = -pf * (pf + 1.0) / 4.0;
    d[n * n - 1] = pf * (pf + 1.0) / 4.0;
    // Negative-sum trick for the remaining diagonal entries: each row of a
    // differentiation matrix annihilates constants, so the diagonal is the
    // negated sum of the off-diagonals. This also sharpens the corner
    // entries against roundoff, so apply it to every row.
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..n {
            if i != j {
                s += d[i * n + j];
            }
        }
        d[i * n + i] = -s;
    }
    d
}

/// Barycentric weights for Lagrange interpolation on arbitrary distinct nodes.
pub fn barycentric_weights(nodes: &[f64]) -> Vec<f64> {
    let n = nodes.len();
    let mut w = vec![1.0; n];
    for j in 0..n {
        for k in 0..n {
            if k != j {
                w[j] /= nodes[j] - nodes[k];
            }
        }
    }
    w
}

/// Interpolation matrix `J` (row-major `m x n`) from values at `from` nodes
/// to values at `to` points: `(J u)_i = u(to_i)` exactly for polynomials of
/// degree `<= n-1`. Used for the dealiasing fine-mesh mapping (paper §V).
pub fn interp_matrix(from: &[f64], to: &[f64]) -> Vec<f64> {
    let n = from.len();
    let m = to.len();
    let w = barycentric_weights(from);
    let mut j_mat = vec![0.0; m * n];
    for (i, &y) in to.iter().enumerate() {
        // Exact node hit: Lagrange delta row.
        if let Some(hit) = from.iter().position(|&x| (x - y).abs() < 1e-13) {
            j_mat[i * n + hit] = 1.0;
            continue;
        }
        let mut denom = 0.0;
        for j in 0..n {
            denom += w[j] / (y - from[j]);
        }
        for j in 0..n {
            j_mat[i * n + j] = (w[j] / (y - from[j])) / denom;
        }
    }
    j_mat
}

/// A complete reference-element basis: GLL nodes, weights, differentiation
/// matrix, and its transpose (the transpose is what the `duds`/`dudt`
/// contractions consume when written as flattened matrix products).
///
/// ```
/// let basis = cmt_core::poly::Basis::new(8);
/// // Lobatto rule: endpoints included, weights sum to the interval length
/// assert_eq!(basis.nodes[0], -1.0);
/// assert_eq!(basis.nodes[7], 1.0);
/// assert!((basis.weights.iter().sum::<f64>() - 2.0).abs() < 1e-12);
/// // spectral differentiation is exact on polynomials: d/dx (x^2) = 2x
/// let u: Vec<f64> = basis.nodes.iter().map(|x| x * x).collect();
/// for i in 0..8 {
///     let du: f64 = (0..8).map(|j| basis.d[i * 8 + j] * u[j]).sum();
///     assert!((du - 2.0 * basis.nodes[i]).abs() < 1e-10);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Basis {
    /// Points per direction (`N` in the paper; polynomial degree `N-1`).
    pub n: usize,
    /// GLL nodes on `[-1, 1]`, ascending.
    pub nodes: Vec<f64>,
    /// GLL quadrature weights.
    pub weights: Vec<f64>,
    /// Row-major `n x n` differentiation matrix.
    pub d: Vec<f64>,
    /// Row-major `n x n` transpose of `d`.
    pub dt: Vec<f64>,
}

impl Basis {
    /// Build the basis for `n` GLL points per direction.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        let nodes = gll_nodes(n);
        let weights = gll_weights(&nodes);
        let d = diff_matrix(&nodes);
        let mut dt = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                dt[j * n + i] = d[i * n + j];
            }
        }
        Basis {
            n,
            nodes,
            weights,
            d,
            dt,
        }
    }

    /// Interpolation matrix from this basis to a finer GLL basis with `m`
    /// points (the dealiasing "fine mesh"), row-major `m x n`.
    pub fn dealias_to(&self, m: usize) -> Vec<f64> {
        interp_matrix(&self.nodes, &gll_nodes(m))
    }

    /// Interpolation matrix from a finer `m`-point GLL basis back to this
    /// basis, row-major `n x m`.
    pub fn dealias_from(&self, m: usize) -> Vec<f64> {
        interp_matrix(&gll_nodes(m), &self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!(
            (a - b).abs() <= tol,
            "{what}: {a} vs {b} (|diff| = {})",
            (a - b).abs()
        );
    }

    #[test]
    fn legendre_known_values() {
        // L_2(x) = (3x^2 - 1)/2, L_3(x) = (5x^3 - 3x)/2
        let (l2, dl2) = legendre(2, 0.5);
        assert_close(l2, (3.0 * 0.25 - 1.0) / 2.0, 1e-14, "L_2(0.5)");
        assert_close(dl2, 3.0 * 0.5, 1e-14, "L_2'(0.5)");
        let (l3, dl3) = legendre(3, -0.3);
        assert_close(
            l3,
            (5.0 * (-0.027) - 3.0 * (-0.3)) / 2.0,
            1e-14,
            "L_3(-0.3)",
        );
        assert_close(dl3, (15.0 * 0.09 - 3.0) / 2.0, 1e-13, "L_3'(-0.3)");
    }

    #[test]
    fn legendre_endpoint_derivative() {
        for p in 1..12 {
            let (_, dl) = legendre(p, 1.0);
            assert_close(
                dl,
                p as f64 * (p as f64 + 1.0) / 2.0,
                1e-10,
                &format!("L'_{p}(1)"),
            );
        }
    }

    #[test]
    fn gll_nodes_small_cases_match_known_values() {
        // n = 3: {-1, 0, 1}
        let x3 = gll_nodes(3);
        assert_close(x3[1], 0.0, 1e-15, "n=3 mid node");
        // n = 4: {-1, -1/sqrt(5), 1/sqrt(5), 1}
        let x4 = gll_nodes(4);
        assert_close(x4[1], -(1.0f64 / 5.0).sqrt(), 1e-13, "n=4 node 1");
        assert_close(x4[2], (1.0f64 / 5.0).sqrt(), 1e-13, "n=4 node 2");
        // n = 5: {-1, -sqrt(3/7), 0, sqrt(3/7), 1}
        let x5 = gll_nodes(5);
        assert_close(x5[1], -(3.0f64 / 7.0).sqrt(), 1e-13, "n=5 node 1");
        assert_close(x5[2], 0.0, 1e-15, "n=5 mid node");
    }

    #[test]
    fn gll_nodes_sorted_symmetric_all_n() {
        for n in 2..=32 {
            let x = gll_nodes(n);
            assert_eq!(x.len(), n);
            assert_close(x[0], -1.0, 0.0, "first node");
            assert_close(x[n - 1], 1.0, 0.0, "last node");
            for i in 1..n {
                assert!(x[i] > x[i - 1], "nodes not ascending at n={n}, i={i}");
            }
            for i in 0..n {
                assert_close(x[i], -x[n - 1 - i], 1e-15, "symmetry");
            }
        }
    }

    #[test]
    fn gll_weights_sum_to_two_and_quadrature_exactness() {
        for n in 2..=20 {
            let x = gll_nodes(n);
            let w = gll_weights(&x);
            let sum: f64 = w.iter().sum();
            assert_close(sum, 2.0, 1e-12, &format!("weight sum n={n}"));
            // GLL quadrature is exact for degree <= 2n-3.
            let maxdeg = if n >= 2 { 2 * n - 3 } else { 0 };
            for deg in 0..=maxdeg {
                let q: f64 = x
                    .iter()
                    .zip(&w)
                    .map(|(&xi, &wi)| wi * xi.powi(deg as i32))
                    .sum();
                let exact = if deg % 2 == 0 {
                    2.0 / (deg as f64 + 1.0)
                } else {
                    0.0
                };
                assert_close(q, exact, 1e-10, &format!("x^{deg} quadrature, n={n}"));
            }
        }
    }

    #[test]
    fn diff_matrix_exact_on_polynomials() {
        for n in 2..=16 {
            let x = gll_nodes(n);
            let d = diff_matrix(&x);
            for deg in 0..n {
                // u = x^deg, u' = deg x^{deg-1}
                let u: Vec<f64> = x.iter().map(|&xi| xi.powi(deg as i32)).collect();
                for i in 0..n {
                    let mut du = 0.0;
                    for j in 0..n {
                        du += d[i * n + j] * u[j];
                    }
                    let exact = if deg == 0 {
                        0.0
                    } else {
                        deg as f64 * x[i].powi(deg as i32 - 1)
                    };
                    assert_close(du, exact, 1e-8, &format!("d(x^{deg}) n={n} row {i}"));
                }
            }
        }
    }

    #[test]
    fn diff_matrix_rows_annihilate_constants() {
        for n in 2..=20 {
            let d = diff_matrix(&gll_nodes(n));
            for i in 0..n {
                let s: f64 = (0..n).map(|j| d[i * n + j]).sum();
                assert_close(s, 0.0, 1e-11, &format!("row sum n={n} row {i}"));
            }
        }
    }

    #[test]
    fn diff_matrix_corner_entries() {
        for n in 3..=12 {
            let p = (n - 1) as f64;
            let d = diff_matrix(&gll_nodes(n));
            assert_close(d[0], -p * (p + 1.0) / 4.0, 1e-9, "D_00");
            assert_close(d[n * n - 1], p * (p + 1.0) / 4.0, 1e-9, "D_pp");
        }
    }

    #[test]
    fn interp_matrix_exact_on_polynomials() {
        let from = gll_nodes(6);
        let to = gll_nodes(9);
        let j = interp_matrix(&from, &to);
        for deg in 0..6 {
            let u: Vec<f64> = from.iter().map(|&x| x.powi(deg)).collect();
            for (i, &y) in to.iter().enumerate() {
                let mut v = 0.0;
                for k in 0..6 {
                    v += j[i * 6 + k] * u[k];
                }
                assert_close(v, y.powi(deg), 1e-11, &format!("interp x^{deg} at {y}"));
            }
        }
    }

    #[test]
    fn interp_matrix_identity_on_same_nodes() {
        let x = gll_nodes(7);
        let j = interp_matrix(&x, &x);
        for i in 0..7 {
            for k in 0..7 {
                let expect = if i == k { 1.0 } else { 0.0 };
                assert_close(j[i * 7 + k], expect, 1e-12, "identity interp");
            }
        }
    }

    #[test]
    fn dealias_roundtrip_preserves_resolved_polynomials() {
        let b = Basis::new(6);
        let up = b.dealias_to(9);
        let down = b.dealias_from(9);
        // down * up should be identity on degree <= 5 data.
        let u: Vec<f64> = b.nodes.iter().map(|&x| 1.0 + x + x.powi(4)).collect();
        let mut fine = [0.0; 9];
        for i in 0..9 {
            for k in 0..6 {
                fine[i] += up[i * 6 + k] * u[k];
            }
        }
        for i in 0..6 {
            let mut v = 0.0;
            for k in 0..9 {
                v += down[i * 9 + k] * fine[k];
            }
            assert_close(v, u[i], 1e-11, "dealias roundtrip");
        }
    }

    #[test]
    fn basis_transpose_is_consistent() {
        let b = Basis::new(8);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(b.d[i * 8 + j], b.dt[j * 8 + i]);
            }
        }
    }

    #[test]
    #[should_panic]
    fn basis_rejects_n_below_two() {
        let _ = Basis::new(1);
    }
}
