//! Ideal-gas equation of state and conserved/primitive conversions.
//!
//! CMT-nek solves the compressible flow equations for the conserved
//! vector `U = (rho, rho u, rho v, rho w, E)`; the paper's development
//! plan lists "real gas models" as future work, with the calorically
//! perfect ideal gas as the baseline. This module is that baseline:
//! pressure, sound speed, primitive/conserved conversions, and the
//! physical-admissibility checks the solver's debug assertions use.

/// Number of conserved variables (mass, three momenta, energy).
pub const NVARS: usize = 5;

/// Calorically perfect ideal gas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealGas {
    /// Ratio of specific heats (1.4 for diatomic air).
    pub gamma: f64,
}

impl Default for IdealGas {
    fn default() -> Self {
        IdealGas { gamma: 1.4 }
    }
}

/// Primitive state `(rho, u, v, w, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Primitive {
    /// Density.
    pub rho: f64,
    /// Velocity components.
    pub vel: [f64; 3],
    /// Pressure.
    pub p: f64,
}

impl IdealGas {
    /// A gas with the given specific-heat ratio.
    ///
    /// # Panics
    /// Panics unless `gamma > 1`.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 1.0, "gamma must exceed 1, got {gamma}");
        IdealGas { gamma }
    }

    /// Pressure from the conserved vector.
    #[inline]
    pub fn pressure(&self, u: &[f64; NVARS]) -> f64 {
        let rho = u[0];
        let ke = 0.5 * (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / rho;
        (self.gamma - 1.0) * (u[4] - ke)
    }

    /// Sound speed `sqrt(gamma p / rho)` from the conserved vector.
    #[inline]
    pub fn sound_speed(&self, u: &[f64; NVARS]) -> f64 {
        (self.gamma * self.pressure(u) / u[0]).sqrt()
    }

    /// Largest signal speed normal to `axis`: `|u_n| + c`.
    #[inline]
    pub fn max_wave_speed(&self, u: &[f64; NVARS], axis: usize) -> f64 {
        (u[1 + axis] / u[0]).abs() + self.sound_speed(u)
    }

    /// Conserved vector from a primitive state.
    #[inline]
    pub fn conserved(&self, w: Primitive) -> [f64; NVARS] {
        let ke = 0.5 * w.rho * (w.vel[0] * w.vel[0] + w.vel[1] * w.vel[1] + w.vel[2] * w.vel[2]);
        [
            w.rho,
            w.rho * w.vel[0],
            w.rho * w.vel[1],
            w.rho * w.vel[2],
            w.p / (self.gamma - 1.0) + ke,
        ]
    }

    /// Primitive state from a conserved vector.
    #[inline]
    pub fn primitive(&self, u: &[f64; NVARS]) -> Primitive {
        Primitive {
            rho: u[0],
            vel: [u[1] / u[0], u[2] / u[0], u[3] / u[0]],
            p: self.pressure(u),
        }
    }

    /// Physical admissibility: positive density and pressure, all finite.
    #[inline]
    pub fn is_admissible(&self, u: &[f64; NVARS]) -> bool {
        u.iter().all(|v| v.is_finite()) && u[0] > 0.0 && self.pressure(u) > 0.0
    }

    /// The inviscid flux along `axis` of the conserved state `u`.
    #[inline]
    pub fn flux(&self, u: &[f64; NVARS], axis: usize) -> [f64; NVARS] {
        let p = self.pressure(u);
        let un = u[1 + axis] / u[0]; // normal velocity
        let mut f = [u[0] * un, u[1] * un, u[2] * un, u[3] * un, (u[4] + p) * un];
        f[1 + axis] += p;
        f
    }

    /// Rusanov (local Lax–Friedrichs) numerical flux along `axis` with
    /// outward normal sign `sign` (`+1` or `-1`):
    /// `F* = 1/2 (F(ul) + F(ur)) . n  -  1/2 lambda_max (ur - ul)`.
    ///
    /// `ul` is the interior trace, `ur` the neighbor trace.
    #[inline]
    pub fn rusanov_flux(
        &self,
        ul: &[f64; NVARS],
        ur: &[f64; NVARS],
        axis: usize,
        sign: f64,
    ) -> [f64; NVARS] {
        let fl = self.flux(ul, axis);
        let fr = self.flux(ur, axis);
        let lambda = self
            .max_wave_speed(ul, axis)
            .max(self.max_wave_speed(ur, axis));
        let mut out = [0.0; NVARS];
        for c in 0..NVARS {
            out[c] = 0.5 * sign * (fl[c] + fr[c]) - 0.5 * lambda * (ur[c] - ul[c]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> (IdealGas, [f64; NVARS]) {
        let gas = IdealGas::default();
        let u = gas.conserved(Primitive {
            rho: 1.2,
            vel: [0.3, -0.1, 0.2],
            p: 0.9,
        });
        (gas, u)
    }

    #[test]
    fn primitive_conserved_roundtrip() {
        let (gas, u) = state();
        let w = gas.primitive(&u);
        assert!((w.rho - 1.2).abs() < 1e-14);
        assert!((w.vel[0] - 0.3).abs() < 1e-14);
        assert!((w.vel[1] + 0.1).abs() < 1e-14);
        assert!((w.p - 0.9).abs() < 1e-13);
        let u2 = gas.conserved(w);
        for (a, b) in u.iter().zip(&u2) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn sound_speed_matches_formula() {
        let (gas, u) = state();
        let c = gas.sound_speed(&u);
        assert!((c - (1.4f64 * 0.9 / 1.2).sqrt()).abs() < 1e-13);
    }

    #[test]
    fn flux_of_stationary_gas_is_pure_pressure() {
        let gas = IdealGas::default();
        let u = gas.conserved(Primitive {
            rho: 1.0,
            vel: [0.0; 3],
            p: 2.0,
        });
        for axis in 0..3 {
            let f = gas.flux(&u, axis);
            for (c, &fc) in f.iter().enumerate() {
                let want = if c == 1 + axis { 2.0 } else { 0.0 };
                assert!((fc - want).abs() < 1e-13, "axis {axis} comp {c}");
            }
        }
    }

    #[test]
    fn rusanov_is_consistent() {
        // F*(u, u) = sign * F(u): consistency of the numerical flux.
        let (gas, u) = state();
        for axis in 0..3 {
            for sign in [1.0, -1.0] {
                let fstar = gas.rusanov_flux(&u, &u, axis, sign);
                let f = gas.flux(&u, axis);
                for c in 0..NVARS {
                    assert!((fstar[c] - sign * f[c]).abs() < 1e-13);
                }
            }
        }
    }

    #[test]
    fn rusanov_is_conservative_across_a_face() {
        // The flux leaving one element equals the flux entering its
        // neighbor: F*(ul, ur; +n) = -F*(ur, ul; -n).
        let gas = IdealGas::default();
        let ul = gas.conserved(Primitive {
            rho: 1.0,
            vel: [0.5, 0.0, 0.1],
            p: 1.0,
        });
        let ur = gas.conserved(Primitive {
            rho: 0.8,
            vel: [0.2, -0.3, 0.0],
            p: 1.3,
        });
        for axis in 0..3 {
            let a = gas.rusanov_flux(&ul, &ur, axis, 1.0);
            let b = gas.rusanov_flux(&ur, &ul, axis, -1.0);
            for c in 0..NVARS {
                assert!((a[c] + b[c]).abs() < 1e-13, "axis {axis} comp {c}");
            }
        }
    }

    #[test]
    fn admissibility_checks() {
        let (gas, u) = state();
        assert!(gas.is_admissible(&u));
        let mut bad = u;
        bad[0] = -1.0;
        assert!(!gas.is_admissible(&bad));
        let mut vac = u;
        vac[4] = 0.0; // negative pressure
        assert!(!gas.is_admissible(&vac));
        let mut nan = u;
        nan[2] = f64::NAN;
        assert!(!gas.is_admissible(&nan));
    }

    #[test]
    #[should_panic]
    fn gamma_must_exceed_one() {
        let _ = IdealGas::new(1.0);
    }
}
