//! Surface (face) extraction — the `full2face_cmt` kernel of the paper.
//!
//! The numerical-flux term of the DG formulation is evaluated on element
//! surfaces. `full2face` gathers, for every element, the `6 n^2` boundary
//! values out of the `n^3` volume data into one contiguous surface array
//! (the buffer that is subsequently exchanged with nearest neighbors);
//! `face2full_add` scatters surface contributions back into the volume.
//!
//! Face numbering (a [`Face`] per coordinate extreme):
//!
//! | face | plane    | in-face coordinates (fastest first) |
//! |------|----------|-------------------------------------|
//! | 0    | `r = -1` | `(j, k)`                            |
//! | 1    | `r = +1` | `(j, k)`                            |
//! | 2    | `s = -1` | `(i, k)`                            |
//! | 3    | `s = +1` | `(i, k)`                            |
//! | 4    | `t = -1` | `(i, j)`                            |
//! | 5    | `t = +1` | `(i, j)`                            |
//!
//! Because the mesh is conforming and Cartesian, the point ordering of face
//! `2f` on one element matches face `2f+1` on its neighbor directly —
//! no rotation/orientation table is needed (CMT-nek inherits the general
//! table from Nek5000; the Cartesian identity case is what the mini-app
//! exercises).

/// One of the six faces of the reference hexahedron.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Face {
    /// `r = -1` (west).
    RMinus = 0,
    /// `r = +1` (east).
    RPlus = 1,
    /// `s = -1` (south).
    SMinus = 2,
    /// `s = +1` (north).
    SPlus = 3,
    /// `t = -1` (bottom).
    TMinus = 4,
    /// `t = +1` (top).
    TPlus = 5,
}

impl Face {
    /// All six faces in index order.
    pub const ALL: [Face; 6] = [
        Face::RMinus,
        Face::RPlus,
        Face::SMinus,
        Face::SPlus,
        Face::TMinus,
        Face::TPlus,
    ];

    /// Face index `0..6`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Construct from an index `0..6`.
    ///
    /// # Panics
    /// Panics for indices `>= 6`.
    pub fn from_index(i: usize) -> Face {
        Face::ALL[i]
    }

    /// The face on the opposite side of the element (the one a conforming
    /// neighbor presents to us).
    pub fn opposite(self) -> Face {
        Face::from_index(self.index() ^ 1)
    }

    /// The coordinate axis this face is normal to (0 = r, 1 = s, 2 = t).
    pub fn axis(self) -> usize {
        self.index() / 2
    }

    /// `-1` for the minus-side faces, `+1` for the plus-side faces.
    pub fn sign(self) -> i64 {
        if self.index() % 2 == 0 {
            -1
        } else {
            1
        }
    }

    /// Outward unit normal in reference coordinates.
    pub fn normal(self) -> [f64; 3] {
        let mut nrm = [0.0; 3];
        nrm[self.axis()] = self.sign() as f64;
        nrm
    }
}

/// Number of values in the surface array of one element (`6 n^2`).
#[inline]
pub fn face_values_per_element(n: usize) -> usize {
    6 * n * n
}

/// Flat index *within one element's volume data* of face point `p` (with
/// `p = a + n*b` in the face-local `(a, b)` ordering documented above) of
/// face `f`.
#[inline]
pub fn face_point_volume_index(n: usize, f: Face, p: usize) -> usize {
    let a = p % n;
    let b = p / n;
    let last = n - 1;
    let (i, j, k) = match f {
        Face::RMinus => (0, a, b),
        Face::RPlus => (last, a, b),
        Face::SMinus => (a, 0, b),
        Face::SPlus => (a, last, b),
        Face::TMinus => (a, b, 0),
        Face::TPlus => (a, b, last),
    };
    (k * n + j) * n + i
}

/// Gather all element faces into a contiguous surface array.
///
/// `u` is the `[e][k][j][i]` volume data (`n^3 * nel` values); `faces` is
/// overwritten and laid out `[e][face][b][a]` (`6 n^2 * nel` values).
///
/// # Panics
/// Panics on length mismatches.
pub fn full2face(n: usize, nel: usize, u: &[f64], faces: &mut [f64]) {
    assert_eq!(u.len(), n * n * n * nel, "volume length mismatch");
    assert_eq!(faces.len(), 6 * n * n * nel, "surface length mismatch");
    let n2 = n * n;
    let n3 = n2 * n;
    let last = n - 1;
    for e in 0..nel {
        let ue = &u[e * n3..(e + 1) * n3];
        let fe = &mut faces[e * 6 * n2..(e + 1) * 6 * n2];
        // Unrolled per-face loops keep every gather's source stride explicit.
        let (f0, rest) = fe.split_at_mut(n2);
        let (f1, rest) = rest.split_at_mut(n2);
        let (f2, rest) = rest.split_at_mut(n2);
        let (f3, rest) = rest.split_at_mut(n2);
        let (f4, f5) = rest.split_at_mut(n2);
        for b in 0..n {
            for a in 0..n {
                let p = b * n + a;
                f0[p] = ue[(b * n + a) * n]; // (0, a, b)
                f1[p] = ue[(b * n + a) * n + last]; // (last, a, b)
                f2[p] = ue[(b * n) * n + a]; // (a, 0, b)
                f3[p] = ue[(b * n + last) * n + a]; // (a, last, b)
                f4[p] = ue[b * n + a]; // (a, b, 0)
                f5[p] = ue[(last * n + b) * n + a]; // (a, b, last)
            }
        }
    }
}

/// Scatter-accumulate surface values back into the volume:
/// `u[point] += faces[face point]` for every face point.
///
/// Edge and corner points receive one contribution per incident face,
/// mirroring the behaviour of Nek's `add_face2full`.
pub fn face2full_add(n: usize, nel: usize, faces: &[f64], u: &mut [f64]) {
    assert_eq!(u.len(), n * n * n * nel, "volume length mismatch");
    assert_eq!(faces.len(), 6 * n * n * nel, "surface length mismatch");
    let n2 = n * n;
    let n3 = n2 * n;
    for e in 0..nel {
        let ue = &mut u[e * n3..(e + 1) * n3];
        let fe = &faces[e * 6 * n2..(e + 1) * 6 * n2];
        for f in Face::ALL {
            let fv = &fe[f.index() * n2..(f.index() + 1) * n2];
            for (p, &v) in fv.iter().enumerate() {
                ue[face_point_volume_index(n, f, p)] += v;
            }
        }
    }
}

/// Overwrite variant of [`face2full_add`]: `u[point] = faces[face point]`.
/// At edges/corners the *last* face in [`Face::ALL`] order wins; interior
/// volume points are left untouched.
pub fn face2full_copy(n: usize, nel: usize, faces: &[f64], u: &mut [f64]) {
    assert_eq!(u.len(), n * n * n * nel, "volume length mismatch");
    assert_eq!(faces.len(), 6 * n * n * nel, "surface length mismatch");
    let n2 = n * n;
    let n3 = n2 * n;
    for e in 0..nel {
        let ue = &mut u[e * n3..(e + 1) * n3];
        let fe = &faces[e * 6 * n2..(e + 1) * 6 * n2];
        for f in Face::ALL {
            let fv = &fe[f.index() * n2..(f.index() + 1) * n2];
            for (p, &v) in fv.iter().enumerate() {
                ue[face_point_volume_index(n, f, p)] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_and_axis() {
        assert_eq!(Face::RMinus.opposite(), Face::RPlus);
        assert_eq!(Face::TPlus.opposite(), Face::TMinus);
        assert_eq!(Face::SMinus.axis(), 1);
        assert_eq!(Face::RPlus.sign(), 1);
        assert_eq!(Face::TMinus.normal(), [0.0, 0.0, -1.0]);
    }

    #[test]
    fn full2face_extracts_expected_points() {
        let n = 3;
        // encode u[i,j,k] = 100i + 10j + k
        let mut u = vec![0.0; 27];
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    u[(k * n + j) * n + i] = (100 * i + 10 * j + k) as f64;
                }
            }
        }
        let mut faces = vec![0.0; 54];
        full2face(n, 1, &u, &mut faces);
        // Face RMinus (i = 0): point (a=j, b=k)
        assert_eq!(faces[0], 0.0); // j=0, k=0
        assert_eq!(faces[1], 10.0); // j=1, k=0
        assert_eq!(faces[3], 1.0); // j=0, k=1
                                   // Face RPlus (i = 2): starts at offset 9
        assert_eq!(faces[9], 200.0);
        // Face SPlus (j = 2): offset 27, point (a=i, b=k)
        assert_eq!(faces[27 + 1], 120.0); // i=1, k=0
                                          // Face TPlus (k = 2): offset 45, point (a=i, b=j)
        assert_eq!(faces[45 + 2 * 3 + 1], 122.0); // i=1, j=2
    }

    #[test]
    fn face_volume_index_consistent_with_full2face() {
        let n = 4;
        let u: Vec<f64> = (0..64).map(|v| v as f64).collect();
        let mut faces = vec![0.0; 6 * 16];
        full2face(n, 1, &u, &mut faces);
        for f in Face::ALL {
            for p in 0..16 {
                assert_eq!(
                    faces[f.index() * 16 + p],
                    u[face_point_volume_index(n, f, p)],
                    "face {f:?} point {p}"
                );
            }
        }
    }

    #[test]
    fn face2full_add_accumulates_multiplicity() {
        let n = 3;
        let faces = vec![1.0; 6 * 9];
        let mut u = vec![0.0; 27];
        face2full_add(n, 1, &faces, &mut u);
        // Face centers belong to 1 face, edge midpoints to 2, corners to 3.
        assert_eq!(u[(1 * n + 1) * n], 1.0); // center of r=-1 face
        assert_eq!(u[1], 2.0); // edge (j=0, k=0) midpoint: (k*n + j)*n + i with i=1
        assert_eq!(u[0], 3.0); // corner
        assert_eq!(u[(1 * n + 1) * n + 1], 0.0); // interior untouched
    }

    #[test]
    fn roundtrip_gather_scatter_copy() {
        let n = 5;
        let nel = 3;
        let u: Vec<f64> = (0..n * n * n * nel).map(|v| (v % 97) as f64).collect();
        let mut faces = vec![0.0; 6 * n * n * nel];
        full2face(n, nel, &u, &mut faces);
        let mut v = u.clone();
        face2full_copy(n, nel, &faces, &mut v);
        // copy-back of self-extracted faces is the identity
        assert_eq!(u, v);
    }

    #[test]
    fn multi_element_faces_do_not_alias() {
        let n = 2;
        let nel = 2;
        let u: Vec<f64> = (0..16).map(|v| v as f64).collect();
        let mut faces = vec![0.0; 6 * 4 * 2];
        full2face(n, nel, &u, &mut faces);
        // element 1's RMinus face must read from the second element block
        assert_eq!(faces[24], u[8]);
    }
}
