//! Analytic operation counts for the CMT-bone kernels.
//!
//! The paper reports PAPI total-instruction and total-cycle counts for the
//! derivative kernels (Figs. 5-6). Real hardware counters are not available
//! to a portable reproduction, so `cmt-perf` models them from the operation
//! counts tallied here: floating-point operations, loads and stores per
//! kernel invocation, exact by construction of each loop nest.
//!
//! The counts are *architecture-independent facts about the algorithms*;
//! translating them into instructions/cycles (vectorization width, loop
//! overhead per variant, cache penalties) is the model in
//! `cmt_perf::papi`.

/// Operation counts of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Floating-point operations (adds + multiplies; an FMA counts as 2).
    pub flops: u64,
    /// f64 values read from memory (as written in the source loop nest —
    /// registers/cache reuse is a model concern, not a count concern).
    pub loads: u64,
    /// f64 values written to memory.
    pub stores: u64,
}

impl OpCounts {
    /// Elementwise sum.
    pub fn plus(self, other: OpCounts) -> OpCounts {
        OpCounts {
            flops: self.flops + other.flops,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
        }
    }

    /// Scale all counts (e.g. by a timestep count).
    pub fn times(self, k: u64) -> OpCounts {
        OpCounts {
            flops: self.flops * k,
            loads: self.loads * k,
            stores: self.stores * k,
        }
    }

    /// Total memory traffic in bytes (8 bytes per f64).
    pub fn bytes(self) -> u64 {
        8 * (self.loads + self.stores)
    }
}

/// One partial-derivative kernel (`dudr`, `duds` or `dudt`):
/// `n^3 * nel` output points, each an `n`-term dot product.
///
/// Per output point: `n` multiplies + `n-1` adds, `n` loads of `u`, `n`
/// loads of `D`, 1 store. Identical for all three directions — the
/// *counts* are the same; the access *patterns* (and hence modelled cycles)
/// differ.
pub fn deriv_counts(n: u64, nel: u64) -> OpCounts {
    let pts = n * n * n * nel;
    OpCounts {
        flops: pts * (2 * n - 1),
        loads: pts * 2 * n,
        stores: pts,
    }
}

/// All three derivatives of one field (the gradient).
pub fn grad_counts(n: u64, nel: u64) -> OpCounts {
    deriv_counts(n, nel).times(3)
}

/// `full2face`: gather `6 n^2` values per element.
pub fn full2face_counts(n: u64, nel: u64) -> OpCounts {
    let pts = 6 * n * n * nel;
    OpCounts {
        flops: 0,
        loads: pts,
        stores: pts,
    }
}

/// `face2full_add`: scatter-accumulate `6 n^2` values per element.
pub fn face2full_counts(n: u64, nel: u64) -> OpCounts {
    let pts = 6 * n * n * nel;
    OpCounts {
        flops: pts,
        loads: 2 * pts,
        stores: pts,
    }
}

/// One RK stage update `u = a*u0 + b*u + c*dt*rhs` over `n^3 * nel` points.
pub fn rk_stage_counts(n: u64, nel: u64) -> OpCounts {
    let pts = n * n * n * nel;
    OpCounts {
        flops: pts * 5,
        loads: pts * 3,
        stores: pts,
    }
}

/// Dealias interpolation (`tensor3_apply`) from `n` to `m` points per
/// direction: three rectangular contractions.
pub fn tensor3_counts(m: u64, n: u64, nel: u64) -> OpCounts {
    // r: m*n^2 outputs of n-term dots; s: m^2*n outputs; t: m^3 outputs.
    let outs = m * n * n + m * m * n + m * m * m;
    OpCounts {
        flops: outs * (2 * n - 1),
        loads: outs * 2 * n,
        stores: outs,
    }
    .times(nel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deriv_counts_match_hand_computation() {
        // n=2, nel=1: 8 points, each 2 mult + 1 add = 3 flops
        let c = deriv_counts(2, 1);
        assert_eq!(c.flops, 24);
        assert_eq!(c.loads, 32);
        assert_eq!(c.stores, 8);
    }

    #[test]
    fn deriv_is_order_n4() {
        // Doubling n must scale flops by ~16x asymptotically.
        let c1 = deriv_counts(16, 1);
        let c2 = deriv_counts(32, 1);
        let ratio = c2.flops as f64 / c1.flops as f64;
        assert!(ratio > 15.0 && ratio < 17.0, "ratio = {ratio}");
    }

    #[test]
    fn counts_scale_linearly_in_nel() {
        let a = deriv_counts(10, 1);
        let b = deriv_counts(10, 7);
        assert_eq!(b.flops, 7 * a.flops);
        assert_eq!(b.loads, 7 * a.loads);
        assert_eq!(b.stores, 7 * a.stores);
    }

    #[test]
    fn arithmetic_helpers() {
        let a = OpCounts {
            flops: 1,
            loads: 2,
            stores: 3,
        };
        let b = a.plus(a).times(2);
        assert_eq!(b.flops, 4);
        assert_eq!(b.bytes(), 8 * (8 + 12));
    }

    #[test]
    fn grad_is_three_derivs() {
        assert_eq!(grad_counts(9, 4).flops, 3 * deriv_counts(9, 4).flops);
    }
}
