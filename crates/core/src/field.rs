//! Element field storage.
//!
//! A [`Field`] holds one scalar unknown (one component of the conserved
//! vector `U` — mass, a momentum component, or energy) for all `nel`
//! elements resident on a process, at `n^3` GLL points per element.
//!
//! Layout is Nek-style `[e][k][j][i]` with `i` fastest, i.e. the flat index
//! of point `(i, j, k)` of element `e` is
//! `((e * n + k) * n + j) * n + i`. The derivative kernels in
//! [`crate::kernels`] rely on this layout and its implied strides
//! (`1` in `r`, `n` in `s`, `n^2` in `t`).

/// One scalar spectral-element field: `nel` elements of `n^3` GLL values.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    n: usize,
    nel: usize,
    data: Vec<f64>,
}

impl Field {
    /// A zero-initialized field with `nel` elements of `n^3` points.
    ///
    /// # Panics
    /// Panics if `n < 2` (an element needs at least the two Lobatto
    /// endpoints per direction).
    pub fn zeros(n: usize, nel: usize) -> Self {
        assert!(n >= 2, "element order n must be >= 2, got {n}");
        Field {
            n,
            nel,
            data: vec![0.0; n * n * n * nel],
        }
    }

    /// Build a field by evaluating `f(e, i, j, k)` at every point.
    pub fn from_fn(
        n: usize,
        nel: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f64,
    ) -> Self {
        let mut fld = Field::zeros(n, nel);
        let mut idx = 0;
        for e in 0..nel {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        fld.data[idx] = f(e, i, j, k);
                        idx += 1;
                    }
                }
            }
        }
        fld
    }

    /// Wrap an existing flat buffer. `data.len()` must equal `n^3 * nel`.
    ///
    /// # Panics
    /// Panics on a length mismatch or `n < 2`.
    pub fn from_vec(n: usize, nel: usize, data: Vec<f64>) -> Self {
        assert!(n >= 2, "element order n must be >= 2, got {n}");
        assert_eq!(
            data.len(),
            n * n * n * nel,
            "buffer length {} != n^3 * nel = {}",
            data.len(),
            n * n * n * nel
        );
        Field { n, nel, data }
    }

    /// Points per direction.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of local elements.
    #[inline]
    pub fn nel(&self) -> usize {
        self.nel
    }

    /// Points per element (`n^3`).
    #[inline]
    pub fn points_per_element(&self) -> usize {
        self.n * self.n * self.n
    }

    /// Total number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the field holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read-only view of all values.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable view of all values.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Flat index of point `(i, j, k)` in element `e`.
    #[inline]
    pub fn index(&self, e: usize, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(e < self.nel && i < self.n && j < self.n && k < self.n);
        ((e * self.n + k) * self.n + j) * self.n + i
    }

    /// Value at point `(i, j, k)` of element `e`.
    #[inline]
    pub fn get(&self, e: usize, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.index(e, i, j, k)]
    }

    /// Set the value at point `(i, j, k)` of element `e`.
    #[inline]
    pub fn set(&mut self, e: usize, i: usize, j: usize, k: usize, v: f64) {
        let idx = self.index(e, i, j, k);
        self.data[idx] = v;
    }

    /// Read-only view of one element's `n^3` values.
    #[inline]
    pub fn element(&self, e: usize) -> &[f64] {
        let np = self.points_per_element();
        &self.data[e * np..(e + 1) * np]
    }

    /// Mutable view of one element's `n^3` values.
    #[inline]
    pub fn element_mut(&mut self, e: usize) -> &mut [f64] {
        let np = self.points_per_element();
        &mut self.data[e * np..(e + 1) * np]
    }

    /// Fill every value with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// `self += alpha * other` (the RK-stage axpy workhorse).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Field) {
        assert_eq!(self.n, other.n, "axpy: order mismatch");
        assert_eq!(self.nel, other.nel, "axpy: element count mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Pointwise `self = beta * self + alpha * other`.
    pub fn axpby(&mut self, alpha: f64, other: &Field, beta: f64) {
        assert_eq!(self.n, other.n, "axpby: order mismatch");
        assert_eq!(self.nel, other.nel, "axpby: element count mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = beta * *a + alpha * b;
        }
    }

    /// Scale every value by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Local (unreduced) dot product with `other`.
    pub fn dot(&self, other: &Field) -> f64 {
        assert_eq!(self.data.len(), other.data.len(), "dot: length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Local max-norm.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Local sum of all values (used by conservation checks).
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_i_fastest() {
        let f = Field::zeros(4, 2);
        assert_eq!(f.index(0, 0, 0, 0), 0);
        assert_eq!(f.index(0, 1, 0, 0), 1);
        assert_eq!(f.index(0, 0, 1, 0), 4);
        assert_eq!(f.index(0, 0, 0, 1), 16);
        assert_eq!(f.index(1, 0, 0, 0), 64);
        assert_eq!(f.index(1, 3, 3, 3), 127);
    }

    #[test]
    fn from_fn_round_trips_get() {
        let f = Field::from_fn(3, 2, |e, i, j, k| (e * 1000 + k * 100 + j * 10 + i) as f64);
        assert_eq!(f.get(1, 2, 1, 0), 1012.0);
        assert_eq!(f.get(0, 0, 2, 2), 220.0);
        assert_eq!(f.len(), 54);
    }

    #[test]
    fn element_views_partition_data() {
        let f = Field::from_fn(2, 3, |e, _, _, _| e as f64);
        for e in 0..3 {
            assert!(f.element(e).iter().all(|&v| v == e as f64));
            assert_eq!(f.element(e).len(), 8);
        }
    }

    #[test]
    fn axpy_axpby_scale() {
        let mut a = Field::from_fn(2, 1, |_, i, j, k| (i + j + k) as f64);
        let b = Field::from_fn(2, 1, |_, _, _, _| 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.get(0, 1, 1, 1), 4.0);
        a.axpby(1.0, &b, 0.0); // a = b
        assert_eq!(a.as_slice(), b.as_slice());
        a.scale(3.0);
        assert!(a.as_slice().iter().all(|&v| v == 6.0));
    }

    #[test]
    fn dot_and_norms() {
        let a = Field::from_fn(2, 1, |_, _, _, _| 2.0);
        let b = Field::from_fn(2, 1, |_, _, _, _| -3.0);
        assert_eq!(a.dot(&b), -48.0);
        assert_eq!(b.norm_inf(), 3.0);
        assert_eq!(a.sum(), 16.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_length() {
        let _ = Field::from_vec(3, 2, vec![0.0; 10]);
    }

    #[test]
    #[should_panic]
    fn axpy_rejects_shape_mismatch() {
        let mut a = Field::zeros(3, 2);
        let b = Field::zeros(3, 3);
        a.axpy(1.0, &b);
    }
}
